//! # evopt — Evaluation and Optimization of Relational Queries
//!
//! A from-scratch reproduction of foundational-era **cost-based query
//! optimization** (VLDB 1977 lineage): a complete single-node relational
//! engine whose optimizer evaluates alternative access paths, join methods
//! and join orders against a statistics-driven cost model — plus the whole
//! substrate underneath it (paged storage with I/O accounting, B+-trees,
//! ANALYZE statistics, a SQL front end, and a Volcano executor), so the
//! optimizer's predictions can be validated against *measured* page I/O.
//!
//! This crate is the facade: it re-exports every layer. Start with
//! [`Database`]:
//!
//! ```
//! use evopt::Database;
//!
//! let db = Database::with_defaults();
//! db.execute("CREATE TABLE t (id INT NOT NULL, name STRING)").unwrap();
//! db.execute("INSERT INTO t VALUES (1, 'a'), (2, 'b'), (3, 'c')").unwrap();
//! db.execute("CREATE INDEX t_id ON t (id)").unwrap();
//! db.execute("ANALYZE").unwrap();
//!
//! let rows = db.query("SELECT name FROM t WHERE id = 2").unwrap();
//! assert_eq!(rows.len(), 1);
//!
//! // EXPLAIN shows the logical plan and the costed physical plan. (On a
//! // 3-row table the optimizer rightly prefers the sequential scan; the
//! // index pays off once the table outgrows a page.)
//! let plan = db.explain("SELECT name FROM t WHERE id = 2").unwrap();
//! assert!(plan.contains("== physical"));
//! ```
//!
//! The layers, bottom-up (each is its own crate):
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`common`] | `evopt-common` | values, schemas, tuples, expressions |
//! | [`storage`] | `evopt-storage` | pages, buffer pool, heaps, B+-trees |
//! | [`catalog`] | `evopt-catalog` | metadata, histograms, ANALYZE |
//! | [`sql`] | `evopt-sql` | lexer, parser, binder |
//! | [`plan`] | `evopt-plan` | logical algebra, rewrites, join graphs |
//! | [`core`] | `evopt-core` | **the optimizer**: selectivity, cost, access paths, enumeration |
//! | [`exec`] | `evopt-exec` | Volcano operators |
//! | [`engine`] | `evopt-engine` | the [`Database`] facade |
//! | [`workload`] | `evopt-workload` | synthetic data/query generators |

pub use evopt_catalog as catalog;
pub use evopt_common as common;
pub use evopt_core as core;
pub use evopt_engine as engine;
pub use evopt_exec as exec;
pub use evopt_obs as obs;
pub use evopt_plan as plan;
pub use evopt_sql as sql;
pub use evopt_storage as storage;
pub use evopt_workload as workload;

pub use evopt_common::{Column, DataType, Schema, Tuple, Value};
pub use evopt_core::{CostModel, Optimizer, OptimizerConfig, Strategy};
pub use evopt_engine::{
    AnalyzeConfig, CancellationToken, CrashingBackend, Database, DatabaseConfig, DiskBackend,
    DiskManager, Durability, EngineMetrics, FaultConfig, FaultInjector, FaultReport,
    GovernorConfig, HistogramKind, IoSnapshot, MetricsSnapshot, OperatorMetrics, Phase, PhaseSpan,
    PolicyKind, PoolSnapshot, QueryLog, QueryLogEntry, QueryMetrics, QueryResult, RecoveryInfo,
    SearchTrace, Session, SessionConfig, StatementSpan, TracedQuery, Wal, WalStats,
};
