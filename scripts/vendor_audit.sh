#!/usr/bin/env bash
# Vendor audit: prove the build graph is fully hermetic.
#
# Invariant: every package in Cargo.lock is either a workspace crate
# (crates/*, the root package) or a vendored path dependency under
# vendor/. Nothing may resolve to a registry, git, or any other remote
# source — the build must succeed with the network unplugged.
#
# In Cargo.lock, path dependencies (workspace members and vendor/ crates
# alike) carry no `source` field; registry/git packages do. So the audit
# is two checks:
#   1. no [[package]] entry has a `source` line;
#   2. every locked package name is accounted for by a workspace member
#      or a vendor/ directory — a typo'd path dep can't slip through.
#
# Exit 0 when hermetic; exit 1 with the offending packages otherwise.
set -euo pipefail

cd "$(dirname "$0")/.."

fail=0

# -- 1. no remote sources ----------------------------------------------------
remote=$(grep -n '^source = ' Cargo.lock || true)
if [ -n "$remote" ]; then
    echo "vendor_audit: Cargo.lock contains non-path (remote) sources:" >&2
    echo "$remote" >&2
    fail=1
fi

# -- 2. every locked package is a workspace crate or vendored ----------------
# Workspace members: the root package plus every crates/*/Cargo.toml.
known=$(
    {
        sed -n 's/^name = "\(.*\)"/\1/p' Cargo.toml | head -1
        for m in crates/*/Cargo.toml vendor/*/Cargo.toml; do
            sed -n 's/^name = "\(.*\)"/\1/p' "$m" | head -1
        done
    } | sort -u
)

locked=$(sed -n 's/^name = "\(.*\)"/\1/p' Cargo.lock | sort -u)

unknown=$(comm -23 <(echo "$locked") <(echo "$known"))
if [ -n "$unknown" ]; then
    echo "vendor_audit: locked packages not provided by the workspace or vendor/:" >&2
    echo "$unknown" >&2
    fail=1
fi

# -- 3. the static analyzer stays dependency-free ----------------------------
# evopt-analyze parses Rust with its own purpose-built scanner; its
# [dependencies] section must remain empty so the tool can never grow a
# parser dependency (syn, rustc) the hermetic build can't provide.
# (dev-dependencies are fine — the tests link evopt-common for the
# rank-table round-trip.)
analyze_deps=$(awk '/^\[dependencies\]/{f=1;next} /^\[/{f=0} f && NF && $0 !~ /^#/' crates/analyze/Cargo.toml)
if [ -n "$analyze_deps" ]; then
    echo "vendor_audit: evopt-analyze must stay dependency-free; found:" >&2
    echo "$analyze_deps" >&2
    fail=1
fi

if [ "$fail" -ne 0 ]; then
    exit 1
fi

count=$(echo "$locked" | wc -l)
echo "vendor_audit: OK — $count locked packages, all workspace or vendored, no remote sources"
