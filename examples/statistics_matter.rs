//! Why statistics matter: the same queries planned with and without
//! ANALYZE, and under different histogram configurations, against skewed
//! data.
//!
//! Demonstrates the estimation ladder (MCVs → histograms → uniformity →
//! magic constants) and how estimation quality changes the chosen plan.
//!
//! ```text
//! cargo run --release --example statistics_matter
//! ```

use evopt::workload::ZipfSampler;
use evopt::{AnalyzeConfig, Database, HistogramKind, Tuple, Value};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let db = Database::with_defaults();
    db.execute("CREATE TABLE events (kind INT NOT NULL, payload STRING NOT NULL)")
        .expect("create");

    // Heavily skewed: kind 0 covers ~19% of rows, the tail is sparse.
    let n = 50_000;
    let zipf = ZipfSampler::new(1000, 1.0);
    let mut rng = StdRng::seed_from_u64(99);
    let rows: Vec<Tuple> = (0..n)
        .map(|i| {
            Tuple::new(vec![
                Value::Int(zipf.sample(&mut rng) as i64),
                Value::Str(format!("event-{i}")),
            ])
        })
        .collect();
    db.insert_tuples("events", &rows).expect("load");
    db.execute("CREATE INDEX events_kind ON events (kind)")
        .unwrap();

    let hot = "SELECT COUNT(*) FROM events WHERE kind = 0"; // ~19% of rows
    let cold = "SELECT COUNT(*) FROM events WHERE kind = 900"; // a handful

    let configs: Vec<(&str, AnalyzeConfig)> = vec![
        (
            "uniformity only (1977 rules)",
            AnalyzeConfig {
                histogram: HistogramKind::None,
                buckets: 0,
                mcv_count: 0,
                mcv_min_fraction: 1.0,
            },
        ),
        (
            "equi-depth 32 buckets",
            AnalyzeConfig {
                histogram: HistogramKind::EquiDepth,
                buckets: 32,
                mcv_count: 0,
                mcv_min_fraction: 1.0,
            },
        ),
        ("equi-depth + MCVs (default)", AnalyzeConfig::default()),
    ];

    for (label, cfg) in configs {
        db.set_analyze_config(cfg);
        db.execute("ANALYZE").unwrap();
        println!("=== statistics: {label} ===");
        for (name, sql) in [
            ("hot kind (19% of rows)", hot),
            ("cold kind (~0.01%)", cold),
        ] {
            let (_, physical) = db.plan_sql(sql).unwrap();
            let actual = db.query(sql).unwrap()[0]
                .value(0)
                .unwrap()
                .as_i64()
                .unwrap();
            // The scan node under the aggregate carries the row estimate.
            fn scan_est(p: &evopt::core::PhysicalPlan) -> (String, f64) {
                match p.op_name() {
                    "SeqScan" | "IndexScan" => (p.op_name().to_string(), p.est_rows),
                    _ => p
                        .children()
                        .first()
                        .map(|c| scan_est(c))
                        .unwrap_or(("?".into(), f64::NAN)),
                }
            }
            let (access, est) = scan_est(&physical);
            println!(
                "  {name:<24} estimated {est:>8.0} rows, actual {actual:>6}, \
                 access path: {access}"
            );
        }
        println!();
    }
    println!(
        "Takeaway: without histograms the estimator assumes uniformity, so the\n\
         hot key is underestimated ~190x and the optimizer may pick an index\n\
         scan that touches a fifth of the table one page at a time. Histograms\n\
         (and MCVs) restore sane estimates — and with them, sane plans."
    );
}
