//! An interactive SQL shell over an in-memory `evopt` database.
//!
//! ```text
//! cargo run --release --example repl
//! evopt> CREATE TABLE t (id INT NOT NULL, name STRING);
//! evopt> INSERT INTO t VALUES (1, 'ada'), (2, 'grace');
//! evopt> SELECT * FROM t WHERE id = 2;
//! evopt> EXPLAIN ANALYZE SELECT * FROM t WHERE id = 2;
//! evopt> \strategy greedy        -- switch the enumeration strategy
//! evopt> \tables                 -- list catalog contents
//! evopt> \q
//! ```
//!
//! Also accepts SQL on stdin non-interactively:
//! `echo "SELECT 1 FROM t" | cargo run --example repl`.
//!
//! This is a thin wrapper over the real front-end: `evopt-server` serves
//! the same REPL locally (`evopt-server local`), over TCP
//! (`evopt-server serve` + `evopt-server client`), and as a library.

fn main() {
    evopt_server::repl::run_local(std::sync::Arc::new(evopt::Database::with_defaults()));
}
