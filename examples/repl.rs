//! An interactive SQL shell over an in-memory `evopt` database.
//!
//! ```text
//! cargo run --release --example repl
//! evopt> CREATE TABLE t (id INT NOT NULL, name STRING);
//! evopt> INSERT INTO t VALUES (1, 'ada'), (2, 'grace');
//! evopt> SELECT * FROM t WHERE id = 2;
//! evopt> EXPLAIN ANALYZE SELECT * FROM t WHERE id = 2;
//! evopt> \strategy greedy        -- switch the enumeration strategy
//! evopt> \tables                 -- list catalog contents
//! evopt> \q
//! ```
//!
//! Also accepts SQL on stdin non-interactively:
//! `echo "SELECT 1 FROM t" | cargo run --example repl`.

use std::io::{BufRead, Write};

use evopt::{Database, QueryResult, Strategy};

fn main() {
    let db = Database::with_defaults();
    let stdin = std::io::stdin();
    let interactive = atty_stdin();
    if interactive {
        println!("evopt — evaluation and optimization of relational queries");
        println!("type SQL terminated by ';', or \\help");
    }
    let mut buffer = String::new();
    loop {
        if interactive {
            if buffer.is_empty() {
                print!("evopt> ");
            } else {
                print!("   ..> ");
            }
            std::io::stdout().flush().ok();
        }
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        let trimmed = line.trim();
        if buffer.is_empty() && trimmed.starts_with('\\') {
            if !meta_command(&db, trimmed) {
                break;
            }
            continue;
        }
        buffer.push_str(&line);
        if !buffer.trim_end().ends_with(';') {
            if buffer.trim().is_empty() {
                buffer.clear();
            }
            continue;
        }
        let sql = std::mem::take(&mut buffer);
        run_sql(&db, sql.trim());
    }
}

/// Best-effort interactivity probe without extra dependencies: honour an
/// explicit NO_PROMPT, else assume interactive.
fn atty_stdin() -> bool {
    std::env::var_os("NO_PROMPT").is_none()
}

/// Returns false when the REPL should exit.
fn meta_command(db: &Database, cmd: &str) -> bool {
    let mut parts = cmd.split_whitespace();
    match parts.next().unwrap_or("") {
        "\\q" | "\\quit" | "\\exit" => return false,
        "\\help" | "\\?" => {
            println!("  SQL:   CREATE TABLE / CREATE [UNIQUE|CLUSTERED] INDEX / INSERT /");
            println!("         SELECT / DELETE / UPDATE / ANALYZE / DROP TABLE /");
            println!("         EXPLAIN [ANALYZE] SELECT ...   (terminate with ';')");
            println!("  \\tables             list tables, row counts, indexes");
            println!("  \\strategy <name>    system-r | bushy-dp | dpccp | greedy |");
            println!("                      goo | quickpick | syntactic");
            println!("  \\q                  quit");
        }
        "\\tables" => {
            for t in db.catalog().tables() {
                let indexes: Vec<String> = t.indexes().iter().map(|i| i.name.clone()).collect();
                println!(
                    "  {} — {} rows, {} pages, indexes: [{}]",
                    t.name,
                    t.heap.tuple_count(),
                    t.heap.page_count(),
                    indexes.join(", ")
                );
            }
        }
        "\\strategy" => match parts.next() {
            Some("system-r") => db.set_strategy(Strategy::SystemR),
            Some("bushy-dp") => db.set_strategy(Strategy::BushyDp),
            Some("dpccp") => db.set_strategy(Strategy::DpCcp),
            Some("greedy") => db.set_strategy(Strategy::Greedy),
            Some("goo") => db.set_strategy(Strategy::Goo),
            Some("quickpick") => db.set_strategy(Strategy::QuickPick {
                samples: 16,
                seed: 1,
            }),
            Some("syntactic") => db.set_strategy(Strategy::Syntactic),
            other => {
                println!("unknown strategy {other:?} (see \\help)");
                return true;
            }
        },
        other => println!("unknown command '{other}' (see \\help)"),
    }
    if cmd.starts_with("\\strategy") {
        println!("strategy: {}", db.optimizer_config().strategy.name());
    }
    true
}

fn run_sql(db: &Database, sql: &str) {
    let started = std::time::Instant::now();
    match db.measured(sql) {
        Err(e) => println!("{e}"),
        Ok((result, io)) => match result {
            QueryResult::Rows { schema, rows, .. } => {
                let header: Vec<String> = schema
                    .columns()
                    .iter()
                    .map(|c| c.qualified_name())
                    .collect();
                println!("| {} |", header.join(" | "));
                for r in rows.iter().take(50) {
                    let cells: Vec<String> = r.values().iter().map(|v| v.to_string()).collect();
                    println!("| {} |", cells.join(" | "));
                }
                if rows.len() > 50 {
                    println!("... ({} rows total)", rows.len());
                }
                println!(
                    "{} row(s) in {:.1} ms, {} page reads",
                    rows.len(),
                    started.elapsed().as_secs_f64() * 1e3,
                    io.reads
                );
            }
            QueryResult::Affected(n) => println!("{n} row(s) affected"),
            QueryResult::Explained(text) => println!("{text}"),
            QueryResult::Ok => println!("ok"),
        },
    }
}
