//! A tour of the optimizer: the same 5-way join planned by every
//! enumeration strategy, with estimated costs, chosen join orders and
//! methods, and measured page I/O side by side.
//!
//! This is the paper's story in one binary: the *evaluation* of alternative
//! strategies against each other and against the unoptimized baseline.
//!
//! ```text
//! cargo run --release --example optimizer_tour
//! ```

use evopt::workload::tpch_lite::{load_tpch_lite, queries};
use evopt::{Database, Strategy};

fn main() {
    let db = Database::with_defaults();
    println!("loading TPC-H-lite (scale 1.0)...");
    let counts = load_tpch_lite(&db, 1.0, 7).expect("load");
    println!(
        "  region={} nation={} customer={} orders={} lineitem={}\n",
        counts.regions, counts.nations, counts.customers, counts.orders, counts.lineitems
    );

    let sql = queries::REVENUE_PER_NATION;
    println!(
        "query:\n  {}\n",
        sql.replace(" FROM", "\n  FROM")
            .replace(" JOIN", "\n  JOIN")
    );

    let model = db.optimizer_config().cost_model;
    println!(
        "{:<14} {:>12} {:>10} {:>8}  {:<28} join order",
        "strategy", "est cost", "plan µs", "io", "join methods"
    );
    for strategy in [
        Strategy::SystemR,
        Strategy::BushyDp,
        Strategy::DpCcp,
        Strategy::Greedy,
        Strategy::Goo,
        Strategy::QuickPick {
            samples: 16,
            seed: 1,
        },
        Strategy::Syntactic,
    ] {
        db.set_strategy(strategy);
        let started = std::time::Instant::now();
        let (_, physical) = db.plan_sql(sql).expect("plan");
        let plan_us = started.elapsed().as_micros();
        db.pool().evict_all().expect("evict");
        let before = db.disk().snapshot();
        let rows = db.run_plan(&physical).expect("run");
        let io = db.disk().snapshot().since(&before).total();
        println!(
            "{:<14} {:>12.1} {:>10} {:>8}  {:<28} {}",
            strategy.name(),
            model.total(physical.est_cost),
            plan_us,
            io,
            physical.join_methods().join(","),
            physical.scan_order().join(" -> "),
        );
        assert!(!rows.is_empty());
    }

    db.set_strategy(Strategy::SystemR);
    println!("\nfull EXPLAIN of the System R plan:\n");
    println!("{}", db.explain(sql).unwrap());
}
