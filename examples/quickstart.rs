//! Quickstart: create tables, load rows, build indexes, ANALYZE, query, and
//! read EXPLAIN output.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use evopt::{Database, Value};

fn main() {
    let db = Database::with_defaults();

    // --- DDL -------------------------------------------------------------
    db.execute("CREATE TABLE dept (id INT NOT NULL, name STRING NOT NULL)")
        .expect("create dept");
    db.execute(
        "CREATE TABLE emp (id INT NOT NULL, dept_id INT NOT NULL, \
         name STRING NOT NULL, salary INT NOT NULL)",
    )
    .expect("create emp");

    // --- load ------------------------------------------------------------
    db.execute("INSERT INTO dept VALUES (1, 'engineering'), (2, 'sales'), (3, 'hr')")
        .expect("insert depts");
    let emps: Vec<evopt::Tuple> = (0..5000)
        .map(|i| {
            evopt::Tuple::new(vec![
                Value::Int(i),
                Value::Int(i % 3 + 1),
                Value::Str(format!("employee-{i:04}")),
                Value::Int(40_000 + (i * 37) % 80_000),
            ])
        })
        .collect();
    db.insert_tuples("emp", &emps).expect("bulk load");

    // --- physical design + statistics -------------------------------------
    db.execute("CREATE UNIQUE INDEX emp_id ON emp (id)")
        .expect("index");
    db.execute("CREATE INDEX emp_dept ON emp (dept_id)")
        .expect("index");
    db.execute("ANALYZE").expect("analyze");

    // --- point query: the optimizer picks the index -----------------------
    let rows = db
        .query("SELECT name, salary FROM emp WHERE id = 4321")
        .expect("point query");
    println!("employee 4321: {}", rows[0]);

    println!("\nEXPLAIN of the point query:");
    println!(
        "{}",
        db.explain("SELECT name, salary FROM emp WHERE id = 4321")
            .unwrap()
    );

    // --- join + aggregate --------------------------------------------------
    let rows = db
        .query(
            "SELECT d.name, COUNT(*) AS heads, AVG(e.salary) AS avg_salary \
             FROM emp e JOIN dept d ON e.dept_id = d.id \
             GROUP BY d.name ORDER BY avg_salary DESC",
        )
        .expect("join query");
    println!("\nheadcount and average salary by department:");
    for r in &rows {
        println!("  {r}");
    }

    // --- measured physical I/O ---------------------------------------------
    // Start from a cold cache so the reads are physical.
    db.pool().evict_all().expect("evict");
    let (result, io) = db
        .measured("SELECT COUNT(*) FROM emp WHERE salary > 100000")
        .expect("measured");
    println!(
        "\nhigh earners: {} (query did {} physical page reads)",
        result.rows()[0].value(0).unwrap(),
        io.reads
    );
}
