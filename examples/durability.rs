//! Durability walkthrough: write-ahead logging, a simulated crash, and
//! recovery — including a crash injected mid-workload by the same
//! `CrashingBackend` the torture suite uses.
//!
//! ```text
//! cargo run --release --example durability
//! ```

use std::sync::Arc;

use evopt::{CrashingBackend, Database, DatabaseConfig, DiskBackend, DiskManager, Durability};

fn durable_cfg() -> DatabaseConfig {
    DatabaseConfig {
        durability: Durability::Wal,
        ..Default::default()
    }
}

fn count(db: &Database, sql: &str) -> String {
    match db.query(sql) {
        Ok(rows) => format!("{rows:?}"),
        Err(e) => format!("error: {e}"),
    }
}

fn main() {
    // --- part 1: clean crash/recover cycle -------------------------------
    // The disk outlives the Database; dropping the Database is the "crash"
    // (buffer pool, catalog, WAL tail state — all gone).
    let disk = Arc::new(DiskManager::new());
    let db = Database::create_on(Arc::clone(&disk) as Arc<dyn DiskBackend>, durable_cfg())
        .expect("bootstrap");
    db.execute("CREATE TABLE accounts (id INT NOT NULL, balance INT NOT NULL)")
        .expect("create");
    db.execute("INSERT INTO accounts VALUES (1, 100), (2, 250), (3, 75)")
        .expect("insert");
    db.execute("CREATE INDEX accounts_id ON accounts (id)")
        .expect("index");
    db.execute("UPDATE accounts SET balance = balance + 10 WHERE id = 2")
        .expect("update");
    db.checkpoint().expect("checkpoint"); // truncates the log
    db.execute("INSERT INTO accounts VALUES (4, 500)")
        .expect("post-checkpoint insert");
    println!(
        "before crash: {}",
        count(&db, "SELECT COUNT(*) FROM accounts")
    );
    drop(db); // crash

    let (db, info) = Database::recover(Arc::clone(&disk) as Arc<dyn DiskBackend>, durable_cfg())
        .expect("recover");
    println!(
        "after recovery: {} (scanned {} records, replayed {}, torn tail: {})",
        count(&db, "SELECT COUNT(*) FROM accounts"),
        info.scanned_records,
        info.replayed_records,
        info.torn_tail
    );
    println!(
        "index survives: {}",
        count(&db, "SELECT balance FROM accounts WHERE id = 2")
    );
    drop(db);

    // --- part 2: crash *mid-workload* ------------------------------------
    // CrashingBackend fails every I/O after a budget of mutating ops, so
    // the crash lands wherever the budget says — possibly mid-commit,
    // leaving a torn record for recovery to truncate.
    let inner = Arc::new(DiskManager::new());
    let crashing = Arc::new(CrashingBackend::new(
        Arc::clone(&inner) as Arc<dyn DiskBackend>,
        60,
    ));
    let db = Database::create_on(Arc::clone(&crashing) as Arc<dyn DiskBackend>, durable_cfg())
        .expect("bootstrap");
    db.execute("CREATE TABLE log (seq INT NOT NULL)")
        .expect("create");
    let mut acknowledged = 0;
    for seq in 0..1000 {
        match db.execute(&format!("INSERT INTO log VALUES ({seq})")) {
            Ok(_) => acknowledged += 1,
            Err(e) => {
                println!("crash at statement {seq}: {e}");
                break;
            }
        }
    }
    drop(db);

    // Recover over the *inner* disk (the crashed wrapper stays dead).
    let (db, info) = Database::recover(inner as Arc<dyn DiskBackend>, durable_cfg())
        .expect("recover after mid-workload crash");
    println!(
        "acknowledged {acknowledged} inserts; recovered {} (torn tail: {})",
        count(&db, "SELECT COUNT(*) FROM log"),
        info.torn_tail
    );

    // The recovered database keeps working — durably.
    db.execute("INSERT INTO log VALUES (9999)")
        .expect("post-recovery insert");
    let snap = db.metrics_snapshot();
    println!(
        "wal counters: {} records, {} bytes, {} checkpoints, {} recoveries",
        snap.wal_records_written, snap.wal_bytes, snap.checkpoints, snap.recoveries
    );
}
