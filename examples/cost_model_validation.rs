//! Cost-model validation in miniature (the T5 experiment as an example):
//! plan a set of queries with several strategies, then compare each plan's
//! *estimated* cost against the *measured* physical page I/O of actually
//! running it on the simulated disk.
//!
//! ```text
//! cargo run --release --example cost_model_validation
//! ```

use evopt::workload::{load_wisconsin, JoinWorkload, Topology};
use evopt::{Database, DatabaseConfig, Strategy};

fn main() {
    let db = Database::new(DatabaseConfig {
        buffer_pages: 48,
        ..Default::default()
    });
    load_wisconsin(&db, "wisc", 10_000, 1).expect("wisconsin");
    db.execute("CREATE INDEX wisc_u1 ON wisc (unique1)")
        .unwrap();
    let chain = JoinWorkload::new(Topology::Chain, 3, 300, 1);
    chain.load(&db, true).expect("chain");
    db.execute("ANALYZE").unwrap();

    let queries = vec![
        (
            "full scan".to_string(),
            "SELECT COUNT(*) FROM wisc".to_string(),
        ),
        (
            "point lookup".to_string(),
            "SELECT * FROM wisc WHERE unique1 = 7777".to_string(),
        ),
        (
            "10% range".to_string(),
            "SELECT COUNT(*) FROM wisc WHERE unique2 < 1000".to_string(),
        ),
        ("3-way chain join".to_string(), chain.count_query()),
    ];

    let model = db.optimizer_config().cost_model;
    println!(
        "{:<18} {:<10} {:>14} {:>12}",
        "query", "strategy", "estimated cost", "measured io"
    );
    let mut pairs: Vec<(f64, f64)> = Vec::new();
    for (label, sql) in &queries {
        for strategy in [Strategy::SystemR, Strategy::Syntactic] {
            db.set_strategy(strategy);
            let (_, plan) = db.plan_sql(sql).expect("plan");
            let est = model.total(plan.est_cost);
            db.pool().evict_all().expect("evict");
            let before = db.disk().snapshot();
            db.run_plan(&plan).expect("run");
            let io = db.disk().snapshot().since(&before).total();
            println!("{label:<18} {:<10} {est:>14.1} {io:>12}", strategy.name());
            pairs.push((est, io as f64));
        }
    }

    // Rank correlation by hand (tiny n, no ties expected).
    let rho = spearman(&pairs);
    println!("\nSpearman rank correlation (est cost vs measured io): {rho:.3}");
    println!("The model's job is *ordering* plans correctly, not absolute accuracy.");

    // Second half of the feedback loop: cardinality estimation error. Run
    // each query instrumented and report the worst per-operator q-error —
    // how far the selectivity model drifted from the rows operators
    // actually produced.
    db.set_strategy(Strategy::SystemR);
    println!(
        "\n{:<18} {:>10} {:>12} {:>12}",
        "query", "operators", "root q-err", "max q-err"
    );
    for (label, sql) in &queries {
        let (_, metrics) = db.query_with_metrics(sql).expect("instrumented run");
        println!(
            "{label:<18} {:>10} {:>12.2} {:>12.2}",
            metrics.operators.len(),
            metrics.root().q_error(),
            metrics.max_q_error()
        );
    }
    println!("\nq-error = max(est/actual, actual/est) per operator; 1.00 is exact.");
}

fn spearman(pairs: &[(f64, f64)]) -> f64 {
    let rank = |key: fn(&(f64, f64)) -> f64| -> Vec<f64> {
        let mut idx: Vec<usize> = (0..pairs.len()).collect();
        idx.sort_by(|&i, &j| key(&pairs[i]).total_cmp(&key(&pairs[j])));
        let mut r = vec![0.0; pairs.len()];
        for (pos, &i) in idx.iter().enumerate() {
            r[i] = pos as f64;
        }
        r
    };
    let (ra, rb) = (rank(|p| p.0), rank(|p| p.1));
    let n = pairs.len() as f64;
    let d2: f64 = ra.iter().zip(&rb).map(|(a, b)| (a - b) * (a - b)).sum();
    1.0 - 6.0 * d2 / (n * (n * n - 1.0))
}
