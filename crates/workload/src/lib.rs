//! # evopt-workload
//!
//! Synthetic data and query generators for the experiment suite:
//!
//! * [`dist`] — seeded value distributions, including an exact-CDF Zipf
//!   sampler (implemented here so no extra crate dependency is needed).
//! * [`wisconsin`] — Wisconsin-benchmark-style relations: uniformly random
//!   unique keys plus percentage-selectivity columns, the classic substrate
//!   for access-path experiments (T1, T2).
//! * [`tpch_lite`] — a scaled-down TPC-H-like star schema (region → nation
//!   → customer → orders → lineitem) for realistic multi-join queries.
//! * [`topology`] — parametric join graphs (chain / star / cycle / clique)
//!   with geometric size progressions, for enumeration experiments
//!   (F1, F2).
//!
//! Everything is deterministic given a seed.

// Library code must not panic on fault paths: unwrap/expect are banned
// outside tests (see clippy.toml: allow-unwrap-in-tests).
#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod dist;
pub mod topology;
pub mod tpch_lite;
pub mod wisconsin;

pub use dist::ZipfSampler;
pub use topology::{JoinWorkload, Topology};
pub use tpch_lite::load_tpch_lite;
pub use wisconsin::load_wisconsin;
