//! A scaled-down TPC-H-like schema.
//!
//! Five relations in the classic snowflake:
//!
//! ```text
//! region(1 row per 5 nations) ← nation ← customer ← orders ← lineitem
//! ```
//!
//! Scale factor 1.0 ≈ 150 customers, 1.5k orders, 6k lineitems — enough to
//! make join-order choices matter at simulator scale while loading in
//! milliseconds. All values are seeded-deterministic.

use evopt_common::{Result, Tuple, Value};
use evopt_engine::Database;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Row counts at a given scale factor.
#[derive(Debug, Clone, Copy)]
pub struct TpchCounts {
    pub regions: usize,
    pub nations: usize,
    pub customers: usize,
    pub orders: usize,
    pub lineitems: usize,
}

impl TpchCounts {
    pub fn at_scale(sf: f64) -> TpchCounts {
        let s = |base: f64| ((base * sf).round() as usize).max(1);
        TpchCounts {
            regions: 5,
            nations: 25,
            customers: s(150.0),
            orders: s(1500.0),
            lineitems: s(6000.0),
        }
    }
}

/// Create, load, index, and ANALYZE the TPC-H-lite schema. Returns the row
/// counts used.
pub fn load_tpch_lite(db: &Database, sf: f64, seed: u64) -> Result<TpchCounts> {
    let c = TpchCounts::at_scale(sf);
    let mut rng = StdRng::seed_from_u64(seed);

    db.execute("CREATE TABLE region (r_key INT NOT NULL, r_name STRING NOT NULL)")?;
    let regions: Vec<Tuple> = (0..c.regions)
        .map(|i| {
            Tuple::new(vec![
                Value::Int(i as i64),
                Value::Str(format!("region-{i}")),
            ])
        })
        .collect();
    db.insert_tuples("region", &regions)?;

    db.execute(
        "CREATE TABLE nation (n_key INT NOT NULL, n_region INT NOT NULL, \
         n_name STRING NOT NULL)",
    )?;
    let nations: Vec<Tuple> = (0..c.nations)
        .map(|i| {
            Tuple::new(vec![
                Value::Int(i as i64),
                Value::Int((i % c.regions) as i64),
                Value::Str(format!("nation-{i}")),
            ])
        })
        .collect();
    db.insert_tuples("nation", &nations)?;

    db.execute(
        "CREATE TABLE customer (c_key INT NOT NULL, c_nation INT NOT NULL, \
         c_name STRING NOT NULL, c_balance INT NOT NULL)",
    )?;
    let customers: Vec<Tuple> = (0..c.customers)
        .map(|i| {
            Tuple::new(vec![
                Value::Int(i as i64),
                Value::Int(rng.random_range(0..c.nations as i64)),
                Value::Str(format!("customer-{i:06}")),
                Value::Int(rng.random_range(-999..10_000)),
            ])
        })
        .collect();
    db.insert_tuples("customer", &customers)?;

    db.execute(
        "CREATE TABLE orders (o_key INT NOT NULL, o_customer INT NOT NULL, \
         o_status STRING NOT NULL, o_total INT NOT NULL)",
    )?;
    let statuses = ["open", "shipped", "done"];
    let orders: Vec<Tuple> = (0..c.orders)
        .map(|i| {
            Tuple::new(vec![
                Value::Int(i as i64),
                Value::Int(rng.random_range(0..c.customers as i64)),
                Value::Str(statuses[rng.random_range(0..3usize)].to_string()),
                Value::Int(rng.random_range(10..100_000)),
            ])
        })
        .collect();
    db.insert_tuples("orders", &orders)?;

    db.execute(
        "CREATE TABLE lineitem (l_order INT NOT NULL, l_line INT NOT NULL, \
         l_quantity INT NOT NULL, l_price INT NOT NULL, l_flag STRING NOT NULL)",
    )?;
    let lineitems: Vec<Tuple> = (0..c.lineitems)
        .map(|i| {
            Tuple::new(vec![
                Value::Int(rng.random_range(0..c.orders as i64)),
                Value::Int((i % 7) as i64),
                Value::Int(rng.random_range(1..50)),
                Value::Int(rng.random_range(100..10_000)),
                Value::Str(if rng.random_bool(0.3) { "R" } else { "N" }.to_string()),
            ])
        })
        .collect();
    db.insert_tuples("lineitem", &lineitems)?;

    // Primary-key indexes plus the hot foreign keys.
    db.execute("CREATE UNIQUE INDEX pk_region ON region (r_key)")?;
    db.execute("CREATE UNIQUE INDEX pk_nation ON nation (n_key)")?;
    db.execute("CREATE UNIQUE INDEX pk_customer ON customer (c_key)")?;
    db.execute("CREATE UNIQUE INDEX pk_orders ON orders (o_key)")?;
    db.execute("CREATE INDEX ix_orders_customer ON orders (o_customer)")?;
    db.execute("CREATE INDEX ix_lineitem_order ON lineitem (l_order)")?;
    db.execute("ANALYZE")?;
    Ok(c)
}

/// The canonical multi-join queries the experiments reuse.
pub mod queries {
    /// Revenue per nation: 5-way join through the whole snowflake.
    pub const REVENUE_PER_NATION: &str = "SELECT n.n_name, SUM(l.l_price) AS revenue \
         FROM lineitem l \
         JOIN orders o ON l.l_order = o.o_key \
         JOIN customer c ON o.o_customer = c.c_key \
         JOIN nation n ON c.c_nation = n.n_key \
         JOIN region r ON n.n_region = r.r_key \
         GROUP BY n.n_name ORDER BY revenue DESC";

    /// Orders of one customer with their lines (selective start).
    pub const CUSTOMER_ORDERS: &str = "SELECT o.o_key, l.l_price FROM orders o \
         JOIN lineitem l ON l.l_order = o.o_key \
         WHERE o.o_customer = 7";

    /// Mid-selectivity join with a filter on each side.
    pub const SHIPPED_BIG_ORDERS: &str = "SELECT o.o_key, c.c_name FROM orders o \
         JOIN customer c ON o.o_customer = c.c_key \
         WHERE o.o_status = 'shipped' AND c.c_balance > 5000";
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loads_and_answers_the_canonical_queries() {
        let db = Database::with_defaults();
        let c = load_tpch_lite(&db, 0.5, 11).unwrap();
        assert_eq!(c.regions, 5);
        let rows = db.query(queries::REVENUE_PER_NATION).unwrap();
        assert!(!rows.is_empty());
        assert!(rows.len() <= c.nations);
        // Revenue sorted descending.
        let revs: Vec<i64> = rows
            .iter()
            .map(|t| t.value(1).unwrap().as_i64().unwrap())
            .collect();
        for w in revs.windows(2) {
            assert!(w[0] >= w[1]);
        }
        let rows = db.query(queries::CUSTOMER_ORDERS).unwrap();
        // Deterministic per seed: just sanity-shape it.
        for t in &rows {
            assert_eq!(t.len(), 2);
        }
        let _ = db.query(queries::SHIPPED_BIG_ORDERS).unwrap();
    }

    #[test]
    fn scale_controls_sizes() {
        let a = TpchCounts::at_scale(1.0);
        let b = TpchCounts::at_scale(2.0);
        assert_eq!(b.orders, 2 * a.orders);
        assert_eq!(b.lineitems, 2 * a.lineitems);
        assert_eq!(a.regions, b.regions, "dimensions stay fixed");
    }

    #[test]
    fn total_revenue_consistent_across_join_orders() {
        let db = Database::with_defaults();
        load_tpch_lite(&db, 0.3, 5).unwrap();
        let total = |sql: &str| -> i64 {
            db.query(sql).unwrap()[0]
                .value(0)
                .unwrap()
                .as_i64()
                .unwrap()
        };
        let direct = total("SELECT SUM(l_price) FROM lineitem");
        // Every lineitem joins exactly one order chain, so the 2-way join
        // preserves the sum.
        let joined =
            total("SELECT SUM(l.l_price) FROM lineitem l JOIN orders o ON l.l_order = o.o_key");
        assert_eq!(direct, joined);
    }
}
