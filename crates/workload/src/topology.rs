//! Parametric join-graph workloads for the enumeration experiments.
//!
//! A [`JoinWorkload`] creates `n` relations `r0..r{n-1}` and a query whose
//! predicate graph has the requested [`Topology`]:
//!
//! * **Chain**: `r0 — r1 — r2 — ...` (each joins the next),
//! * **Star**: `r0` joins every other relation,
//! * **Cycle**: a chain plus an edge closing `r{n-1} — r0`,
//! * **Clique**: every pair joined.
//!
//! Relation `i` has `base_rows × growth^i` rows (rounded), so join order
//! genuinely matters: a bad order multiplies the big tail tables early.
//! Every relation has `pk` (unique 0..rows) and `fk` columns; edges equate
//! one side's `fk` with the other's `pk` domain (both are dense integers,
//! giving predictable selectivities).

use evopt_common::{Result, Tuple, Value};
use evopt_engine::Database;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Shape of the predicate graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topology {
    Chain,
    Star,
    Cycle,
    Clique,
}

impl Topology {
    pub fn name(&self) -> &'static str {
        match self {
            Topology::Chain => "chain",
            Topology::Star => "star",
            Topology::Cycle => "cycle",
            Topology::Clique => "clique",
        }
    }

    /// Edge list over relation indices.
    pub fn edges(&self, n: usize) -> Vec<(usize, usize)> {
        match self {
            Topology::Chain => (0..n.saturating_sub(1)).map(|i| (i, i + 1)).collect(),
            Topology::Star => (1..n).map(|i| (0, i)).collect(),
            Topology::Cycle => {
                let mut e: Vec<_> = (0..n.saturating_sub(1)).map(|i| (i, i + 1)).collect();
                if n > 2 {
                    e.push((n - 1, 0));
                }
                e
            }
            Topology::Clique => {
                let mut e = Vec::new();
                for i in 0..n {
                    for j in (i + 1)..n {
                        e.push((i, j));
                    }
                }
                e
            }
        }
    }
}

/// A generated workload: tables plus the join query over them.
#[derive(Debug, Clone)]
pub struct JoinWorkload {
    pub topology: Topology,
    pub n: usize,
    pub base_rows: usize,
    pub growth: f64,
    pub seed: u64,
    /// Table name prefix, so multiple workloads can coexist in one DB.
    pub prefix: String,
}

impl JoinWorkload {
    pub fn new(topology: Topology, n: usize, base_rows: usize, seed: u64) -> JoinWorkload {
        JoinWorkload {
            topology,
            n,
            base_rows,
            growth: 2.0,
            seed,
            prefix: format!("{}{n}", topology.name()),
        }
    }

    pub fn table(&self, i: usize) -> String {
        format!("{}_r{i}", self.prefix)
    }

    /// Rows in relation `i`.
    pub fn rows(&self, i: usize) -> usize {
        ((self.base_rows as f64) * self.growth.powi(i as i32)).round() as usize
    }

    /// Create tables, load data, ANALYZE. Optionally index every `pk`.
    pub fn load(&self, db: &Database, with_indexes: bool) -> Result<()> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        for i in 0..self.n {
            let t = self.table(i);
            db.execute(&format!(
                "CREATE TABLE {t} (pk INT NOT NULL, fk INT NOT NULL, payload INT NOT NULL)"
            ))?;
            let rows = self.rows(i);
            // fk domain: the pk domain of the *next* relation (wrapped), so
            // chain/cycle edges are foreign-key-like; for star/clique the
            // shared dense domains still give sane selectivities.
            let fk_domain = self.rows((i + 1) % self.n).max(1) as i64;
            let tuples: Vec<Tuple> = (0..rows)
                .map(|k| {
                    Tuple::new(vec![
                        Value::Int(k as i64),
                        Value::Int(rng.random_range(0..fk_domain)),
                        Value::Int(rng.random_range(0..1000)),
                    ])
                })
                .collect();
            db.insert_tuples(&t, &tuples)?;
            if with_indexes {
                db.execute(&format!("CREATE UNIQUE INDEX {t}_pk ON {t} (pk)"))?;
            }
        }
        db.execute("ANALYZE")?;
        Ok(())
    }

    /// The join predicate between relations `a` and `b` (a < b by edge
    /// construction): `a.fk = b.pk` when b follows a (FK-style), else a
    /// dense-domain equality `a.pk = b.fk`.
    fn edge_predicate(&self, a: usize, b: usize) -> String {
        let (ta, tb) = (self.table(a), self.table(b));
        if (a + 1) % self.n == b || (b + 1) % self.n == a {
            format!("{ta}.fk = {tb}.pk")
        } else {
            format!("{ta}.pk = {tb}.fk")
        }
    }

    /// `SELECT COUNT(*)` joining all relations along the topology.
    pub fn count_query(&self) -> String {
        let order: Vec<usize> = (0..self.n).collect();
        self.count_query_with_from_order(&order)
    }

    /// Same query with an explicit FROM-clause order — the syntactic
    /// baseline evaluates left to right, so a bad order here is exactly the
    /// "unoptimized" disaster the T1 experiment measures.
    pub fn count_query_with_from_order(&self, order: &[usize]) -> String {
        assert_eq!(order.len(), self.n, "order must cover every relation");
        let tables: Vec<String> = order.iter().map(|&i| self.table(i)).collect();
        let preds: Vec<String> = self
            .topology
            .edges(self.n)
            .into_iter()
            .map(|(a, b)| self.edge_predicate(a, b))
            .collect();
        if preds.is_empty() {
            format!("SELECT COUNT(*) FROM {}", tables.join(", "))
        } else {
            format!(
                "SELECT COUNT(*) FROM {} WHERE {}",
                tables.join(", "),
                preds.join(" AND ")
            )
        }
    }

    /// Like [`Self::count_query`] but with a selective local filter on the
    /// biggest relation — the case where join order matters most.
    pub fn filtered_query(&self, payload_cutoff: i64) -> String {
        let big = self.table(self.n - 1);
        format!(
            "{} AND {big}.payload < {payload_cutoff}",
            self.count_query()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evopt_engine::Strategy;

    #[test]
    fn topologies_have_expected_edge_counts() {
        assert_eq!(Topology::Chain.edges(5).len(), 4);
        assert_eq!(Topology::Star.edges(5).len(), 4);
        assert_eq!(Topology::Cycle.edges(5).len(), 5);
        assert_eq!(Topology::Clique.edges(5).len(), 10);
        assert_eq!(
            Topology::Cycle.edges(2).len(),
            1,
            "no duplicate edge at n=2"
        );
    }

    #[test]
    fn sizes_grow_geometrically() {
        let w = JoinWorkload::new(Topology::Chain, 4, 100, 1);
        assert_eq!(w.rows(0), 100);
        assert_eq!(w.rows(1), 200);
        assert_eq!(w.rows(3), 800);
    }

    #[test]
    fn loads_and_plans_all_topologies() {
        for topo in [
            Topology::Chain,
            Topology::Star,
            Topology::Cycle,
            Topology::Clique,
        ] {
            let db = Database::with_defaults();
            let w = JoinWorkload::new(topo, 4, 50, 7);
            w.load(&db, true).unwrap();
            let (_, plan) = db.plan_sql(&w.count_query()).unwrap();
            assert_eq!(plan.scan_order().len(), 4, "{topo:?}");
        }
    }

    #[test]
    fn chain_counts_are_join_order_invariant() {
        let db = Database::with_defaults();
        let w = JoinWorkload::new(Topology::Chain, 3, 60, 3);
        w.load(&db, false).unwrap();
        let sql = w.count_query();
        let baseline = db.query(&sql).unwrap();
        for strategy in [Strategy::Syntactic, Strategy::Greedy, Strategy::BushyDp] {
            db.set_strategy(strategy);
            assert_eq!(db.query(&sql).unwrap(), baseline, "{}", strategy.name());
        }
    }

    #[test]
    fn queries_mention_every_table() {
        let w = JoinWorkload::new(Topology::Star, 5, 10, 1);
        let q = w.count_query();
        for i in 0..5 {
            assert!(q.contains(&w.table(i)), "{q}");
        }
        let f = w.filtered_query(100);
        assert!(f.contains("payload < 100"));
    }
}
