//! Wisconsin-benchmark-style relations.
//!
//! The classic synthetic table for studying access paths: every column's
//! selectivity is known by construction.
//!
//! | column | contents |
//! |---|---|
//! | `unique1` | random permutation of `0..n` (unique, unordered) |
//! | `unique2` | sequential `0..n` (unique, **ordered** — clustered-index ready) |
//! | `one_pct` | `unique1 % 100` (1% selectivity per value) |
//! | `ten_pct` | `unique1 % 10` |
//! | `twenty_pct` | `unique1 % 5` |
//! | `odd` | `unique1 % 2` |
//! | `stringu1` | `"val-"` + zero-padded `unique1` |

use evopt_common::{Result, Tuple, Value};
use evopt_engine::Database;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::dist::permutation;

/// Create and load a Wisconsin-style table named `name` with `rows` rows.
/// Caller decides about indexes and ANALYZE.
pub fn load_wisconsin(db: &Database, name: &str, rows: usize, seed: u64) -> Result<()> {
    db.execute(&format!(
        "CREATE TABLE {name} (\
         unique1 INT NOT NULL, \
         unique2 INT NOT NULL, \
         one_pct INT NOT NULL, \
         ten_pct INT NOT NULL, \
         twenty_pct INT NOT NULL, \
         odd INT NOT NULL, \
         stringu1 STRING NOT NULL)"
    ))?;
    let mut rng = StdRng::seed_from_u64(seed);
    let u1 = permutation(rows, &mut rng);
    let tuples: Vec<Tuple> = (0..rows)
        .map(|i| {
            let k = u1[i];
            Tuple::new(vec![
                Value::Int(k),
                Value::Int(i as i64),
                Value::Int(k % 100),
                Value::Int(k % 10),
                Value::Int(k % 5),
                Value::Int(k % 2),
                Value::Str(format!("val-{k:08}")),
            ])
        })
        .collect();
    db.insert_tuples(name, &tuples)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loads_with_expected_selectivities() {
        let db = Database::with_defaults();
        load_wisconsin(&db, "wisc", 2000, 42).unwrap();
        db.execute("ANALYZE").unwrap();
        let count = |sql: &str| -> i64 {
            db.query(sql).unwrap()[0]
                .value(0)
                .unwrap()
                .as_i64()
                .unwrap()
        };
        assert_eq!(count("SELECT COUNT(*) FROM wisc"), 2000);
        // one_pct = 7 keeps exactly 1% of rows.
        assert_eq!(count("SELECT COUNT(*) FROM wisc WHERE one_pct = 7"), 20);
        assert_eq!(count("SELECT COUNT(*) FROM wisc WHERE ten_pct = 3"), 200);
        assert_eq!(count("SELECT COUNT(*) FROM wisc WHERE odd = 1"), 1000);
        // unique1 is a permutation: every point query hits exactly once.
        assert_eq!(count("SELECT COUNT(*) FROM wisc WHERE unique1 = 1234"), 1);
    }

    #[test]
    fn unique2_is_ordered_for_clustered_index() {
        let db = Database::with_defaults();
        load_wisconsin(&db, "w", 500, 1).unwrap();
        db.execute("CREATE CLUSTERED INDEX w_u2 ON w (unique2)")
            .unwrap();
    }

    #[test]
    fn deterministic_per_seed() {
        let row = |seed: u64| {
            let db = Database::with_defaults();
            load_wisconsin(&db, "w", 100, seed).unwrap();
            db.query("SELECT unique1 FROM w WHERE unique2 = 0").unwrap()
        };
        assert_eq!(row(9), row(9));
    }
}
