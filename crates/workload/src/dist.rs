//! Seeded value distributions.

use rand::rngs::StdRng;
use rand::RngExt;

/// Zipf(θ) sampler over `{0, 1, ..., n-1}` via the exact inverse CDF.
///
/// Rank `k` (1-based) has probability `k^{-θ} / H_{n,θ}`. θ = 0 is uniform;
/// θ around 1 is the classic heavy skew. Construction is O(n); sampling is
/// O(log n) by binary search — plenty for the table sizes we generate.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Panics if `n == 0` or `theta < 0`.
    pub fn new(n: usize, theta: f64) -> ZipfSampler {
        assert!(n > 0, "Zipf needs a non-empty domain");
        assert!(theta >= 0.0, "Zipf exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += (k as f64).powf(-theta);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        ZipfSampler { cdf }
    }

    /// Draw a rank in `0..n` (0 is the most frequent).
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.random();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Domain size.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// Probability of rank `k`.
    pub fn pmf(&self, k: usize) -> f64 {
        if k == 0 {
            self.cdf[0]
        } else {
            self.cdf[k] - self.cdf[k - 1]
        }
    }
}

/// A deterministic pseudo-random permutation of `0..n` (Fisher–Yates with a
/// seeded RNG) — used for Wisconsin `unique1` columns.
pub fn permutation(n: usize, rng: &mut StdRng) -> Vec<i64> {
    let mut v: Vec<i64> = (0..n as i64).collect();
    for i in (1..n).rev() {
        let j = rng.random_range(0..=i);
        v.swap(i, j);
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn zipf_theta_zero_is_uniform() {
        let z = ZipfSampler::new(10, 0.0);
        for k in 0..10 {
            assert!((z.pmf(k) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn zipf_skew_orders_frequencies() {
        let z = ZipfSampler::new(100, 1.0);
        assert!(z.pmf(0) > z.pmf(1));
        assert!(z.pmf(1) > z.pmf(10));
        assert!(z.pmf(10) > z.pmf(99));
        // Rank-0 mass under θ=1, n=100 is 1/H_100 ≈ 0.192.
        assert!((z.pmf(0) - 0.1928).abs() < 0.01, "{}", z.pmf(0));
    }

    #[test]
    fn zipf_samples_match_pmf_roughly() {
        let z = ZipfSampler::new(50, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = vec![0usize; 50];
        let n = 100_000;
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        let freq0 = counts[0] as f64 / n as f64;
        assert!((freq0 - z.pmf(0)).abs() < 0.01, "freq0 {freq0}");
        assert!(counts[0] > counts[10]);
    }

    #[test]
    fn zipf_deterministic_per_seed() {
        let z = ZipfSampler::new(20, 0.8);
        let draw = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..10).map(|_| z.sample(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draw(5), draw(5));
        assert_ne!(draw(5), draw(6));
    }

    #[test]
    fn permutation_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let p = permutation(1000, &mut rng);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..1000).collect::<Vec<_>>());
        assert_ne!(p, sorted, "seeded shuffle actually shuffles");
    }
}
