//! Clean-fixture rank table: every declared histogram family has a timed
//! site, every const has a row. The clean tree must produce ZERO findings.
//!
//! | rank | lock | contention histogram |
//! |------|------|----------------------|
//! | 10 `COMMIT` | commit lock | `evopt_commit_lock_wait_us` |
//! | 40 `POOL`   | pool frame table | — |

pub const COMMIT: u16 = 10;
pub const POOL: u16 = 40;
