//! Clean engine fixture: an escaping commit guard with its declared
//! contention histogram, and an ascending acquisition under it.

pub struct Db {
    commit_lock: Mutex<()>,
    commit_lock_wait_us: Hist,
}

impl Db {
    /// Ranked, timed commit-lock acquisition (covers the
    /// `evopt_commit_lock_wait_us` family the table declares).
    pub fn lock_commit(&self) -> (lockorder::RankGuard, MutexGuard<'_, ()>) {
        let rank = lockorder::acquire(lockorder::COMMIT);
        let guard = self.commit_lock_wait_us.time(|| self.commit_lock.lock());
        (rank, guard)
    }

    /// Holding COMMIT (10) and then acquiring POOL (40) ascends the
    /// hierarchy: no finding.
    pub fn commit(&self) {
        let (_rank, _guard) = self.lock_commit();
        let _p = lockorder::acquire(lockorder::POOL);
    }
}
