//! Clean storage fixture: ranked locking, properly scoped guards, a leaf
//! latch legitimately held across disk I/O (the flush-path shape the
//! narrow leaf rule deliberately permits).

pub struct Pool {
    frames: Mutex<Vec<u32>>,
    latch: RwLock<Page>, // lockorder: leaf
    disk: Disk,
}

impl Pool {
    /// The frame-table lock is released (block scope) before the I/O; the
    /// leaf latch may be held across it.
    pub fn flush(&self) {
        {
            let _r = lockorder::acquire(lockorder::POOL);
            let _f = self.frames.lock();
        }
        let page = self.latch.read();
        self.disk.write_page(0, &page);
    }

    /// Early release via `drop` is also respected.
    pub fn stats(&self) -> usize {
        let r = lockorder::acquire(lockorder::POOL);
        let n = self.frames.lock().len();
        drop(r);
        self.disk.sync();
        n
    }
}
