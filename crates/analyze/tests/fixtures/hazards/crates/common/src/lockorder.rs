//! Seeded-hazard fixture rank table (a shrunken copy of the real one).
//!
//! | rank | lock | contention histogram |
//! |------|------|----------------------|
//! | 10 `COMMIT`    | commit lock | — |
//! | 30 `WAL_STATE` | wal append state | `evopt_wal_sync_wait_us` |
//! | 40 `POOL`      | pool frame table | `evopt_pool_miss_io_us` |
//! | 60 `OBS`       | observability | — |
//!
//! Hazard H13 lives here: `evopt_wal_sync_wait_us` is declared above but
//! no function in this tree both records it and acquires `WAL_STATE`
//! (expected finding: A4). `evopt_pool_miss_io_us` IS covered (by
//! `Pool::fetch`), proving A4 stays quiet for instrumented families.

pub const COMMIT: u16 = 10;
pub const WAL_STATE: u16 = 30;
pub const POOL: u16 = 40;
pub const OBS: u16 = 60;

/// Hazard H7: a constant with no row in the doc table (expected finding:
/// A1 table drift).
pub const EXTRA: u16 = 55;
