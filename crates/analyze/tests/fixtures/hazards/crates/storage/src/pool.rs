//! Seeded storage-layer hazards. Each `hN_*` function plants exactly one
//! violation; `tests/mutation.rs` asserts every one is killed by its
//! owning rule.

pub struct Pool {
    inner: Mutex<Inner>,
    latch: RwLock<Page>, // lockorder: leaf
    raw: Mutex<u32>,
    rawrw: RwLock<u32>,
    disk: Disk,
    miss_io_us: Hist,
}

impl Pool {
    /// Well-behaved fetch: ranked, and times the `evopt_pool_miss_io_us`
    /// family the table declares — keeps rule A4 quiet for POOL.
    pub fn fetch(&self) {
        let _r = lockorder::acquire(lockorder::POOL);
        let _g = self.inner.lock();
        self.miss_io_us.observe(1);
    }

    /// Hazard H1: direct inversion — POOL (40) then COMMIT (10).
    pub fn h1_direct_inversion(&self) {
        let _a = lockorder::acquire(lockorder::POOL);
        let _b = lockorder::acquire(lockorder::COMMIT);
    }

    /// Hazard H2: same-rank reacquisition (self-deadlock precondition).
    pub fn h2_same_rank(&self) {
        let _a = lockorder::acquire(lockorder::POOL);
        let _b = lockorder::acquire(lockorder::POOL);
    }

    /// Hazard H8: raw mutex acquisition with no ranked acquire in scope.
    pub fn h8_raw_mutex(&self) {
        let _g = self.raw.lock();
    }

    /// Hazard H9: raw rwlock write with no ranked acquire in scope.
    pub fn h9_raw_rwlock(&self) {
        let _g = self.rawrw.write();
    }

    /// Hazard H10: ranked acquisition inside a leaf lock's hold region —
    /// a false `// lockorder: leaf` claim.
    pub fn h10_rank_under_leaf(&self) {
        let _page = self.latch.write();
        let _r = lockorder::acquire(lockorder::OBS);
    }

    /// Hazard H11: direct disk I/O while holding POOL.
    pub fn h11_io_under_pool(&self) {
        let _r = lockorder::acquire(lockorder::POOL);
        self.disk.write_page(0, &[0u8; 8]);
    }

    /// H12 helper: the I/O lives one call away.
    fn writeback(&self) {
        self.disk.read_page(0);
    }

    /// Hazard H12: disk I/O reachable through a callee while holding POOL.
    pub fn h12_io_transitive(&self) {
        let _r = lockorder::acquire(lockorder::POOL);
        self.writeback();
    }
}
