//! Seeded engine-layer hazards: call-graph (transitive) inversions, an
//! escaping-guard inversion, and an undeclared rank.

pub struct Db {
    commit_lock: Mutex<()>,
}

impl Db {
    /// Escaping guard, mirroring `Database::lock_commit`: the COMMIT rank
    /// lives on the *caller's* stack until end of scope.
    pub fn lock_commit(&self) -> (lockorder::RankGuard, MutexGuard<'_, ()>) {
        let rank = lockorder::acquire(lockorder::COMMIT);
        (rank, self.commit_lock.lock())
    }

    /// Hazard H5: escaping-guard inversion — takes POOL (40), then calls
    /// `lock_commit`, which acquires COMMIT (10).
    pub fn h5_escaping_inversion(&self) {
        let _p = lockorder::acquire(lockorder::POOL);
        let _c = self.lock_commit();
    }

    /// Hazard H3: transitive inversion, depth 2 — holds OBS (60) while
    /// `Pool::fetch` acquires POOL (40).
    pub fn h3_transitive_two(&self, pool: &Pool) {
        let _o = lockorder::acquire(lockorder::OBS);
        pool.fetch();
    }

    fn step_two(&self) {
        let _c = lockorder::acquire(lockorder::COMMIT);
    }

    fn step_one(&self) {
        self.step_two();
    }

    /// Hazard H4: transitive inversion, depth 3 — holds WAL_STATE (30)
    /// while `step_one` → `step_two` acquires COMMIT (10).
    pub fn h4_transitive_three(&self) {
        let _w = lockorder::acquire(lockorder::WAL_STATE);
        self.step_one();
    }

    /// Hazard H6: acquiring a rank name the table does not declare.
    pub fn h6_unknown_rank(&self) {
        let _m = lockorder::acquire(lockorder::MYSTERY);
    }
}
