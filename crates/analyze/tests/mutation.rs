//! Mutation harness for the static concurrency analyzer.
//!
//! * `hazards_all_killed` — every seeded hazard in
//!   `tests/fixtures/hazards/` is reported by its owning rule (100% kill
//!   rate), and nothing else is (no false positives on the fixture).
//! * `clean_tree_zero_findings` — the well-behaved fixture produces no
//!   findings at all.
//! * `real_tree_no_new_findings` — the actual workspace analyzed against
//!   the committed baseline has zero NEW findings. This is the same gate
//!   CI runs via `cargo run -p evopt-analyze`, wired into `cargo test` so
//!   tier-1 catches regressions too.
//! * `rank_table_roundtrip` — the rank table parsed from
//!   `lockorder.rs` *source* matches `lockorder::all_ranks()`, the list
//!   the debug-build runtime enforcement uses, and the doc table matches
//!   the constants. The analyzer can never silently drift from the
//!   enforced hierarchy.

use std::path::{Path, PathBuf};

fn fixture_root(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn hazards_all_killed() {
    let out = evopt_analyze::run(&fixture_root("hazards"), Vec::new()).unwrap();
    let fingerprints: Vec<&str> = out
        .findings
        .iter()
        .map(|f| f.fingerprint.as_str())
        .collect();

    let expected: &[(&str, &str)] = &[
        (
            "H1 direct inversion",
            "A1|storage::Pool::h1_direct_inversion|COMMIT<=POOL",
        ),
        (
            "H2 same-rank reacquisition",
            "A1|storage::Pool::h2_same_rank|POOL<=POOL",
        ),
        (
            "H3 transitive depth-2",
            "A1|engine::Db::h3_transitive_two|POOL<=OBS",
        ),
        (
            "H4 transitive depth-3",
            "A1|engine::Db::h4_transitive_three|COMMIT<=WAL_STATE",
        ),
        (
            "H5 escaping-guard inversion",
            "A1|engine::Db::h5_escaping_inversion|COMMIT<=POOL",
        ),
        (
            "H6 undeclared rank",
            "A1|engine::Db::h6_unknown_rank|unknown:MYSTERY",
        ),
        ("H7 const without table row", "A1|-|drift-const:EXTRA"),
        ("H8 raw mutex", "A2|storage::Pool::h8_raw_mutex|raw.lock"),
        (
            "H9 raw rwlock",
            "A2|storage::Pool::h9_raw_rwlock|rawrw.write",
        ),
        (
            "H10 rank under leaf",
            "A2|storage::Pool::h10_rank_under_leaf|leaf:latch+OBS",
        ),
        (
            "H11 direct I/O under POOL",
            "A3|storage::Pool::h11_io_under_pool|POOL|write_page",
        ),
        (
            "H12 transitive I/O under POOL",
            "A3|storage::Pool::h12_io_transitive|POOL|read_page",
        ),
        (
            "H13 untimed histogram family",
            "A4|-|WAL_STATE|evopt_wal_sync_wait_us",
        ),
    ];

    for (hazard, fp) in expected {
        assert!(
            fingerprints.contains(fp),
            "{hazard} was NOT killed (missing fingerprint {fp}); reported: {fingerprints:#?}"
        );
    }
    assert_eq!(
        out.findings.len(),
        expected.len(),
        "unexpected extra findings on the hazard fixture: {fingerprints:#?}"
    );
    // With an empty baseline, every finding must be flagged as new.
    assert_eq!(out.new.len(), expected.len());
}

#[test]
fn clean_tree_zero_findings() {
    let out = evopt_analyze::run(&fixture_root("clean"), Vec::new()).unwrap();
    let fingerprints: Vec<&str> = out
        .findings
        .iter()
        .map(|f| f.fingerprint.as_str())
        .collect();
    assert!(
        out.findings.is_empty(),
        "clean fixture should produce no findings, got: {fingerprints:#?}"
    );
}

#[test]
fn real_tree_no_new_findings() {
    let root = workspace_root();
    let baseline_src = std::fs::read_to_string(root.join("crates/analyze/baseline.txt"))
        .expect("committed baseline must exist");
    let baseline = evopt_analyze::parse_baseline(&baseline_src);
    assert!(
        !baseline.is_empty(),
        "baseline should carry the by-design findings"
    );

    let out = evopt_analyze::run(&root, baseline).unwrap();
    let new: Vec<&str> = out.new.iter().map(|f| f.fingerprint.as_str()).collect();
    assert!(
        out.new.is_empty(),
        "NEW concurrency findings (fix them, or baseline only if by-design): {new:#?}\n{}",
        evopt_analyze::report::text(&out.findings, &out.baseline)
    );
    let stale: Vec<&str> = out.stale.iter().map(String::as_str).collect();
    assert!(
        out.stale.is_empty(),
        "stale baseline entries — prune them from crates/analyze/baseline.txt: {stale:#?}"
    );
    // Sanity: the by-design findings are still being detected at all (an
    // analyzer that suddenly reports nothing is broken, not perfect).
    assert!(
        !out.findings.is_empty(),
        "expected the baselined by-design findings to still be reported"
    );
}

#[test]
fn rank_table_roundtrip() {
    let src = std::fs::read_to_string(workspace_root().join("crates/common/src/lockorder.rs"))
        .expect("lockorder.rs must exist");
    let table = evopt_analyze::ranks::parse_rank_table(&src);

    let runtime = evopt_common::lockorder::all_ranks();
    assert_eq!(
        table.consts.len(),
        runtime.len(),
        "parsed constants disagree with lockorder::all_ranks() in count"
    );
    for (name, rank) in runtime {
        assert_eq!(
            table.rank_of(name),
            Some(*rank),
            "constant `{name}` parsed differently from its runtime value"
        );
        let row = table
            .rows
            .iter()
            .find(|r| r.name == *name)
            .unwrap_or_else(|| panic!("rank `{name}` has no machine-readable doc-table row"));
        assert_eq!(row.rank, *rank, "doc-table rank for `{name}` drifted");
    }
    assert_eq!(table.rows.len(), runtime.len());

    // The families rule A4 verifies are exactly the instrumented waits.
    let families: Vec<&str> = table
        .rows
        .iter()
        .flat_map(|r| r.histograms.iter().map(String::as_str))
        .collect();
    assert_eq!(
        families,
        [
            "evopt_commit_lock_wait_us",
            "evopt_snapshot_acquire_us",
            "evopt_wal_sync_wait_us",
            "evopt_pool_miss_io_us",
            "evopt_pool_load_wait_us",
        ]
    );
}
