//! Deterministic report rendering: a human-readable text report and a
//! hand-rolled JSON document (the crate is dependency-free by design, so
//! no serde).

use std::fmt::Write as _;

use crate::analysis::Finding;

/// Render the text report. `new` marks fingerprints not covered by the
/// baseline.
pub fn text(findings: &[Finding], baseline: &[String]) -> String {
    let mut out = String::new();
    if findings.is_empty() {
        out.push_str("evopt-analyze: no findings\n");
        return out;
    }
    let mut new = 0usize;
    for f in findings {
        let known = baseline.iter().any(|b| b == &f.fingerprint);
        if !known {
            new += 1;
        }
        let marker = if known { "baseline" } else { "NEW" };
        let _ = writeln!(
            out,
            "[{}] {} {}:{} {} — {}",
            f.rule.id(),
            marker,
            f.file,
            f.line,
            f.fn_key,
            f.detail
        );
        if !f.path.is_empty() {
            let _ = writeln!(out, "         via {}", f.path.join(" → "));
        }
        let _ = writeln!(out, "         fingerprint: {}", f.fingerprint);
    }
    let _ = writeln!(
        out,
        "evopt-analyze: {} finding(s), {} new, {} baselined",
        findings.len(),
        new,
        findings.len() - new
    );
    out
}

/// Render the JSON report.
pub fn json(findings: &[Finding], baseline: &[String], stale: &[String]) -> String {
    let mut out = String::from("{\n  \"findings\": [\n");
    for (i, f) in findings.iter().enumerate() {
        let known = baseline.iter().any(|b| b == &f.fingerprint);
        let _ = write!(
            out,
            "    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"function\": {}, \
             \"detail\": {}, \"path\": [{}], \"fingerprint\": {}, \"baselined\": {}}}",
            escape(f.rule.id()),
            escape(&f.file),
            f.line,
            escape(&f.fn_key),
            escape(&f.detail),
            f.path
                .iter()
                .map(|p| escape(p))
                .collect::<Vec<_>>()
                .join(", "),
            escape(&f.fingerprint),
            known
        );
        out.push_str(if i + 1 < findings.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n  \"stale_baseline\": [");
    for (i, s) in stale.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&escape(s));
    }
    let new = findings
        .iter()
        .filter(|f| !baseline.iter().any(|b| b == &f.fingerprint))
        .count();
    let _ = write!(
        out,
        "],\n  \"total\": {},\n  \"new\": {}\n}}\n",
        findings.len(),
        new
    );
    out
}

/// Minimal JSON string escaping.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{Finding, Rule};

    fn sample() -> Vec<Finding> {
        vec![Finding {
            rule: Rule::A3,
            fn_key: "storage::BufferPool::fetch".into(),
            file: "crates/storage/src/buffer.rs".into(),
            line: 42,
            detail: "io under \"POOL\"".into(),
            path: vec!["a".into(), "b".into()],
            fingerprint: "A3|storage::BufferPool::fetch|POOL|read_page".into(),
        }]
    }

    #[test]
    fn text_marks_new_vs_baseline() {
        let f = sample();
        let t = text(&f, &[]);
        assert!(t.contains("[A3] NEW"));
        let t = text(&f, &[f[0].fingerprint.clone()]);
        assert!(t.contains("[A3] baseline"));
        assert!(t.contains("1 finding(s), 0 new, 1 baselined"));
    }

    #[test]
    fn json_escapes_and_counts() {
        let f = sample();
        let j = json(&f, &[], &["gone".into()]);
        assert!(j.contains("\\\"POOL\\\""));
        assert!(j.contains("\"new\": 1"));
        assert!(j.contains("\"stale_baseline\": [\"gone\"]"));
    }
}
