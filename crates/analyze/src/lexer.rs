//! A minimal Rust lexer: just enough to strip comments, strings and
//! lifetimes so the scanner can pattern-match token sequences without a
//! full grammar. Comments are discarded — except ones containing the
//! `lockorder: leaf` annotation, which surface as a [`Tok::LeafMark`]
//! token so the scanner can attach the exemption to the preceding field.

/// The marker a leaf-lock field declaration carries in a trailing comment.
pub const LEAF_MARK: &str = "lockorder: leaf";

#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// Integer literal (decimal or hex; suffix and `_` separators dropped).
    Num(u64),
    /// Any other significant character (`{`, `}`, `(`, `.`, `:`, ...).
    Punct(char),
    /// A comment containing [`LEAF_MARK`].
    LeafMark,
}

#[derive(Debug, Clone)]
pub struct Token {
    pub tok: Tok,
    pub line: u32,
}

/// Tokenize `src`. Never fails: unrecognized bytes become [`Tok::Punct`],
/// unterminated literals run to end-of-file — garbage in, fewer tokens
/// out, which is the right failure mode for a lint that must not crash
/// on any tree it is pointed at.
pub fn lex(src: &str) -> Vec<Token> {
    let b = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                if src[start..i].contains(LEAF_MARK) {
                    out.push(Token {
                        tok: Tok::LeafMark,
                        line,
                    });
                }
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let start = i;
                let mut depth = 1u32;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                if src[start..i].contains(LEAF_MARK) {
                    out.push(Token {
                        tok: Tok::LeafMark,
                        line,
                    });
                }
            }
            b'"' => i = skip_string(b, i, &mut line),
            b'\'' => {
                // Lifetime (`'a`) vs char literal (`'x'`, `'\n'`).
                let next = b.get(i + 1).copied().unwrap_or(0);
                let after = b.get(i + 2).copied().unwrap_or(0);
                if (next.is_ascii_alphabetic() || next == b'_') && after != b'\'' {
                    i += 2;
                    while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                        i += 1;
                    }
                } else {
                    i += 1; // opening quote
                    if i < b.len() && b[i] == b'\\' {
                        i += 2; // escape + escaped char
                        while i < b.len() && b[i] != b'\'' {
                            i += 1; // \u{...} payload
                        }
                    } else if i < b.len() {
                        i += 1; // the char itself
                    }
                    if i < b.len() && b[i] == b'\'' {
                        i += 1;
                    }
                }
            }
            c if c.is_ascii_digit() => {
                let mut v: u64 = 0;
                if c == b'0' && b.get(i + 1) == Some(&b'x') {
                    i += 2;
                    while i < b.len() && (b[i].is_ascii_hexdigit() || b[i] == b'_') {
                        if b[i] != b'_' {
                            v = v.wrapping_mul(16)
                                + (b[i] as char).to_digit(16).unwrap_or(0) as u64;
                        }
                        i += 1;
                    }
                } else {
                    while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'_') {
                        if b[i] != b'_' {
                            v = v.wrapping_mul(10) + (b[i] - b'0') as u64;
                        }
                        i += 1;
                    }
                }
                // Drop any type suffix (u16, usize, f64, ...).
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                out.push(Token {
                    tok: Tok::Num(v),
                    line,
                });
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                let ident = &src[start..i];
                // Raw / byte string openers lex as part of the literal.
                let next = b.get(i).copied().unwrap_or(0);
                if (ident == "r" || ident == "br") && (next == b'"' || next == b'#') {
                    i = skip_raw_string(b, i, &mut line);
                } else if ident == "b" && next == b'"' {
                    i = skip_string(b, i, &mut line);
                } else {
                    out.push(Token {
                        tok: Tok::Ident(ident.to_string()),
                        line,
                    });
                }
            }
            other => {
                out.push(Token {
                    tok: Tok::Punct(other as char),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

/// Skip a `"..."` literal starting at the opening quote; returns the index
/// after the closing quote.
fn skip_string(b: &[u8], mut i: usize, line: &mut u32) -> usize {
    i += 1; // opening quote
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Skip an `r"..."` / `r#"..."#` literal starting at the first `#` or `"`;
/// returns the index after the closing delimiter.
fn skip_raw_string(b: &[u8], mut i: usize, line: &mut u32) -> usize {
    let mut hashes = 0usize;
    while i < b.len() && b[i] == b'#' {
        hashes += 1;
        i += 1;
    }
    if i < b.len() && b[i] == b'"' {
        i += 1;
    }
    while i < b.len() {
        if b[i] == b'\n' {
            *line += 1;
            i += 1;
        } else if b[i] == b'"'
            && b[i + 1..]
                .iter()
                .take(hashes)
                .filter(|&&c| c == b'#')
                .count()
                == hashes
        {
            return i + 1 + hashes;
        } else {
            i += 1;
        }
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_and_comments_are_stripped() {
        let src = r##"
            // a lock() in a comment
            let x = "self.y.lock()"; /* self.z.lock() */
            let r = r#"self.w.lock()"#;
            call();
        "##;
        let ids = idents(src);
        assert!(ids.contains(&"call".to_string()));
        assert!(!ids.iter().any(|s| s == "y" || s == "z" || s == "w"));
    }

    #[test]
    fn leaf_mark_survives_lexing() {
        let toks = lex("data: Arc<RwLock<P>>, // lockorder: leaf\nnext: u32,");
        assert!(toks.iter().any(|t| t.tok == Tok::LeafMark));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let ids = idents("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert_eq!(
            ids,
            vec!["fn", "f", "x", "str", "str", "x"]
                .into_iter()
                .map(String::from)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn numbers_parse_with_suffix_and_separators() {
        let toks = lex("const A: u16 = 1_024u16; const B: u64 = 0x10;");
        let nums: Vec<u64> = toks
            .iter()
            .filter_map(|t| match t.tok {
                Tok::Num(n) => Some(n),
                _ => None,
            })
            .collect();
        assert_eq!(nums, vec![1024, 16]);
    }
}
