//! The concurrency rules, evaluated over the scanned event streams and
//! the parsed rank table.
//!
//! * **A1 — rank order.** Every reachable nested acquisition must take a
//!   strictly greater rank than everything already held. Checked directly
//!   (two `acquire`s in one body), transitively (an `acquire` anywhere in
//!   a callee's call-graph closure), and through escaping guards
//!   (functions returning a `RankGuard` pin their direct ranks on the
//!   caller's stack until end of scope). Acquiring an undeclared rank
//!   name, or any drift between the doc table and the `pub const` items,
//!   is also A1.
//! * **A2 — no raw locks.** In the engine/storage/server crates, a
//!   `.lock()/.read()/.write()/.try_lock()` on a non-leaf field with no
//!   ranked acquisition in scope is a finding, as is a ranked acquisition
//!   made while a `// lockorder: leaf` lock is held (a false leaf claim).
//! * **A3 — no I/O under low locks.** A `DiskBackend` call
//!   (`read_page`/`write_page`/`sync`) must not be reachable while a lock
//!   of rank ≤ `POOL` is held. Findings attach to the *acquisition* site
//!   and dedupe per (function, rank), keeping the lexicographically first
//!   I/O op as the witness.
//! * **A4 — instrumented waits.** Every contention-histogram family the
//!   rank table declares must have a recording site (`.time/.time_if/
//!   .observe` on a matching field) in a function that — itself or via a
//!   direct callee — acquires that rank.
//!
//! The held-lock model is lexical: a guard is held from its acquisition
//! to the close of the block it was acquired in, released early by
//! `drop(binding)`. This matches how every guard in this workspace is
//! actually scoped and keeps the analysis a single forward walk.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::ranks::RankTable;
use crate::scan::{Event, FnInfo, ScanOutput};

/// Crates in which rule A2 (raw-lock discipline) applies.
const A2_CRATES: &[&str] = &["engine", "storage", "server"];

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    A1,
    A2,
    A3,
    A4,
}

impl Rule {
    pub fn id(self) -> &'static str {
        match self {
            Rule::A1 => "A1",
            Rule::A2 => "A2",
            Rule::A3 => "A3",
            Rule::A4 => "A4",
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One verified violation.
#[derive(Debug, Clone)]
pub struct Finding {
    pub rule: Rule,
    /// `crate::Type::method` the finding is anchored in (`-` for global
    /// table-level findings).
    pub fn_key: String,
    pub file: String,
    pub line: u32,
    /// Human-readable description.
    pub detail: String,
    /// Witnessing acquisition path (function keys, outermost first);
    /// empty when the violation is direct.
    pub path: Vec<String>,
    /// Stable identity for baselining: excludes file/line so findings
    /// survive unrelated edits. `RULE|fn_key|detail-key`.
    pub fingerprint: String,
}

/// What a function may do, transitively through resolvable calls.
#[derive(Debug, Default, Clone)]
struct Closure {
    /// Rank name → witnessing call path (fn keys, this fn first).
    ranks: BTreeMap<String, Vec<String>>,
    /// First (lexicographically smallest op) reachable disk I/O.
    io: Option<(String, Vec<String>)>,
}

/// A ranked guard currently on the lexical hold stack.
struct Held {
    rank: String,
    val: Option<u16>,
    depth: u32,
    binding: String,
    line: u32,
}

/// A `// lockorder: leaf` lock currently held.
struct LeafHeld {
    field: String,
    depth: u32,
    binding: String,
}

pub fn analyze(scan: &ScanOutput, table: &RankTable, lockorder_file: &str) -> Vec<Finding> {
    let pool_rank = table.rank_of("POOL").unwrap_or(40);

    // Index functions by bare name for call resolution, and fix a
    // deterministic walk order.
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (i, f) in scan.functions.iter().enumerate() {
        by_name.entry(f.name.as_str()).or_default().push(i);
    }
    let mut order: Vec<usize> = (0..scan.functions.len()).collect();
    order.sort_by(|&a, &b| {
        let (fa, fb) = (&scan.functions[a], &scan.functions[b]);
        (&fa.file, fa.line, &fa.key).cmp(&(&fb.file, fb.line, &fb.key))
    });

    let mut closures = Closures {
        scan,
        by_name: &by_name,
        memo: vec![None; scan.functions.len()],
    };

    // Fingerprint → finding; first (deterministic) occurrence wins.
    let mut findings: BTreeMap<String, Finding> = BTreeMap::new();
    let add = |f: Finding, findings: &mut BTreeMap<String, Finding>| {
        findings.entry(f.fingerprint.clone()).or_insert(f);
    };

    // ---- table drift (A1) -------------------------------------------------
    let row_names: BTreeMap<&str, &crate::ranks::RankRow> =
        table.rows.iter().map(|r| (r.name.as_str(), r)).collect();
    for (name, &val) in &table.consts {
        match row_names.get(name.as_str()) {
            None => add(
                Finding {
                    rule: Rule::A1,
                    fn_key: "-".into(),
                    file: lockorder_file.into(),
                    line: 0,
                    detail: format!(
                        "rank const `{name}` ({val}) has no row in the machine-readable doc table"
                    ),
                    path: vec![],
                    fingerprint: format!("A1|-|drift-const:{name}"),
                },
                &mut findings,
            ),
            Some(row) if row.rank != val => add(
                Finding {
                    rule: Rule::A1,
                    fn_key: "-".into(),
                    file: lockorder_file.into(),
                    line: row.line,
                    detail: format!(
                        "rank `{name}` is {val} as a const but {} in the doc table",
                        row.rank
                    ),
                    path: vec![],
                    fingerprint: format!("A1|-|drift-value:{name}"),
                },
                &mut findings,
            ),
            _ => {}
        }
    }
    for row in &table.rows {
        if !table.consts.contains_key(&row.name) {
            add(
                Finding {
                    rule: Rule::A1,
                    fn_key: "-".into(),
                    file: lockorder_file.into(),
                    line: row.line,
                    detail: format!(
                        "doc-table rank `{}` ({}) has no matching `pub const`",
                        row.name, row.rank
                    ),
                    path: vec![],
                    fingerprint: format!("A1|-|drift-row:{}", row.name),
                },
                &mut findings,
            );
        }
    }

    // ---- per-function walk (A1 / A2 / A3) ---------------------------------
    // A3 candidate value: the I/O op, its line + file, and the witness path.
    type IoCandidate = (String, u32, String, Vec<String>);
    // Keyed by (fn_key, rank) so each function reports each held rank once.
    let mut io_candidates: BTreeMap<(String, String), IoCandidate> = BTreeMap::new();

    for &idx in &order {
        let f = &scan.functions[idx];
        let a2_applies = A2_CRATES.contains(&f.crate_name.as_str());
        let mut held: Vec<Held> = Vec::new();
        let mut leaves: Vec<LeafHeld> = Vec::new();

        for ev in &f.events {
            match ev {
                Event::Acquire {
                    rank,
                    line,
                    depth,
                    binding,
                } => {
                    let val = table.rank_of(rank);
                    if val.is_none() {
                        add(
                            Finding {
                                rule: Rule::A1,
                                fn_key: f.key.clone(),
                                file: f.file.clone(),
                                line: *line,
                                detail: format!(
                                    "acquisition of `{rank}`, which is not declared in the rank \
                                     table (crates/common/src/lockorder.rs)"
                                ),
                                path: vec![],
                                fingerprint: format!("A1|{}|unknown:{rank}", f.key),
                            },
                            &mut findings,
                        );
                    }
                    if let Some(v) = val {
                        for h in &held {
                            if let Some(hv) = h.val {
                                if v <= hv {
                                    add(
                                        Finding {
                                            rule: Rule::A1,
                                            fn_key: f.key.clone(),
                                            file: f.file.clone(),
                                            line: *line,
                                            detail: format!(
                                                "acquires `{rank}` ({v}) while holding `{}` ({hv}) \
                                                 acquired at line {}",
                                                h.rank, h.line
                                            ),
                                            path: vec![],
                                            fingerprint: format!("A1|{}|{rank}<={}", f.key, h.rank),
                                        },
                                        &mut findings,
                                    );
                                }
                            }
                        }
                    }
                    if a2_applies {
                        if let Some(leaf) = leaves.last() {
                            add(
                                Finding {
                                    rule: Rule::A2,
                                    fn_key: f.key.clone(),
                                    file: f.file.clone(),
                                    line: *line,
                                    detail: format!(
                                        "ranked acquisition of `{rank}` inside the hold region of \
                                         leaf lock `{}` — the leaf annotation claims nothing \
                                         ranked happens under it",
                                        leaf.field
                                    ),
                                    path: vec![],
                                    fingerprint: format!("A2|{}|leaf:{}+{rank}", f.key, leaf.field),
                                },
                                &mut findings,
                            );
                        }
                    }
                    if binding != "_" {
                        held.push(Held {
                            rank: rank.clone(),
                            val,
                            depth: *depth,
                            binding: binding.clone(),
                            line: *line,
                        });
                    }
                }
                Event::RawLock {
                    field,
                    op,
                    line,
                    depth,
                    binding,
                } => {
                    if scan.leaf_fields.contains(field) {
                        leaves.push(LeafHeld {
                            field: field.clone(),
                            depth: *depth,
                            binding: binding.clone(),
                        });
                    } else if a2_applies && held.is_empty() {
                        add(
                            Finding {
                                rule: Rule::A2,
                                fn_key: f.key.clone(),
                                file: f.file.clone(),
                                line: *line,
                                detail: format!(
                                    "raw `.{op}()` on `{field}` with no ranked acquisition in \
                                     scope — wrap it in `lockorder::acquire` or annotate the \
                                     field `// lockorder: leaf`"
                                ),
                                path: vec![],
                                fingerprint: format!("A2|{}|{field}.{op}", f.key),
                            },
                            &mut findings,
                        );
                    }
                }
                Event::Io { op, line } => {
                    for h in &held {
                        if h.val.is_some_and(|v| v <= pool_rank) {
                            let key = (f.key.clone(), h.rank.clone());
                            let cand = (op.clone(), *line, f.file.clone(), Vec::new());
                            match io_candidates.get(&key) {
                                Some((old, ..)) if *old <= cand.0 => {}
                                _ => {
                                    io_candidates.insert(key, cand);
                                }
                            }
                        }
                    }
                }
                Event::Call { name, line, depth } => {
                    let targets = by_name.get(name.as_str()).cloned().unwrap_or_default();
                    for t in targets {
                        // A bare name matching the current function is far
                        // more likely a same-named method on another type
                        // (`self.wal.checkpoint(..)` inside
                        // `Database::checkpoint`) than direct recursion —
                        // resolving it to ourselves only manufactures
                        // same-rank false positives.
                        if t == idx {
                            continue;
                        }
                        let callee = &scan.functions[t];
                        if callee.returns_rank_guard {
                            // Escaping guard: its direct acquisitions live
                            // on *our* stack until end of scope.
                            for (rank, val) in direct_acquires(callee, table) {
                                if let Some(v) = val {
                                    for h in &held {
                                        if let Some(hv) = h.val {
                                            if v <= hv {
                                                add(
                                                    Finding {
                                                        rule: Rule::A1,
                                                        fn_key: f.key.clone(),
                                                        file: f.file.clone(),
                                                        line: *line,
                                                        detail: format!(
                                                            "call to `{}` acquires `{rank}` ({v}) \
                                                             while holding `{}` ({hv})",
                                                            callee.key, h.rank
                                                        ),
                                                        path: vec![
                                                            f.key.clone(),
                                                            callee.key.clone(),
                                                        ],
                                                        fingerprint: format!(
                                                            "A1|{}|{rank}<={}",
                                                            f.key, h.rank
                                                        ),
                                                    },
                                                    &mut findings,
                                                );
                                            }
                                        }
                                    }
                                }
                                held.push(Held {
                                    rank,
                                    val,
                                    depth: *depth,
                                    binding: String::new(),
                                    line: *line,
                                });
                            }
                            continue;
                        }
                        let clo = closures.of(t, &mut Vec::new());
                        for (rank, cpath) in &clo.ranks {
                            let Some(v) = table.rank_of(rank) else {
                                continue;
                            };
                            for h in &held {
                                if let Some(hv) = h.val {
                                    if v <= hv {
                                        let mut path = vec![f.key.clone()];
                                        path.extend(cpath.iter().cloned());
                                        add(
                                            Finding {
                                                rule: Rule::A1,
                                                fn_key: f.key.clone(),
                                                file: f.file.clone(),
                                                line: *line,
                                                detail: format!(
                                                    "call to `{name}` reaches an acquisition of \
                                                     `{rank}` ({v}) while holding `{}` ({hv}) \
                                                     acquired at line {}",
                                                    h.rank, h.line
                                                ),
                                                path,
                                                fingerprint: format!(
                                                    "A1|{}|{rank}<={}",
                                                    f.key, h.rank
                                                ),
                                            },
                                            &mut findings,
                                        );
                                    }
                                }
                            }
                        }
                        if let Some((op, cpath)) = &clo.io {
                            for h in &held {
                                if h.val.is_some_and(|v| v <= pool_rank) {
                                    let key = (f.key.clone(), h.rank.clone());
                                    let mut path = vec![f.key.clone()];
                                    path.extend(cpath.iter().cloned());
                                    let cand = (op.clone(), h.line, f.file.clone(), path);
                                    match io_candidates.get(&key) {
                                        Some((old, ..)) if *old <= cand.0 => {}
                                        _ => {
                                            io_candidates.insert(key, cand);
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
                Event::Drop { binding } => {
                    if let Some(i) = held.iter().rposition(|h| h.binding == *binding) {
                        held.remove(i);
                    }
                    if let Some(i) = leaves.iter().rposition(|l| l.binding == *binding) {
                        leaves.remove(i);
                    }
                }
                Event::Close { depth } => {
                    held.retain(|h| h.depth < *depth);
                    leaves.retain(|l| l.depth < *depth);
                }
                Event::HistUse { .. } => {}
            }
        }
    }

    for ((fn_key, rank), (op, line, file, path)) in io_candidates {
        let reach = if path.is_empty() {
            "performs".to_string()
        } else {
            format!("reaches (via {}) ", path.join(" → "))
        };
        add(
            Finding {
                rule: Rule::A3,
                fn_key: fn_key.clone(),
                file,
                line,
                detail: format!("{reach} disk I/O (`{op}`) while holding `{rank}` (rank ≤ POOL)"),
                path,
                fingerprint: format!("A3|{fn_key}|{rank}|{op}"),
            },
            &mut findings,
        );
    }

    // ---- A4: every declared histogram family has a timed site -------------
    for row in &table.rows {
        for family in &row.histograms {
            let stripped = family.strip_prefix("evopt_").unwrap_or(family);
            let covered = scan.functions.iter().any(|f| {
                let times_family = f.events.iter().any(|e| match e {
                    Event::HistUse { field, .. } => {
                        stripped == field || stripped.ends_with(&format!("_{field}"))
                    }
                    _ => false,
                });
                times_family && acquires_rank_nearby(f, &row.name, scan, &by_name)
            });
            if !covered {
                add(
                    Finding {
                        rule: Rule::A4,
                        fn_key: "-".into(),
                        file: lockorder_file.into(),
                        line: row.line,
                        detail: format!(
                            "histogram family `{family}` is declared for rank `{}` but no \
                             function both records it and acquires that rank",
                            row.name
                        ),
                        path: vec![],
                        fingerprint: format!("A4|-|{}|{family}", row.name),
                    },
                    &mut findings,
                );
            }
        }
    }

    let mut out: Vec<Finding> = findings.into_values().collect();
    out.sort_by(|a, b| {
        (a.rule, &a.file, a.line, &a.fingerprint).cmp(&(b.rule, &b.file, b.line, &b.fingerprint))
    });
    out
}

/// `f`'s direct `lockorder::acquire` ranks, with table values.
fn direct_acquires(f: &FnInfo, table: &RankTable) -> Vec<(String, Option<u16>)> {
    let mut seen = BTreeSet::new();
    let mut out = Vec::new();
    for ev in &f.events {
        if let Event::Acquire { rank, .. } = ev {
            if seen.insert(rank.clone()) {
                out.push((rank.clone(), table.rank_of(rank)));
            }
        }
    }
    out
}

/// Does `f` — or one of its direct callees — acquire `rank`? (Rule A4: the
/// timed wrapper must sit at the acquisition site or immediately around it.)
fn acquires_rank_nearby(
    f: &FnInfo,
    rank: &str,
    scan: &ScanOutput,
    by_name: &BTreeMap<&str, Vec<usize>>,
) -> bool {
    let direct = |g: &FnInfo| {
        g.events
            .iter()
            .any(|e| matches!(e, Event::Acquire { rank: r, .. } if r == rank))
    };
    if direct(f) {
        return true;
    }
    f.events.iter().any(|e| match e {
        Event::Call { name, .. } => by_name
            .get(name.as_str())
            .is_some_and(|ts| ts.iter().any(|&t| direct(&scan.functions[t]))),
        _ => false,
    })
}

/// Memoized transitive-closure computation over the call graph. Cycles
/// return an empty closure at the re-entry point — the first traversal of
/// each member still sees the full cycle body, which is enough for a lint.
struct Closures<'a> {
    scan: &'a ScanOutput,
    by_name: &'a BTreeMap<&'a str, Vec<usize>>,
    memo: Vec<Option<Closure>>,
}

impl<'a> Closures<'a> {
    fn of(&mut self, idx: usize, in_progress: &mut Vec<usize>) -> Closure {
        if let Some(c) = &self.memo[idx] {
            return c.clone();
        }
        if in_progress.contains(&idx) {
            return Closure::default();
        }
        in_progress.push(idx);
        let scan: &'a ScanOutput = self.scan;
        let f = &scan.functions[idx];
        let mut c = Closure::default();
        for ev in &f.events {
            match ev {
                Event::Acquire { rank, .. } => {
                    c.ranks
                        .entry(rank.clone())
                        .or_insert_with(|| vec![f.key.clone()]);
                }
                Event::Io { op, .. } => {
                    merge_io(&mut c.io, op, vec![f.key.clone()]);
                }
                Event::Call { name, .. } => {
                    let targets = self.by_name.get(name.as_str()).cloned().unwrap_or_default();
                    for t in targets {
                        if t == idx {
                            continue; // see the self-resolution note above
                        }
                        let child = self.of(t, in_progress);
                        for (r, p) in child.ranks {
                            c.ranks.entry(r).or_insert_with(|| {
                                let mut v = vec![f.key.clone()];
                                v.extend(p);
                                v
                            });
                        }
                        if let Some((op, p)) = child.io {
                            let mut v = vec![f.key.clone()];
                            v.extend(p);
                            merge_io(&mut c.io, &op, v);
                        }
                    }
                }
                _ => {}
            }
        }
        in_progress.pop();
        self.memo[idx] = Some(c.clone());
        c
    }
}

/// Keep the lexicographically smallest op (deterministic witness).
fn merge_io(slot: &mut Option<(String, Vec<String>)>, op: &str, path: Vec<String>) {
    match slot {
        Some((cur, _)) if cur.as_str() <= op => {}
        _ => *slot = Some((op.to_string(), path)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::ranks::parse_rank_table;
    use crate::scan::scan_file;

    const TABLE: &str = "\
//! | 10 `COMMIT` | commit | `evopt_commit_lock_wait_us` |
//! | 40 `POOL`   | pool | — |
//! | 60 `OBS`    | obs | — |
pub const COMMIT: u16 = 10;
pub const POOL: u16 = 40;
pub const OBS: u16 = 60;
";

    fn run(src: &str) -> Vec<Finding> {
        let mut out = ScanOutput::default();
        scan_file("lib.rs", "storage", &lex(src), &mut out);
        let table = parse_rank_table(TABLE);
        analyze(&out, &table, "lockorder.rs")
            .into_iter()
            .filter(|f| f.rule != Rule::A4) // the tiny fixtures never time
            .collect()
    }

    #[test]
    fn direct_inversion_is_a1() {
        let f = run(
            "fn f(&self) { let _a = lockorder::acquire(lockorder::POOL); \
             let _b = lockorder::acquire(lockorder::COMMIT); }",
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::A1);
        assert!(f[0].fingerprint.contains("COMMIT<=POOL"));
    }

    #[test]
    fn block_scope_releases_guards() {
        let f = run(
            "fn f(&self) { { let _a = lockorder::acquire(lockorder::POOL); } \
             let _b = lockorder::acquire(lockorder::COMMIT); }",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn transitive_inversion_is_a1() {
        let f = run(
            "fn low(&self) { let _a = lockorder::acquire(lockorder::COMMIT); } \
             fn f(&self) { let _a = lockorder::acquire(lockorder::POOL); self.low(); }",
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::A1);
        assert_eq!(f[0].path.len(), 2);
    }

    #[test]
    fn io_under_pool_is_a3_and_drop_releases() {
        let f = run(
            "fn f(&self) { let g = lockorder::acquire(lockorder::POOL); \
             self.disk.write_page(0, &b); drop(g); self.disk.sync(); }",
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::A3);
        assert!(f[0].fingerprint.ends_with("POOL|write_page"));
    }

    #[test]
    fn io_above_pool_is_clean() {
        let f =
            run("fn f(&self) { let _g = lockorder::acquire(lockorder::OBS); self.disk.sync(); }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn unranked_raw_lock_is_a2() {
        let f = run("fn f(&self) { let g = self.state.lock(); }");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::A2);
    }

    #[test]
    fn leaf_annotation_suppresses_a2() {
        let f = run("struct P { data: RwLock<u8>, // lockorder: leaf\n } \
             impl P { fn f(&self) { let g = self.data.write(); } }");
        assert!(f.is_empty(), "{f:?}");
    }
}
