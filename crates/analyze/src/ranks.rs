//! Parse the machine-readable rank table out of
//! `crates/common/src/lockorder.rs`.
//!
//! Two independent sources are extracted and cross-checked by rule A1:
//!
//! * the **doc table** — `//! | 40 `POOL` | ... | `evopt_...` |` rows,
//!   which also map ranks to the contention-histogram families rule A4
//!   verifies;
//! * the **constants** — `pub const POOL: u16 = 40;` items, the values the
//!   debug-build runtime enforcement actually uses.
//!
//! A self-test in `tests/mutation.rs` round-trips the constant parse
//! against `evopt_common::lockorder::all_ranks()`, so the analyzer can
//! never silently drift from the enforced hierarchy.

use std::collections::BTreeMap;

use crate::lexer::{lex, Tok};

/// One `//! | <rank> `NAME` | <description> | <histograms> |` table row.
#[derive(Debug, Clone)]
pub struct RankRow {
    pub name: String,
    pub rank: u16,
    /// Histogram families (backticked `evopt_*` idents in the third
    /// column); empty for `—`.
    pub histograms: Vec<String>,
    pub line: u32,
}

/// The parsed rank table.
#[derive(Debug, Default)]
pub struct RankTable {
    /// From the `pub const` items: name → rank.
    pub consts: BTreeMap<String, u16>,
    /// From the doc table, in file order.
    pub rows: Vec<RankRow>,
}

impl RankTable {
    /// Rank value for `name`, if declared as a constant.
    pub fn rank_of(&self, name: &str) -> Option<u16> {
        self.consts.get(name).copied()
    }
}

/// Parse `lockorder.rs` source into a [`RankTable`].
pub fn parse_rank_table(src: &str) -> RankTable {
    let mut table = RankTable::default();

    // Doc-table rows: line-based, since the lexer drops comments.
    for (idx, raw) in src.lines().enumerate() {
        let line = idx as u32 + 1;
        let Some(rest) = raw.trim_start().strip_prefix("//!") else {
            continue;
        };
        let rest = rest.trim();
        if !rest.starts_with('|') {
            continue;
        }
        let cells: Vec<&str> = rest.trim_matches('|').split('|').collect();
        if cells.len() < 2 {
            continue;
        }
        // First cell must be `<rank> `NAME``; the header and separator
        // rows fail this shape and fall through.
        let first = cells[0].trim();
        let Some((num_part, name_part)) = first.split_once('`') else {
            continue;
        };
        let Ok(rank) = num_part.trim().parse::<u16>() else {
            continue;
        };
        let Some((name, _)) = name_part.split_once('`') else {
            continue;
        };
        let histograms = cells.get(2).map(|c| backticked(c)).unwrap_or_default();
        table.rows.push(RankRow {
            name: name.trim().to_string(),
            rank,
            histograms,
            line,
        });
    }

    // Constants: `pub const NAME : u16 = <num> ;` token pattern.
    let toks = lex(src);
    let mut i = 0usize;
    while i + 6 < toks.len() {
        let window = &toks[i..i + 7];
        let matched = matches!(
            (
                &window[0].tok,
                &window[1].tok,
                &window[2].tok,
                &window[3].tok,
                &window[4].tok,
                &window[5].tok,
                &window[6].tok,
            ),
            (
                Tok::Ident(pub_kw),
                Tok::Ident(const_kw),
                Tok::Ident(_),
                Tok::Punct(':'),
                Tok::Ident(ty),
                Tok::Punct('='),
                Tok::Num(_),
            ) if pub_kw == "pub" && const_kw == "const" && ty == "u16"
        );
        if matched {
            if let (Tok::Ident(name), Tok::Num(v)) = (&window[2].tok, &window[6].tok) {
                table.consts.insert(name.clone(), *v as u16);
            }
            i += 7;
        } else {
            i += 1;
        }
    }

    table
}

/// Every `` `ident` `` span in `cell`.
fn backticked(cell: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = cell;
    while let Some((_, after)) = rest.split_once('`') {
        let Some((name, tail)) = after.split_once('`') else {
            break;
        };
        out.push(name.trim().to_string());
        rest = tail;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
//! | rank | lock | contention histogram |
//! |------|------|----------------------|
//! | 10 `COMMIT`  | commit lock | `evopt_commit_lock_wait_us` |
//! | 40 `POOL`    | pool | `evopt_pool_miss_io_us`, `evopt_pool_load_wait_us` |
//! | 60 `OBS`     | obs | — |

/// Commit.
pub const COMMIT: u16 = 10;
/// Pool.
pub const POOL: u16 = 40;
/// Obs.
pub const OBS: u16 = 60;
";

    #[test]
    fn rows_and_consts_parse() {
        let t = parse_rank_table(SAMPLE);
        assert_eq!(t.rows.len(), 3);
        assert_eq!(t.rows[0].name, "COMMIT");
        assert_eq!(t.rows[0].rank, 10);
        assert_eq!(t.rows[0].histograms, vec!["evopt_commit_lock_wait_us"]);
        assert_eq!(
            t.rows[1].histograms,
            vec!["evopt_pool_miss_io_us", "evopt_pool_load_wait_us"]
        );
        assert!(t.rows[2].histograms.is_empty());
        assert_eq!(t.rank_of("POOL"), Some(40));
        assert_eq!(t.consts.len(), 3);
    }

    #[test]
    fn header_and_separator_rows_are_ignored() {
        let t = parse_rank_table("//! | rank | lock |\n//! |---|---|\n");
        assert!(t.rows.is_empty());
    }
}
