//! `evopt-analyze` — static concurrency analyzer for the evopt workspace.
//!
//! Parses the Rust source of every crate with a purpose-built scanner (no
//! syn, no rustc — the build environment is hermetically vendored and this
//! crate is deliberately dependency-free), extracts a function-level call
//! graph plus every lock-acquisition site, and verifies the concurrency
//! rules A1–A4 described in DESIGN.md §13:
//!
//! * **A1** — every reachable nested acquisition respects the rank order
//!   declared in `crates/common/src/lockorder.rs`;
//! * **A2** — no unranked raw lock acquisition in engine/storage/server;
//! * **A3** — no `DiskBackend` I/O reachable while a lock of rank ≤ `POOL`
//!   is held;
//! * **A4** — every contention-histogram family the rank table declares
//!   has a real timed acquisition site.
//!
//! Findings are deterministic and carry stable fingerprints; a committed
//! baseline (`crates/analyze/baseline.txt`) lets by-design findings pass
//! while any *new* finding fails CI.

#![deny(clippy::unwrap_used, clippy::expect_used)]

pub mod analysis;
pub mod lexer;
pub mod ranks;
pub mod report;
pub mod scan;

use std::fs;
use std::path::{Path, PathBuf};

pub use analysis::{Finding, Rule};

/// Everything one run produces.
pub struct Outcome {
    pub findings: Vec<Finding>,
    /// Findings whose fingerprint is NOT in the baseline — these fail CI.
    pub new: Vec<Finding>,
    /// Baseline entries that no longer match any finding (stale; reported,
    /// not fatal — prune them when convenient).
    pub stale: Vec<String>,
    pub baseline: Vec<String>,
}

/// Analyze the workspace rooted at `root` (the directory containing
/// `crates/`). `baseline` is the list of accepted fingerprints.
pub fn run(root: &Path, baseline: Vec<String>) -> Result<Outcome, String> {
    let lockorder_path = root.join("crates/common/src/lockorder.rs");
    let lockorder_src = fs::read_to_string(&lockorder_path)
        .map_err(|e| format!("cannot read {}: {e}", lockorder_path.display()))?;
    let table = ranks::parse_rank_table(&lockorder_src);
    if table.consts.is_empty() {
        return Err(format!(
            "no rank constants parsed from {} — wrong --root?",
            lockorder_path.display()
        ));
    }

    let mut out = scan::ScanOutput::default();
    for (crate_name, file) in source_files(root)? {
        let src = fs::read_to_string(&file)
            .map_err(|e| format!("cannot read {}: {e}", file.display()))?;
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        scan::scan_file(&rel, &crate_name, &lexer::lex(&src), &mut out);
    }

    let findings = analysis::analyze(&out, &table, "crates/common/src/lockorder.rs");
    let new: Vec<Finding> = findings
        .iter()
        .filter(|f| !baseline.iter().any(|b| b == &f.fingerprint))
        .cloned()
        .collect();
    let stale: Vec<String> = baseline
        .iter()
        .filter(|b| !findings.iter().any(|f| &f.fingerprint == *b))
        .cloned()
        .collect();
    Ok(Outcome {
        findings,
        new,
        stale,
        baseline,
    })
}

/// Every `.rs` file under `crates/*/src`, excluding this crate itself.
/// Returned sorted for deterministic scan order.
fn source_files(root: &Path) -> Result<Vec<(String, PathBuf)>, String> {
    let crates_dir = root.join("crates");
    let mut out = Vec::new();
    let entries = fs::read_dir(&crates_dir)
        .map_err(|e| format!("cannot read {}: {e}", crates_dir.display()))?;
    for entry in entries.flatten() {
        let crate_dir = entry.path();
        let Some(name) = crate_dir.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        // The analyzer's own sources mention every pattern it detects
        // (in blocklists, tests, fixtures) and must not be scanned.
        if name == "analyze" || !crate_dir.is_dir() {
            continue;
        }
        let src = crate_dir.join("src");
        if src.is_dir() {
            collect_rs(&src, name, &mut out)?;
        }
    }
    out.sort();
    Ok(out)
}

fn collect_rs(
    dir: &Path,
    crate_name: &str,
    out: &mut Vec<(String, PathBuf)>,
) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    for entry in entries.flatten() {
        let p = entry.path();
        if p.is_dir() {
            collect_rs(&p, crate_name, out)?;
        } else if p.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push((crate_name.to_string(), p));
        }
    }
    Ok(())
}

/// Parse a baseline file: one fingerprint per line, `#` comments and blank
/// lines ignored.
pub fn parse_baseline(src: &str) -> Vec<String> {
    src.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(str::to_string)
        .collect()
}

/// Render a baseline file from findings (used by `--update-baseline`).
pub fn render_baseline(findings: &[Finding]) -> String {
    let mut out = String::from(
        "# evopt-analyze baseline: accepted (by-design) findings, one fingerprint per line.\n\
         # Regenerate with `cargo run -p evopt-analyze -- --update-baseline`.\n\
         # A finding NOT listed here fails CI; entries matching nothing are reported as stale.\n",
    );
    for f in findings {
        out.push_str("# ");
        out.push_str(&f.detail);
        out.push('\n');
        out.push_str(&f.fingerprint);
        out.push('\n');
    }
    out
}
