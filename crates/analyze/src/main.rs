//! CLI for the static concurrency analyzer.
//!
//! ```text
//! cargo run -p evopt-analyze [--root DIR] [--baseline FILE] [--json FILE]
//!                            [--update-baseline]
//! ```
//!
//! Exit codes: 0 — clean (no findings outside the baseline); 1 — new
//! findings; 2 — usage or I/O error.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    match real_main() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("evopt-analyze: error: {e}");
            ExitCode::from(2)
        }
    }
}

fn real_main() -> Result<ExitCode, String> {
    let mut root = PathBuf::from(".");
    let mut baseline_path: Option<PathBuf> = None;
    let mut json_path: Option<PathBuf> = None;
    let mut update_baseline = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = PathBuf::from(take(&mut args, "--root")?),
            "--baseline" => baseline_path = Some(PathBuf::from(take(&mut args, "--baseline")?)),
            "--json" => json_path = Some(PathBuf::from(take(&mut args, "--json")?)),
            "--update-baseline" => update_baseline = true,
            "--help" | "-h" => {
                println!(
                    "usage: evopt-analyze [--root DIR] [--baseline FILE] [--json FILE] \
                     [--update-baseline]"
                );
                return Ok(ExitCode::SUCCESS);
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }

    // Default baseline: crates/analyze/baseline.txt under the root, if it
    // exists (fixture trees deliberately have none).
    let baseline_path = baseline_path.unwrap_or_else(|| root.join("crates/analyze/baseline.txt"));
    let baseline = match fs::read_to_string(&baseline_path) {
        Ok(src) => evopt_analyze::parse_baseline(&src),
        Err(_) => Vec::new(),
    };

    let outcome = evopt_analyze::run(&root, baseline)?;

    if update_baseline {
        let rendered = evopt_analyze::render_baseline(&outcome.findings);
        fs::write(&baseline_path, rendered)
            .map_err(|e| format!("cannot write {}: {e}", baseline_path.display()))?;
        println!(
            "evopt-analyze: wrote {} fingerprint(s) to {}",
            outcome.findings.len(),
            baseline_path.display()
        );
        return Ok(ExitCode::SUCCESS);
    }

    print!(
        "{}",
        evopt_analyze::report::text(&outcome.findings, &outcome.baseline)
    );
    for s in &outcome.stale {
        println!("evopt-analyze: stale baseline entry (no longer matches): {s}");
    }
    if let Some(p) = json_path {
        let j = evopt_analyze::report::json(&outcome.findings, &outcome.baseline, &outcome.stale);
        fs::write(&p, j).map_err(|e| format!("cannot write {}: {e}", p.display()))?;
    }

    if outcome.new.is_empty() {
        Ok(ExitCode::SUCCESS)
    } else {
        eprintln!(
            "evopt-analyze: {} NEW finding(s) — fix them or (only for by-design cases) \
             add the fingerprints to {}",
            outcome.new.len(),
            baseline_path.display()
        );
        Ok(ExitCode::FAILURE)
    }
}

fn take(args: &mut impl Iterator<Item = String>, flag: &str) -> Result<String, String> {
    args.next().ok_or_else(|| format!("{flag} needs a value"))
}
