//! Token-pattern scanner: turns a lexed source file into per-function
//! event lists (lock acquisitions, raw lock operations, disk I/O calls,
//! histogram uses, calls, block boundaries) plus the set of
//! `// lockorder: leaf` annotated fields.
//!
//! This is deliberately *not* a parser. It recognizes the handful of
//! token shapes the concurrency rules need and ignores everything else,
//! trading recall for precision (see DESIGN.md §13.5 for the documented
//! blind spots):
//!
//! * lock operations are only recognized in `receiver.field.op()` form —
//!   a guard bound first (`let g = x.lock; g.read()`) is invisible;
//! * calls resolve by bare method name against a blocklist of ubiquitous
//!   std names (`insert`, `get`, `write`, ...) that would otherwise
//!   alias engine functions and storm the report with false positives;
//! * `#[cfg(test)]` items are skipped entirely.

use std::collections::BTreeSet;

use crate::lexer::{Tok, Token};

/// One scanned occurrence inside a function body, in source order.
#[derive(Debug, Clone)]
pub enum Event {
    /// `lockorder::acquire(lockorder::RANK)`. `binding` is the `let`
    /// binding the guard landed in (`"_"` drops immediately, `""` for
    /// expression position).
    Acquire {
        rank: String,
        line: u32,
        depth: u32,
        binding: String,
    },
    /// `recv.field.lock() / try_lock() / read() / write()`.
    RawLock {
        field: String,
        op: String,
        line: u32,
        depth: u32,
        binding: String,
    },
    /// `recv.field.time(..) / time_if(..) / observe(..)` — a histogram
    /// recording site (rule A4).
    HistUse { field: String, line: u32 },
    /// `.read_page(..) / .write_page(..) / .sync(..)` — a `DiskBackend`
    /// I/O call (rule A3).
    Io { op: String, line: u32 },
    /// Any other method/function call that survives the blocklist.
    Call { name: String, line: u32, depth: u32 },
    /// `drop(binding)` — early guard release.
    Drop { binding: String },
    /// A `{ ... }` block at `depth` closed: bindings made inside it die.
    Close { depth: u32 },
}

/// A scanned function.
#[derive(Debug, Clone)]
pub struct FnInfo {
    /// `crate::Type::method` or `crate::function` — the stable key used
    /// in findings and baseline fingerprints.
    pub key: String,
    /// Bare name, for call-graph resolution.
    pub name: String,
    pub file: String,
    pub line: u32,
    pub crate_name: String,
    /// `RankGuard` appears in the return type: the function's direct
    /// acquisitions escape to its caller (e.g. `Database::lock_commit`).
    pub returns_rank_guard: bool,
    pub events: Vec<Event>,
}

/// Accumulated scan across all files.
#[derive(Debug, Default)]
pub struct ScanOutput {
    pub functions: Vec<FnInfo>,
    /// Field names annotated `// lockorder: leaf` anywhere in the tree.
    pub leaf_fields: BTreeSet<String>,
}

/// Methods that time a wait into a histogram.
const HIST_OPS: &[&str] = &["time", "time_if", "observe"];
/// Methods that acquire a mutex / rwlock.
const LOCK_OPS: &[&str] = &["lock", "try_lock", "read", "write"];
/// `DiskBackend` methods that perform physical I/O.
const IO_OPS: &[&str] = &["read_page", "write_page", "sync"];

/// Keywords that look like calls when followed by `(`.
const KEYWORDS: &[&str] = &[
    "if", "else", "while", "match", "for", "loop", "return", "let", "fn", "move", "in", "as",
    "ref", "mut", "pub", "use", "where", "impl", "struct", "enum", "trait", "type", "const",
    "static", "unsafe", "dyn", "break", "continue", "crate", "self", "Self", "super", "mod",
    "Some", "None", "Ok", "Err", "Box", "Vec", "String", "Arc", "Rc",
];

/// Ubiquitous method names that must not resolve through the call graph:
/// each aliases a std collection / primitive method, so linking it to a
/// same-named engine function (e.g. `HashMap::insert` → `HeapFile::insert`)
/// would flood every rule with false positives. The cost is a documented
/// blind spot: calls *to* engine functions with these names are not
/// traversed (their own bodies are still analyzed directly).
const CALL_BLOCKLIST: &[&str] = &[
    // collections / iterators
    "insert",
    "remove",
    "get",
    "get_mut",
    "push",
    "pop",
    "len",
    "is_empty",
    "contains",
    "contains_key",
    "iter",
    "iter_mut",
    "into_iter",
    "next",
    "map",
    "and_then",
    "filter",
    "filter_map",
    "flat_map",
    "fold",
    "sum",
    "count",
    "collect",
    "extend",
    "retain",
    "clear",
    "drain",
    "entry",
    "or_insert",
    "or_insert_with",
    "keys",
    "values",
    "cloned",
    "copied",
    "zip",
    "enumerate",
    "rev",
    "position",
    "find",
    "any",
    "all",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "dedup",
    "first",
    "last",
    "chunks",
    "windows",
    "split",
    "join",
    "truncate",
    "resize",
    "reserve",
    "append",
    "binary_search",
    "range",
    // options / results
    "unwrap",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "expect",
    "ok",
    "err",
    "ok_or",
    "ok_or_else",
    "is_some",
    "is_none",
    "is_ok",
    "is_err",
    "map_err",
    "and",
    "or",
    "then",
    "then_some",
    "is_some_and",
    "take",
    "replace",
    "as_ref",
    "as_mut",
    "as_deref",
    // conversions / formatting
    "new",
    "clone",
    "default",
    "from",
    "into",
    "try_into",
    "try_from",
    "to_string",
    "to_owned",
    "to_vec",
    "as_str",
    "as_bytes",
    "as_i64",
    "as_f64",
    "parse",
    "format",
    "fmt",
    "write_str",
    "push_str",
    "starts_with",
    "ends_with",
    "trim",
    "trim_start",
    "trim_end",
    "to_le_bytes",
    "from_le_bytes",
    "to_be_bytes",
    "copy_from_slice",
    "fill",
    "borrow",
    "borrow_mut",
    "debug_struct",
    "field",
    "finish",
    "hash",
    "eq",
    "ne",
    "cmp",
    "partial_cmp",
    // numerics / atomics
    "min",
    "max",
    "abs",
    "load",
    "store",
    "swap",
    "compare_exchange",
    "fetch_add",
    "fetch_sub",
    "wrapping_add",
    "wrapping_mul",
    "saturating_sub",
    "saturating_add",
    "get_or",
    // time / threads / misc std
    "elapsed",
    "as_micros",
    "as_millis",
    "as_secs",
    "now",
    "with",
    "set",
    "spawn",
    "sleep",
    "yield_now",
    "to_socket_addrs",
    "flush",
    "read_line",
    "read_exact",
    "write_all",
    "read_to_end",
    "set_nodelay",
    "shutdown",
    "connect",
    "accept",
    "local_addr",
    "peer_addr",
    // lock/io method names when they appear as bare calls (the ranked
    // forms are recognized positionally above)
    "lock",
    "try_lock",
    "read",
    "write",
    "time",
    "time_if",
    "observe",
];

fn is_keyword(s: &str) -> bool {
    KEYWORDS.contains(&s)
}

fn is_blocklisted(s: &str) -> bool {
    CALL_BLOCKLIST.contains(&s)
}

/// Scan one lexed file into `out`.
pub fn scan_file(file: &str, crate_name: &str, toks: &[Token], out: &mut ScanOutput) {
    let mut s = Scanner {
        toks,
        pos: 0,
        file,
        crate_name,
        out,
    };
    s.items(None, false);
}

struct Scanner<'a> {
    toks: &'a [Token],
    pos: usize,
    file: &'a str,
    crate_name: &'a str,
    out: &'a mut ScanOutput,
}

impl Scanner<'_> {
    fn peek(&self, ahead: usize) -> Option<&Tok> {
        self.toks.get(self.pos + ahead).map(|t| &t.tok)
    }

    fn line(&self, ahead: usize) -> u32 {
        self.toks.get(self.pos + ahead).map(|t| t.line).unwrap_or(0)
    }

    fn ident(&self, ahead: usize) -> Option<&str> {
        match self.peek(ahead) {
            Some(Tok::Ident(s)) => Some(s.as_str()),
            _ => None,
        }
    }

    fn punct(&self, ahead: usize, c: char) -> bool {
        matches!(self.peek(ahead), Some(Tok::Punct(p)) if *p == c)
    }

    /// Item-position loop (module body, impl body, trait body). Stops at
    /// the matching `}` when `bounded`, else at end of input.
    fn items(&mut self, impl_type: Option<&str>, bounded: bool) {
        let mut cfg_test = false;
        while self.pos < self.toks.len() {
            if bounded && self.punct(0, '}') {
                self.pos += 1;
                return;
            }
            match self.peek(0) {
                Some(Tok::Punct('#')) => {
                    let test_attr = self.skip_attr();
                    cfg_test = cfg_test || test_attr;
                    continue; // attribute applies to the *next* item
                }
                Some(Tok::Ident(kw)) if kw == "fn" => {
                    self.function(impl_type, cfg_test);
                    cfg_test = false;
                }
                Some(Tok::Ident(kw)) if kw == "impl" => {
                    self.pos += 1;
                    let ty = self.impl_target();
                    if self.seek_open_brace() {
                        if cfg_test {
                            self.skip_braces();
                        } else {
                            self.items(ty.as_deref(), true);
                        }
                    }
                    cfg_test = false;
                }
                Some(Tok::Ident(kw)) if kw == "trait" => {
                    self.pos += 1;
                    let name = self.ident(0).map(str::to_string);
                    if self.seek_open_brace() {
                        if cfg_test {
                            self.skip_braces();
                        } else {
                            self.items(name.as_deref(), true);
                        }
                    }
                    cfg_test = false;
                }
                Some(Tok::Ident(kw)) if kw == "mod" => {
                    self.pos += 1;
                    // `mod name;` has no body; `mod name { ... }` recurses.
                    if self.seek_brace_or_semi() {
                        if cfg_test {
                            self.skip_braces();
                        } else {
                            self.items(None, true);
                        }
                    }
                    cfg_test = false;
                }
                Some(Tok::Ident(kw)) if kw == "struct" || kw == "enum" || kw == "union" => {
                    self.pos += 1;
                    if self.seek_brace_or_semi() {
                        self.struct_body();
                    }
                    cfg_test = false;
                }
                _ => self.pos += 1,
            }
        }
    }

    /// Skip `#[...]` / `#![...]`; returns whether it was `cfg(test)`-like.
    fn skip_attr(&mut self) -> bool {
        self.pos += 1; // '#'
        if self.punct(0, '!') {
            self.pos += 1;
        }
        if !self.punct(0, '[') {
            return false;
        }
        self.pos += 1;
        let mut depth = 1u32;
        let mut saw_test = false;
        while self.pos < self.toks.len() && depth > 0 {
            match self.peek(0) {
                Some(Tok::Punct('[')) => depth += 1,
                Some(Tok::Punct(']')) => depth -= 1,
                // `#[cfg(test)]` and `#[test]` both gate test-only items,
                // and both carry the bare ident `test`.
                Some(Tok::Ident(s)) if s == "test" => saw_test = true,
                _ => {}
            }
            self.pos += 1;
        }
        saw_test
    }

    /// After `impl`: skip generics, read the implemented type's last path
    /// segment (the one after `for`, if present).
    fn impl_target(&mut self) -> Option<String> {
        self.skip_generics();
        let first = self.path_last_segment();
        if self.ident(0) == Some("for") {
            self.pos += 1;
            self.path_last_segment()
        } else {
            first
        }
    }

    /// Read a type path (`a::b::C<...>`), returning its last segment.
    fn path_last_segment(&mut self) -> Option<String> {
        let mut last = None;
        loop {
            match self.peek(0) {
                Some(Tok::Ident(s))
                    if !is_keyword(s) || s == "crate" || s == "self" || s == "Self" =>
                {
                    last = Some(s.clone());
                    self.pos += 1;
                    self.skip_generics();
                    if self.punct(0, ':') && self.punct(1, ':') {
                        self.pos += 2;
                        continue;
                    }
                    break;
                }
                _ => break,
            }
        }
        last
    }

    /// Skip a balanced `<...>` group if one starts here.
    fn skip_generics(&mut self) {
        if !self.punct(0, '<') {
            return;
        }
        let mut depth = 0i32;
        while self.pos < self.toks.len() {
            match self.peek(0) {
                Some(Tok::Punct('<')) => depth += 1,
                Some(Tok::Punct('>')) => {
                    depth -= 1;
                    if depth <= 0 {
                        self.pos += 1;
                        return;
                    }
                }
                _ => {}
            }
            self.pos += 1;
        }
    }

    /// Advance to just past the next `{` at paren depth 0. Returns false
    /// if a `;` ends the item first.
    fn seek_brace_or_semi(&mut self) -> bool {
        let mut parens = 0i32;
        while self.pos < self.toks.len() {
            match self.peek(0) {
                Some(Tok::Punct('(')) => parens += 1,
                Some(Tok::Punct(')')) => parens -= 1,
                Some(Tok::Punct('{')) if parens == 0 => {
                    self.pos += 1;
                    return true;
                }
                Some(Tok::Punct(';')) if parens == 0 => {
                    self.pos += 1;
                    return false;
                }
                _ => {}
            }
            self.pos += 1;
        }
        false
    }

    fn seek_open_brace(&mut self) -> bool {
        while self.pos < self.toks.len() {
            if self.punct(0, '{') {
                self.pos += 1;
                return true;
            }
            if self.punct(0, ';') {
                self.pos += 1;
                return false;
            }
            self.pos += 1;
        }
        false
    }

    /// Skip a balanced brace group; assumes the opening `{` was consumed.
    fn skip_braces(&mut self) {
        let mut depth = 1u32;
        while self.pos < self.toks.len() && depth > 0 {
            match self.peek(0) {
                Some(Tok::Punct('{')) => depth += 1,
                Some(Tok::Punct('}')) => depth -= 1,
                _ => {}
            }
            self.pos += 1;
        }
    }

    /// Walk a struct/enum body collecting `// lockorder: leaf` fields;
    /// assumes the opening `{` was consumed.
    fn struct_body(&mut self) {
        let mut depth = 1u32;
        let mut cur_field: Option<String> = None;
        while self.pos < self.toks.len() && depth > 0 {
            match self.peek(0) {
                Some(Tok::Punct('{')) => depth += 1,
                Some(Tok::Punct('}')) => depth -= 1,
                Some(Tok::Ident(name))
                    if depth == 1 && self.punct(1, ':') && !self.punct(2, ':') =>
                {
                    cur_field = Some(name.clone());
                }
                Some(Tok::LeafMark) => {
                    if let Some(f) = &cur_field {
                        self.out.leaf_fields.insert(f.clone());
                    }
                }
                _ => {}
            }
            self.pos += 1;
        }
    }

    /// Parse `fn name(sig) -> ret { body }` starting at the `fn` keyword.
    fn function(&mut self, impl_type: Option<&str>, skip: bool) {
        let decl_line = self.line(0);
        self.pos += 1; // 'fn'
        let Some(name) = self.ident(0).map(str::to_string) else {
            return;
        };
        self.pos += 1;
        // Signature: up to `{` (body) or `;` (declaration only).
        let mut parens = 0i32;
        let mut after_arrow = false;
        let mut returns_rank_guard = false;
        loop {
            match self.peek(0) {
                None => return,
                Some(Tok::Punct('(')) => parens += 1,
                Some(Tok::Punct(')')) => parens -= 1,
                Some(Tok::Punct('-')) if self.punct(1, '>') && parens == 0 => after_arrow = true,
                Some(Tok::Ident(s)) if after_arrow && s == "RankGuard" => returns_rank_guard = true,
                Some(Tok::Punct(';')) if parens == 0 => {
                    self.pos += 1;
                    return; // trait method declaration, no body
                }
                Some(Tok::Punct('{')) if parens == 0 => {
                    self.pos += 1;
                    break;
                }
                _ => {}
            }
            self.pos += 1;
        }
        if skip {
            self.skip_braces();
            return;
        }
        let events = self.body();
        let key = match impl_type {
            Some(t) => format!("{}::{}::{}", self.crate_name, t, name),
            None => format!("{}::{}", self.crate_name, name),
        };
        self.out.functions.push(FnInfo {
            key,
            name,
            file: self.file.to_string(),
            line: decl_line,
            crate_name: self.crate_name.to_string(),
            returns_rank_guard,
            events,
        });
    }

    /// Parse a function body (opening `{` already consumed) into events.
    fn body(&mut self) -> Vec<Event> {
        let mut events = Vec::new();
        let mut depth = 1u32;
        let mut last_binding = String::new();
        while self.pos < self.toks.len() {
            match self.peek(0) {
                Some(Tok::Punct('{')) => {
                    depth += 1;
                    self.pos += 1;
                }
                Some(Tok::Punct('}')) => {
                    events.push(Event::Close { depth });
                    depth -= 1;
                    self.pos += 1;
                    if depth == 0 {
                        return events;
                    }
                }
                Some(Tok::Punct(';')) => {
                    last_binding.clear();
                    self.pos += 1;
                }
                Some(Tok::Punct('#')) => {
                    self.skip_attr();
                }
                Some(Tok::Ident(kw)) if kw == "fn" => {
                    // Nested function: scanned as its own item.
                    self.function(None, false);
                }
                Some(Tok::Ident(kw)) if kw == "let" => {
                    self.pos += 1;
                    if self.ident(0) == Some("mut") {
                        self.pos += 1;
                    }
                    if let Some(name) = self.ident(0) {
                        last_binding = name.to_string();
                        self.pos += 1;
                    } else {
                        last_binding = "_pat".to_string();
                    }
                }
                Some(Tok::Ident(kw))
                    if kw == "drop"
                        && self.punct(1, '(')
                        && self.ident(2).is_some()
                        && self.punct(3, ')') =>
                {
                    if let Some(b) = self.ident(2) {
                        events.push(Event::Drop {
                            binding: b.to_string(),
                        });
                    }
                    self.pos += 4;
                }
                Some(Tok::Ident(kw))
                    if kw == "lockorder"
                        && self.punct(1, ':')
                        && self.punct(2, ':')
                        && self.ident(3) == Some("acquire")
                        && self.punct(4, '(') =>
                {
                    let line = self.line(0);
                    self.pos += 5;
                    // Rank = last ident before the closing paren
                    // (`lockorder::POOL` or a bare `POOL`).
                    let mut rank = String::new();
                    let mut parens = 1i32;
                    while self.pos < self.toks.len() && parens > 0 {
                        match self.peek(0) {
                            Some(Tok::Punct('(')) => parens += 1,
                            Some(Tok::Punct(')')) => parens -= 1,
                            Some(Tok::Ident(s)) => rank = s.clone(),
                            _ => {}
                        }
                        self.pos += 1;
                    }
                    events.push(Event::Acquire {
                        rank,
                        line,
                        depth,
                        binding: last_binding.clone(),
                    });
                }
                Some(Tok::Punct('.')) => {
                    // `.field.op(` (lock / histogram) and `.op(` (io / call).
                    if let (Some(f), true, Some(m), true) = (
                        self.ident(1),
                        self.punct(2, '.'),
                        self.ident(3),
                        self.punct(4, '('),
                    ) {
                        let line = self.line(3);
                        if HIST_OPS.contains(&m) {
                            let field = f.to_string();
                            events.push(Event::HistUse { field, line });
                            self.pos += 5;
                            continue;
                        }
                        if LOCK_OPS.contains(&m) {
                            let (field, op) = (f.to_string(), m.to_string());
                            events.push(Event::RawLock {
                                field,
                                op,
                                line,
                                depth,
                                binding: last_binding.clone(),
                            });
                            self.pos += 5;
                            continue;
                        }
                    }
                    if let (Some(m), true) = (self.ident(1), self.punct(2, '(')) {
                        let line = self.line(1);
                        if IO_OPS.contains(&m) {
                            let op = m.to_string();
                            events.push(Event::Io { op, line });
                        } else if !is_keyword(m) && !is_blocklisted(m) {
                            let name = m.to_string();
                            events.push(Event::Call { name, line, depth });
                        }
                        self.pos += 3;
                        continue;
                    }
                    self.pos += 1;
                }
                Some(Tok::Ident(name)) if self.punct(1, '!') => {
                    // Macro invocation: skip the name, scan the arguments
                    // as ordinary tokens.
                    let _ = name;
                    self.pos += 2;
                }
                Some(Tok::Ident(name)) if self.punct(1, '(') => {
                    if IO_OPS.contains(&name.as_str()) {
                        let op = name.clone();
                        let line = self.line(0);
                        events.push(Event::Io { op, line });
                    } else if !is_keyword(name) && !is_blocklisted(name) {
                        let (name, line) = (name.clone(), self.line(0));
                        events.push(Event::Call { name, line, depth });
                    }
                    self.pos += 2;
                }
                _ => self.pos += 1,
            }
        }
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn scan(src: &str) -> ScanOutput {
        let mut out = ScanOutput::default();
        let toks = lex(src);
        scan_file("lib.rs", "storage", &toks, &mut out);
        out
    }

    #[test]
    fn acquire_and_rawlock_events() {
        let out = scan(
            "impl Pool { fn fetch(&self) { let _r = lockorder::acquire(lockorder::POOL); \
             let g = self.inner.lock(); } }",
        );
        assert_eq!(out.functions.len(), 1);
        let f = &out.functions[0];
        assert_eq!(f.key, "storage::Pool::fetch");
        assert!(matches!(&f.events[0], Event::Acquire { rank, binding, .. }
            if rank == "POOL" && binding == "_r"));
        assert!(matches!(&f.events[1], Event::RawLock { field, op, .. }
            if field == "inner" && op == "lock"));
    }

    #[test]
    fn leaf_field_collection() {
        let out = scan("struct Frame { data: Arc<RwLock<P>>, // lockorder: leaf\n pin: u32 }");
        assert!(out.leaf_fields.contains("data"));
        assert!(!out.leaf_fields.contains("pin"));
    }

    #[test]
    fn io_and_calls_and_blocklist() {
        let out =
            scan("fn flush(&self) { self.disk.write_page(0, &b); helper(); map.insert(1, 2); }");
        let f = &out.functions[0];
        assert!(matches!(&f.events[0], Event::Io { op, .. } if op == "write_page"));
        assert!(matches!(&f.events[1], Event::Call { name, .. } if name == "helper"));
        assert_eq!(f.events.len(), 3); // io, call, final Close — insert blocked
    }

    #[test]
    fn cfg_test_items_are_skipped() {
        let out = scan(
            "#[cfg(test)] mod tests { fn t(&self) { self.raw.lock(); } } \
             fn live() { real_call(); }",
        );
        assert_eq!(out.functions.len(), 1);
        assert_eq!(out.functions[0].name, "live");
    }

    #[test]
    fn escaping_guard_signature() {
        let out = scan(
            "impl Db { fn lock_commit(&self) -> (lockorder::RankGuard, MutexGuard<'_, ()>) { \
             let rank = lockorder::acquire(lockorder::COMMIT); (rank, self.commit_lock.lock()) } }",
        );
        assert!(out.functions[0].returns_rank_guard);
    }

    #[test]
    fn histogram_use() {
        let out = scan("fn f(&self) { self.miss_io_us.time(|| inner_read()); }");
        let f = &out.functions[0];
        assert!(matches!(&f.events[0], Event::HistUse { field, .. } if field == "miss_io_us"));
        assert!(matches!(&f.events[1], Event::Call { name, .. } if name == "inner_read"));
    }
}
