//! Substrate micro-benchmarks: B+-tree probes, heap scans, and buffer-pool
//! replacement policies — the constants beneath every cost formula.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use evopt_common::{Tuple, Value};
use evopt_storage::{BTreeIndex, BufferPool, DiskBackend, DiskManager, HeapFile, PolicyKind};

fn bench_btree_probe(c: &mut Criterion) {
    let pool = BufferPool::new(Arc::new(DiskManager::new()), 256, PolicyKind::Lru);
    let tree = BTreeIndex::create(pool).unwrap();
    let n: i64 = 50_000;
    for i in 0..n {
        tree.insert(&Value::Int(i), evopt_storage::Rid::new(i as u64, 0))
            .unwrap();
    }
    let mut group = c.benchmark_group("btree");
    group.bench_function("point-probe-50k", |b| {
        let mut k = 0i64;
        b.iter(|| {
            k = (k + 7919) % n;
            tree.search_eq(&Value::Int(k)).unwrap()
        })
    });
    group.finish();
}

fn bench_heap_scan(c: &mut Criterion) {
    let pool = BufferPool::new(Arc::new(DiskManager::new()), 64, PolicyKind::Lru);
    let heap = HeapFile::create(Arc::clone(&pool)).unwrap();
    for i in 0..20_000i64 {
        heap.insert(&Tuple::new(vec![
            Value::Int(i),
            Value::Str(format!("row-{i:06}")),
        ]))
        .unwrap();
    }
    let mut group = c.benchmark_group("heap");
    group.bench_function("full-scan-20k", |b| b.iter(|| heap.scan().count()));
    group.finish();
}

fn bench_pool_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("bufferpool");
    for policy in [PolicyKind::Lru, PolicyKind::Clock] {
        group.bench_with_input(
            BenchmarkId::new("cyclic-80-pages-in-64-frames", format!("{policy:?}")),
            &policy,
            |b, &policy| {
                let disk = Arc::new(DiskManager::new());
                let pool = BufferPool::new(Arc::clone(&disk) as Arc<dyn DiskBackend>, 64, policy);
                let ids: Vec<_> = (0..80).map(|_| pool.new_page().unwrap().id()).collect();
                b.iter(|| {
                    for &id in &ids {
                        drop(pool.fetch(id).unwrap());
                    }
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_btree_probe, bench_heap_scan, bench_pool_policies
}
criterion_main!(benches);
