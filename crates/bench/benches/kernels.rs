//! Criterion bench for the columnar kernels: the same operators executed
//! in row mode (the original row-at-a-time implementations) and columnar
//! mode (typed filter kernels, typed join key maps, typed aggregation).
//! The row/columnar deltas recorded in EXPERIMENTS.md come from this
//! bench.
//!
//! The kernel groups construct operators directly over an **in-memory
//! source** so the measurement isolates the operator: a SQL-level filter
//! would be pushed into the scan (hiding the Filter operator entirely) and
//! page decode would dominate the timing. A TPC-H-lite end-to-end group
//! runs the ordinary SQL battery both ways on top, where scans, batching
//! and planning dilute the kernel share — the honest system-level number.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use evopt_catalog::Catalog;
use evopt_common::expr::{col, lit};
use evopt_common::{AggFunc, Batch, BinOp, Column, DataType, Expr, Result, Schema, Tuple, Value};
use evopt_core::physical::PhysAgg;
use evopt_engine::Database;
use evopt_exec::{ColumnarFilterExec, ColumnarHashAggregateExec, ExecEnv, Executor};
use evopt_storage::{BufferPool, DiskManager, PolicyKind};
use evopt_workload::load_tpch_lite;
use evopt_workload::tpch_lite::queries;

const BATCH_ROWS: usize = 1024;

/// Replay a pre-built vector of batches: the zero-I/O operator input.
struct MemSource {
    schema: Schema,
    batches: Vec<Batch>,
    next: usize,
}

impl MemSource {
    fn new(schema: Schema, rows: Vec<Tuple>) -> Self {
        let batches = rows
            .chunks(BATCH_ROWS)
            .map(|c| Batch::new(schema.clone(), c.to_vec()))
            .collect();
        MemSource {
            schema,
            batches,
            next: 0,
        }
    }
}

impl Executor for MemSource {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next_batch(&mut self) -> Result<Option<Batch>> {
        let b = self.batches.get(self.next).cloned();
        self.next += 1;
        Ok(b)
    }
}

/// `n` rows of `(id INT unique, grp INT ∈ 0..100, dec INT ∈ 0..10 with a
/// NULL every 7th row, val FLOAT)`.
fn table(n: i64) -> (Schema, Vec<Tuple>) {
    let schema = Schema::new(vec![
        Column::new("id", DataType::Int),
        Column::new("grp", DataType::Int),
        Column::new("dec", DataType::Int),
        Column::new("val", DataType::Float),
    ]);
    let rows = (0..n)
        .map(|i| {
            let dec = if i % 7 == 0 {
                Value::Null
            } else {
                Value::Int(i % 10)
            };
            Tuple::new(vec![
                Value::Int(i),
                Value::Int(i % 100),
                dec,
                Value::Float(i as f64 * 0.5),
            ])
        })
        .collect();
    (schema, rows)
}

fn drain(mut e: Box<dyn Executor>) -> usize {
    let mut n = 0;
    while let Some(b) = e.next_batch().expect("next_batch") {
        n += b.len();
    }
    n
}

/// Typed comparison kernels: Filter over the in-memory source.
fn bench_filter_kernels(c: &mut Criterion) {
    let (schema, rows) = table(100_000);
    let cases = [
        // ~50% selectivity single comparison.
        ("int-lt", Expr::binary(BinOp::Lt, col(0), lit(50_000i64))),
        // Conjunction of two typed comparisons (~5%), NULLs in `dec`.
        (
            "and-lt-eq",
            Expr::and(
                Expr::binary(BinOp::Lt, col(0), lit(50_000i64)),
                Expr::eq(col(2), lit(3i64)),
            ),
        ),
        // Column-vs-column comparison.
        ("col-vs-col", Expr::binary(BinOp::Lt, col(0), col(1))),
        // Float column against an Int constant (cross-class numeric).
        ("float-gt", Expr::binary(BinOp::Gt, col(3), lit(40_000i64))),
    ];
    let mut group = c.benchmark_group("filter-kernel");
    for (label, pred) in cases {
        for (mode, columnar) in [("row", false), ("columnar", true)] {
            group.bench_with_input(BenchmarkId::new(label, mode), &pred, |b, pred| {
                b.iter(|| {
                    let src = Box::new(MemSource::new(schema.clone(), rows.clone()));
                    let exec: Box<dyn Executor> = if columnar {
                        Box::new(ColumnarFilterExec::new(src, pred.clone()))
                    } else {
                        Box::new(evopt_exec::simple::FilterExec::new(src, pred.clone()))
                    };
                    drain(exec)
                })
            });
        }
    }
    group.finish();
}

/// Typed aggregation: grouped and ungrouped hash aggregation.
fn bench_agg_kernels(c: &mut Criterion) {
    let (schema, rows) = table(100_000);
    let agg = |f, c| PhysAgg {
        func: f,
        arg: Some(col(c)),
    };
    let star = PhysAgg {
        func: AggFunc::CountStar,
        arg: None,
    };
    let cases = [
        (
            "group-by-int",
            vec![1usize],
            vec![
                star.clone(),
                agg(AggFunc::Sum, 0),
                agg(AggFunc::Min, 0),
                agg(AggFunc::Max, 0),
            ],
        ),
        (
            "ungrouped",
            vec![],
            vec![
                agg(AggFunc::Sum, 0),
                agg(AggFunc::Avg, 3),
                agg(AggFunc::Count, 2),
            ],
        ),
    ];
    let mut group = c.benchmark_group("hash-agg-kernel");
    for (label, group_by, aggs) in cases {
        let width = group_by.len() + aggs.len();
        let out_schema = Schema::new(
            (0..width)
                .map(|i| Column::new(format!("c{i}"), DataType::Int))
                .collect(),
        );
        for (mode, columnar) in [("row", false), ("columnar", true)] {
            group.bench_with_input(
                BenchmarkId::new(label, mode),
                &(&group_by, &aggs),
                |b, (group_by, aggs)| {
                    b.iter(|| {
                        let src = Box::new(MemSource::new(schema.clone(), rows.clone()));
                        let exec: Box<dyn Executor> = if columnar {
                            Box::new(ColumnarHashAggregateExec::new(
                                src,
                                (*group_by).clone(),
                                (*aggs).clone(),
                                out_schema.clone(),
                                BATCH_ROWS,
                            ))
                        } else {
                            Box::new(evopt_exec::agg::HashAggregateExec::new(
                                src,
                                (*group_by).clone(),
                                (*aggs).clone(),
                                out_schema.clone(),
                                BATCH_ROWS,
                            ))
                        };
                        drain(exec)
                    })
                },
            );
        }
    }
    group.finish();
}

/// Typed join key maps: in-memory hash join build + probe.
fn bench_join_kernels(c: &mut Criterion) {
    let (schema, probe_rows) = table(100_000);
    // Build sides: unique Int keys (one hit per probe) and a skewed key
    // space (20 duplicates per key → longer match chains).
    let (_, build_unique) = table(20_000);
    let build_skewed: Vec<Tuple> = (0..20_000i64)
        .map(|i| {
            Tuple::new(vec![
                Value::Int(i % 1_000),
                Value::Int(i),
                Value::Null,
                Value::Float(0.0),
            ])
        })
        .collect();
    // A hash join needs an ExecEnv for its spill budget; a tiny private
    // catalog keeps the build in memory (no tables are touched).
    let pool = BufferPool::new(Arc::new(DiskManager::new()), 4096, PolicyKind::Lru);
    let env = ExecEnv::new(Arc::new(Catalog::new(pool)), 4096);
    let out_schema = schema.join(&schema);
    let cases: [(&str, &Vec<Tuple>, usize); 2] = [
        // Probe id ∈ 0..100k vs unique build id ∈ 0..20k: 20% hit rate.
        ("unique-key", &build_unique, 0),
        // Probe grp ∈ 0..100 vs skewed build key ∈ 0..1000: every probe
        // row fans out to 20 matches.
        ("skewed-key", &build_skewed, 1),
    ];
    let mut group = c.benchmark_group("hash-join-kernel");
    for (label, build, left_key) in cases {
        for (mode, columnar) in [("row", false), ("columnar", true)] {
            let env = env
                .clone()
                .with_batch_rows(BATCH_ROWS)
                .with_columnar(columnar);
            group.bench_with_input(BenchmarkId::new(label, mode), build, |b, build| {
                b.iter(|| {
                    let left = Box::new(MemSource::new(schema.clone(), probe_rows.clone()));
                    let right = Box::new(MemSource::new(schema.clone(), build.to_vec()));
                    let exec = evopt_exec::join::HashJoinExec::new(
                        left,
                        right,
                        env.clone(),
                        left_key,
                        0,
                        None,
                        out_schema.clone(),
                    );
                    drain(Box::new(exec))
                })
            });
        }
    }
    group.finish();
}

/// End-to-end TPC-H-lite battery through the ordinary SQL path (scans,
/// planning and batching included).
fn bench_tpch_end_to_end(c: &mut Criterion) {
    let db = Database::with_defaults();
    load_tpch_lite(&db, 0.3, 42).expect("tpch");
    db.execute("ANALYZE").unwrap();
    let battery = [
        ("revenue-per-nation", queries::REVENUE_PER_NATION),
        ("customer-orders", queries::CUSTOMER_ORDERS),
        ("shipped-big-orders", queries::SHIPPED_BIG_ORDERS),
    ];
    let mut group = c.benchmark_group("tpch-lite-end-to-end");
    for (label, sql) in battery {
        let (_, p) = db.plan_sql(sql).expect("plan");
        for (mode, columnar) in [("row", false), ("columnar", true)] {
            db.set_columnar(columnar);
            group.bench_with_input(BenchmarkId::new(label, mode), &p, |b, p| {
                b.iter(|| db.run_plan(p).expect("run"))
            });
        }
        db.set_columnar(true);
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_filter_kernels,
    bench_agg_kernels,
    bench_join_kernels,
    bench_tpch_end_to_end
);
criterion_main!(benches);
