//! Criterion bench behind **T1/T4**: end-to-end execution wall-clock of the
//! optimized plan vs the syntactic baseline, and of the individual join
//! methods (the time-domain complement to the page-I/O tables).
//!
//! Also the batch-size sweep: the same plans at `batch_rows` ∈
//! {1, 64, 256, 1024, 4096}, where 1 is the old tuple-at-a-time Volcano
//! behaviour — the measured tuple-vs-batch speedup recorded in
//! EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use evopt_engine::{Database, Strategy};
use evopt_workload::{load_tpch_lite, load_wisconsin};

fn setup() -> Database {
    let db = Database::with_defaults();
    load_tpch_lite(&db, 0.3, 42).expect("tpch");
    load_wisconsin(&db, "wisc_a", 3_000, 42).expect("wa");
    load_wisconsin(&db, "wisc_b", 3_000, 43).expect("wb");
    db.execute("CREATE INDEX wa_u1 ON wisc_a (unique1)")
        .unwrap();
    db.execute("CREATE INDEX wb_u1 ON wisc_b (unique1)")
        .unwrap();
    db.execute("ANALYZE").unwrap();
    db
}

fn bench_optimized_vs_baseline(c: &mut Criterion) {
    let db = setup();
    let queries = [
        (
            "wisc-join",
            "SELECT COUNT(*) FROM wisc_a a JOIN wisc_b b ON a.unique1 = b.unique1 \
             WHERE a.one_pct = 3",
        ),
        (
            "tpch-3way",
            "SELECT COUNT(*) FROM lineitem l JOIN orders o ON l.l_order = o.o_key \
             JOIN customer c ON o.o_customer = c.c_key WHERE c.c_balance > 8000",
        ),
    ];
    let mut group = c.benchmark_group("optimized-vs-baseline");
    for (label, sql) in queries {
        for strategy in [Strategy::SystemR, Strategy::Syntactic] {
            db.set_strategy(strategy);
            let (_, plan) = db.plan_sql(sql).expect("plan");
            group.bench_with_input(
                BenchmarkId::new(label, strategy.name()),
                &plan,
                |b, plan| {
                    b.iter(|| {
                        db.pool().evict_all().expect("evict");
                        db.run_plan(plan).expect("run")
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_batch_size_sweep(c: &mut Criterion) {
    let db = setup();
    // One scan-heavy and one join-heavy query: per-next_batch overheads
    // (virtual dispatch, instrumentation, drain loop) dominate differently.
    let queries = [
        (
            "wisc-scan-agg",
            "SELECT ten_pct, COUNT(*), SUM(unique2) FROM wisc_a GROUP BY ten_pct",
        ),
        (
            "wisc-join",
            "SELECT COUNT(*) FROM wisc_a a JOIN wisc_b b ON a.unique1 = b.unique1 \
             WHERE a.one_pct = 3",
        ),
    ];
    let mut group = c.benchmark_group("batch-size-sweep");
    for (label, sql) in queries {
        let (_, plan) = db.plan_sql(sql).expect("plan");
        for batch_rows in [1usize, 64, 256, 1024, 4096] {
            db.set_batch_rows(batch_rows);
            group.bench_with_input(BenchmarkId::new(label, batch_rows), &plan, |b, plan| {
                b.iter(|| db.run_plan(plan).expect("run"))
            });
            // The instrumented path pays two Instant::now() stamps plus
            // pool/disk snapshot deltas per next_batch() per operator —
            // the overhead batching exists to amortize.
            group.bench_with_input(
                BenchmarkId::new(format!("{label}-instrumented"), batch_rows),
                &plan,
                |b, plan| b.iter(|| db.run_plan_instrumented(plan).expect("run")),
            );
        }
    }
    db.set_batch_rows(1024);
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_optimized_vs_baseline, bench_batch_size_sweep
}
criterion_main!(benches);
