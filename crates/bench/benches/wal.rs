//! Experiment W1: the price of durability. Identical insert workloads with
//! the WAL off, on, and on with periodic fuzzy checkpoints — the deltas are
//! the cost of page-image logging + commit sync, and the checkpoint's
//! amortized overhead (bought back at recovery time as a bounded replay).

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use evopt_engine::{Database, DatabaseConfig, DiskBackend, DiskManager, Durability};

const BATCH_ROWS: i64 = 50;
const CHECKPOINT_EVERY: u64 = 8;

fn fresh_db(durability: Durability) -> Database {
    let db = Database::create_on(
        Arc::new(DiskManager::new()) as Arc<dyn DiskBackend>,
        DatabaseConfig {
            buffer_pages: 64,
            durability,
            ..Default::default()
        },
    )
    .expect("bootstrap on a fresh in-memory disk");
    db.execute("CREATE TABLE w1 (id INT NOT NULL, val INT, tag STRING)")
        .expect("create");
    db
}

fn insert_batch(db: &Database, next_id: &AtomicI64) {
    let base = next_id.fetch_add(BATCH_ROWS, Ordering::Relaxed);
    let rows: Vec<String> = (base..base + BATCH_ROWS)
        .map(|i| format!("({i}, {}, 'tag-{:03}')", i * 31 % 997, i % 100))
        .collect();
    db.execute(&format!("INSERT INTO w1 VALUES {}", rows.join(", ")))
        .expect("insert batch");
}

fn bench_insert_durability(c: &mut Criterion) {
    let mut group = c.benchmark_group("w1-insert-50-rows");
    for (label, durability, checkpoint) in [
        ("off", Durability::Off, false),
        ("wal", Durability::Wal, false),
        ("wal+checkpoint", Durability::Wal, true),
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(label),
            &(durability, checkpoint),
            |b, &(durability, checkpoint)| {
                let db = fresh_db(durability);
                let next_id = AtomicI64::new(0);
                let batches = AtomicU64::new(0);
                b.iter(|| {
                    insert_batch(&db, &next_id);
                    if checkpoint
                        && batches.fetch_add(1, Ordering::Relaxed) % CHECKPOINT_EVERY
                            == CHECKPOINT_EVERY - 1
                    {
                        db.checkpoint().expect("checkpoint");
                    }
                })
            },
        );
    }
    group.finish();
}

fn bench_recovery(c: &mut Criterion) {
    // Recovery replay speed: crash-free log of 100 committed batches,
    // reopened from scratch each iteration.
    let mut group = c.benchmark_group("w1-recovery");
    group.bench_function("replay-100-batches", |b| {
        let inner = Arc::new(DiskManager::new());
        let db = Database::create_on(
            Arc::clone(&inner) as Arc<dyn DiskBackend>,
            DatabaseConfig {
                buffer_pages: 64,
                durability: Durability::Wal,
                ..Default::default()
            },
        )
        .expect("bootstrap");
        db.execute("CREATE TABLE w1 (id INT NOT NULL, val INT, tag STRING)")
            .expect("create");
        let next_id = AtomicI64::new(0);
        for _ in 0..100 {
            insert_batch(&db, &next_id);
        }
        drop(db);
        b.iter(|| {
            let (db, info) = Database::recover(
                Arc::clone(&inner) as Arc<dyn DiskBackend>,
                DatabaseConfig {
                    buffer_pages: 64,
                    durability: Durability::Wal,
                    ..Default::default()
                },
            )
            .expect("recover");
            drop(db);
            info.scanned_records
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_insert_durability, bench_recovery
}
criterion_main!(benches);
