//! Metrics hot-path benchmark (experiment **O2**): what does observability
//! cost per query?
//!
//! Three configurations of the same query battery:
//! * `off` — `DatabaseConfig.metrics = false`: no counters, no query log;
//! * `metrics` — the default: relaxed atomic counters, counts-only trace
//!   sink, query-log ring push per query;
//! * `trace` — full `EXPLAIN TRACE` journaling via `query_traced`.
//!
//! Plus microbenchmarks of the registry primitives themselves (counter
//! increment, histogram observe, snapshot), which bound the per-event cost
//! every layer pays.
//!
//! `EVOPT_METRICS=1` (the CI smoke setting) restricts the run to the
//! registry microbenches and the `metrics` engine config — the hot path
//! that rides along on every production query — keeping the smoke fast.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use evopt_engine::{Database, DatabaseConfig};
use evopt_obs::{EngineMetrics, Histogram};
use evopt_workload::load_wisconsin;

fn smoke_only() -> bool {
    std::env::var("EVOPT_METRICS")
        .map(|v| v == "1")
        .unwrap_or(false)
}

fn setup(metrics: bool) -> Database {
    let db = Database::new(DatabaseConfig {
        metrics,
        ..Default::default()
    });
    load_wisconsin(&db, "wisc", 2_000, 7).expect("wisc");
    db.execute("CREATE INDEX w_u1 ON wisc (unique1)").unwrap();
    db.execute("ANALYZE").unwrap();
    db
}

const BATTERY: [(&str, &str); 2] = [
    (
        "scan-agg",
        "SELECT ten_pct, COUNT(*), SUM(unique2) FROM wisc GROUP BY ten_pct",
    ),
    (
        "self-join",
        "SELECT COUNT(*) FROM wisc a JOIN wisc b ON a.unique1 = b.unique1 \
         WHERE a.one_pct = 3",
    ),
];

fn bench_registry_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("metrics-primitives");
    let m = EngineMetrics::default();
    group.bench_function("counter-inc", |b| b.iter(|| black_box(&m.queries).inc()));
    group.bench_function("counter-add", |b| {
        b.iter(|| black_box(&m.exec_rows).add(black_box(1024)))
    });
    let h = Histogram::default();
    group.bench_function("histogram-observe", |b| {
        b.iter(|| black_box(&h).observe(black_box(1_234)))
    });
    group.bench_function("registry-snapshot", |b| b.iter(|| black_box(m.snapshot())));
    group.finish();
}

fn bench_query_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("metrics-query-overhead");
    let smoke = smoke_only();
    if !smoke {
        let off = setup(false);
        for (label, sql) in BATTERY {
            group.bench_with_input(BenchmarkId::new(label, "off"), &sql, |b, sql| {
                b.iter(|| off.query(sql).expect("query"))
            });
        }
    }
    let on = setup(true);
    for (label, sql) in BATTERY {
        group.bench_with_input(BenchmarkId::new(label, "metrics"), &sql, |b, sql| {
            b.iter(|| on.query(sql).expect("query"))
        });
        if !smoke {
            group.bench_with_input(BenchmarkId::new(label, "trace"), &sql, |b, sql| {
                b.iter(|| on.query_traced(sql).expect("query"))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_registry_primitives, bench_query_overhead);
criterion_main!(benches);
