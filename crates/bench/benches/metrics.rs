//! Metrics hot-path benchmark (experiment **O2**): what does observability
//! cost per query?
//!
//! Four configurations of the same query battery:
//! * `off` — `DatabaseConfig.metrics = false`: no counters, no query log;
//! * `metrics` — the default: relaxed atomic counters, counts-only trace
//!   sink, query-log ring push per query;
//! * `trace` — full `EXPLAIN TRACE` journaling via `query_traced`;
//! * `spans` vs `no-spans` (experiment **O3**) — the statement-phase span
//!   recorder toggled on the `metrics` configuration, bounding what the
//!   per-phase clock stamps and `PhaseSpan` pushes cost per statement.
//!
//! Plus microbenchmarks of the registry primitives themselves (counter
//! increment, histogram observe, snapshot), which bound the per-event cost
//! every layer pays.
//!
//! `EVOPT_METRICS=1` (the CI smoke setting) restricts the run to the
//! registry microbenches, the `metrics` engine config, and the O3
//! spans-on/off pair — the paths that ride along on every production
//! query — keeping the smoke fast.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use evopt_engine::{Database, DatabaseConfig};
use evopt_obs::{EngineMetrics, Histogram};
use evopt_workload::load_wisconsin;

fn smoke_only() -> bool {
    std::env::var("EVOPT_METRICS")
        .map(|v| v == "1")
        .unwrap_or(false)
}

fn setup(metrics: bool) -> Database {
    let db = Database::new(DatabaseConfig {
        metrics,
        ..Default::default()
    });
    load_wisconsin(&db, "wisc", 2_000, 7).expect("wisc");
    db.execute("CREATE INDEX w_u1 ON wisc (unique1)").unwrap();
    db.execute("ANALYZE").unwrap();
    db
}

const BATTERY: [(&str, &str); 2] = [
    (
        "scan-agg",
        "SELECT ten_pct, COUNT(*), SUM(unique2) FROM wisc GROUP BY ten_pct",
    ),
    (
        "self-join",
        "SELECT COUNT(*) FROM wisc a JOIN wisc b ON a.unique1 = b.unique1 \
         WHERE a.one_pct = 3",
    ),
];

fn bench_registry_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("metrics-primitives");
    let m = EngineMetrics::default();
    group.bench_function("counter-inc", |b| b.iter(|| black_box(&m.queries).inc()));
    group.bench_function("counter-add", |b| {
        b.iter(|| black_box(&m.exec_rows).add(black_box(1024)))
    });
    let h = Histogram::default();
    group.bench_function("histogram-observe", |b| {
        b.iter(|| black_box(&h).observe(black_box(1_234)))
    });
    group.bench_function("registry-snapshot", |b| b.iter(|| black_box(m.snapshot())));
    group.finish();
}

/// O3: span recording on vs off, same engine configuration otherwise.
/// The delta is the whole tracing tax — a handful of `Instant::now`
/// stamps and small-vec pushes per statement — and EXPERIMENTS.md pins
/// it within noise of the query itself.
fn bench_span_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("span-overhead");
    let db = setup(true);
    for (label, sql) in BATTERY {
        db.set_spans(true);
        group.bench_with_input(BenchmarkId::new(label, "spans"), &sql, |b, sql| {
            b.iter(|| db.query(sql).expect("query"))
        });
        db.set_spans(false);
        group.bench_with_input(BenchmarkId::new(label, "no-spans"), &sql, |b, sql| {
            b.iter(|| db.query(sql).expect("query"))
        });
        db.set_spans(true);
    }
    group.finish();
}

fn bench_query_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("metrics-query-overhead");
    let smoke = smoke_only();
    if !smoke {
        let off = setup(false);
        for (label, sql) in BATTERY {
            group.bench_with_input(BenchmarkId::new(label, "off"), &sql, |b, sql| {
                b.iter(|| off.query(sql).expect("query"))
            });
        }
    }
    let on = setup(true);
    for (label, sql) in BATTERY {
        group.bench_with_input(BenchmarkId::new(label, "metrics"), &sql, |b, sql| {
            b.iter(|| on.query(sql).expect("query"))
        });
        if !smoke {
            group.bench_with_input(BenchmarkId::new(label, "trace"), &sql, |b, sql| {
                b.iter(|| on.query_traced(sql).expect("query"))
            });
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_registry_primitives,
    bench_query_overhead,
    bench_span_overhead
);
criterion_main!(benches);
