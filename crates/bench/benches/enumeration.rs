//! Criterion bench behind **F1**: wall-clock of join-order enumeration per
//! strategy and topology. Complements `report f1` (which prints the sweep)
//! with statistically robust timings at a few representative points.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use evopt_engine::{Database, Strategy};
use evopt_workload::{JoinWorkload, Topology};

fn setup(topology: Topology, n: usize) -> (Database, String) {
    let db = Database::with_defaults();
    let mut w = JoinWorkload::new(topology, n, 30, 2);
    w.growth = 1.2;
    w.load(&db, false).expect("load");
    let sql = w.count_query();
    (db, sql)
}

fn bench_enumeration(c: &mut Criterion) {
    let mut group = c.benchmark_group("enumeration");
    for (topo, n) in [
        (Topology::Chain, 6),
        (Topology::Chain, 9),
        (Topology::Star, 6),
        (Topology::Clique, 6),
    ] {
        let (db, sql) = setup(topo, n);
        for strategy in [
            Strategy::SystemR,
            Strategy::BushyDp,
            Strategy::DpCcp,
            Strategy::Greedy,
            Strategy::Goo,
            Strategy::QuickPick {
                samples: 50,
                seed: 1,
            },
        ] {
            // Bushy DP on the 9-chain is slow enough to dominate the run.
            if matches!(strategy, Strategy::BushyDp) && n > 8 {
                continue;
            }
            db.set_strategy(strategy);
            group.bench_with_input(
                BenchmarkId::new(format!("{}-{}", topo.name(), n), strategy.name()),
                &sql,
                |b, sql| b.iter(|| db.plan_sql(sql).expect("plan")),
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_enumeration
}
criterion_main!(benches);
