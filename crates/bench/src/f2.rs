//! **F2 — Plan quality vs. enumeration strategy.**
//!
//! DP finds the optimum of the shared plan space; the question is how much
//! the cheap heuristics give up. For each topology × size we plan with
//! every strategy and report its estimated cost relative to the best DP
//! plan (ratio 1.0 = optimal).

use evopt_engine::{Database, Strategy};
use evopt_workload::{JoinWorkload, Topology};

use crate::util::Table;

#[derive(Debug, Clone)]
pub struct Params {
    pub topologies: Vec<Topology>,
    pub sizes: Vec<usize>,
    pub base_rows: usize,
    pub seed: u64,
}

impl Params {
    pub fn quick() -> Params {
        Params {
            topologies: vec![Topology::Chain, Topology::Star],
            sizes: vec![4, 5],
            base_rows: 60,
            seed: 4,
        }
    }

    pub fn full() -> Params {
        Params {
            topologies: vec![
                Topology::Chain,
                Topology::Star,
                Topology::Cycle,
                Topology::Clique,
            ],
            sizes: vec![4, 6, 8],
            base_rows: 80,
            seed: 4,
        }
    }
}

#[derive(Debug, Clone)]
pub struct Row {
    pub topology: String,
    pub n: usize,
    /// (strategy, cost ratio to best DP plan).
    pub ratios: Vec<(String, f64)>,
}

impl Row {
    pub fn ratio(&self, strategy: &str) -> f64 {
        self.ratios
            .iter()
            .find(|(s, _)| s == strategy)
            .map(|(_, r)| *r)
            .expect("strategy measured")
    }
}

#[derive(Debug, Clone)]
pub struct Report {
    pub rows: Vec<Row>,
}

impl Report {
    pub fn render(&self) -> String {
        let mut t = Table::new(
            "F2: plan cost ratio to optimal (bushy DP = 1.0)",
            &[
                "topology",
                "n",
                "system-r",
                "greedy",
                "goo",
                "quickpick-8",
                "syntactic",
            ],
        );
        for r in &self.rows {
            t.row(vec![
                r.topology.clone(),
                r.n.to_string(),
                format!("{:.2}", r.ratio("system-r")),
                format!("{:.2}", r.ratio("greedy")),
                format!("{:.2}", r.ratio("goo")),
                format!("{:.2}", r.ratio("quickpick")),
                format!("{:.2}", r.ratio("syntactic")),
            ]);
        }
        t.render()
    }
}

pub fn run(p: &Params) -> Report {
    let mut rows = Vec::new();
    for &topo in &p.topologies {
        for &n in &p.sizes {
            let db = Database::with_defaults();
            let mut w = JoinWorkload::new(topo, n, p.base_rows, p.seed);
            w.growth = 1.8;
            w.load(&db, true).expect("load");
            // A selective filter on the biggest relation makes order matter.
            let sql = w.filtered_query(100);
            let model = db.optimizer_config().cost_model;
            let mut costs = Vec::new();
            for strategy in [
                Strategy::BushyDp,
                Strategy::SystemR,
                Strategy::Greedy,
                Strategy::Goo,
                Strategy::QuickPick {
                    samples: 8,
                    seed: 1,
                },
                Strategy::Syntactic,
            ] {
                db.set_strategy(strategy);
                let (_, physical) = db.plan_sql(&sql).expect("plan");
                costs.push((strategy.name().to_string(), model.total(physical.est_cost)));
            }
            let best = costs
                .iter()
                .map(|(_, c)| *c)
                .fold(f64::INFINITY, f64::min)
                .max(1e-9);
            rows.push(Row {
                topology: topo.name().to_string(),
                n,
                ratios: costs
                    .into_iter()
                    .filter(|(s, _)| s != "bushy-dp")
                    .map(|(s, c)| (s, c / best))
                    .collect(),
            });
        }
    }
    Report { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dp_is_optimal_and_baseline_is_far_off() {
        let report = run(&Params::quick());
        for r in &report.rows {
            // System R (left-deep DP) is at or very near the bushy optimum.
            assert!(
                r.ratio("system-r") <= 1.5,
                "{} n={}: system-r ratio {:.2}",
                r.topology,
                r.n,
                r.ratio("system-r")
            );
            // Greedy never beats DP (ratio >= 1).
            assert!(r.ratio("greedy") >= 0.999);
            // Syntactic is the worst or tied-worst in every row.
            let max = r.ratios.iter().map(|(_, v)| *v).fold(0.0f64, f64::max);
            assert!(
                r.ratio("syntactic") >= max * 0.999,
                "{} n={}: syntactic {:.2} not worst ({:.2})",
                r.topology,
                r.n,
                r.ratio("syntactic"),
                max
            );
        }
        // Somewhere, the baseline is ≥ 5x off the optimum.
        let worst = report
            .rows
            .iter()
            .map(|r| r.ratio("syntactic"))
            .fold(0.0f64, f64::max);
        assert!(worst >= 5.0, "baseline worst-case only {worst:.1}x");
    }
}
