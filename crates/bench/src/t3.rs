//! **T3 — Selectivity-estimation accuracy.**
//!
//! How good are the cardinality estimates that feed the cost model? We load
//! one integer column under uniform and Zipf-skewed distributions, ANALYZE
//! it with different statistics configurations (no histogram → the pure
//! 1977 uniformity rules; equi-width; equi-depth at several bucket counts),
//! and measure the q-error of equality and range estimates against the
//! true counts.
//!
//! MCVs are disabled here to isolate the histogram contribution (the MCV
//! rescue for heavy hitters is itself visible by comparing `full()` runs
//! with `mcvs: true`).

use evopt_core::selectivity::{ColumnInfo, EstimationContext};
use evopt_engine::{AnalyzeConfig, Database, HistogramKind};
use evopt_workload::ZipfSampler;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use evopt_common::expr::{col, lit};
use evopt_common::{BinOp, Expr, Tuple, Value};

use crate::util::{fmt, median, percentile, q_error, Table};

#[derive(Debug, Clone)]
pub struct Params {
    pub rows: usize,
    pub domain: usize,
    pub thetas: Vec<f64>,
    pub configs: Vec<(String, AnalyzeConfig)>,
    pub probes: usize,
    pub seed: u64,
}

fn cfg(kind: HistogramKind, buckets: usize) -> AnalyzeConfig {
    AnalyzeConfig {
        histogram: kind,
        buckets,
        mcv_count: 0,
        mcv_min_fraction: 1.0,
    }
}

impl Params {
    pub fn quick() -> Params {
        Params {
            rows: 5_000,
            domain: 500,
            thetas: vec![0.0, 1.0],
            configs: vec![
                ("none".into(), cfg(HistogramKind::None, 0)),
                ("ew-32".into(), cfg(HistogramKind::EquiWidth, 32)),
                ("ed-32".into(), cfg(HistogramKind::EquiDepth, 32)),
            ],
            probes: 40,
            seed: 17,
        }
    }

    pub fn full() -> Params {
        Params {
            rows: 50_000,
            domain: 2_000,
            thetas: vec![0.0, 0.5, 1.0, 1.5],
            configs: vec![
                ("none".into(), cfg(HistogramKind::None, 0)),
                ("ew-32".into(), cfg(HistogramKind::EquiWidth, 32)),
                ("ed-8".into(), cfg(HistogramKind::EquiDepth, 8)),
                ("ed-32".into(), cfg(HistogramKind::EquiDepth, 32)),
                ("ed-128".into(), cfg(HistogramKind::EquiDepth, 128)),
            ],
            probes: 100,
            seed: 17,
        }
    }
}

#[derive(Debug, Clone)]
pub struct Row {
    pub theta: f64,
    pub config: String,
    pub eq_median_q: f64,
    pub eq_p95_q: f64,
    pub range_median_q: f64,
    pub range_p95_q: f64,
}

#[derive(Debug, Clone)]
pub struct Report {
    pub rows: Vec<Row>,
}

impl Report {
    pub fn render(&self) -> String {
        let mut t = Table::new(
            "T3: cardinality estimation q-error by statistics configuration",
            &[
                "zipf θ",
                "stats",
                "eq med",
                "eq p95",
                "range med",
                "range p95",
            ],
        );
        for r in &self.rows {
            t.row(vec![
                format!("{:.1}", r.theta),
                r.config.clone(),
                fmt(r.eq_median_q),
                fmt(r.eq_p95_q),
                fmt(r.range_median_q),
                fmt(r.range_p95_q),
            ]);
        }
        t.render()
    }

    pub fn row(&self, theta: f64, config: &str) -> &Row {
        self.rows
            .iter()
            .find(|r| (r.theta - theta).abs() < 1e-9 && r.config == config)
            .expect("row exists")
    }
}

pub fn run(p: &Params) -> Report {
    let mut report = Report { rows: Vec::new() };
    for &theta in &p.thetas {
        // Generate the data once per distribution.
        let mut rng = StdRng::seed_from_u64(p.seed);
        let zipf = ZipfSampler::new(p.domain, theta);
        let values: Vec<i64> = (0..p.rows).map(|_| zipf.sample(&mut rng) as i64).collect();
        // True frequencies.
        let mut freq = vec![0usize; p.domain];
        for &v in &values {
            freq[v as usize] += 1;
        }
        for (config_name, acfg) in &p.configs {
            let db = Database::with_defaults();
            db.execute("CREATE TABLE data (v INT NOT NULL)").unwrap();
            let tuples: Vec<Tuple> = values
                .iter()
                .map(|&v| Tuple::new(vec![Value::Int(v)]))
                .collect();
            db.insert_tuples("data", &tuples).unwrap();
            db.set_analyze_config(*acfg);
            db.execute("ANALYZE").unwrap();

            // Estimation context straight from the stored stats.
            let info = db.catalog().table("data").unwrap();
            let stats = info.stats().unwrap();
            let est = EstimationContext::new(vec![ColumnInfo {
                stats: stats.column(0).cloned(),
                table_rows: stats.row_count,
            }]);

            let mut probe_rng = StdRng::seed_from_u64(p.seed + 1);
            let mut eq_q = Vec::new();
            let mut range_q = Vec::new();
            for _ in 0..p.probes {
                // Equality probe, biased towards values that exist.
                let v = values[probe_rng.random_range(0..values.len())];
                let sel = est.selectivity(&Expr::eq(col(0), lit(v)));
                let truth = freq[v as usize] as f64 / p.rows as f64;
                eq_q.push(q_error(sel, truth));
                // Range probe.
                let a = probe_rng.random_range(0..p.domain as i64);
                let b = probe_rng.random_range(0..p.domain as i64);
                let (lo, hi) = (a.min(b), a.max(b));
                let expr = Expr::and(
                    Expr::binary(BinOp::GtEq, col(0), lit(lo)),
                    Expr::binary(BinOp::LtEq, col(0), lit(hi)),
                );
                let sel = est.selectivity(&expr);
                let truth =
                    (lo..=hi).map(|k| freq[k as usize]).sum::<usize>() as f64 / p.rows as f64;
                range_q.push(q_error(sel, truth.max(1.0 / p.rows as f64)));
            }
            report.rows.push(Row {
                theta,
                config: config_name.clone(),
                eq_median_q: median(&eq_q),
                eq_p95_q: percentile(&eq_q, 95.0),
                range_median_q: median(&range_q),
                range_p95_q: percentile(&range_q, 95.0),
            });
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histograms_beat_uniformity_under_skew() {
        let report = run(&Params::quick());
        // Uniform data: everything is accurate-ish.
        let uniform_none = report.row(0.0, "none");
        assert!(
            uniform_none.eq_median_q < 3.0,
            "uniform/no-hist eq q-error {}",
            uniform_none.eq_median_q
        );
        // Skewed data: no-histogram estimation degrades badly...
        let skew_none = report.row(1.0, "none");
        // ...and equi-depth rescues it.
        let skew_ed = report.row(1.0, "ed-32");
        assert!(
            skew_ed.eq_median_q < skew_none.eq_median_q,
            "ed-32 {} should beat none {} under skew",
            skew_ed.eq_median_q,
            skew_none.eq_median_q
        );
        assert!(
            skew_ed.eq_median_q < 4.0,
            "equi-depth median q-error {} too high",
            skew_ed.eq_median_q
        );
        // Ranges: histogram estimates are decent everywhere.
        assert!(report.row(1.0, "ed-32").range_median_q < 3.0);
        let text = report.render();
        assert!(text.contains("q-error"));
    }
}
