//! **F4 — Buffer-pool sensitivity.**
//!
//! The cost model's memory-dependent terms (block nested loops, external
//! sort, hash-join spill) predict that the same query does less physical
//! I/O with more buffer pages. We run one join + one sort query under a
//! sweep of pool sizes (cost model told the same `B`) and compare measured
//! I/O against the model's prediction.

use evopt_engine::{CostModel, Database, DatabaseConfig, Strategy};
use evopt_workload::load_wisconsin;

use crate::util::{fmt, spearman, Table};

#[derive(Debug, Clone)]
pub struct Params {
    pub rows: usize,
    pub pool_sizes: Vec<usize>,
    pub seed: u64,
}

impl Params {
    pub fn quick() -> Params {
        Params {
            rows: 4_000,
            pool_sizes: vec![6, 24, 96],
            seed: 23,
        }
    }

    pub fn full() -> Params {
        Params {
            rows: 10_000,
            pool_sizes: vec![8, 16, 32, 64, 128, 256],
            seed: 23,
        }
    }
}

#[derive(Debug, Clone)]
pub struct Row {
    pub buffer_pages: usize,
    pub query: String,
    pub predicted_io: f64,
    pub measured_io: u64,
}

#[derive(Debug, Clone)]
pub struct Report {
    pub rows: Vec<Row>,
    /// Rank correlation between predicted and measured I/O across the sweep.
    pub rho: f64,
}

impl Report {
    pub fn render(&self) -> String {
        let mut t = Table::new(
            format!(
                "F4: buffer-pool sweep, predicted vs measured I/O (rho = {:.3})",
                self.rho
            ),
            &["B (pages)", "query", "predicted io", "measured io"],
        );
        for r in &self.rows {
            t.row(vec![
                r.buffer_pages.to_string(),
                r.query.clone(),
                fmt(r.predicted_io),
                r.measured_io.to_string(),
            ]);
        }
        t.render()
    }

    pub fn measured_for(&self, query: &str) -> Vec<(usize, u64)> {
        self.rows
            .iter()
            .filter(|r| r.query == query)
            .map(|r| (r.buffer_pages, r.measured_io))
            .collect()
    }
}

pub fn run(p: &Params) -> Report {
    let mut rows = Vec::new();
    for &b in &p.pool_sizes {
        let db = Database::new(DatabaseConfig {
            buffer_pages: b,
            ..Default::default()
        });
        db.set_cost_model(CostModel {
            buffer_pages: b,
            ..Default::default()
        });
        // Force the memory-sensitive operators: syntactic strategy always
        // produces BNL joins.
        load_wisconsin(&db, "wa", p.rows, p.seed).unwrap();
        load_wisconsin(&db, "wb", p.rows / 2, p.seed + 1).unwrap();
        db.execute("ANALYZE").unwrap();
        let queries: Vec<(String, String, Strategy)> = vec![
            (
                "bnl-join".into(),
                "SELECT COUNT(*) FROM wa a, wb b WHERE a.unique1 = b.unique1".into(),
                Strategy::Syntactic,
            ),
            // Full-width rows so the sort spills what the cost model
            // prices (projecting first shrinks runs to a fraction of
            // `P(R)`; the pre-PR-8 measurement only tracked the model
            // because read paths dirtied pages and evictions wrote them
            // back, inflating measured I/O in a B-dependent way).
            (
                "external-sort".into(),
                "SELECT * FROM wa ORDER BY unique1".into(),
                Strategy::SystemR,
            ),
        ];
        for (label, sql, strategy) in queries {
            db.set_strategy(strategy);
            let (_, physical) = db.plan_sql(&sql).unwrap();
            let predicted = physical.est_cost.io;
            db.pool().evict_all().unwrap();
            let before = db.disk().snapshot();
            db.run_plan(&physical).unwrap();
            let measured = db.disk().snapshot().since(&before).total();
            rows.push(Row {
                buffer_pages: b,
                query: label,
                predicted_io: predicted,
                measured_io: measured,
            });
        }
    }
    let pred: Vec<f64> = rows.iter().map(|r| r.predicted_io).collect();
    let meas: Vec<f64> = rows.iter().map(|r| r.measured_io as f64).collect();
    let rho = spearman(&pred, &meas);
    Report { rows, rho }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_buffers_less_io_and_model_tracks_it() {
        let report = run(&Params::quick());
        // BNL join: I/O decreases monotonically (within noise) with B.
        let bnl = report.measured_for("bnl-join");
        assert!(bnl.len() >= 3);
        let first = bnl.first().unwrap().1;
        let last = bnl.last().unwrap().1;
        assert!(
            last < first,
            "B={} io {} !< B={} io {}",
            bnl.last().unwrap().0,
            last,
            bnl.first().unwrap().0,
            first
        );
        // Model prediction rank-correlates with measurement.
        assert!(report.rho > 0.5, "rho = {:.3}", report.rho);
    }
}
