//! Regenerate the paper-style tables and figures.
//!
//! ```text
//! cargo run -p evopt-bench --release --bin report -- all
//! cargo run -p evopt-bench --release --bin report -- t1 f2
//! cargo run -p evopt-bench --release --bin report -- --quick all
//! ```

use evopt_bench::*;

fn main() -> std::process::ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let wanted: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|a| a.to_lowercase())
        .collect();
    let all = wanted.is_empty() || wanted.iter().any(|w| w == "all");
    let want = |id: &str| all || wanted.iter().any(|w| w == id);

    let mut ran = 0;
    macro_rules! experiment {
        ($id:literal, $module:ident) => {
            if want($id) {
                let params = if quick {
                    $module::Params::quick()
                } else {
                    $module::Params::full()
                };
                let started = std::time::Instant::now();
                let report = $module::run(&params);
                println!("{}", report.render());
                // Process-global engine counters, cumulative across every
                // database the experiments created so far.
                println!("== engine metrics after {} (cumulative) ==", $id);
                println!("{}", evopt_obs::global().snapshot().to_prometheus());
                println!(
                    "({} finished in {:.1}s)\n",
                    $id,
                    started.elapsed().as_secs_f64()
                );
                ran += 1;
            }
        };
    }

    experiment!("t1", t1);
    experiment!("t2", t2);
    experiment!("t3", t3);
    experiment!("t4", t4);
    experiment!("t5", t5);
    experiment!("f1", f1);
    experiment!("f2", f2);
    experiment!("f3", f3);
    experiment!("f4", f4);
    experiment!("f5", f5);
    experiment!("a1", a1);
    experiment!("c1", c1);

    if ran == 0 {
        eprintln!("unknown experiment id(s) {wanted:?}; expected t1..t5, f1..f5, a1, or all");
        return std::process::ExitCode::from(2);
    }
    std::process::ExitCode::SUCCESS
}
