//! Regenerate the paper-style tables and figures.
//!
//! ```text
//! cargo run -p evopt-bench --release --bin report -- all
//! cargo run -p evopt-bench --release --bin report -- t1 f2
//! cargo run -p evopt-bench --release --bin report -- --quick all
//! ```
//!
//! Besides the rendered tables on stdout, every run writes
//! `BENCH_report.json` to the working directory: one record per
//! experiment with its wall time and the engine-counter deltas it caused
//! (queries, plans considered, pool/disk traffic, WAL records), so CI and
//! tooling can diff runs without scraping the human-readable output.

use evopt_bench::*;
use evopt_obs::MetricsSnapshot;

/// One experiment's machine-readable record.
struct ExperimentRecord {
    id: &'static str,
    wall_s: f64,
    queries: u64,
    statements: u64,
    plans_considered: u64,
    plans_pruned: u64,
    pool_hits: u64,
    pool_misses: u64,
    disk_reads: u64,
    disk_writes: u64,
    wal_records: u64,
}

impl ExperimentRecord {
    fn from_delta(id: &'static str, wall_s: f64, b: &MetricsSnapshot, a: &MetricsSnapshot) -> Self {
        ExperimentRecord {
            id,
            wall_s,
            queries: a.queries.saturating_sub(b.queries),
            statements: a.statements.saturating_sub(b.statements),
            plans_considered: a.plans_considered.saturating_sub(b.plans_considered),
            plans_pruned: a.plans_pruned.saturating_sub(b.plans_pruned),
            pool_hits: a.pool_hits.saturating_sub(b.pool_hits),
            pool_misses: a.pool_misses.saturating_sub(b.pool_misses),
            disk_reads: a.disk_reads.saturating_sub(b.disk_reads),
            disk_writes: a.disk_writes.saturating_sub(b.disk_writes),
            wal_records: a.wal_records_written.saturating_sub(b.wal_records_written),
        }
    }

    /// Hand-rolled JSON object — every field is a number or a bare
    /// identifier string, so no escaping is needed.
    fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"id\":\"{}\",\"wall_s\":{:.3},\"queries\":{},\"statements\":{},",
                "\"plans_considered\":{},\"plans_pruned\":{},\"pool_hits\":{},",
                "\"pool_misses\":{},\"disk_reads\":{},\"disk_writes\":{},\"wal_records\":{}}}"
            ),
            self.id,
            self.wall_s,
            self.queries,
            self.statements,
            self.plans_considered,
            self.plans_pruned,
            self.pool_hits,
            self.pool_misses,
            self.disk_reads,
            self.disk_writes,
            self.wal_records,
        )
    }
}

fn write_json(records: &[ExperimentRecord], quick: bool) {
    let body: Vec<String> = records
        .iter()
        .map(|r| format!("    {}", r.to_json()))
        .collect();
    let json = format!(
        "{{\n  \"quick\": {},\n  \"experiments\": [\n{}\n  ]\n}}\n",
        quick,
        body.join(",\n")
    );
    match std::fs::write("BENCH_report.json", &json) {
        Ok(()) => println!("wrote BENCH_report.json ({} experiments)", records.len()),
        Err(e) => eprintln!("could not write BENCH_report.json: {e}"),
    }
}

fn main() -> std::process::ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let wanted: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|a| a.to_lowercase())
        .collect();
    let all = wanted.is_empty() || wanted.iter().any(|w| w == "all");
    let want = |id: &str| all || wanted.iter().any(|w| w == id);

    let mut records: Vec<ExperimentRecord> = Vec::new();
    macro_rules! experiment {
        ($id:literal, $module:ident) => {
            if want($id) {
                let params = if quick {
                    $module::Params::quick()
                } else {
                    $module::Params::full()
                };
                let before = evopt_obs::global().snapshot();
                let started = std::time::Instant::now();
                let report = $module::run(&params);
                let wall_s = started.elapsed().as_secs_f64();
                let after = evopt_obs::global().snapshot();
                println!("{}", report.render());
                // Process-global engine counters, cumulative across every
                // database the experiments created so far.
                println!("== engine metrics after {} (cumulative) ==", $id);
                println!("{}", after.to_prometheus());
                println!("({} finished in {:.1}s)\n", $id, wall_s);
                records.push(ExperimentRecord::from_delta($id, wall_s, &before, &after));
            }
        };
    }

    experiment!("t1", t1);
    experiment!("t2", t2);
    experiment!("t3", t3);
    experiment!("t4", t4);
    experiment!("t5", t5);
    experiment!("f1", f1);
    experiment!("f2", f2);
    experiment!("f3", f3);
    experiment!("f4", f4);
    experiment!("f5", f5);
    experiment!("a1", a1);
    experiment!("c1", c1);

    if records.is_empty() {
        eprintln!("unknown experiment id(s) {wanted:?}; expected t1..t5, f1..f5, a1, or all");
        return std::process::ExitCode::from(2);
    }
    write_json(&records, quick);
    std::process::ExitCode::SUCCESS
}
