//! **F3 — Interesting orders.**
//!
//! The System R insight: a plan that is not cheapest in isolation can be
//! cheapest *overall* if its output order saves a later sort (merge-join
//! inputs, ORDER BY, GROUP BY). We plan sorted-output queries with order
//! tracking on and off and compare total estimated cost and measured I/O.

use evopt_engine::{Database, DatabaseConfig};
use evopt_workload::load_wisconsin;

use crate::util::{fmt, Table};

#[derive(Debug, Clone)]
pub struct Params {
    pub rows: usize,
    pub buffer_pages: usize,
    pub seed: u64,
}

impl Params {
    pub fn quick() -> Params {
        Params {
            rows: 4_000,
            buffer_pages: 32,
            seed: 13,
        }
    }

    pub fn full() -> Params {
        Params {
            rows: 30_000,
            buffer_pages: 64,
            seed: 13,
        }
    }
}

#[derive(Debug, Clone)]
pub struct Row {
    pub query: String,
    pub est_with: f64,
    pub est_without: f64,
    pub io_with: u64,
    pub io_without: u64,
}

#[derive(Debug, Clone)]
pub struct Report {
    pub rows: Vec<Row>,
}

impl Report {
    pub fn render(&self) -> String {
        let mut t = Table::new(
            "F3: interesting-order tracking on vs off",
            &["query", "est cost on", "est cost off", "io on", "io off"],
        );
        for r in &self.rows {
            t.row(vec![
                r.query.clone(),
                fmt(r.est_with),
                fmt(r.est_without),
                r.io_with.to_string(),
                r.io_without.to_string(),
            ]);
        }
        t.render()
    }
}

pub fn run(p: &Params) -> Report {
    let db = Database::new(DatabaseConfig {
        buffer_pages: p.buffer_pages,
        ..Default::default()
    });
    load_wisconsin(&db, "wa", p.rows, p.seed).unwrap();
    load_wisconsin(&db, "wb", p.rows, p.seed + 1).unwrap();
    db.execute("CREATE CLUSTERED INDEX wa_u2 ON wa (unique2)")
        .unwrap();
    db.execute("CREATE INDEX wa_u1 ON wa (unique1)").unwrap();
    db.execute("CREATE INDEX wb_u1 ON wb (unique1)").unwrap();
    db.execute("ANALYZE").unwrap();

    let n = p.rows as i64;
    let queries: Vec<(String, String)> = vec![
        (
            "order-by-indexed".into(),
            format!(
                "SELECT unique2, stringu1 FROM wa WHERE unique2 < {} ORDER BY unique2",
                n / 5
            ),
        ),
        (
            "order-by-join-key".into(),
            format!(
                "SELECT a.unique1 FROM wa a JOIN wb b ON a.unique1 = b.unique1 \
                 WHERE b.unique2 < {} ORDER BY a.unique1",
                n / 10
            ),
        ),
        (
            "full-order-by".into(),
            "SELECT unique2 FROM wa ORDER BY unique2".into(),
        ),
    ];

    let model = db.optimizer_config().cost_model;
    let mut rows = Vec::new();
    for (label, sql) in queries {
        let mut est = [0f64; 2];
        let mut io = [0u64; 2];
        for (i, track) in [true, false].into_iter().enumerate() {
            db.set_track_orders(track);
            let (_, physical) = db.plan_sql(&sql).unwrap();
            est[i] = model.total(physical.est_cost);
            db.pool().evict_all().unwrap();
            let before = db.disk().snapshot();
            db.run_plan(&physical).unwrap();
            io[i] = db.disk().snapshot().since(&before).total();
        }
        db.set_track_orders(true);
        rows.push(Row {
            query: label,
            est_with: est[0],
            est_without: est[1],
            io_with: io[0],
            io_without: io[1],
        });
    }
    Report { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_tracking_never_hurts_and_sometimes_wins() {
        let report = run(&Params::quick());
        for r in &report.rows {
            assert!(
                r.est_with <= r.est_without * 1.001,
                "{}: tracking made the plan costlier ({} vs {})",
                r.query,
                r.est_with,
                r.est_without
            );
        }
        // At least one query strictly benefits (estimated).
        assert!(
            report
                .rows
                .iter()
                .any(|r| r.est_with < r.est_without * 0.95),
            "no query benefited from interesting orders: {:?}",
            report
                .rows
                .iter()
                .map(|r| (r.query.clone(), r.est_with, r.est_without))
                .collect::<Vec<_>>()
        );
    }
}
