//! **T5 — Cost-model calibration.**
//!
//! The optimizer is only as good as its cost model's *ordering* of plans:
//! absolute costs don't need to be right, but cheaper-estimated plans must
//! actually do less I/O. We collect a diverse set of (estimated cost,
//! measured page I/O) pairs — different queries × different enumeration
//! strategies — and report the Spearman rank correlation.

use evopt_engine::{Database, DatabaseConfig, Strategy};
use evopt_workload::{load_tpch_lite, load_wisconsin, JoinWorkload, Topology};

use crate::util::{fmt, spearman, Table};

#[derive(Debug, Clone)]
pub struct Params {
    pub tpch_scale: f64,
    pub wisconsin_rows: usize,
    pub buffer_pages: usize,
    pub seed: u64,
}

impl Params {
    pub fn quick() -> Params {
        Params {
            tpch_scale: 0.2,
            wisconsin_rows: 2_000,
            buffer_pages: 32,
            seed: 5,
        }
    }

    pub fn full() -> Params {
        Params {
            tpch_scale: 1.0,
            wisconsin_rows: 20_000,
            buffer_pages: 64,
            seed: 5,
        }
    }
}

#[derive(Debug, Clone)]
pub struct Point {
    pub query: String,
    pub strategy: String,
    pub est_cost: f64,
    pub est_io: f64,
    pub measured_io: u64,
    /// Worst per-operator cardinality q-error of the executed plan
    /// (from the instrumented run; 1.0 = every estimate exact).
    pub max_q_error: f64,
}

#[derive(Debug, Clone)]
pub struct Report {
    pub points: Vec<Point>,
    /// Rank correlation of the *total* cost (io + weighted cpu) with
    /// measured I/O — what the optimizer actually ranks by.
    pub rho: f64,
    /// Rank correlation of the cost model's I/O component with measured
    /// I/O — the apples-to-apples calibration number.
    pub rho_io: f64,
    /// Worst cardinality q-error across every executed plan — how far the
    /// selectivity model drifted anywhere in the sweep.
    pub worst_q_error: f64,
}

impl Report {
    pub fn render(&self) -> String {
        let mut t = Table::new(
            format!(
                "T5: estimated cost vs measured I/O over {} plans \
                 (rho_total = {:.3}, rho_io = {:.3}, worst q-error = {:.2})",
                self.points.len(),
                self.rho,
                self.rho_io,
                self.worst_q_error
            ),
            &[
                "query",
                "strategy",
                "est cost",
                "est io",
                "measured io",
                "max q-err",
            ],
        );
        for p in &self.points {
            t.row(vec![
                p.query.clone(),
                p.strategy.clone(),
                fmt(p.est_cost),
                fmt(p.est_io),
                p.measured_io.to_string(),
                format!("{:.2}", p.max_q_error),
            ]);
        }
        t.render()
    }
}

pub fn run(p: &Params) -> Report {
    let db = Database::new(DatabaseConfig {
        buffer_pages: p.buffer_pages,
        ..Default::default()
    });
    load_tpch_lite(&db, p.tpch_scale, p.seed).unwrap();
    load_wisconsin(&db, "wisc", p.wisconsin_rows, p.seed).unwrap();
    db.execute("CREATE INDEX wisc_u1 ON wisc (unique1)")
        .unwrap();
    let chain = JoinWorkload::new(Topology::Chain, 3, 200, p.seed);
    chain.load(&db, true).unwrap();
    db.execute("ANALYZE").unwrap();

    let wn = p.wisconsin_rows as i64;
    let queries: Vec<(String, String)> = vec![
        ("wisc-scan".into(), "SELECT COUNT(*) FROM wisc".into()),
        (
            "wisc-point".into(),
            format!("SELECT * FROM wisc WHERE unique1 = {}", wn / 3),
        ),
        (
            "wisc-range".into(),
            format!("SELECT COUNT(*) FROM wisc WHERE unique2 < {}", wn / 4),
        ),
        (
            "tpch-2way".into(),
            "SELECT COUNT(*) FROM orders o JOIN customer c ON o.o_customer = c.c_key".into(),
        ),
        (
            "tpch-3way".into(),
            "SELECT COUNT(*) FROM lineitem l JOIN orders o ON l.l_order = o.o_key \
             JOIN customer c ON o.o_customer = c.c_key"
                .into(),
        ),
        ("chain-3".into(), chain.count_query()),
    ];
    let strategies = [
        Strategy::SystemR,
        Strategy::Greedy,
        Strategy::Syntactic,
        Strategy::QuickPick {
            samples: 1,
            seed: 1,
        },
        Strategy::QuickPick {
            samples: 1,
            seed: 2,
        },
    ];

    let model = db.optimizer_config().cost_model;
    let mut points = Vec::new();
    for (label, sql) in &queries {
        for strategy in strategies {
            db.set_strategy(strategy);
            let (_, physical) = db.plan_sql(sql).unwrap();
            let est = model.total(physical.est_cost);
            db.pool().evict_all().unwrap();
            let before = db.disk().snapshot();
            let (_, metrics) = db.run_plan_instrumented(&physical).unwrap();
            let io = db.disk().snapshot().since(&before).total();
            points.push(Point {
                query: label.clone(),
                strategy: strategy.name().to_string(),
                est_cost: est,
                est_io: physical.est_cost.io,
                measured_io: io,
                max_q_error: metrics.max_q_error(),
            });
        }
    }
    db.set_strategy(Strategy::SystemR);
    let est: Vec<f64> = points.iter().map(|p| p.est_cost).collect();
    let est_io: Vec<f64> = points.iter().map(|p| p.est_io).collect();
    let io: Vec<f64> = points.iter().map(|p| p.measured_io as f64).collect();
    let rho = spearman(&est, &io);
    let rho_io = spearman(&est_io, &io);
    let worst_q_error = points.iter().map(|p| p.max_q_error).fold(1.0, f64::max);
    Report {
        points,
        rho,
        rho_io,
        worst_q_error,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimated_cost_rank_correlates_with_measured_io() {
        let report = run(&Params::quick());
        assert!(report.points.len() >= 25);
        assert!(
            report.rho >= 0.5,
            "total-cost Spearman rho {:.3} below the bar",
            report.rho
        );
        assert!(
            report.rho_io >= 0.7,
            "io-vs-io Spearman rho {:.3} below the calibration bar",
            report.rho_io
        );
        assert!(
            report.worst_q_error >= 1.0,
            "q-error is bounded below by 1.0 by definition"
        );
        let text = report.render();
        assert!(text.contains("rho_io"));
        assert!(text.contains("max q-err"));
    }
}
