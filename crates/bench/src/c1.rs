//! **C1 — Multi-session throughput scaling.**
//!
//! The multi-session refactor's claim: read statements run on frozen
//! catalog snapshots with no shared lock held across execution, so
//! concurrent sessions overlap their I/O stalls; write statements hold the
//! commit lock end-to-end and serialize. This bench measures both.
//!
//! The machine running the reports has one core, so CPU parallelism is off
//! the table — the scaling on display is **I/O overlap**: the simulated
//! disk ([`DiskManager::set_io_latency_micros`]) sleeps outside its page
//! lock, and the buffer pool performs miss reads outside the pool lock, so
//! `n` sessions blocked on misses wait concurrently. Each session scans
//! its own table (disjoint pages) through a pool far smaller than any
//! table, making every query miss-dominated — the regime the refactor
//! targets. Expect read-only throughput to scale near-linearly and the
//! mixed workload to flatten against the commit lock.

use std::sync::Arc;
use std::time::Instant;

use evopt_engine::{Database, DatabaseConfig, DiskBackend, DiskManager};
use evopt_workload::load_wisconsin;

use crate::util::Table;

#[derive(Debug, Clone)]
pub struct Params {
    /// Rows per per-session table.
    pub rows: usize,
    /// Session counts to sweep (each session gets its own table).
    pub session_counts: Vec<usize>,
    /// Statements each session issues per timed run.
    pub statements_per_session: usize,
    /// Simulated per-page-I/O latency.
    pub io_latency_micros: u64,
    /// Buffer pool size — kept far below one table's page count.
    pub buffer_pages: usize,
    pub seed: u64,
}

impl Params {
    pub fn quick() -> Params {
        Params {
            rows: 1_500,
            session_counts: vec![1, 4],
            statements_per_session: 12,
            io_latency_micros: 400,
            buffer_pages: 12,
            seed: 41,
        }
    }

    pub fn full() -> Params {
        Params {
            rows: 4_000,
            session_counts: vec![1, 2, 4, 8],
            statements_per_session: 24,
            io_latency_micros: 400,
            buffer_pages: 16,
            seed: 41,
        }
    }
}

#[derive(Debug, Clone)]
pub struct Row {
    pub mode: &'static str,
    pub sessions: usize,
    pub wall_ms: f64,
    pub statements_per_sec: f64,
    /// Throughput relative to the 1-session run of the same mode.
    pub speedup: f64,
}

#[derive(Debug, Clone)]
pub struct Report {
    pub rows: Vec<Row>,
}

impl Report {
    pub fn render(&self) -> String {
        let mut t = Table::new(
            "C1: multi-session throughput (per-session tables, miss-dominated scans)".to_string(),
            &["mode", "sessions", "wall ms", "stmt/s", "speedup"],
        );
        for r in &self.rows {
            t.row(vec![
                r.mode.to_string(),
                r.sessions.to_string(),
                format!("{:.0}", r.wall_ms),
                format!("{:.1}", r.statements_per_sec),
                format!("{:.2}x", r.speedup),
            ]);
        }
        t.render()
    }

    pub fn speedup(&self, mode: &str, sessions: usize) -> f64 {
        self.rows
            .iter()
            .find(|r| r.mode == mode && r.sessions == sessions)
            .map(|r| r.speedup)
            .unwrap_or(f64::NAN)
    }
}

/// One statement of the per-session workload. Reads are full scans of the
/// session's own table (no index exists, the pool is cold for every
/// query); writes are single-row updates, which also scan but run under
/// the commit lock.
fn statement(mode: &str, table: &str, i: usize, rows: usize) -> String {
    let point = (i * 97) % rows;
    if mode == "mixed" && i % 4 == 3 {
        format!("UPDATE {table} SET odd = 1 - odd WHERE unique1 = {point}")
    } else {
        let lo = (i * 131) % rows;
        format!(
            "SELECT COUNT(*) FROM {table} WHERE unique1 >= {lo} AND unique1 < {}",
            lo + 100
        )
    }
}

fn timed_run(db: &Arc<Database>, mode: &'static str, sessions: usize, p: &Params) -> f64 {
    let started = Instant::now();
    let threads: Vec<_> = (0..sessions)
        .map(|s| {
            let db = Arc::clone(db);
            let p = p.clone();
            std::thread::spawn(move || {
                let session = db.session();
                let table = format!("c1_{s}");
                for i in 0..p.statements_per_session {
                    session
                        .execute(&statement(mode, &table, i, p.rows))
                        .unwrap();
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    started.elapsed().as_secs_f64() * 1e3
}

pub fn run(p: &Params) -> Report {
    let disk = Arc::new(DiskManager::new());
    let backend: Arc<dyn DiskBackend> = Arc::<DiskManager>::clone(&disk);
    let db = Arc::new(
        Database::create_on(
            backend,
            DatabaseConfig {
                buffer_pages: p.buffer_pages,
                ..Default::default()
            },
        )
        .unwrap(),
    );
    let max_sessions = p.session_counts.iter().copied().max().unwrap_or(1);
    for s in 0..max_sessions {
        load_wisconsin(&db, &format!("c1_{s}"), p.rows, p.seed + s as u64).unwrap();
    }
    db.execute("ANALYZE").unwrap();

    // Latency goes on only after loading — the load itself should be fast.
    disk.set_io_latency_micros(p.io_latency_micros);

    let mut rows = Vec::new();
    for mode in ["read-only", "mixed"] {
        let mut base_tput = None;
        for &n in &p.session_counts {
            // Cold pool per run so every run is miss-dominated.
            db.pool().evict_all().unwrap();
            let wall_ms = timed_run(&db, mode, n, p);
            let tput = (n * p.statements_per_session) as f64 / (wall_ms / 1e3);
            let base = *base_tput.get_or_insert(tput);
            rows.push(Row {
                mode,
                sessions: n,
                wall_ms,
                statements_per_sec: tput,
                speedup: tput / base,
            });
        }
    }
    disk.set_io_latency_micros(0);
    Report { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_only_throughput_scales_past_2x_at_4_sessions() {
        let report = run(&Params::quick());
        let s = report.speedup("read-only", 4);
        assert!(s > 2.0, "read-only 4-session speedup = {s:.2}x, want > 2x");
        // Mixed must still make forward progress concurrently.
        let m = report.speedup("mixed", 4);
        assert!(m > 1.0, "mixed 4-session speedup = {m:.2}x, want > 1x");
    }
}
