//! **T2 — Access-path selection crossover.**
//!
//! The classic result: an unclustered index wins only at small
//! selectivities (roughly below one matching tuple per page); a clustered
//! index wins almost everywhere; the sequential scan wins at the high end.
//! We sweep the predicate selectivity, measure the *actual* page I/O of the
//! forced sequential-scan plan and the forced index-scan plan, and check
//! which one the optimizer picks.

use evopt_common::expr::{col, lit};
use evopt_common::{BinOp, Expr, Value};
use evopt_core::cost::Cost;
use evopt_core::physical::{KeyRange, PhysOp, PhysicalPlan};
use evopt_engine::{Database, DatabaseConfig};
use evopt_workload::load_wisconsin;

use crate::util::Table;

#[derive(Debug, Clone)]
pub struct Params {
    pub rows: usize,
    pub buffer_pages: usize,
    pub selectivities: Vec<f64>,
    pub seed: u64,
}

impl Params {
    pub fn quick() -> Params {
        Params {
            rows: 5_000,
            buffer_pages: 32,
            selectivities: vec![0.001, 0.01, 0.1, 0.5, 1.0],
            seed: 7,
        }
    }

    pub fn full() -> Params {
        Params {
            rows: 50_000,
            buffer_pages: 64,
            selectivities: vec![0.0001, 0.001, 0.005, 0.01, 0.05, 0.1, 0.2, 0.5, 1.0],
            seed: 7,
        }
    }
}

#[derive(Debug, Clone)]
pub struct Row {
    pub selectivity: f64,
    pub clustered: bool,
    pub io_seq: u64,
    pub io_index: u64,
    /// What the optimizer chose for this predicate ("SeqScan"/"IndexScan").
    pub optimizer_pick: String,
    pub matching_rows: usize,
}

impl Row {
    /// Did the optimizer pick the measured winner (with 10% slack)?
    pub fn picked_winner(&self) -> bool {
        let seq_wins = self.io_seq as f64 <= self.io_index as f64 * 1.1;
        let idx_wins = self.io_index as f64 <= self.io_seq as f64 * 1.1;
        match self.optimizer_pick.as_str() {
            "SeqScan" => seq_wins,
            "IndexScan" => idx_wins,
            _ => false,
        }
    }
}

#[derive(Debug, Clone)]
pub struct Report {
    pub rows: Vec<Row>,
}

impl Report {
    pub fn render(&self) -> String {
        let mut t = Table::new(
            "T2: access-path crossover (measured page I/O)",
            &[
                "sel",
                "index kind",
                "io seq",
                "io index",
                "optimizer pick",
                "ok",
            ],
        );
        for r in &self.rows {
            t.row(vec![
                format!("{:.4}", r.selectivity),
                if r.clustered {
                    "clustered"
                } else {
                    "unclustered"
                }
                .into(),
                r.io_seq.to_string(),
                r.io_index.to_string(),
                r.optimizer_pick.clone(),
                if r.picked_winner() { "yes" } else { "NO" }.into(),
            ]);
        }
        t.render()
    }

    /// Fraction of sweep points where the optimizer picked the winner.
    pub fn pick_accuracy(&self) -> f64 {
        let ok = self.rows.iter().filter(|r| r.picked_winner()).count();
        ok as f64 / self.rows.len().max(1) as f64
    }
}

fn scan_plan(db: &Database, cutoff: i64, column: &str) -> PhysicalPlan {
    let info = db.catalog().table("wisc").unwrap();
    let colidx = info.schema.resolve(None, column).unwrap();
    PhysicalPlan {
        schema: info.schema.clone(),
        est_rows: 0.0,
        est_cost: Cost::ZERO,
        output_order: None,
        op: PhysOp::SeqScan {
            table: "wisc".into(),
            filter: Some(Expr::binary(BinOp::Lt, col(colidx), lit(cutoff))),
        },
    }
}

fn index_plan(db: &Database, cutoff: i64, index: &str) -> PhysicalPlan {
    let info = db.catalog().table("wisc").unwrap();
    PhysicalPlan {
        schema: info.schema.clone(),
        est_rows: 0.0,
        est_cost: Cost::ZERO,
        output_order: None,
        op: PhysOp::IndexScan {
            table: "wisc".into(),
            index: index.into(),
            range: KeyRange {
                low: std::ops::Bound::Unbounded,
                high: std::ops::Bound::Excluded(Value::Int(cutoff)),
            },
            residual: None,
            clustered: false,
        },
    }
}

fn measure(db: &Database, plan: &PhysicalPlan) -> (u64, usize) {
    db.pool().evict_all().unwrap();
    let before = db.disk().snapshot();
    let rows = db.run_plan(plan).unwrap();
    (db.disk().snapshot().since(&before).total(), rows.len())
}

pub fn run(p: &Params) -> Report {
    let db = Database::new(DatabaseConfig {
        buffer_pages: p.buffer_pages,
        ..Default::default()
    });
    load_wisconsin(&db, "wisc", p.rows, p.seed).unwrap();
    // unique2 is loaded in order → clustered; unique1 is a permutation →
    // unclustered.
    db.execute("CREATE CLUSTERED INDEX wisc_u2 ON wisc (unique2)")
        .unwrap();
    db.execute("CREATE INDEX wisc_u1 ON wisc (unique1)")
        .unwrap();
    db.execute("ANALYZE").unwrap();

    let mut rows = Vec::new();
    for &sel in &p.selectivities {
        let cutoff = ((p.rows as f64) * sel).round().max(1.0) as i64;
        for (clustered, column, index) in
            [(true, "unique2", "wisc_u2"), (false, "unique1", "wisc_u1")]
        {
            let (io_seq, n_seq) = measure(&db, &scan_plan(&db, cutoff, column));
            let (io_index, n_idx) = measure(&db, &index_plan(&db, cutoff, index));
            assert_eq!(n_seq, n_idx, "paths must agree on the result");
            // What does the optimizer pick? (Look through the projection.)
            let (_, physical) = db
                .plan_sql(&format!("SELECT * FROM wisc WHERE {column} < {cutoff}"))
                .unwrap();
            fn scan_of(p: &PhysicalPlan) -> &'static str {
                match p.op_name() {
                    n @ ("SeqScan" | "IndexScan") => n,
                    _ => p.children().first().map(|c| scan_of(c)).unwrap_or("?"),
                }
            }
            rows.push(Row {
                selectivity: sel,
                clustered,
                io_seq,
                io_index,
                optimizer_pick: scan_of(&physical).to_string(),
                matching_rows: n_seq,
            });
        }
    }
    Report { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crossover_shape_and_optimizer_accuracy() {
        let report = run(&Params::quick());
        // Unclustered: index wins at 0.1% selectivity, loses at 50%.
        let uncl = |sel: f64| {
            report
                .rows
                .iter()
                .find(|r| !r.clustered && (r.selectivity - sel).abs() < 1e-9)
                .unwrap()
        };
        let lo = uncl(0.001);
        assert!(
            lo.io_index < lo.io_seq,
            "0.1%: index {} !< seq {}",
            lo.io_index,
            lo.io_seq
        );
        let hi = uncl(0.5);
        assert!(
            hi.io_seq < hi.io_index,
            "50%: seq {} !< index {}",
            hi.io_seq,
            hi.io_index
        );
        // Clustered index is never much worse than seq even at 100%.
        let cl_full = report
            .rows
            .iter()
            .find(|r| r.clustered && (r.selectivity - 1.0).abs() < 1e-9)
            .unwrap();
        assert!(
            cl_full.io_index as f64 <= cl_full.io_seq as f64 * 2.0,
            "clustered full scan io {} vs seq {}",
            cl_full.io_index,
            cl_full.io_seq
        );
        // The optimizer picks the measured winner at (almost) every point.
        let acc = report.pick_accuracy();
        assert!(acc >= 0.8, "optimizer pick accuracy only {acc:.2}");
        let text = report.render();
        assert!(text.contains("unclustered"));
    }
}
