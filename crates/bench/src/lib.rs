//! # evopt-bench
//!
//! The experiment harness: one module per table/figure of the evaluation
//! (see DESIGN.md §4 for the experiment index and EXPERIMENTS.md for the
//! recorded results). Each module exposes
//!
//! * a `Params` struct with `quick()` (seconds, used by the test suite to
//!   pin the experiment's *shape*) and `full()` (the report configuration),
//! * `run(&Params) -> …Report` returning structured numbers, and
//! * `render` on the report producing the paper-style text table.
//!
//! `cargo run -p evopt-bench --release --bin report -- all` regenerates
//! everything.

// The experiment harness reports broken setup by panicking, exactly like
// a test: the run must abort loudly, there is no caller to hand an error
// to. The workspace unwrap ban deliberately does not apply here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

pub mod a1;
pub mod c1;
pub mod f1;
pub mod f2;
pub mod f3;
pub mod f4;
pub mod f5;
pub mod t1;
pub mod t2;
pub mod t3;
pub mod t4;
pub mod t5;
pub mod util;
