//! **F5 — Cardinality-error propagation.**
//!
//! Estimation errors at the leaves compound multiplicatively through a join
//! tree (the independence assumption multiplies them), and a misled
//! optimizer picks a different — worse — join order. We inject a controlled
//! error `ε` into the row count of the chain's largest relation (the
//! optimizer believes `rows × ε`), re-plan, execute, and report the
//! measured-I/O regret against the truthfully-planned query.

use evopt_catalog::TableStats;
use evopt_engine::{Database, DatabaseConfig};
use evopt_workload::{JoinWorkload, Topology};

use crate::util::Table;

#[derive(Debug, Clone)]
pub struct Params {
    pub chain_lengths: Vec<usize>,
    pub epsilons: Vec<f64>,
    pub base_rows: usize,
    pub buffer_pages: usize,
    pub seed: u64,
}

impl Params {
    pub fn quick() -> Params {
        Params {
            chain_lengths: vec![3, 4],
            epsilons: vec![0.001, 0.1, 1.0, 10.0],
            base_rows: 80,
            buffer_pages: 16,
            seed: 31,
        }
    }

    pub fn full() -> Params {
        Params {
            chain_lengths: vec![2, 3, 4, 5, 6],
            epsilons: vec![0.001, 0.01, 0.1, 1.0, 10.0, 100.0],
            base_rows: 120,
            buffer_pages: 32,
            seed: 31,
        }
    }
}

#[derive(Debug, Clone)]
pub struct Row {
    pub chain_len: usize,
    pub epsilon: f64,
    pub io_distorted: u64,
    pub io_truth: u64,
    pub order_changed: bool,
}

impl Row {
    pub fn regret(&self) -> f64 {
        self.io_distorted.max(1) as f64 / self.io_truth.max(1) as f64
    }
}

#[derive(Debug, Clone)]
pub struct Report {
    pub rows: Vec<Row>,
}

impl Report {
    pub fn render(&self) -> String {
        let mut t = Table::new(
            "F5: measured-I/O regret from injected leaf-cardinality error",
            &[
                "chain n",
                "epsilon",
                "io truth",
                "io distorted",
                "regret",
                "order changed",
            ],
        );
        for r in &self.rows {
            t.row(vec![
                r.chain_len.to_string(),
                format!("{:.3}", r.epsilon),
                r.io_truth.to_string(),
                r.io_distorted.to_string(),
                format!("{:.2}", r.regret()),
                if r.order_changed { "yes" } else { "no" }.into(),
            ]);
        }
        t.render()
    }
}

/// Distorted copy of `stats`: row/page counts and NDVs scaled by `eps`.
fn distort(stats: &TableStats, eps: f64) -> TableStats {
    let mut s = stats.clone();
    s.row_count = ((s.row_count as f64 * eps).round() as u64).max(1);
    s.page_count = ((s.page_count as f64 * eps).round() as u64).max(1);
    for c in &mut s.columns {
        c.ndv = ((c.ndv as f64 * eps).round() as u64).max(1);
    }
    s
}

pub fn run(p: &Params) -> Report {
    let mut rows = Vec::new();
    for &n in &p.chain_lengths {
        let db = Database::new(DatabaseConfig {
            buffer_pages: p.buffer_pages,
            ..Default::default()
        });
        let mut w = JoinWorkload::new(Topology::Chain, n, p.base_rows, p.seed);
        w.growth = 2.5;
        w.load(&db, true).expect("load");
        let sql = w.count_query();
        // Truth plan + measurement.
        let (_, truth_plan) = db.plan_sql(&sql).unwrap();
        db.pool().evict_all().unwrap();
        let before = db.disk().snapshot();
        let truth_result = db.run_plan(&truth_plan).unwrap();
        let io_truth = db.disk().snapshot().since(&before).total();

        // The relation whose stats we lie about: the biggest (last).
        let victim = db.catalog().table(&w.table(n - 1)).unwrap();
        let true_stats = victim.stats().expect("analyzed");

        for &eps in &p.epsilons {
            victim.set_stats(distort(&true_stats, eps));
            let (_, plan) = db.plan_sql(&sql).unwrap();
            victim.set_stats((*true_stats).clone());
            db.pool().evict_all().unwrap();
            let before = db.disk().snapshot();
            let result = db.run_plan(&plan).unwrap();
            let io = db.disk().snapshot().since(&before).total();
            assert_eq!(result, truth_result, "distorted plan changed the answer");
            rows.push(Row {
                chain_len: n,
                epsilon: eps,
                io_distorted: io,
                io_truth,
                order_changed: plan.scan_order() != truth_plan.scan_order(),
            });
        }
    }
    Report { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn misestimates_change_plans_and_never_help() {
        let report = run(&Params::quick());
        for r in &report.rows {
            // ε = 1 is the truth: identical plan, identical I/O.
            if (r.epsilon - 1.0).abs() < 1e-9 {
                assert!(!r.order_changed, "truth run changed the plan");
                assert!((r.regret() - 1.0).abs() < 0.05, "regret {}", r.regret());
            }
            // Lies can't make the true execution cheaper (beyond cache noise).
            assert!(
                r.regret() > 0.8,
                "n={} eps={}: regret {:.2} — a lie should not help",
                r.chain_len,
                r.epsilon,
                r.regret()
            );
        }
        // The strongest underestimate flips the join order somewhere.
        assert!(
            report
                .rows
                .iter()
                .any(|r| r.epsilon < 0.01 && r.order_changed),
            "extreme underestimate never changed the plan"
        );
    }
}
