//! **T4 — Join-method selection.**
//!
//! No single join method dominates: index nested loops wins when the outer
//! is tiny and the inner is indexed; hash join wins big-big equi-joins;
//! block nested loops survives only as the fallback. We measure the actual
//! page I/O of every applicable method on a grid of input sizes and check
//! that the optimizer's pick is (near-)optimal.

use evopt_common::expr::col;
use evopt_common::{Expr, Schema, Tuple, Value};
use evopt_core::cost::Cost;
use evopt_core::physical::{PhysOp, PhysicalPlan};
use evopt_engine::{Database, DatabaseConfig};

use crate::util::Table;

#[derive(Debug, Clone)]
pub struct Params {
    /// (outer rows, inner rows) grid.
    pub grid: Vec<(usize, usize)>,
    pub buffer_pages: usize,
    pub seed: u64,
}

impl Params {
    pub fn quick() -> Params {
        Params {
            grid: vec![(10, 20_000), (2_000, 2_000)],
            buffer_pages: 16,
            seed: 3,
        }
    }

    pub fn full() -> Params {
        Params {
            grid: vec![
                (10, 50_000),
                (100, 50_000),
                (1_000, 50_000),
                (10_000, 10_000),
                (50_000, 50_000),
            ],
            buffer_pages: 64,
            seed: 3,
        }
    }
}

#[derive(Debug, Clone)]
pub struct Row {
    pub outer_rows: usize,
    pub inner_rows: usize,
    /// (method name, measured total I/O) for every method tried.
    pub methods: Vec<(String, u64)>,
    pub optimizer_pick: String,
}

impl Row {
    pub fn io_of(&self, method: &str) -> Option<u64> {
        self.methods
            .iter()
            .find(|(m, _)| m == method)
            .map(|(_, io)| *io)
    }

    pub fn best_method(&self) -> &str {
        &self
            .methods
            .iter()
            .min_by_key(|(_, io)| *io)
            .expect("methods measured")
            .0
    }

    /// I/O of the optimizer's pick relative to the best measured method.
    pub fn pick_regret(&self) -> f64 {
        let best = self.methods.iter().map(|(_, io)| *io).min().unwrap().max(1);
        let picked = self.io_of(&self.optimizer_pick).unwrap_or(best).max(1);
        picked as f64 / best as f64
    }
}

#[derive(Debug, Clone)]
pub struct Report {
    pub rows: Vec<Row>,
}

impl Report {
    pub fn render(&self) -> String {
        let mut t = Table::new(
            "T4: join-method I/O by input sizes (inner indexed)",
            &[
                "|outer|", "|inner|", "BNL", "INL", "SMJ", "HJ", "opt pick", "regret",
            ],
        );
        for r in &self.rows {
            let get = |m: &str| {
                r.io_of(m)
                    .map(|v| v.to_string())
                    .unwrap_or_else(|| "-".into())
            };
            t.row(vec![
                r.outer_rows.to_string(),
                r.inner_rows.to_string(),
                get("BlockNestedLoopJoin"),
                get("IndexNestedLoopJoin"),
                get("SortMergeJoin"),
                get("HashJoin"),
                r.optimizer_pick.clone(),
                format!("{:.2}", r.pick_regret()),
            ]);
        }
        t.render()
    }
}

fn setup(outer: usize, inner: usize, buffer_pages: usize, seed: u64) -> Database {
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};
    let db = Database::new(DatabaseConfig {
        buffer_pages,
        ..Default::default()
    });
    let mut rng = StdRng::seed_from_u64(seed);
    // Keys are drawn uniformly from the inner's dense key domain, so index
    // probes scatter across the inner heap (no accidental locality).
    for (name, rows) in [("outer_t", outer), ("inner_t", inner)] {
        db.execute(&format!(
            "CREATE TABLE {name} (k INT NOT NULL, pad STRING NOT NULL)"
        ))
        .unwrap();
        let tuples: Vec<Tuple> = (0..rows)
            .map(|i| {
                let key = if name == "inner_t" {
                    i as i64 // dense unique keys
                } else {
                    rng.random_range(0..inner.max(1) as i64)
                };
                Tuple::new(vec![Value::Int(key), Value::Str(format!("pad-{i:08}"))])
            })
            .collect();
        db.insert_tuples(name, &tuples).unwrap();
    }
    db.execute("CREATE INDEX inner_k ON inner_t (k)").unwrap();
    db.execute("ANALYZE").unwrap();
    db
}

fn scan(db: &Database, table: &str) -> PhysicalPlan {
    let info = db.catalog().table(table).unwrap();
    PhysicalPlan {
        schema: info.schema.clone(),
        est_rows: 0.0,
        est_cost: Cost::ZERO,
        output_order: None,
        op: PhysOp::SeqScan {
            table: table.into(),
            filter: None,
        },
    }
}

fn join_schema(db: &Database) -> Schema {
    let a = db.catalog().table("outer_t").unwrap().schema.clone();
    let b = db.catalog().table("inner_t").unwrap().schema.clone();
    a.join(&b)
}

fn forced_plans(db: &Database, buffer_pages: usize) -> Vec<(String, PhysicalPlan)> {
    let schema = join_schema(db);
    let mk = |op: PhysOp| PhysicalPlan {
        op,
        schema: schema.clone(),
        est_rows: 0.0,
        est_cost: Cost::ZERO,
        output_order: None,
    };
    let sorted = |t: &str| {
        let s = scan(db, t);
        PhysicalPlan {
            schema: s.schema.clone(),
            est_rows: 0.0,
            est_cost: Cost::ZERO,
            output_order: None,
            op: PhysOp::Sort {
                input: Box::new(s),
                keys: vec![(0, true)],
            },
        }
    };
    vec![
        (
            "BlockNestedLoopJoin".into(),
            mk(PhysOp::BlockNestedLoopJoin {
                left: Box::new(scan(db, "outer_t")),
                right: Box::new(scan(db, "inner_t")),
                predicate: Some(Expr::eq(col(0), col(2))),
                block_pages: buffer_pages,
            }),
        ),
        (
            "IndexNestedLoopJoin".into(),
            mk(PhysOp::IndexNestedLoopJoin {
                outer: Box::new(scan(db, "outer_t")),
                inner_table: "inner_t".into(),
                index: "inner_k".into(),
                outer_key: 0,
                residual: None,
            }),
        ),
        (
            "SortMergeJoin".into(),
            mk(PhysOp::SortMergeJoin {
                left: Box::new(sorted("outer_t")),
                right: Box::new(sorted("inner_t")),
                left_key: 0,
                right_key: 0,
                residual: None,
            }),
        ),
        (
            "HashJoin".into(),
            mk(PhysOp::HashJoin {
                left: Box::new(scan(db, "outer_t")),
                right: Box::new(scan(db, "inner_t")),
                left_key: 0,
                right_key: 0,
                residual: None,
            }),
        ),
    ]
}

pub fn run(p: &Params) -> Report {
    let mut rows = Vec::new();
    for &(outer, inner) in &p.grid {
        let db = setup(outer, inner, p.buffer_pages, p.seed);
        let mut methods = Vec::new();
        let mut expect: Option<usize> = None;
        for (name, plan) in forced_plans(&db, p.buffer_pages) {
            // Forced tuple-pair methods are quadratic; measuring BNL on a
            // 50k x 50k grid would take tens of minutes for a number whose
            // magnitude is obvious. Cap the forced-BNL product.
            if name == "BlockNestedLoopJoin" && (outer as u64) * (inner as u64) > 20_000_000 {
                continue;
            }
            db.pool().evict_all().unwrap();
            let before = db.disk().snapshot();
            let result = db.run_plan(&plan).unwrap();
            let io = db.disk().snapshot().since(&before).total();
            match expect {
                None => expect = Some(result.len()),
                Some(n) => assert_eq!(n, result.len(), "{name} output mismatch"),
            }
            methods.push((name, io));
        }
        let (_, physical) = db
            .plan_sql("SELECT COUNT(*) FROM outer_t o JOIN inner_t i ON o.k = i.k")
            .unwrap();
        let pick = physical
            .join_methods()
            .first()
            .copied()
            .unwrap_or("?")
            .to_string();
        rows.push(Row {
            outer_rows: outer,
            inner_rows: inner,
            methods,
            optimizer_pick: pick,
        });
    }
    Report { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_method_dominates_and_picks_are_near_optimal() {
        let report = run(&Params::quick());
        // Small outer, big indexed inner: INL crushes BNL.
        let small_outer = report.rows.iter().min_by_key(|r| r.outer_rows).unwrap();
        let inl = small_outer.io_of("IndexNestedLoopJoin").unwrap();
        let bnl = small_outer.io_of("BlockNestedLoopJoin").unwrap();
        assert!(inl < bnl, "tiny outer: INL {inl} !< BNL {bnl}");
        // Big-big: hash join beats INL (which probes per outer row).
        let big_big = report.rows.iter().max_by_key(|r| r.outer_rows).unwrap();
        let hj = big_big.io_of("HashJoin").unwrap();
        let inl2 = big_big.io_of("IndexNestedLoopJoin").unwrap();
        assert!(hj < inl2, "big-big: HJ {hj} !< INL {inl2}");
        // Different winners across the grid — the "no dominator" claim.
        assert_ne!(
            small_outer.best_method(),
            big_big.best_method(),
            "same method won everywhere"
        );
        // The optimizer's pick costs at most 3x the best measured method.
        for r in &report.rows {
            assert!(
                r.pick_regret() <= 3.0,
                "({}, {}): pick {} regret {:.1}",
                r.outer_rows,
                r.inner_rows,
                r.optimizer_pick,
                r.pick_regret()
            );
        }
    }
}
