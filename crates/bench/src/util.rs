//! Harness utilities: aligned-table rendering and small statistics.

/// A simple aligned text table (paper-style output).
#[derive(Debug, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(title: impl Into<String>, header: &[&str]) -> Table {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row arity");
        self.rows.push(cells);
        self
    }

    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {}\n", self.title));
        let line = |cells: &[String], widths: &[usize]| -> String {
            let mut s = String::from("|");
            for i in 0..ncols {
                s.push_str(&format!(" {:>w$} |", cells[i], w = widths[i]));
            }
            s.push('\n');
            s
        };
        out.push_str(&line(&self.header, &widths));
        let mut sep = String::from("|");
        for w in &widths {
            sep.push_str(&format!("{}|", "-".repeat(w + 2)));
        }
        sep.push('\n');
        out.push_str(&sep);
        for r in &self.rows {
            out.push_str(&line(r, &widths));
        }
        out
    }
}

/// Format a float tightly.
pub fn fmt(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

/// q-error of an estimate vs the truth (always >= 1; caps at 1e9).
pub fn q_error(estimate: f64, truth: f64) -> f64 {
    let (e, t) = (estimate.max(1e-9), truth.max(1e-9));
    (e / t).max(t / e).min(1e9)
}

/// Median of a sample (empty → NaN).
pub fn median(values: &[f64]) -> f64 {
    percentile(values, 50.0)
}

/// Percentile via nearest-rank (empty → NaN).
pub fn percentile(values: &[f64], p: f64) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    let mut v: Vec<f64> = values.to_vec();
    v.sort_by(f64::total_cmp);
    let rank = ((p / 100.0) * (v.len() as f64 - 1.0)).round() as usize;
    v[rank.min(v.len() - 1)]
}

/// Spearman rank correlation between two equal-length samples.
pub fn spearman(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    let ra = ranks(a);
    let rb = ranks(b);
    pearson(&ra, &rb)
}

fn ranks(v: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..v.len()).collect();
    idx.sort_by(|&i, &j| v[i].total_cmp(&v[j]));
    let mut r = vec![0.0; v.len()];
    let mut i = 0;
    while i < idx.len() {
        // Average ranks over ties.
        let mut j = i;
        while j + 1 < idx.len() && v[idx[j + 1]] == v[idx[i]] {
            j += 1;
        }
        let avg = (i + j) as f64 / 2.0;
        for k in i..=j {
            r[idx[k]] = avg;
        }
        i = j + 1;
    }
    r
}

fn pearson(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len() as f64;
    if n < 2.0 {
        return f64::NAN;
    }
    let (ma, mb) = (a.iter().sum::<f64>() / n, b.iter().sum::<f64>() / n);
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for i in 0..a.len() {
        let (da, db) = (a[i] - ma, b[i] - mb);
        cov += da * db;
        va += da * da;
        vb += db * db;
    }
    if va == 0.0 || vb == 0.0 {
        return f64::NAN;
    }
    cov / (va.sqrt() * vb.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("Demo", &["name", "value"]);
        t.row(vec!["alpha".into(), "1".into()]);
        t.row(vec!["b".into(), "12345".into()]);
        let s = t.render();
        assert!(s.contains("## Demo"));
        assert!(s.contains("| alpha |     1 |"));
        assert!(s.contains("|     b | 12345 |"));
    }

    #[test]
    fn q_error_symmetric() {
        assert_eq!(q_error(10.0, 100.0), 10.0);
        assert_eq!(q_error(100.0, 10.0), 10.0);
        assert_eq!(q_error(5.0, 5.0), 1.0);
        assert!(q_error(0.0, 100.0) > 1e6, "zero estimates capped, not inf");
    }

    #[test]
    fn median_and_percentiles() {
        let v = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(median(&v), 3.0);
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 100.0), 5.0);
        assert!(median(&[]).is_nan());
    }

    #[test]
    fn spearman_correlations() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let up = [10.0, 20.0, 30.0, 40.0];
        let down = [9.0, 7.0, 5.0, 1.0];
        assert!((spearman(&a, &up) - 1.0).abs() < 1e-9);
        assert!((spearman(&a, &down) + 1.0).abs() < 1e-9);
        // Monotone but nonlinear still gives rho = 1 (rank-based).
        let exp = [1.0, 10.0, 100.0, 1000.0];
        assert!((spearman(&a, &exp) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn spearman_handles_ties() {
        let a = [1.0, 1.0, 2.0, 3.0];
        let b = [5.0, 5.0, 6.0, 7.0];
        let rho = spearman(&a, &b);
        assert!((rho - 1.0).abs() < 1e-9);
    }
}
