//! **F1 — Optimization time vs. number of relations.**
//!
//! Left-deep DP is exponential in the relation count but practical into the
//! double digits; bushy DP blows up sooner (especially on cliques); the
//! greedy heuristics stay polynomial. We time `plan_sql` per strategy over
//! chain / star / clique topologies.

use std::time::Instant;

use evopt_engine::{Database, Strategy};
use evopt_workload::{JoinWorkload, Topology};

use crate::util::Table;

#[derive(Debug, Clone)]
pub struct Params {
    pub topologies: Vec<Topology>,
    pub max_n: usize,
    /// Bushy DP is skipped above this n (3^n partitions).
    pub bushy_max_n: usize,
    pub base_rows: usize,
    pub seed: u64,
}

impl Params {
    pub fn quick() -> Params {
        Params {
            topologies: vec![Topology::Chain, Topology::Clique],
            max_n: 6,
            bushy_max_n: 6,
            base_rows: 30,
            seed: 2,
        }
    }

    pub fn full() -> Params {
        Params {
            topologies: vec![Topology::Chain, Topology::Star, Topology::Clique],
            max_n: 10,
            bushy_max_n: 8,
            base_rows: 40,
            seed: 2,
        }
    }
}

#[derive(Debug, Clone)]
pub struct Row {
    pub topology: String,
    pub n: usize,
    /// (strategy name, planning micros) — None if skipped.
    pub timings: Vec<(String, Option<u128>)>,
}

impl Row {
    pub fn micros(&self, strategy: &str) -> Option<u128> {
        self.timings
            .iter()
            .find(|(s, _)| s == strategy)
            .and_then(|(_, t)| *t)
    }
}

#[derive(Debug, Clone)]
pub struct Report {
    pub rows: Vec<Row>,
}

impl Report {
    pub fn render(&self) -> String {
        let mut t = Table::new(
            "F1: optimization time (µs) vs relation count",
            &[
                "topology",
                "n",
                "system-r",
                "bushy-dp",
                "dpccp",
                "greedy",
                "goo",
                "quickpick",
            ],
        );
        for r in &self.rows {
            let get = |s: &str| {
                r.micros(s)
                    .map(|v| v.to_string())
                    .unwrap_or_else(|| "-".into())
            };
            t.row(vec![
                r.topology.clone(),
                r.n.to_string(),
                get("system-r"),
                get("bushy-dp"),
                get("dpccp"),
                get("greedy"),
                get("goo"),
                get("quickpick"),
            ]);
        }
        t.render()
    }
}

pub fn run(p: &Params) -> Report {
    let mut rows = Vec::new();
    for &topo in &p.topologies {
        for n in 2..=p.max_n {
            let db = Database::with_defaults();
            // Keep data tiny (growth 1.2): F1 measures planning, not runtime.
            let mut w = JoinWorkload::new(topo, n, p.base_rows, p.seed);
            w.growth = 1.2;
            w.load(&db, false).expect("load");
            let sql = w.count_query();
            let mut timings = Vec::new();
            for strategy in [
                Strategy::SystemR,
                Strategy::BushyDp,
                Strategy::DpCcp,
                Strategy::Greedy,
                Strategy::Goo,
                Strategy::QuickPick {
                    samples: 100,
                    seed: 1,
                },
            ] {
                // Both exhaustive bushy enumerators are O(3ⁿ) on cliques;
                // cap them there (DPccp stays uncapped on sparse graphs —
                // that's its whole point).
                let capped = match strategy {
                    Strategy::BushyDp => n > p.bushy_max_n,
                    Strategy::DpCcp => matches!(topo, Topology::Clique) && n > p.bushy_max_n,
                    _ => false,
                };
                if capped {
                    timings.push((strategy.name().to_string(), None));
                    continue;
                }
                db.set_strategy(strategy);
                // Warm once (binding caches nothing, but fair timing).
                db.plan_sql(&sql).expect("plan");
                let start = Instant::now();
                db.plan_sql(&sql).expect("plan");
                timings.push((
                    strategy.name().to_string(),
                    Some(start.elapsed().as_micros()),
                ));
            }
            rows.push(Row {
                topology: topo.name().to_string(),
                n,
                timings,
            });
        }
    }
    Report { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dp_grows_superlinearly_but_stays_practical() {
        let report = run(&Params::quick());
        // Clique at the max n: DP costs clearly more than greedy.
        let big_clique = report
            .rows
            .iter()
            .filter(|r| r.topology == "clique")
            .max_by_key(|r| r.n)
            .unwrap();
        let dp = big_clique.micros("system-r").unwrap();
        let greedy = big_clique.micros("greedy").unwrap();
        assert!(
            dp >= greedy,
            "clique n={}: DP {}µs < greedy {}µs?",
            big_clique.n,
            dp,
            greedy
        );
        // Still practical: a 6-relation clique plans in well under a second.
        assert!(dp < 2_000_000, "DP took {dp}µs");
        // Growth: DP on clique-6 costs more than clique-3.
        let small_clique = report
            .rows
            .iter()
            .find(|r| r.topology == "clique" && r.n == 3)
            .unwrap();
        assert!(dp > small_clique.micros("system-r").unwrap());
        let text = report.render();
        assert!(text.contains("bushy-dp"));
    }
}
