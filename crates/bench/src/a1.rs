//! **A1 (ablation) — What the algebraic rewrites buy.**
//!
//! DESIGN.md §3 runs constant folding and predicate pushdown before
//! enumeration because they are "always wins". This ablation checks that
//! claim: plan the same queries with rewrites on and off, compare
//! estimated cost and measured I/O. (Correctness under both settings is
//! pinned by `tests/optimizer_properties.rs`.)
//!
//! Note the engine is *partially* robust to the ablation: join-graph
//! extraction routes filter conjuncts to relations on its own, so the
//! pushdown mostly pays off on single-table access paths (sargable
//! predicates reaching the index) and via tighter cardinalities at the
//! leaves.

use evopt_engine::{Database, DatabaseConfig};
use evopt_workload::load_wisconsin;

use crate::util::{fmt, Table};

#[derive(Debug, Clone)]
pub struct Params {
    pub rows: usize,
    pub buffer_pages: usize,
    pub seed: u64,
}

impl Params {
    pub fn quick() -> Params {
        Params {
            rows: 4_000,
            buffer_pages: 32,
            seed: 3,
        }
    }

    pub fn full() -> Params {
        Params {
            rows: 30_000,
            buffer_pages: 64,
            seed: 3,
        }
    }
}

#[derive(Debug, Clone)]
pub struct Row {
    pub query: String,
    pub est_on: f64,
    pub est_off: f64,
    pub io_on: u64,
    pub io_off: u64,
}

#[derive(Debug, Clone)]
pub struct Report {
    pub rows: Vec<Row>,
}

impl Report {
    pub fn render(&self) -> String {
        let mut t = Table::new(
            "A1 (ablation): algebraic rewrites on vs off",
            &["query", "est cost on", "est cost off", "io on", "io off"],
        );
        for r in &self.rows {
            t.row(vec![
                r.query.clone(),
                fmt(r.est_on),
                fmt(r.est_off),
                r.io_on.to_string(),
                r.io_off.to_string(),
            ]);
        }
        t.render()
    }
}

pub fn run(p: &Params) -> Report {
    let db = Database::new(DatabaseConfig {
        buffer_pages: p.buffer_pages,
        ..Default::default()
    });
    load_wisconsin(&db, "wa", p.rows, p.seed).unwrap();
    load_wisconsin(&db, "wb", p.rows, p.seed + 1).unwrap();
    db.execute("CREATE INDEX wa_u1 ON wa (unique1)").unwrap();
    db.execute("CREATE INDEX wb_u1 ON wb (unique1)").unwrap();
    db.execute("ANALYZE").unwrap();
    let n = p.rows as i64;
    let queries: Vec<(String, String)> = vec![
        (
            // HAVING on a group column: the pushdown rewrite moves it below
            // the aggregate, where it becomes a sargable index range —
            // without it the whole table is scanned and aggregated first.
            "having-to-where".into(),
            format!(
                "SELECT unique1, COUNT(*) AS n FROM wa GROUP BY unique1 \
                 HAVING unique1 < {}",
                n / 100
            ),
        ),
        (
            // Constant-folding: a tautology plus a real predicate.
            "constant-folding".into(),
            format!(
                "SELECT COUNT(*) FROM wa WHERE 1 + 1 = 2 AND unique1 < {}",
                n / 100
            ),
        ),
        (
            // Join with filters spelled above the join.
            "join-filters-above".into(),
            format!(
                "SELECT COUNT(*) FROM wa a, wb b WHERE a.unique1 = b.unique1 \
                 AND a.unique2 < {} AND b.one_pct = 3",
                n / 20
            ),
        ),
    ];
    let model = db.optimizer_config().cost_model;
    let mut rows = Vec::new();
    for (label, sql) in queries {
        let mut est = [0f64; 2];
        let mut io = [0u64; 2];
        for (i, on) in [true, false].into_iter().enumerate() {
            db.set_rewrites(on);
            let (_, plan) = db.plan_sql(&sql).unwrap();
            est[i] = model.total(plan.est_cost);
            db.pool().evict_all().unwrap();
            let before = db.disk().snapshot();
            db.run_plan(&plan).unwrap();
            io[i] = db.disk().snapshot().since(&before).total();
        }
        db.set_rewrites(true);
        rows.push(Row {
            query: label,
            est_on: est[0],
            est_off: est[1],
            io_on: io[0],
            io_off: io[1],
        });
    }
    Report { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rewrites_never_hurt_and_having_pushdown_wins() {
        let report = run(&Params::quick());
        for r in &report.rows {
            assert!(
                r.est_on <= r.est_off * 1.001,
                "{}: rewrites made it worse ({} vs {})",
                r.query,
                r.est_on,
                r.est_off
            );
            assert!(
                r.io_on <= r.io_off + r.io_off / 10 + 2,
                "{}: rewrites cost I/O ({} vs {})",
                r.query,
                r.io_on,
                r.io_off
            );
        }
        // The HAVING→WHERE move has a measurable payoff.
        let having = report
            .rows
            .iter()
            .find(|r| r.query == "having-to-where")
            .unwrap();
        assert!(
            having.est_on < having.est_off * 0.8,
            "having pushdown gained nothing: {} vs {}",
            having.est_on,
            having.est_off
        );
        let text = report.render();
        assert!(text.contains("ablation"));
    }
}
