//! **T1 — Optimized vs. unoptimized plan cost.**
//!
//! The headline claim of foundational-era cost-based optimization: picking
//! access paths, join methods, and join orders by cost beats syntactic
//! nested-loop evaluation by an order of magnitude on multi-join queries.
//!
//! Workload: TPC-H-lite queries plus Wisconsin-style selections/joins.
//! For each query template we optimize once with the System R strategy and
//! once with the `Syntactic` baseline, execute both from a cold buffer
//! pool, and report estimated cost and **measured physical page I/O**.

use evopt_engine::{Database, DatabaseConfig, Strategy};
use evopt_workload::{load_tpch_lite, load_wisconsin, JoinWorkload, Topology};

use crate::util::{fmt, Table};

#[derive(Debug, Clone)]
pub struct Params {
    pub tpch_scale: f64,
    pub wisconsin_rows: usize,
    pub buffer_pages: usize,
    pub seed: u64,
}

impl Params {
    pub fn quick() -> Params {
        Params {
            tpch_scale: 0.2,
            wisconsin_rows: 2_000,
            buffer_pages: 32,
            seed: 42,
        }
    }

    pub fn full() -> Params {
        Params {
            tpch_scale: 1.0,
            wisconsin_rows: 20_000,
            buffer_pages: 64,
            seed: 42,
        }
    }
}

#[derive(Debug, Clone)]
pub struct Row {
    pub query: String,
    pub est_cost_opt: f64,
    pub est_cost_base: f64,
    pub io_opt: u64,
    pub io_base: u64,
    pub us_opt: u128,
    pub us_base: u128,
    pub rows_returned: usize,
}

impl Row {
    /// Measured-I/O speedup of the optimizer over the baseline.
    pub fn io_speedup(&self) -> f64 {
        self.io_base.max(1) as f64 / self.io_opt.max(1) as f64
    }

    /// Wall-clock speedup. At simulator scale a bad plan's damage can be
    /// pure CPU (a cross product streamed through cached pages), so total
    /// cost needs both currencies — exactly like the cost model itself.
    pub fn time_speedup(&self) -> f64 {
        self.us_base.max(1) as f64 / self.us_opt.max(1) as f64
    }

    /// Estimated-cost speedup.
    pub fn est_speedup(&self) -> f64 {
        self.est_cost_base / self.est_cost_opt.max(1e-9)
    }
}

#[derive(Debug, Clone)]
pub struct Report {
    pub rows: Vec<Row>,
}

impl Report {
    pub fn render(&self) -> String {
        let mut t = Table::new(
            "T1: optimized (System R) vs unoptimized (syntactic BNL) plans",
            &[
                "query",
                "est cost opt",
                "est cost base",
                "io opt",
                "io base",
                "io speedup",
                "time speedup",
            ],
        );
        for r in &self.rows {
            t.row(vec![
                r.query.clone(),
                fmt(r.est_cost_opt),
                fmt(r.est_cost_base),
                r.io_opt.to_string(),
                r.io_base.to_string(),
                format!("{:.1}x", r.io_speedup()),
                format!("{:.1}x", r.time_speedup()),
            ]);
        }
        t.render()
    }
}

/// Query templates: (label, SQL).
fn templates(p: &Params) -> Vec<(String, String)> {
    let n = p.wisconsin_rows as i64;
    // Star/chain workloads written with a BAD syntactic FROM order (two
    // unconnected relations first, forcing the baseline through a cross
    // product) — exactly the order-sensitive queries 1977-era users wrote.
    // The optimizer's job is to be order-insensitive. The sizes are fixed
    // (not scaled) so the baseline's cross product stays executable.
    let star = star_workload(p);
    let star_bad_from: Vec<usize> = vec![1, 2, 0, 3];
    let chain = chain_workload(p);
    let chain_bad_from: Vec<usize> = vec![0, 2, 1, 3];
    vec![
        (
            "star-bad-from".into(),
            star.count_query_with_from_order(&star_bad_from),
        ),
        (
            "chain-bad-from".into(),
            chain.count_query_with_from_order(&chain_bad_from),
        ),
        (
            "wisc-1%-sel".into(),
            "SELECT COUNT(*) FROM wisc_a WHERE one_pct = 7".into(),
        ),
        (
            "wisc-point".into(),
            format!("SELECT stringu1 FROM wisc_a WHERE unique1 = {}", n / 2),
        ),
        (
            "wisc-join-uu".into(),
            "SELECT COUNT(*) FROM wisc_a a JOIN wisc_b b ON a.unique1 = b.unique1 \
             WHERE a.one_pct = 3"
                .into(),
        ),
        (
            "wisc-join-sel".into(),
            format!(
                "SELECT COUNT(*) FROM wisc_a a JOIN wisc_b b ON a.unique1 = b.unique1 \
                 WHERE b.unique2 < {}",
                n / 10
            ),
        ),
        (
            "tpch-cust-orders".into(),
            evopt_workload::tpch_lite::queries::CUSTOMER_ORDERS.to_string(),
        ),
        (
            "tpch-shipped-big".into(),
            evopt_workload::tpch_lite::queries::SHIPPED_BIG_ORDERS.to_string(),
        ),
        (
            "tpch-3way".into(),
            "SELECT COUNT(*) FROM lineitem l \
             JOIN orders o ON l.l_order = o.o_key \
             JOIN customer c ON o.o_customer = c.c_key \
             WHERE c.c_balance > 8000"
                .into(),
        ),
        (
            "tpch-5way-revenue".into(),
            evopt_workload::tpch_lite::queries::REVENUE_PER_NATION.to_string(),
        ),
    ]
}

fn star_workload(p: &Params) -> JoinWorkload {
    let mut w = JoinWorkload::new(Topology::Star, 4, 40, p.seed);
    w.growth = 2.5; // 40, 100, 250, 625 rows
    w
}

fn chain_workload(p: &Params) -> JoinWorkload {
    let mut w = JoinWorkload::new(Topology::Chain, 4, 40, p.seed);
    w.growth = 2.5;
    w
}

pub fn setup(p: &Params) -> Database {
    let db = Database::new(DatabaseConfig {
        buffer_pages: p.buffer_pages,
        ..Default::default()
    });
    load_tpch_lite(&db, p.tpch_scale, p.seed).expect("tpch load");
    load_wisconsin(&db, "wisc_a", p.wisconsin_rows, p.seed).expect("wisc_a");
    load_wisconsin(&db, "wisc_b", p.wisconsin_rows, p.seed + 1).expect("wisc_b");
    db.execute("CREATE INDEX wisc_a_u1 ON wisc_a (unique1)")
        .unwrap();
    db.execute("CREATE INDEX wisc_b_u1 ON wisc_b (unique1)")
        .unwrap();
    star_workload(p).load(&db, true).expect("star");
    chain_workload(p).load(&db, true).expect("chain");
    db.execute("ANALYZE").unwrap();
    db
}

pub fn run(p: &Params) -> Report {
    let db = setup(p);
    let model = db.optimizer_config().cost_model;
    let mut rows = Vec::new();
    for (label, sql) in templates(p) {
        let mut io = [0u64; 2];
        let mut est = [0f64; 2];
        let mut micros = [0u128; 2];
        let mut returned = 0usize;
        for (i, strategy) in [Strategy::SystemR, Strategy::Syntactic]
            .into_iter()
            .enumerate()
        {
            db.set_strategy(strategy);
            let (_, physical) = db.plan_sql(&sql).expect("plan");
            est[i] = model.total(physical.est_cost);
            db.pool().evict_all().expect("cold cache");
            let before = db.disk().snapshot();
            let started = std::time::Instant::now();
            let result = db.run_plan(&physical).expect("run");
            micros[i] = started.elapsed().as_micros();
            io[i] = db.disk().snapshot().since(&before).total();
            returned = result.len();
        }
        db.set_strategy(Strategy::SystemR);
        rows.push(Row {
            query: label,
            est_cost_opt: est[0],
            est_cost_base: est[1],
            io_opt: io[0],
            io_base: io[1],
            us_opt: micros[0],
            us_base: micros[1],
            rows_returned: returned,
        });
    }
    Report { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimizer_never_loses_and_wins_big_on_joins() {
        let report = run(&Params::quick());
        assert_eq!(report.rows.len(), 10);
        for r in &report.rows {
            // The optimizer should never be meaningfully worse than the
            // baseline on measured I/O.
            assert!(
                r.io_opt <= r.io_base + r.io_base / 5 + 4,
                "{}: opt {} vs base {}",
                r.query,
                r.io_opt,
                r.io_base
            );
        }
        // The multi-join templates see large wins.
        let joins: Vec<&Row> = report
            .rows
            .iter()
            .filter(|r| {
                r.query.contains("join") || r.query.contains("way") || r.query.contains("bad-from")
            })
            .collect();
        assert!(!joins.is_empty());
        // Total-cost speedup: I/O where it shows, CPU/wall-clock where the
        // damage is a streamed cross product.
        let best = joins
            .iter()
            .map(|r| r.io_speedup().max(r.time_speedup()))
            .fold(0.0, f64::max);
        assert!(best >= 5.0, "best join speedup only {best:.1}x");
        // Estimated cost agrees with the direction.
        for r in &joins {
            assert!(
                r.est_speedup() > 1.0,
                "{}: estimated cost should favour the optimizer",
                r.query
            );
        }
        let text = report.render();
        assert!(text.contains("io speedup"));
    }
}
