//! # evopt-plan
//!
//! The logical query algebra and its rewrites.
//!
//! * [`logical::LogicalPlan`] — scan / filter / project / join / aggregate /
//!   sort / limit nodes with derived schemas and an EXPLAIN-style display.
//! * [`rules`] — the algebraic rewrites every optimizer runs before join
//!   enumeration: constant folding, predicate pushdown (through projections
//!   and to the correct side of joins), and column pruning.
//! * [`join_graph`] — flattens a join tree into relations + predicates with
//!   relation-set masks, the input the cost-based enumerator works on.
//!
//! Everything here is *logical*: no costs, no access paths. Those live in
//! `evopt-core`.

// Library code must not panic on fault paths: unwrap/expect are banned
// outside tests (see clippy.toml: allow-unwrap-in-tests).
#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod join_graph;
pub mod logical;
pub mod rules;

pub use join_graph::{GraphPredicate, JoinGraph, RelMask};
pub use logical::{AggExpr, LogicalPlan, SortKey};
pub use rules::{fold_constants, prune_columns, push_down_filters, rewrite_all};
