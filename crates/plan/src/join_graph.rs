//! Join-graph extraction.
//!
//! Flattens a (filter-over-)join subtree into:
//!
//! * an ordered list of **relations** (the join's leaf plans, in syntactic
//!   order), each with its global column offset, and
//! * a list of **predicates**, each tagged with the bitmask of relations it
//!   touches.
//!
//! Predicates are expressed over the *global* ordinal space — the
//! concatenation of all relation schemas in syntactic order — so the
//! enumerator can reorder relations freely and remap ordinals at the end.
//! Relation count is capped at 64 (one bit each), far beyond what the
//! exponential enumerators can chew anyway.

use evopt_common::{BinOp, Expr, Schema};

use crate::logical::LogicalPlan;

/// Bitmask over relation indices.
pub type RelMask = u64;

/// Number of set bits.
pub fn mask_len(m: RelMask) -> u32 {
    m.count_ones()
}

/// Iterate the relation indices in a mask, ascending.
pub fn mask_iter(m: RelMask) -> impl Iterator<Item = usize> {
    (0..64).filter(move |i| m & (1u64 << i) != 0)
}

/// A predicate over the global ordinal space plus the set of relations it
/// references.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphPredicate {
    pub expr: Expr,
    pub relations: RelMask,
}

impl GraphPredicate {
    /// If this is a two-relation equi-join `Col(i) = Col(j)`, return the two
    /// global column ordinals `(lower, higher)`.
    pub fn as_equi_join(&self) -> Option<(usize, usize)> {
        if mask_len(self.relations) != 2 {
            return None;
        }
        if let Expr::Binary {
            op: BinOp::Eq,
            left,
            right,
        } = &self.expr
        {
            if let (Expr::Column(a), Expr::Column(b)) = (&**left, &**right) {
                return Some((*a.min(b), *a.max(b)));
            }
        }
        None
    }
}

/// A flattened join query.
#[derive(Debug, Clone)]
pub struct JoinGraph {
    /// Leaf plans in syntactic order. Usually `Scan`s (possibly wrapped by
    /// pruning projections); any non-join node becomes an opaque leaf.
    pub relations: Vec<LogicalPlan>,
    /// Cached schema of each relation.
    pub schemas: Vec<Schema>,
    /// Global column offset of each relation.
    pub offsets: Vec<usize>,
    /// All predicates from the join tree and any filters above it.
    pub predicates: Vec<GraphPredicate>,
}

impl JoinGraph {
    /// Flatten `plan`. Returns `None` if the root is not a join (single
    /// relation queries don't need enumeration).
    ///
    /// The walk descends through `Join` nodes and absorbs `Filter`s sitting
    /// on them; anything else becomes a leaf relation.
    pub fn extract(plan: &LogicalPlan) -> Option<JoinGraph> {
        if !matches!(plan, LogicalPlan::Join { .. } | LogicalPlan::Filter { .. }) {
            return None;
        }
        let mut relations = Vec::new();
        let mut raw_preds: Vec<(Expr, usize)> = Vec::new(); // (expr in subtree-local ords, subtree base offset)
        collect(plan, 0, &mut relations, &mut raw_preds)?;
        if relations.len() < 2 || relations.len() > 64 {
            return None;
        }
        let schemas: Vec<Schema> = relations.iter().map(|r| r.schema()).collect();
        let mut offsets = Vec::with_capacity(relations.len());
        let mut acc = 0usize;
        for s in &schemas {
            offsets.push(acc);
            acc += s.len();
        }
        let total = acc;
        // Raw predicates are already in global ordinals (collect tracks the
        // running offset); tag each with its relation mask.
        let col_to_rel = |c: usize| -> Option<usize> {
            (0..relations.len())
                .rev()
                .find(|&r| offsets[r] <= c)
                .filter(|&r| c < offsets[r] + schemas[r].len())
        };
        let mut predicates = Vec::with_capacity(raw_preds.len());
        for (expr, _) in raw_preds {
            let mut mask: RelMask = 0;
            let mut ok = true;
            for c in expr.referenced_columns() {
                if c >= total {
                    ok = false;
                    break;
                }
                match col_to_rel(c) {
                    Some(r) => mask |= 1u64 << r,
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
            if !ok {
                return None;
            }
            predicates.push(GraphPredicate {
                expr,
                relations: mask,
            });
        }
        Some(JoinGraph {
            relations,
            schemas,
            offsets,
            predicates,
        })
    }

    /// Mask with every relation set.
    pub fn all_mask(&self) -> RelMask {
        if self.relations.len() == 64 {
            u64::MAX
        } else {
            (1u64 << self.relations.len()) - 1
        }
    }

    /// Predicates whose relations are fully contained in `mask` **and**
    /// reference relations on both sides of (`left`, `right`) — i.e. the
    /// predicates applicable when joining those two subsets.
    pub fn join_predicates(&self, left: RelMask, right: RelMask) -> Vec<&GraphPredicate> {
        self.predicates
            .iter()
            .filter(|p| {
                p.relations & !(left | right) == 0
                    && p.relations & left != 0
                    && p.relations & right != 0
            })
            .collect()
    }

    /// Single-relation predicates on relation `r` (pushed-down filters).
    pub fn local_predicates(&self, r: usize) -> Vec<&GraphPredicate> {
        let bit = 1u64 << r;
        self.predicates
            .iter()
            .filter(|p| p.relations == bit)
            .collect()
    }

    /// Whether two subsets are connected by at least one predicate.
    pub fn connected(&self, a: RelMask, b: RelMask) -> bool {
        self.predicates
            .iter()
            .any(|p| p.relations & a != 0 && p.relations & b != 0 && p.relations & !(a | b) == 0)
    }

    /// Neighbour relations of subset `s`: relations outside `s` that share a
    /// predicate with it.
    pub fn neighbours(&self, s: RelMask) -> RelMask {
        let mut n = 0;
        for p in &self.predicates {
            if p.relations & s != 0 {
                n |= p.relations & !s;
            }
        }
        n
    }

    /// Whether the relations in `mask` form one connected component of the
    /// predicate graph. Singletons are connected; the empty set is not.
    pub fn subgraph_connected(&self, mask: RelMask) -> bool {
        if mask == 0 {
            return false;
        }
        let start = 1u64 << mask.trailing_zeros();
        let mut seen = start;
        loop {
            let grow = self.neighbours(seen) & mask;
            if grow & !seen == 0 {
                break;
            }
            seen |= grow;
        }
        seen == mask
    }
}

/// Recursive worker: appends leaves and predicates (rebased to global
/// ordinals via `offset`). Returns the subtree's column width.
fn collect(
    plan: &LogicalPlan,
    offset: usize,
    relations: &mut Vec<LogicalPlan>,
    preds: &mut Vec<(Expr, usize)>,
) -> Option<usize> {
    match plan {
        LogicalPlan::Join {
            left,
            right,
            predicate,
        } => {
            let lw = collect(left, offset, relations, preds)?;
            let rw = collect(right, offset + lw, relations, preds)?;
            if let Some(p) = predicate {
                for c in p.split_conjuncts() {
                    preds.push((c.remap_columns(&|i| i + offset), offset));
                }
            }
            Some(lw + rw)
        }
        LogicalPlan::Filter { input, predicate } => {
            let w = collect(input, offset, relations, preds)?;
            for c in predicate.split_conjuncts() {
                preds.push((c.remap_columns(&|i| i + offset), offset));
            }
            Some(w)
        }
        leaf => {
            let w = leaf.schema().len();
            relations.push(leaf.clone());
            Some(w)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logical::test_helpers::scan;
    use evopt_common::expr::{col, lit};

    fn join(l: LogicalPlan, r: LogicalPlan, p: Option<Expr>) -> LogicalPlan {
        LogicalPlan::Join {
            left: Box::new(l),
            right: Box::new(r),
            predicate: p,
        }
    }

    /// t ⋈ u ⋈ v as a left-deep chain: (t ⋈_{t.a=u.a} u) ⋈_{u.b=v.b} v.
    fn chain3() -> LogicalPlan {
        let tu = join(scan("t"), scan("u"), Some(Expr::eq(col(0), col(3))));
        join(tu, scan("v"), Some(Expr::eq(col(4), col(7))))
    }

    #[test]
    fn extract_chain() {
        let g = JoinGraph::extract(&chain3()).unwrap();
        assert_eq!(g.relations.len(), 3);
        assert_eq!(g.offsets, vec![0, 3, 6]);
        assert_eq!(g.predicates.len(), 2);
        assert_eq!(g.predicates[0].relations, 0b011);
        assert_eq!(g.predicates[1].relations, 0b110);
        assert_eq!(g.predicates[0].as_equi_join(), Some((0, 3)));
        assert_eq!(g.predicates[1].as_equi_join(), Some((4, 7)));
    }

    #[test]
    fn extract_absorbs_filters() {
        // WHERE t.a = 1 sits above the join after a partial pushdown.
        let p = LogicalPlan::Filter {
            input: Box::new(chain3()),
            predicate: Expr::eq(col(0), lit(1i64)),
        };
        let g = JoinGraph::extract(&p).unwrap();
        assert_eq!(g.predicates.len(), 3);
        let local: Vec<_> = g.local_predicates(0);
        assert_eq!(local.len(), 1);
        assert_eq!(local[0].expr, Expr::eq(col(0), lit(1i64)));
    }

    #[test]
    fn filters_on_leaves_stay_local_with_global_ordinals() {
        // (t WHERE t.b = 9) ⋈ u: the filter is under the join, so its
        // column must be rebased into the global space (still #1 here).
        let t_f = LogicalPlan::Filter {
            input: Box::new(scan("t")),
            predicate: Expr::eq(col(1), lit(9i64)),
        };
        let u_f = LogicalPlan::Filter {
            input: Box::new(scan("u")),
            predicate: Expr::eq(col(1), lit(7i64)),
        };
        let j = join(t_f, u_f, Some(Expr::eq(col(0), col(3))));
        let g = JoinGraph::extract(&j).unwrap();
        assert_eq!(g.relations.len(), 2);
        assert_eq!(g.predicates.len(), 3);
        // u's local filter on its column 1 → global 4.
        let u_local = g.local_predicates(1);
        assert_eq!(u_local.len(), 1);
        assert_eq!(u_local[0].expr, Expr::eq(col(4), lit(7i64)));
    }

    #[test]
    fn non_join_root_returns_none() {
        assert!(JoinGraph::extract(&scan("t")).is_none());
        let f = LogicalPlan::Filter {
            input: Box::new(scan("t")),
            predicate: Expr::eq(col(0), lit(1i64)),
        };
        assert!(JoinGraph::extract(&f).is_none(), "single relation");
    }

    #[test]
    fn cross_join_has_no_predicates() {
        let g = JoinGraph::extract(&join(scan("t"), scan("u"), None)).unwrap();
        assert!(g.predicates.is_empty());
        assert!(!g.connected(0b01, 0b10));
        assert_eq!(g.neighbours(0b01), 0);
    }

    #[test]
    fn connectivity_and_neighbours() {
        let g = JoinGraph::extract(&chain3()).unwrap();
        assert!(g.connected(0b001, 0b010)); // t-u
        assert!(g.connected(0b010, 0b100)); // u-v
        assert!(!g.connected(0b001, 0b100)); // t-v not directly
        assert!(g.connected(0b011, 0b100)); // {t,u}-v
        assert_eq!(g.neighbours(0b001), 0b010);
        assert_eq!(g.neighbours(0b010), 0b101);
        assert_eq!(g.all_mask(), 0b111);
    }

    #[test]
    fn join_predicates_for_subset_pair() {
        let g = JoinGraph::extract(&chain3()).unwrap();
        let ps = g.join_predicates(0b001, 0b010);
        assert_eq!(ps.len(), 1);
        assert_eq!(ps[0].as_equi_join(), Some((0, 3)));
        // Joining {t} with {v}: no applicable predicate (u not included).
        assert!(g.join_predicates(0b001, 0b100).is_empty());
        // Joining {t,u} with {v}: the u-v predicate applies.
        assert_eq!(g.join_predicates(0b011, 0b100).len(), 1);
    }

    #[test]
    fn opaque_leaves_allowed() {
        // An aggregate as a join input becomes an opaque relation.
        let agg = LogicalPlan::aggregate(scan("t"), vec![0], vec![]).unwrap();
        let j = join(agg.clone(), scan("u"), Some(Expr::eq(col(0), col(1))));
        let g = JoinGraph::extract(&j).unwrap();
        assert_eq!(g.relations.len(), 2);
        assert_eq!(g.relations[0], agg);
        assert_eq!(g.schemas[0].len(), 1);
        assert_eq!(g.offsets, vec![0, 1]);
    }

    #[test]
    fn bushy_shape_flattens_in_syntactic_order() {
        // (t ⋈ u) ⋈ (v ⋈ w)
        let tu = join(scan("t"), scan("u"), Some(Expr::eq(col(0), col(3))));
        let vw = join(scan("v"), scan("w"), Some(Expr::eq(col(0), col(3))));
        let root = join(tu, vw, Some(Expr::eq(col(1), col(7))));
        let g = JoinGraph::extract(&root).unwrap();
        assert_eq!(g.relations.len(), 4);
        assert_eq!(g.offsets, vec![0, 3, 6, 9]);
        // v-w predicate was local ordinals 0=3 within the right subtree →
        // global 6 = 9.
        let vw_pred = g.predicates.iter().find(|p| p.relations == 0b1100).unwrap();
        assert_eq!(vw_pred.as_equi_join(), Some((6, 9)));
        // Root predicate: t.b (#1) = w.b (#10)... col(7) in the root's frame
        // is the 8th column of tu++vw = v.b? Root frame: tu (6 cols) ++ vw
        // (6 cols); col(7) → global 7 = v.b. Mask = {t, v}.
        let root_pred = g.predicates.iter().find(|p| p.relations == 0b0101).unwrap();
        assert_eq!(root_pred.as_equi_join(), Some((1, 7)));
    }
}
