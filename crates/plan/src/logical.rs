//! Logical plan nodes.
//!
//! All expressions inside a node refer to **its input's** column ordinals
//! (for joins: the concatenation left ++ right). Schemas are derived at
//! construction and cached in the node.

use std::fmt;

use evopt_common::{AggFunc, Column, DataType, EvoptError, Expr, Result, Schema};

/// One aggregate computation: `func(arg)`. `arg` is `None` only for
/// `COUNT(*)`.
#[derive(Debug, Clone, PartialEq)]
pub struct AggExpr {
    pub func: AggFunc,
    pub arg: Option<Expr>,
    /// Output column name (e.g. `count_star`, `sum_price`, or an alias).
    pub name: String,
}

/// A sort key: output-column ordinal and direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SortKey {
    pub column: usize,
    pub ascending: bool,
}

/// A relational-algebra operator tree.
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalPlan {
    /// Base-table scan. The schema snapshot is taken at bind time.
    Scan { table: String, schema: Schema },
    /// Row filter.
    Filter {
        input: Box<LogicalPlan>,
        predicate: Expr,
    },
    /// Expression projection.
    Project {
        input: Box<LogicalPlan>,
        exprs: Vec<Expr>,
        schema: Schema,
    },
    /// Inner join; `predicate` is over `left ++ right`. `None` means a
    /// cross product.
    Join {
        left: Box<LogicalPlan>,
        right: Box<LogicalPlan>,
        predicate: Option<Expr>,
    },
    /// Grouped aggregation; output = group columns then aggregates.
    Aggregate {
        input: Box<LogicalPlan>,
        group_by: Vec<usize>,
        aggs: Vec<AggExpr>,
        schema: Schema,
    },
    /// Total-order sort.
    Sort {
        input: Box<LogicalPlan>,
        keys: Vec<SortKey>,
    },
    /// First-k.
    Limit {
        input: Box<LogicalPlan>,
        limit: usize,
    },
}

impl LogicalPlan {
    /// Construct a projection, deriving its schema. `names[i]` labels output
    /// column `i`; pass `None` to auto-name (`col` for plain columns,
    /// `exprN` otherwise).
    pub fn project(
        input: LogicalPlan,
        exprs: Vec<Expr>,
        names: Vec<Option<String>>,
    ) -> Result<LogicalPlan> {
        if names.len() != exprs.len() {
            return Err(EvoptError::Plan(
                "projection names/exprs length mismatch".into(),
            ));
        }
        let in_schema = input.schema();
        let mut cols = Vec::with_capacity(exprs.len());
        for (i, e) in exprs.iter().enumerate() {
            let dtype = e.data_type(&in_schema)?;
            let col = match (&names[i], e) {
                (Some(n), _) => Column::new(n.clone(), dtype),
                (None, Expr::Column(idx)) => in_schema
                    .column(*idx)
                    .cloned()
                    .ok_or_else(|| EvoptError::Plan(format!("bad projection ordinal {idx}")))?,
                (None, _) => Column::new(format!("expr{i}"), dtype),
            };
            cols.push(col);
        }
        Ok(LogicalPlan::Project {
            input: Box::new(input),
            exprs,
            schema: Schema::new(cols),
        })
    }

    /// Construct an aggregation, deriving its schema.
    pub fn aggregate(
        input: LogicalPlan,
        group_by: Vec<usize>,
        aggs: Vec<AggExpr>,
    ) -> Result<LogicalPlan> {
        let in_schema = input.schema();
        let mut cols = Vec::with_capacity(group_by.len() + aggs.len());
        for &g in &group_by {
            cols.push(
                in_schema
                    .column(g)
                    .cloned()
                    .ok_or_else(|| EvoptError::Plan(format!("bad group-by ordinal {g}")))?,
            );
        }
        for a in &aggs {
            let arg_type = match &a.arg {
                Some(e) => e.data_type(&in_schema)?,
                None => DataType::Int, // COUNT(*): argument type is irrelevant
            };
            let dtype = a.func.result_type(arg_type)?;
            // Aggregate output is non-null for COUNT; others may be null on
            // empty groups, but grouped aggregation only emits non-empty
            // groups, so keep it simple: nullable unless COUNT.
            let mut col = Column::new(a.name.clone(), dtype);
            col.nullable = !matches!(a.func, AggFunc::Count | AggFunc::CountStar);
            cols.push(col);
        }
        Ok(LogicalPlan::Aggregate {
            input: Box::new(input),
            group_by,
            aggs,
            schema: Schema::new(cols),
        })
    }

    /// The output schema of this node.
    pub fn schema(&self) -> Schema {
        match self {
            LogicalPlan::Scan { schema, .. } => schema.clone(),
            LogicalPlan::Filter { input, .. } => input.schema(),
            LogicalPlan::Project { schema, .. } => schema.clone(),
            LogicalPlan::Join { left, right, .. } => left.schema().join(&right.schema()),
            LogicalPlan::Aggregate { schema, .. } => schema.clone(),
            LogicalPlan::Sort { input, .. } => input.schema(),
            LogicalPlan::Limit { input, .. } => input.schema(),
        }
    }

    /// Direct children, for generic traversals.
    pub fn children(&self) -> Vec<&LogicalPlan> {
        match self {
            LogicalPlan::Scan { .. } => vec![],
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Aggregate { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. } => vec![input],
            LogicalPlan::Join { left, right, .. } => vec![left, right],
        }
    }

    /// Number of nodes in the tree.
    pub fn node_count(&self) -> usize {
        1 + self
            .children()
            .iter()
            .map(|c| c.node_count())
            .sum::<usize>()
    }

    /// Names of all base tables scanned, in tree order.
    pub fn tables(&self) -> Vec<String> {
        let mut out = Vec::new();
        fn walk(p: &LogicalPlan, out: &mut Vec<String>) {
            if let LogicalPlan::Scan { table, .. } = p {
                out.push(table.clone());
            }
            for c in p.children() {
                walk(c, out);
            }
        }
        walk(self, &mut out);
        out
    }

    /// Indented single-plan-per-line rendering (EXPLAIN-style).
    pub fn display_indent(&self) -> String {
        let mut s = String::new();
        fn walk(p: &LogicalPlan, depth: usize, s: &mut String) {
            for _ in 0..depth {
                s.push_str("  ");
            }
            match p {
                LogicalPlan::Scan { table, .. } => {
                    s.push_str(&format!("Scan: {table}\n"));
                }
                LogicalPlan::Filter { predicate, .. } => {
                    s.push_str(&format!("Filter: {predicate}\n"));
                }
                LogicalPlan::Project { exprs, .. } => {
                    let list: Vec<String> = exprs.iter().map(|e| e.to_string()).collect();
                    s.push_str(&format!("Project: {}\n", list.join(", ")));
                }
                LogicalPlan::Join { predicate, .. } => match predicate {
                    Some(p) => s.push_str(&format!("Join: {p}\n")),
                    None => s.push_str("CrossJoin\n"),
                },
                LogicalPlan::Aggregate { group_by, aggs, .. } => {
                    let alist: Vec<String> = aggs
                        .iter()
                        .map(|a| match &a.arg {
                            Some(e) => format!("{}({e})", a.func),
                            None => a.func.to_string(),
                        })
                        .collect();
                    s.push_str(&format!(
                        "Aggregate: group_by={group_by:?} aggs=[{}]\n",
                        alist.join(", ")
                    ));
                }
                LogicalPlan::Sort { keys, .. } => {
                    let klist: Vec<String> = keys
                        .iter()
                        .map(|k| format!("#{}{}", k.column, if k.ascending { "" } else { " DESC" }))
                        .collect();
                    s.push_str(&format!("Sort: {}\n", klist.join(", ")));
                }
                LogicalPlan::Limit { limit, .. } => {
                    s.push_str(&format!("Limit: {limit}\n"));
                }
            }
            for c in p.children() {
                walk(c, depth + 1, s);
            }
        }
        walk(self, 0, &mut s);
        s
    }
}

impl fmt::Display for LogicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.display_indent())
    }
}

#[cfg(test)]
pub(crate) mod test_helpers {
    use super::*;

    /// `name(c0 INT, c1 INT, c2 STR)` scan for rule tests.
    pub fn scan(name: &str) -> LogicalPlan {
        LogicalPlan::Scan {
            table: name.to_owned(),
            schema: Schema::new(vec![
                Column::new("a", DataType::Int).with_table(name),
                Column::new("b", DataType::Int).with_table(name),
                Column::new("s", DataType::Str).with_table(name),
            ]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::test_helpers::scan;
    use super::*;
    use evopt_common::expr::{col, lit};

    #[test]
    fn join_schema_concatenates() {
        let j = LogicalPlan::Join {
            left: Box::new(scan("t")),
            right: Box::new(scan("u")),
            predicate: None,
        };
        let s = j.schema();
        assert_eq!(s.len(), 6);
        assert_eq!(s.resolve(Some("u"), "a").unwrap(), 3);
    }

    #[test]
    fn project_derives_schema_and_validates() {
        let p = LogicalPlan::project(
            scan("t"),
            vec![
                col(0),
                Expr::binary(evopt_common::BinOp::Add, col(0), col(1)),
            ],
            vec![None, Some("total".into())],
        )
        .unwrap();
        let s = p.schema();
        assert_eq!(s.column(0).unwrap().name, "a");
        assert_eq!(s.column(1).unwrap().name, "total");
        assert_eq!(s.column(1).unwrap().dtype, DataType::Int);
        // Type error propagates.
        assert!(LogicalPlan::project(
            scan("t"),
            vec![Expr::binary(evopt_common::BinOp::Add, col(0), col(2))],
            vec![None],
        )
        .is_err());
        // Arity mismatch.
        assert!(LogicalPlan::project(scan("t"), vec![col(0)], vec![]).is_err());
    }

    #[test]
    fn aggregate_derives_schema() {
        let a = LogicalPlan::aggregate(
            scan("t"),
            vec![2],
            vec![
                AggExpr {
                    func: AggFunc::CountStar,
                    arg: None,
                    name: "n".into(),
                },
                AggExpr {
                    func: AggFunc::Avg,
                    arg: Some(col(0)),
                    name: "avg_a".into(),
                },
            ],
        )
        .unwrap();
        let s = a.schema();
        assert_eq!(s.len(), 3);
        assert_eq!(s.column(0).unwrap().name, "s");
        assert_eq!(s.column(1).unwrap().dtype, DataType::Int);
        assert_eq!(s.column(2).unwrap().dtype, DataType::Float);
        // AVG over a string is a bind error.
        assert!(LogicalPlan::aggregate(
            scan("t"),
            vec![],
            vec![AggExpr {
                func: AggFunc::Avg,
                arg: Some(col(2)),
                name: "x".into()
            }],
        )
        .is_err());
    }

    #[test]
    fn tables_and_node_count() {
        let j = LogicalPlan::Join {
            left: Box::new(LogicalPlan::Filter {
                input: Box::new(scan("t")),
                predicate: Expr::eq(col(0), lit(1i64)),
            }),
            right: Box::new(scan("u")),
            predicate: Some(Expr::eq(col(0), col(3))),
        };
        assert_eq!(j.tables(), vec!["t", "u"]);
        assert_eq!(j.node_count(), 4);
    }

    #[test]
    fn display_indents() {
        let p = LogicalPlan::Limit {
            input: Box::new(LogicalPlan::Filter {
                input: Box::new(scan("t")),
                predicate: Expr::eq(col(0), lit(1i64)),
            }),
            limit: 10,
        };
        let out = p.to_string();
        assert!(out.contains("Limit: 10\n  Filter"));
        assert!(out.contains("    Scan: t"));
    }
}
