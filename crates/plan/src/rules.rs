//! Algebraic rewrite rules.
//!
//! Three rules every cost-based optimizer runs *before* join enumeration,
//! because they are always-wins (no costing needed):
//!
//! 1. [`fold_constants`] — evaluate constant sub-expressions; drop
//!    `WHERE TRUE` filters.
//! 2. [`push_down_filters`] — move each predicate conjunct as close to the
//!    data as possible: through projections (by substitution), sorts, and
//!    into the correct side of joins. Mixed-relation conjuncts become join
//!    predicates.
//! 3. [`prune_columns`] — drop columns nobody upstream reads, shrinking
//!    intermediate tuples (and therefore join/sort footprints).
//!
//! [`rewrite_all`] runs them in that order.

use std::collections::BTreeSet;

use evopt_common::expr::lit;
use evopt_common::{EvoptError, Expr, Result};

use crate::logical::LogicalPlan;

/// Run all rewrites in canonical order.
pub fn rewrite_all(plan: LogicalPlan) -> Result<LogicalPlan> {
    let plan = fold_constants(plan)?;
    let plan = push_down_filters(plan)?;
    prune_columns(plan)
}

// ---------------------------------------------------------------------------
// Constant folding
// ---------------------------------------------------------------------------

/// Fold constant sub-expressions in every node; remove filters that fold to
/// `TRUE`.
pub fn fold_constants(plan: LogicalPlan) -> Result<LogicalPlan> {
    Ok(match plan {
        LogicalPlan::Scan { .. } => plan,
        LogicalPlan::Filter { input, predicate } => {
            let input = fold_constants(*input)?;
            let predicate = predicate.fold_constants();
            if predicate == lit(true) {
                input
            } else {
                LogicalPlan::Filter {
                    input: Box::new(input),
                    predicate,
                }
            }
        }
        LogicalPlan::Project {
            input,
            exprs,
            schema,
        } => LogicalPlan::Project {
            input: Box::new(fold_constants(*input)?),
            exprs: exprs.into_iter().map(|e| e.fold_constants()).collect(),
            schema,
        },
        LogicalPlan::Join {
            left,
            right,
            predicate,
        } => {
            let predicate = match predicate.map(|p| p.fold_constants()) {
                Some(p) if p == lit(true) => None,
                other => other,
            };
            LogicalPlan::Join {
                left: Box::new(fold_constants(*left)?),
                right: Box::new(fold_constants(*right)?),
                predicate,
            }
        }
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
            schema,
        } => LogicalPlan::Aggregate {
            input: Box::new(fold_constants(*input)?),
            group_by,
            aggs: aggs
                .into_iter()
                .map(|mut a| {
                    a.arg = a.arg.map(|e| e.fold_constants());
                    a
                })
                .collect(),
            schema,
        },
        LogicalPlan::Sort { input, keys } => LogicalPlan::Sort {
            input: Box::new(fold_constants(*input)?),
            keys,
        },
        LogicalPlan::Limit { input, limit } => LogicalPlan::Limit {
            input: Box::new(fold_constants(*input)?),
            limit,
        },
    })
}

// ---------------------------------------------------------------------------
// Predicate pushdown
// ---------------------------------------------------------------------------

/// Push filter conjuncts down towards the scans.
pub fn push_down_filters(plan: LogicalPlan) -> Result<LogicalPlan> {
    push(plan, Vec::new())
}

/// Replace every `Column(i)` in `e` with `exprs[i]` (pushing a predicate
/// through the projection that computes those exprs).
fn substitute(e: &Expr, exprs: &[Expr]) -> Result<Expr> {
    Ok(match e {
        Expr::Column(i) => exprs
            .get(*i)
            .cloned()
            .ok_or_else(|| EvoptError::Plan(format!("substitute: ordinal {i} out of range")))?,
        Expr::Literal(v) => Expr::Literal(v.clone()),
        Expr::Binary { op, left, right } => Expr::Binary {
            op: *op,
            left: Box::new(substitute(left, exprs)?),
            right: Box::new(substitute(right, exprs)?),
        },
        Expr::Unary { op, input } => Expr::Unary {
            op: *op,
            input: Box::new(substitute(input, exprs)?),
        },
        Expr::Like {
            input,
            pattern,
            negated,
        } => Expr::Like {
            input: Box::new(substitute(input, exprs)?),
            pattern: pattern.clone(),
            negated: *negated,
        },
        Expr::InList {
            input,
            list,
            negated,
        } => Expr::InList {
            input: Box::new(substitute(input, exprs)?),
            list: list.clone(),
            negated: *negated,
        },
        Expr::Between {
            input,
            low,
            high,
            negated,
        } => Expr::Between {
            input: Box::new(substitute(input, exprs)?),
            low: Box::new(substitute(low, exprs)?),
            high: Box::new(substitute(high, exprs)?),
            negated: *negated,
        },
    })
}

fn maybe_filter(conjuncts: Vec<Expr>, plan: LogicalPlan) -> LogicalPlan {
    let conjuncts: Vec<Expr> = conjuncts.into_iter().filter(|c| *c != lit(true)).collect();
    if conjuncts.is_empty() {
        plan
    } else {
        LogicalPlan::Filter {
            input: Box::new(plan),
            predicate: Expr::conjunction(conjuncts),
        }
    }
}

/// Core recursion: `pending` are conjuncts over `plan`'s output schema that
/// must hold; the function buries them as deep as legally possible.
fn push(plan: LogicalPlan, mut pending: Vec<Expr>) -> Result<LogicalPlan> {
    match plan {
        LogicalPlan::Scan { .. } => Ok(maybe_filter(pending, plan)),
        LogicalPlan::Filter { input, predicate } => {
            pending.extend(predicate.split_conjuncts());
            push(*input, pending)
        }
        LogicalPlan::Project {
            input,
            exprs,
            schema,
        } => {
            // Rewrite each conjunct in terms of the projection's inputs.
            let mut below = Vec::with_capacity(pending.len());
            for c in pending {
                below.push(substitute(&c, &exprs)?);
            }
            Ok(LogicalPlan::Project {
                input: Box::new(push(*input, below)?),
                exprs,
                schema,
            })
        }
        LogicalPlan::Join {
            left,
            right,
            predicate,
        } => {
            if let Some(p) = predicate {
                pending.extend(p.split_conjuncts());
            }
            let left_width = left.schema().len();
            let mut to_left = Vec::new();
            let mut to_right = Vec::new();
            let mut stay = Vec::new();
            for c in pending {
                let cols = c.referenced_columns();
                let on_left = cols.iter().all(|&i| i < left_width);
                let on_right = cols.iter().all(|&i| i >= left_width);
                if on_left && on_right {
                    // References no columns at all: keep at the join (it is
                    // a constant; folding should have removed TRUE already).
                    stay.push(c);
                } else if on_left {
                    to_left.push(c);
                } else if on_right {
                    to_right.push(c.remap_columns(&|i| i - left_width));
                } else {
                    stay.push(c);
                }
            }
            Ok(LogicalPlan::Join {
                left: Box::new(push(*left, to_left)?),
                right: Box::new(push(*right, to_right)?),
                predicate: if stay.is_empty() {
                    None
                } else {
                    Some(Expr::conjunction(stay))
                },
            })
        }
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
            schema,
        } => {
            // Conjuncts that only touch group columns commute with the
            // aggregation (classic HAVING-to-WHERE move).
            let ngroups = group_by.len();
            let mut below = Vec::new();
            let mut above = Vec::new();
            for c in pending {
                if c.referenced_columns().iter().all(|&i| i < ngroups) {
                    below.push(c.remap_columns(&|i| group_by[i]));
                } else {
                    above.push(c);
                }
            }
            let agg = LogicalPlan::Aggregate {
                input: Box::new(push(*input, below)?),
                group_by,
                aggs,
                schema,
            };
            Ok(maybe_filter(above, agg))
        }
        LogicalPlan::Sort { input, keys } => Ok(LogicalPlan::Sort {
            input: Box::new(push(*input, pending)?),
            keys,
        }),
        LogicalPlan::Limit { input, limit } => {
            // Filters do NOT commute with LIMIT: keep pending above.
            let inner = LogicalPlan::Limit {
                input: Box::new(push(*input, Vec::new())?),
                limit,
            };
            Ok(maybe_filter(pending, inner))
        }
    }
}

// ---------------------------------------------------------------------------
// Column pruning
// ---------------------------------------------------------------------------

/// Drop columns nobody reads. The root's output schema is preserved exactly;
/// pruning happens beneath projections and aggregates inside the tree.
pub fn prune_columns(plan: LogicalPlan) -> Result<LogicalPlan> {
    let all: BTreeSet<usize> = (0..plan.schema().len()).collect();
    let (pruned, map) = prune_into(plan, &all)?;
    debug_assert!(
        map.iter().enumerate().all(|(i, m)| *m == Some(i)),
        "root pruning must be identity"
    );
    Ok(pruned)
}

/// Returns a plan producing exactly the `required` columns of the original
/// output (ascending original-ordinal order) and the old→new ordinal map.
fn prune_into(
    plan: LogicalPlan,
    required: &BTreeSet<usize>,
) -> Result<(LogicalPlan, Vec<Option<usize>>)> {
    let width = plan.schema().len();
    let identity_map = |keep: &BTreeSet<usize>| -> Vec<Option<usize>> {
        let mut map = vec![None; width];
        for (new, &old) in keep.iter().enumerate() {
            map[old] = Some(new);
        }
        map
    };
    match plan {
        LogicalPlan::Scan { table, schema } => {
            if required.len() == schema.len() {
                let map = (0..schema.len()).map(Some).collect();
                return Ok((LogicalPlan::Scan { table, schema }, map));
            }
            let keep: Vec<usize> = required.iter().copied().collect();
            let map = identity_map(required);
            let scan = LogicalPlan::Scan {
                table,
                schema: schema.clone(),
            };
            let project = LogicalPlan::Project {
                exprs: keep.iter().map(|&i| Expr::Column(i)).collect(),
                schema: schema.project(&keep)?,
                input: Box::new(scan),
            };
            Ok((project, map))
        }
        LogicalPlan::Filter { input, predicate } => {
            let mut need = required.clone();
            need.extend(predicate.referenced_columns());
            let (child, cmap) = prune_into(*input, &need)?;
            let predicate = remap_expr(&predicate, &cmap)?;
            let filtered = LogicalPlan::Filter {
                input: Box::new(child),
                predicate,
            };
            // Child produced `need`; shrink to `required` if they differ.
            shrink(filtered, &need, required)
        }
        LogicalPlan::Project {
            input,
            exprs,
            schema,
        } => {
            let keep: Vec<usize> = required.iter().copied().collect();
            let mut child_need = BTreeSet::new();
            for &i in &keep {
                child_need.extend(exprs[i].referenced_columns());
            }
            // A projection must read at least one column to know... actually
            // constant-only projections need no inputs, but our leaves always
            // produce rows; empty requirement is fine (scan keeps 1 col).
            if child_need.is_empty() {
                if let Some(first) = (0..(*input).schema().len()).next() {
                    child_need.insert(first);
                }
            }
            let (child, cmap) = prune_into(*input, &child_need)?;
            let new_exprs: Result<Vec<Expr>> =
                keep.iter().map(|&i| remap_expr(&exprs[i], &cmap)).collect();
            let new_schema = schema.project(&keep)?;
            let map = identity_map(required);
            Ok((
                LogicalPlan::Project {
                    input: Box::new(child),
                    exprs: new_exprs?,
                    schema: new_schema,
                },
                map,
            ))
        }
        LogicalPlan::Join {
            left,
            right,
            predicate,
        } => {
            let lwidth = left.schema().len();
            let mut lneed = BTreeSet::new();
            let mut rneed = BTreeSet::new();
            for &i in required {
                if i < lwidth {
                    lneed.insert(i);
                } else {
                    rneed.insert(i - lwidth);
                }
            }
            if let Some(p) = &predicate {
                for i in p.referenced_columns() {
                    if i < lwidth {
                        lneed.insert(i);
                    } else {
                        rneed.insert(i - lwidth);
                    }
                }
            }
            // Keep at least one column per side so the join produces rows.
            if lneed.is_empty() {
                lneed.insert(0);
            }
            if rneed.is_empty() {
                rneed.insert(0);
            }
            let (lchild, lmap) = prune_into(*left, &lneed)?;
            let lnew_width = lchild.schema().len();
            let (rchild, rmap) = prune_into(*right, &rneed)?;
            // Combined old→new map over the join output.
            let mut cmap = vec![None; width];
            for (old, new) in lmap.iter().enumerate() {
                cmap[old] = *new;
            }
            for (old, new) in rmap.iter().enumerate() {
                cmap[lwidth + old] = new.map(|n| lnew_width + n);
            }
            let predicate = match predicate {
                Some(p) => Some(remap_expr(&p, &cmap)?),
                None => None,
            };
            let joined = LogicalPlan::Join {
                left: Box::new(lchild),
                right: Box::new(rchild),
                predicate,
            };
            // The join now produces lneed ++ rneed; shrink to `required`.
            let produced: BTreeSet<usize> = lneed
                .iter()
                .copied()
                .chain(rneed.iter().map(|&i| i + lwidth))
                .collect();
            shrink(joined, &produced, required)
        }
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
            schema,
        } => {
            // Keep full aggregate output (groups + aggs); prune beneath.
            let mut child_need: BTreeSet<usize> = group_by.iter().copied().collect();
            for a in &aggs {
                if let Some(arg) = &a.arg {
                    child_need.extend(arg.referenced_columns());
                }
            }
            if child_need.is_empty() {
                child_need.insert(0);
            }
            let (child, cmap) = prune_into(*input, &child_need)?;
            let new_groups: Result<Vec<usize>> = group_by
                .iter()
                .map(|&g| cmap[g].ok_or_else(|| EvoptError::Internal("group col pruned".into())))
                .collect();
            let mut new_aggs = Vec::with_capacity(aggs.len());
            for a in aggs {
                let arg = match a.arg {
                    Some(e) => Some(remap_expr(&e, &cmap)?),
                    None => None,
                };
                new_aggs.push(crate::logical::AggExpr { arg, ..a });
            }
            let agg = LogicalPlan::Aggregate {
                input: Box::new(child),
                group_by: new_groups?,
                aggs: new_aggs,
                schema,
            };
            let produced: BTreeSet<usize> = (0..width).collect();
            shrink(agg, &produced, required)
        }
        LogicalPlan::Sort { input, keys } => {
            let mut need = required.clone();
            need.extend(keys.iter().map(|k| k.column));
            let (child, cmap) = prune_into(*input, &need)?;
            let keys = keys
                .iter()
                .map(|k| {
                    Ok(crate::logical::SortKey {
                        column: cmap[k.column]
                            .ok_or_else(|| EvoptError::Internal("sort col pruned".into()))?,
                        ascending: k.ascending,
                    })
                })
                .collect::<Result<Vec<_>>>()?;
            let sorted = LogicalPlan::Sort {
                input: Box::new(child),
                keys,
            };
            shrink(sorted, &need, required)
        }
        LogicalPlan::Limit { input, limit } => {
            let (child, map) = prune_into(*input, required)?;
            Ok((
                LogicalPlan::Limit {
                    input: Box::new(child),
                    limit,
                },
                map,
            ))
        }
    }
}

/// `plan` currently outputs the `produced` original columns (ascending);
/// add a projection shrinking it to `required` if they differ. Returns the
/// final old→new map.
fn shrink(
    plan: LogicalPlan,
    produced: &BTreeSet<usize>,
    required: &BTreeSet<usize>,
) -> Result<(LogicalPlan, Vec<Option<usize>>)> {
    let max_old = produced.iter().max().map_or(0, |m| m + 1);
    if produced == required {
        let mut map = vec![None; max_old];
        for (new, &old) in produced.iter().enumerate() {
            map[old] = Some(new);
        }
        return Ok((plan, map));
    }
    // Position of each produced column in the current output.
    let pos_of = |old: usize| produced.iter().position(|&p| p == old);
    let schema = plan.schema();
    let mut exprs = Vec::with_capacity(required.len());
    let mut keep_positions = Vec::with_capacity(required.len());
    for &old in required {
        let p = pos_of(old)
            .ok_or_else(|| EvoptError::Internal(format!("required col {old} not produced")))?;
        exprs.push(Expr::Column(p));
        keep_positions.push(p);
    }
    let projected = LogicalPlan::Project {
        schema: schema.project(&keep_positions)?,
        exprs,
        input: Box::new(plan),
    };
    let mut map = vec![None; max_old];
    for (new, &old) in required.iter().enumerate() {
        map[old] = Some(new);
    }
    Ok((projected, map))
}

/// Rewrite `e`'s column ordinals through the (possibly-dropping) map.
fn remap_expr(e: &Expr, map: &[Option<usize>]) -> Result<Expr> {
    e.try_remap_columns(&|i| map.get(i).copied().flatten())
        .map_err(|_| {
            EvoptError::Internal(format!(
                "expression {e} references a pruned column (map {map:?})"
            ))
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logical::test_helpers::scan;
    use crate::logical::{AggExpr, SortKey};
    use evopt_common::expr::{col, lit};
    use evopt_common::{AggFunc, BinOp};

    fn join(l: LogicalPlan, r: LogicalPlan, p: Option<Expr>) -> LogicalPlan {
        LogicalPlan::Join {
            left: Box::new(l),
            right: Box::new(r),
            predicate: p,
        }
    }

    fn filter(input: LogicalPlan, p: Expr) -> LogicalPlan {
        LogicalPlan::Filter {
            input: Box::new(input),
            predicate: p,
        }
    }

    #[test]
    fn fold_removes_true_filters() {
        let p = filter(scan("t"), Expr::binary(BinOp::Lt, lit(1i64), lit(2i64)));
        let folded = fold_constants(p).unwrap();
        assert_eq!(folded, scan("t"));
    }

    #[test]
    fn fold_inside_projection() {
        let p = LogicalPlan::project(
            scan("t"),
            vec![Expr::binary(BinOp::Add, lit(1i64), lit(2i64))],
            vec![Some("three".into())],
        )
        .unwrap();
        let folded = fold_constants(p).unwrap();
        match folded {
            LogicalPlan::Project { exprs, .. } => assert_eq!(exprs[0], lit(3i64)),
            other => panic!("expected project, got {other}"),
        }
    }

    #[test]
    fn pushdown_splits_filter_over_join() {
        // WHERE t.a = 1 AND u.b = 2 AND t.b = u.a over t JOIN u (cross).
        let pred = Expr::conjunction(vec![
            Expr::eq(col(0), lit(1i64)), // t.a (left)
            Expr::eq(col(4), lit(2i64)), // u.b (right)
            Expr::eq(col(1), col(3)),    // t.b = u.a (join)
        ]);
        let p = filter(join(scan("t"), scan("u"), None), pred);
        let out = push_down_filters(p).unwrap();
        match &out {
            LogicalPlan::Join {
                left,
                right,
                predicate,
            } => {
                assert_eq!(predicate, &Some(Expr::eq(col(1), col(3))));
                match (&**left, &**right) {
                    (
                        LogicalPlan::Filter { predicate: lp, .. },
                        LogicalPlan::Filter { predicate: rp, .. },
                    ) => {
                        assert_eq!(lp, &Expr::eq(col(0), lit(1i64)));
                        // u.b was global #4 → local #1 on the right side.
                        assert_eq!(rp, &Expr::eq(col(1), lit(2i64)));
                    }
                    other => panic!("expected filters on both sides, got {other:?}"),
                }
            }
            other => panic!("expected join at root, got {other}"),
        }
    }

    #[test]
    fn pushdown_through_projection_substitutes() {
        // SELECT a+b AS x FROM t  ... WHERE x = 5  → filter (a+b)=5 under π.
        let proj = LogicalPlan::project(
            scan("t"),
            vec![Expr::binary(BinOp::Add, col(0), col(1))],
            vec![Some("x".into())],
        )
        .unwrap();
        let p = filter(proj, Expr::eq(col(0), lit(5i64)));
        let out = push_down_filters(p).unwrap();
        match &out {
            LogicalPlan::Project { input, .. } => match &**input {
                LogicalPlan::Filter { predicate, .. } => {
                    assert_eq!(
                        predicate,
                        &Expr::eq(Expr::binary(BinOp::Add, col(0), col(1)), lit(5i64))
                    );
                }
                other => panic!("expected filter under project, got {other}"),
            },
            other => panic!("expected project at root, got {other}"),
        }
    }

    #[test]
    fn pushdown_stops_at_limit() {
        let p = filter(
            LogicalPlan::Limit {
                input: Box::new(scan("t")),
                limit: 10,
            },
            Expr::eq(col(0), lit(1i64)),
        );
        let out = push_down_filters(p.clone()).unwrap();
        // Filter must remain above the limit.
        match &out {
            LogicalPlan::Filter { input, .. } => {
                assert!(matches!(&**input, LogicalPlan::Limit { .. }));
            }
            other => panic!("expected filter above limit, got {other}"),
        }
    }

    #[test]
    fn pushdown_through_sort() {
        let p = filter(
            LogicalPlan::Sort {
                input: Box::new(scan("t")),
                keys: vec![SortKey {
                    column: 0,
                    ascending: true,
                }],
            },
            Expr::eq(col(0), lit(1i64)),
        );
        let out = push_down_filters(p).unwrap();
        match &out {
            LogicalPlan::Sort { input, .. } => {
                assert!(matches!(&**input, LogicalPlan::Filter { .. }));
            }
            other => panic!("expected sort above filter, got {other}"),
        }
    }

    #[test]
    fn pushdown_having_on_group_cols() {
        // GROUP BY s with filter on group col s pushes below aggregate;
        // filter on the aggregate value stays above.
        let agg = LogicalPlan::aggregate(
            scan("t"),
            vec![2],
            vec![AggExpr {
                func: AggFunc::CountStar,
                arg: None,
                name: "n".into(),
            }],
        )
        .unwrap();
        let p = filter(
            agg,
            Expr::conjunction(vec![
                Expr::eq(col(0), lit("x")),                 // group col
                Expr::binary(BinOp::Gt, col(1), lit(5i64)), // agg result
            ]),
        );
        let out = push_down_filters(p).unwrap();
        match &out {
            LogicalPlan::Filter { input, predicate } => {
                assert_eq!(predicate, &Expr::binary(BinOp::Gt, col(1), lit(5i64)));
                match &**input {
                    LogicalPlan::Aggregate { input, .. } => match &**input {
                        LogicalPlan::Filter { predicate, .. } => {
                            // group ordinal 0 → input ordinal 2 (column s)
                            assert_eq!(predicate, &Expr::eq(col(2), lit("x")));
                        }
                        other => panic!("expected filter under agg, got {other}"),
                    },
                    other => panic!("expected aggregate, got {other}"),
                }
            }
            other => panic!("expected having-filter at root, got {other}"),
        }
    }

    #[test]
    fn merge_adjacent_filters() {
        let p = filter(
            filter(scan("t"), Expr::eq(col(0), lit(1i64))),
            Expr::eq(col(1), lit(2i64)),
        );
        let out = push_down_filters(p).unwrap();
        match &out {
            LogicalPlan::Filter { predicate, input } => {
                assert!(matches!(&**input, LogicalPlan::Scan { .. }));
                assert_eq!(predicate.split_conjuncts().len(), 2);
            }
            other => panic!("expected single merged filter, got {other}"),
        }
    }

    #[test]
    fn prune_narrows_scan_under_projection() {
        // SELECT a FROM t JOIN u ON t.a = u.a — u.b/u.s and t.b/t.s unused.
        let j = join(scan("t"), scan("u"), Some(Expr::eq(col(0), col(3))));
        let p = LogicalPlan::project(j, vec![col(0)], vec![None]).unwrap();
        let before_schema = p.schema();
        let out = prune_columns(p).unwrap();
        assert_eq!(out.schema(), before_schema, "root schema preserved");
        // The join's inputs should now be 1-column projections over scans.
        fn find_join(p: &LogicalPlan) -> &LogicalPlan {
            match p {
                LogicalPlan::Join { .. } => p,
                _ => find_join(p.children()[0]),
            }
        }
        let j = find_join(&out);
        match j {
            LogicalPlan::Join {
                left,
                right,
                predicate,
            } => {
                assert_eq!(left.schema().len(), 1, "left pruned to join+output col");
                assert_eq!(right.schema().len(), 1, "right pruned to join col");
                assert_eq!(predicate, &Some(Expr::eq(col(0), col(1))));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn prune_preserves_filter_columns() {
        // SELECT a FROM t WHERE b = 3 — b needed by filter, dropped after.
        let f = filter(scan("t"), Expr::eq(col(1), lit(3i64)));
        let p = LogicalPlan::project(f, vec![col(0)], vec![None]).unwrap();
        let out = prune_columns(p.clone()).unwrap();
        assert_eq!(out.schema(), p.schema());
        // Execution sanity: the filter predicate inside must reference the
        // remapped `b`.
        fn has_valid_ordinals(p: &LogicalPlan) -> bool {
            let ok = match p {
                LogicalPlan::Filter { input, predicate } => predicate
                    .referenced_columns()
                    .iter()
                    .all(|&i| i < input.schema().len()),
                LogicalPlan::Project { input, exprs, .. } => exprs.iter().all(|e| {
                    e.referenced_columns()
                        .iter()
                        .all(|&i| i < input.schema().len())
                }),
                _ => true,
            };
            ok && p.children().iter().all(|c| has_valid_ordinals(c))
        }
        assert!(has_valid_ordinals(&out), "plan:\n{out}");
    }

    #[test]
    fn prune_keeps_aggregate_semantics() {
        let agg = LogicalPlan::aggregate(
            scan("t"),
            vec![2],
            vec![AggExpr {
                func: AggFunc::Sum,
                arg: Some(col(0)),
                name: "sum_a".into(),
            }],
        )
        .unwrap();
        let p = LogicalPlan::project(agg, vec![col(1)], vec![None]).unwrap();
        let out = prune_columns(p.clone()).unwrap();
        assert_eq!(out.schema(), p.schema());
        // Column b (ordinal 1 of t) should be gone underneath.
        fn min_scan_width(p: &LogicalPlan) -> usize {
            match p {
                LogicalPlan::Project { input, exprs, .. }
                    if matches!(&**input, LogicalPlan::Scan { .. }) =>
                {
                    exprs.len()
                }
                _ => p
                    .children()
                    .iter()
                    .map(|c| min_scan_width(c))
                    .min()
                    .unwrap_or(usize::MAX),
            }
        }
        assert_eq!(min_scan_width(&out), 2, "scan pruned to {{a, s}}:\n{out}");
    }

    #[test]
    fn rewrite_all_composes() {
        // WHERE TRUE AND t.a = u.a over cross join, project one column.
        let j = join(scan("t"), scan("u"), None);
        let f = filter(j, Expr::and(lit(true), Expr::eq(col(0), col(3))));
        let p = LogicalPlan::project(f, vec![col(1)], vec![None]).unwrap();
        let out = rewrite_all(p.clone()).unwrap();
        assert_eq!(out.schema(), p.schema());
        // Equi-join predicate landed on the join node.
        fn join_pred(p: &LogicalPlan) -> Option<&Expr> {
            match p {
                LogicalPlan::Join { predicate, .. } => predicate.as_ref(),
                _ => p.children().first().and_then(|c| join_pred(c)),
            }
        }
        assert!(join_pred(&out).is_some(), "plan:\n{out}");
    }
}
