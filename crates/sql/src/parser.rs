//! Recursive-descent parser.
//!
//! Expression precedence, loosest first:
//! `OR` → `AND` → `NOT` → comparisons / `LIKE` / `IN` / `BETWEEN` /
//! `IS NULL` → `+ -` → `* / %` → unary minus → primary.

use evopt_common::{AggFunc, BinOp, DataType, EvoptError, Result, UnOp, Value};

use crate::ast::*;
use crate::lexer::{lex, Token};

/// Parse one statement (optionally `;`-terminated).
pub fn parse(sql: &str) -> Result<Statement> {
    let tokens = lex(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.statement()?;
    p.eat_if(&Token::Semicolon);
    if p.pos != p.tokens.len() {
        return Err(EvoptError::Parse(format!(
            "trailing tokens after statement: {:?}",
            &p.tokens[p.pos..]
        )));
    }
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_if(&mut self, t: &Token) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_some_and(|t| t.is_kw(kw)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Token) -> Result<()> {
        if self.eat_if(t) {
            Ok(())
        } else {
            Err(EvoptError::Parse(format!(
                "expected {t:?}, found {:?}",
                self.peek()
            )))
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(EvoptError::Parse(format!(
                "expected {kw}, found {:?}",
                self.peek()
            )))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.next() {
            Some(Token::Word(w)) => Ok(w),
            other => Err(EvoptError::Parse(format!(
                "expected identifier, found {other:?}"
            ))),
        }
    }

    // -- statements ---------------------------------------------------------

    fn statement(&mut self) -> Result<Statement> {
        if self.eat_kw("explain") {
            // Accept ANALYZE, TRACE and VERIFY in any order.
            let (mut analyze, mut trace, mut verify) = (false, false, false);
            loop {
                if self.eat_kw("analyze") {
                    analyze = true;
                } else if self.eat_kw("trace") {
                    trace = true;
                } else if self.eat_kw("verify") {
                    verify = true;
                } else {
                    break;
                }
            }
            let inner = self.statement()?;
            return Ok(Statement::Explain {
                analyze,
                trace,
                verify,
                inner: Box::new(inner),
            });
        }
        if self.eat_kw("show") {
            if self.eat_kw("query") && self.eat_kw("log") {
                return Ok(Statement::ShowQueryLog);
            }
            return Err(EvoptError::Parse("expected QUERY LOG after SHOW".into()));
        }
        if self.eat_kw("select") {
            return Ok(Statement::Select(self.select()?));
        }
        if self.eat_kw("create") {
            let unique = self.eat_kw("unique");
            let clustered = self.eat_kw("clustered");
            if self.eat_kw("table") {
                if unique || clustered {
                    return Err(EvoptError::Parse(
                        "UNIQUE/CLUSTERED apply to indexes, not tables".into(),
                    ));
                }
                return self.create_table();
            }
            if self.eat_kw("index") {
                return self.create_index(unique, clustered);
            }
            return Err(EvoptError::Parse(format!(
                "expected TABLE or INDEX after CREATE, found {:?}",
                self.peek()
            )));
        }
        if self.eat_kw("insert") {
            return self.insert();
        }
        if self.eat_kw("delete") {
            self.expect_kw("from")?;
            let table = self.ident()?;
            let predicate = if self.eat_kw("where") {
                Some(self.expr()?)
            } else {
                None
            };
            return Ok(Statement::Delete { table, predicate });
        }
        if self.eat_kw("update") {
            let table = self.ident()?;
            self.expect_kw("set")?;
            let mut sets = Vec::new();
            loop {
                let column = self.ident()?;
                self.expect(&Token::Eq)?;
                let value = self.expr()?;
                sets.push((column, value));
                if !self.eat_if(&Token::Comma) {
                    break;
                }
            }
            let predicate = if self.eat_kw("where") {
                Some(self.expr()?)
            } else {
                None
            };
            return Ok(Statement::Update {
                table,
                sets,
                predicate,
            });
        }
        if self.eat_kw("analyze") {
            let table = match self.peek() {
                Some(Token::Word(_)) => Some(self.ident()?),
                _ => None,
            };
            return Ok(Statement::Analyze { table });
        }
        if self.eat_kw("drop") {
            self.expect_kw("table")?;
            let name = self.ident()?;
            return Ok(Statement::DropTable { name });
        }
        Err(EvoptError::Parse(format!(
            "expected a statement, found {:?}",
            self.peek()
        )))
    }

    fn create_table(&mut self) -> Result<Statement> {
        let name = self.ident()?;
        self.expect(&Token::LParen)?;
        let mut columns = Vec::new();
        loop {
            let col = self.ident()?;
            let dtype = match self.ident()?.as_str() {
                "int" | "integer" | "bigint" => DataType::Int,
                "float" | "double" | "real" => DataType::Float,
                "string" | "text" | "varchar" => DataType::Str,
                "bool" | "boolean" => DataType::Bool,
                other => return Err(EvoptError::Parse(format!("unknown type '{other}'"))),
            };
            let mut nullable = true;
            if self.eat_kw("not") {
                self.expect_kw("null")?;
                nullable = false;
            }
            columns.push(ColumnDef {
                name: col,
                dtype,
                nullable,
            });
            if !self.eat_if(&Token::Comma) {
                break;
            }
        }
        self.expect(&Token::RParen)?;
        Ok(Statement::CreateTable { name, columns })
    }

    fn create_index(&mut self, unique: bool, clustered: bool) -> Result<Statement> {
        let name = self.ident()?;
        self.expect_kw("on")?;
        let table = self.ident()?;
        self.expect(&Token::LParen)?;
        let column = self.ident()?;
        self.expect(&Token::RParen)?;
        Ok(Statement::CreateIndex {
            name,
            table,
            column,
            unique,
            clustered,
        })
    }

    fn insert(&mut self) -> Result<Statement> {
        self.expect_kw("into")?;
        let table = self.ident()?;
        self.expect_kw("values")?;
        let mut rows = Vec::new();
        loop {
            self.expect(&Token::LParen)?;
            let mut row = Vec::new();
            loop {
                row.push(self.expr()?);
                if !self.eat_if(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RParen)?;
            rows.push(row);
            if !self.eat_if(&Token::Comma) {
                break;
            }
        }
        Ok(Statement::Insert { table, rows })
    }

    fn select(&mut self) -> Result<SelectStmt> {
        let mut stmt = SelectStmt {
            distinct: self.eat_kw("distinct"),
            ..Default::default()
        };
        // Select list.
        loop {
            if self.eat_if(&Token::Star) {
                stmt.items.push(SelectItem::Wildcard);
            } else {
                let expr = self.expr()?;
                let alias = if self.eat_kw("as") {
                    Some(self.ident()?)
                } else {
                    None
                };
                stmt.items.push(SelectItem::Expr { expr, alias });
            }
            if !self.eat_if(&Token::Comma) {
                break;
            }
        }
        // FROM.
        if self.eat_kw("from") {
            stmt.from_first = Some(self.table_ref()?);
            loop {
                if self.eat_if(&Token::Comma) {
                    let table = self.table_ref()?;
                    stmt.from_rest.push(FromItem { table, on: None });
                } else if self.eat_kw("inner") {
                    self.expect_kw("join")?;
                    let table = self.table_ref()?;
                    self.expect_kw("on")?;
                    let on = self.expr()?;
                    stmt.from_rest.push(FromItem {
                        table,
                        on: Some(on),
                    });
                } else if self.eat_kw("join") {
                    let table = self.table_ref()?;
                    self.expect_kw("on")?;
                    let on = self.expr()?;
                    stmt.from_rest.push(FromItem {
                        table,
                        on: Some(on),
                    });
                } else {
                    break;
                }
            }
        }
        if self.eat_kw("where") {
            stmt.where_clause = Some(self.expr()?);
        }
        if self.eat_kw("group") {
            self.expect_kw("by")?;
            loop {
                stmt.group_by.push(self.expr()?);
                if !self.eat_if(&Token::Comma) {
                    break;
                }
            }
        }
        if self.eat_kw("having") {
            stmt.having = Some(self.expr()?);
        }
        if self.eat_kw("order") {
            self.expect_kw("by")?;
            loop {
                let target = match self.peek() {
                    Some(Token::Int(n)) => {
                        let n = *n;
                        self.next();
                        if n < 1 {
                            return Err(EvoptError::Parse("ORDER BY position must be >= 1".into()));
                        }
                        OrderTarget::Position(n as usize)
                    }
                    _ => {
                        let first = self.ident()?;
                        if self.eat_if(&Token::Dot) {
                            let name = self.ident()?;
                            OrderTarget::Name {
                                table: Some(first),
                                name,
                            }
                        } else {
                            OrderTarget::Name {
                                table: None,
                                name: first,
                            }
                        }
                    }
                };
                let ascending = if self.eat_kw("desc") {
                    false
                } else {
                    self.eat_kw("asc");
                    true
                };
                stmt.order_by.push(OrderKey { target, ascending });
                if !self.eat_if(&Token::Comma) {
                    break;
                }
            }
        }
        if self.eat_kw("limit") {
            match self.next() {
                Some(Token::Int(n)) if n >= 0 => stmt.limit = Some(n as usize),
                other => {
                    return Err(EvoptError::Parse(format!(
                        "expected LIMIT count, found {other:?}"
                    )))
                }
            }
        }
        Ok(stmt)
    }

    fn table_ref(&mut self) -> Result<TableRef> {
        let name = self.ident()?;
        let alias = if self.eat_kw("as") {
            Some(self.ident()?)
        } else {
            match self.peek() {
                // Bare alias, but not a following keyword.
                Some(Token::Word(w))
                    if ![
                        "where", "group", "having", "order", "limit", "join", "inner", "on", "as",
                    ]
                    .contains(&w.as_str()) =>
                {
                    Some(self.ident()?)
                }
                _ => None,
            }
        };
        Ok(TableRef { name, alias })
    }

    // -- expressions --------------------------------------------------------

    pub(crate) fn expr(&mut self) -> Result<AstExpr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<AstExpr> {
        let mut left = self.and_expr()?;
        while self.eat_kw("or") {
            let right = self.and_expr()?;
            left = AstExpr::Binary {
                op: BinOp::Or,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<AstExpr> {
        let mut left = self.not_expr()?;
        while self.eat_kw("and") {
            let right = self.not_expr()?;
            left = AstExpr::Binary {
                op: BinOp::And,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<AstExpr> {
        if self.eat_kw("not") {
            let input = self.not_expr()?;
            return Ok(AstExpr::Unary {
                op: UnOp::Not,
                input: Box::new(input),
            });
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<AstExpr> {
        let left = self.additive()?;
        // IS [NOT] NULL
        if self.eat_kw("is") {
            let negated = self.eat_kw("not");
            self.expect_kw("null")?;
            return Ok(AstExpr::Unary {
                op: if negated {
                    UnOp::IsNotNull
                } else {
                    UnOp::IsNull
                },
                input: Box::new(left),
            });
        }
        // [NOT] LIKE / IN / BETWEEN
        let negated = self.eat_kw("not");
        if self.eat_kw("like") {
            let pattern = match self.next() {
                Some(Token::Str(s)) => s,
                other => {
                    return Err(EvoptError::Parse(format!(
                        "expected string pattern after LIKE, found {other:?}"
                    )))
                }
            };
            return Ok(AstExpr::Like {
                input: Box::new(left),
                pattern,
                negated,
            });
        }
        if self.eat_kw("in") {
            self.expect(&Token::LParen)?;
            let mut list = Vec::new();
            loop {
                list.push(self.literal_value()?);
                if !self.eat_if(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RParen)?;
            return Ok(AstExpr::InList {
                input: Box::new(left),
                list,
                negated,
            });
        }
        if self.eat_kw("between") {
            let low = self.additive()?;
            self.expect_kw("and")?;
            let high = self.additive()?;
            return Ok(AstExpr::Between {
                input: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if negated {
            return Err(EvoptError::Parse(
                "expected LIKE, IN or BETWEEN after NOT".into(),
            ));
        }
        // Plain comparisons.
        let op = match self.peek() {
            Some(Token::Eq) => Some(BinOp::Eq),
            Some(Token::NotEq) => Some(BinOp::NotEq),
            Some(Token::Lt) => Some(BinOp::Lt),
            Some(Token::LtEq) => Some(BinOp::LtEq),
            Some(Token::Gt) => Some(BinOp::Gt),
            Some(Token::GtEq) => Some(BinOp::GtEq),
            _ => None,
        };
        match op {
            Some(op) => {
                self.next();
                let right = self.additive()?;
                Ok(AstExpr::Binary {
                    op,
                    left: Box::new(left),
                    right: Box::new(right),
                })
            }
            None => Ok(left),
        }
    }

    fn additive(&mut self) -> Result<AstExpr> {
        let mut left = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinOp::Add,
                Some(Token::Minus) => BinOp::Sub,
                _ => break,
            };
            self.next();
            let right = self.multiplicative()?;
            left = AstExpr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> Result<AstExpr> {
        let mut left = self.unary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => BinOp::Mul,
                Some(Token::Slash) => BinOp::Div,
                Some(Token::Percent) => BinOp::Mod,
                _ => break,
            };
            self.next();
            let right = self.unary()?;
            left = AstExpr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<AstExpr> {
        if self.eat_if(&Token::Minus) {
            let input = self.unary()?;
            return Ok(AstExpr::Unary {
                op: UnOp::Neg,
                input: Box::new(input),
            });
        }
        self.primary()
    }

    fn literal_value(&mut self) -> Result<Value> {
        match self.next() {
            Some(Token::Int(n)) => Ok(Value::Int(n)),
            Some(Token::Float(f)) => Ok(Value::Float(f)),
            Some(Token::Str(s)) => Ok(Value::Str(s)),
            Some(Token::Minus) => match self.next() {
                Some(Token::Int(n)) => Ok(Value::Int(-n)),
                Some(Token::Float(f)) => Ok(Value::Float(-f)),
                other => Err(EvoptError::Parse(format!(
                    "expected number after '-', found {other:?}"
                ))),
            },
            Some(Token::Word(w)) if w == "null" => Ok(Value::Null),
            Some(Token::Word(w)) if w == "true" => Ok(Value::Bool(true)),
            Some(Token::Word(w)) if w == "false" => Ok(Value::Bool(false)),
            other => Err(EvoptError::Parse(format!(
                "expected literal, found {other:?}"
            ))),
        }
    }

    fn primary(&mut self) -> Result<AstExpr> {
        match self.next() {
            Some(Token::Int(n)) => Ok(AstExpr::Literal(Value::Int(n))),
            Some(Token::Float(f)) => Ok(AstExpr::Literal(Value::Float(f))),
            Some(Token::Str(s)) => Ok(AstExpr::Literal(Value::Str(s))),
            Some(Token::LParen) => {
                let e = self.expr()?;
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            Some(Token::Word(w)) => match w.as_str() {
                "null" => Ok(AstExpr::Literal(Value::Null)),
                "true" => Ok(AstExpr::Literal(Value::Bool(true))),
                "false" => Ok(AstExpr::Literal(Value::Bool(false))),
                "count" | "sum" | "min" | "max" | "avg" => {
                    if self.eat_if(&Token::LParen) {
                        if w == "count" && self.eat_if(&Token::Star) {
                            self.expect(&Token::RParen)?;
                            return Ok(AstExpr::AggCall {
                                func: AggFunc::CountStar,
                                arg: None,
                            });
                        }
                        let arg = self.expr()?;
                        self.expect(&Token::RParen)?;
                        let func = match w.as_str() {
                            "count" => AggFunc::Count,
                            "sum" => AggFunc::Sum,
                            "min" => AggFunc::Min,
                            "max" => AggFunc::Max,
                            "avg" => AggFunc::Avg,
                            other => {
                                return Err(EvoptError::Parse(format!(
                                    "unknown aggregate function '{other}'"
                                )))
                            }
                        };
                        return Ok(AstExpr::AggCall {
                            func,
                            arg: Some(Box::new(arg)),
                        });
                    }
                    // Not a call: treat as identifier.
                    self.finish_ident(w)
                }
                _ => self.finish_ident(w),
            },
            other => Err(EvoptError::Parse(format!(
                "expected expression, found {other:?}"
            ))),
        }
    }

    fn finish_ident(&mut self, first: String) -> Result<AstExpr> {
        if self.eat_if(&Token::Dot) {
            let name = self.ident()?;
            Ok(AstExpr::Ident {
                table: Some(first),
                name,
            })
        } else {
            Ok(AstExpr::Ident {
                table: None,
                name: first,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sel(sql: &str) -> SelectStmt {
        match parse(sql).unwrap() {
            Statement::Select(s) => s,
            other => panic!("expected select, got {other:?}"),
        }
    }

    #[test]
    fn simple_select() {
        let s = sel("SELECT a, t.b AS bee FROM t WHERE a = 1 LIMIT 10;");
        assert_eq!(s.items.len(), 2);
        assert!(matches!(
            &s.items[1],
            SelectItem::Expr { alias: Some(a), .. } if a == "bee"
        ));
        assert_eq!(s.from_first.as_ref().unwrap().name, "t");
        assert!(s.where_clause.is_some());
        assert_eq!(s.limit, Some(10));
    }

    #[test]
    fn joins_and_commas() {
        let s = sel("SELECT * FROM t JOIN u ON t.a = u.a, v INNER JOIN w ON w.x = v.x");
        assert_eq!(s.from_rest.len(), 3);
        assert!(s.from_rest[0].on.is_some());
        assert!(s.from_rest[1].on.is_none());
        assert!(s.from_rest[2].on.is_some());
    }

    #[test]
    fn table_aliases() {
        let s = sel("SELECT * FROM orders o JOIN customers AS c ON o.cid = c.id");
        assert_eq!(s.from_first.as_ref().unwrap().alias.as_deref(), Some("o"));
        assert_eq!(s.from_rest[0].table.alias.as_deref(), Some("c"));
    }

    #[test]
    fn operator_precedence() {
        // a + b * 2 = 7 AND NOT c OR d
        let s = sel("SELECT 1 FROM t WHERE a + b * 2 = 7 AND NOT c OR d");
        let w = s.where_clause.unwrap();
        // Root must be OR.
        match w {
            AstExpr::Binary {
                op: BinOp::Or,
                left,
                ..
            } => match *left {
                AstExpr::Binary {
                    op: BinOp::And,
                    left,
                    ..
                } => match *left {
                    AstExpr::Binary {
                        op: BinOp::Eq,
                        left,
                        ..
                    } => match *left {
                        AstExpr::Binary {
                            op: BinOp::Add,
                            right,
                            ..
                        } => {
                            assert!(matches!(*right, AstExpr::Binary { op: BinOp::Mul, .. }));
                        }
                        other => panic!("expected Add under Eq, got {other:?}"),
                    },
                    other => panic!("expected Eq under And, got {other:?}"),
                },
                other => panic!("expected And under Or, got {other:?}"),
            },
            other => panic!("expected Or at root, got {other:?}"),
        }
    }

    #[test]
    fn aggregates_group_having_order() {
        let s = sel("SELECT region, COUNT(*), SUM(amount) AS total FROM sales \
             GROUP BY region HAVING COUNT(*) > 5 ORDER BY total DESC, 1 ASC");
        assert_eq!(s.group_by.len(), 1);
        assert!(s.having.is_some());
        assert_eq!(s.order_by.len(), 2);
        assert!(!s.order_by[0].ascending);
        assert_eq!(s.order_by[1].target, OrderTarget::Position(1));
        assert!(matches!(
            &s.items[1],
            SelectItem::Expr {
                expr: AstExpr::AggCall {
                    func: AggFunc::CountStar,
                    ..
                },
                ..
            }
        ));
    }

    #[test]
    fn special_predicates() {
        let s = sel("SELECT 1 FROM t WHERE name LIKE 'a%' AND x NOT IN (1, 2) \
             AND y BETWEEN 5 AND 10 AND z IS NOT NULL");
        let conj = format!("{:?}", s.where_clause.unwrap());
        assert!(conj.contains("Like"));
        assert!(conj.contains("InList"));
        assert!(conj.contains("Between"));
        assert!(conj.contains("IsNotNull"));
    }

    #[test]
    fn ddl_statements() {
        match parse("CREATE TABLE t (id INT NOT NULL, name STRING, score FLOAT)").unwrap() {
            Statement::CreateTable { name, columns } => {
                assert_eq!(name, "t");
                assert_eq!(columns.len(), 3);
                assert!(!columns[0].nullable);
                assert!(columns[1].nullable);
                assert_eq!(columns[2].dtype, DataType::Float);
            }
            other => panic!("{other:?}"),
        }
        match parse("CREATE UNIQUE INDEX i ON t (id)").unwrap() {
            Statement::CreateIndex {
                unique, clustered, ..
            } => {
                assert!(unique);
                assert!(!clustered);
            }
            other => panic!("{other:?}"),
        }
        match parse("CREATE CLUSTERED INDEX i ON t (id)").unwrap() {
            Statement::CreateIndex { clustered, .. } => assert!(clustered),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn insert_and_misc() {
        match parse("INSERT INTO t VALUES (1, 'a', NULL), (2, 'b', 3.5)").unwrap() {
            Statement::Insert { table, rows } => {
                assert_eq!(table, "t");
                assert_eq!(rows.len(), 2);
                assert_eq!(rows[0].len(), 3);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(
            parse("ANALYZE t").unwrap(),
            Statement::Analyze {
                table: Some("t".into())
            }
        );
        assert_eq!(
            parse("ANALYZE").unwrap(),
            Statement::Analyze { table: None }
        );
        assert_eq!(
            parse("DROP TABLE t").unwrap(),
            Statement::DropTable { name: "t".into() }
        );
        match parse("EXPLAIN SELECT 1").unwrap() {
            Statement::Explain {
                analyze: false,
                trace: false,
                ..
            } => {}
            other => panic!("{other:?}"),
        }
        match parse("EXPLAIN ANALYZE SELECT 1").unwrap() {
            Statement::Explain {
                analyze: true,
                trace: false,
                ..
            } => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn explain_trace_and_show_query_log() {
        match parse("EXPLAIN TRACE SELECT 1").unwrap() {
            Statement::Explain {
                analyze: false,
                trace: true,
                ..
            } => {}
            other => panic!("{other:?}"),
        }
        // ANALYZE and TRACE compose in either order.
        for sql in [
            "EXPLAIN ANALYZE TRACE SELECT 1",
            "EXPLAIN TRACE ANALYZE SELECT 1",
        ] {
            match parse(sql).unwrap() {
                Statement::Explain {
                    analyze: true,
                    trace: true,
                    ..
                } => {}
                other => panic!("{sql}: {other:?}"),
            }
        }
        // VERIFY composes with both, in any position.
        for sql in [
            "EXPLAIN VERIFY SELECT 1",
            "EXPLAIN VERIFY ANALYZE SELECT 1",
            "EXPLAIN ANALYZE VERIFY TRACE SELECT 1",
            "EXPLAIN TRACE VERIFY SELECT 1",
        ] {
            match parse(sql).unwrap() {
                Statement::Explain { verify: true, .. } => {}
                other => panic!("{sql}: {other:?}"),
            }
        }
        match parse("EXPLAIN SELECT 1").unwrap() {
            Statement::Explain { verify: false, .. } => {}
            other => panic!("{other:?}"),
        }
        assert_eq!(parse("SHOW QUERY LOG").unwrap(), Statement::ShowQueryLog);
        assert!(parse("SHOW TABLES").is_err());
    }

    #[test]
    fn negative_numbers_in_lists() {
        let s = sel("SELECT 1 FROM t WHERE x IN (-1, 2)");
        match s.where_clause.unwrap() {
            AstExpr::InList { list, .. } => {
                assert_eq!(list[0], Value::Int(-1));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_errors() {
        assert!(parse("SELECT FROM t").is_err());
        assert!(parse("SELECT 1 FROM t WHERE").is_err());
        assert!(parse("SELECT 1 extra junk ???").is_err());
        assert!(parse("CREATE TABLE t (x BLOB)").is_err());
        assert!(parse("SELECT 1 FROM t LIMIT -5").is_err());
        assert!(parse("SELECT 1 FROM t WHERE a NOT 5").is_err());
    }

    #[test]
    fn count_as_identifier_when_not_called() {
        // A column actually named count still parses.
        let s = sel("SELECT count FROM t");
        assert!(matches!(
            &s.items[0],
            SelectItem::Expr { expr: AstExpr::Ident { name, .. }, .. } if name == "count"
        ));
    }
}
