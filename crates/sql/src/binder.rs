//! The binder: resolve names, type-check, and emit logical plans.
//!
//! Binding a `SELECT` proceeds in SQL's logical order: FROM (scans and
//! joins) → WHERE → GROUP BY / aggregates → HAVING → SELECT list → ORDER BY
//! → LIMIT. Aggregate queries are restricted to the classic shape: select
//! items must be group columns or aggregate calls.

use evopt_common::{EvoptError, Expr, Result, Schema};
use evopt_plan::{AggExpr, LogicalPlan, SortKey};

use crate::ast::*;

/// Where the binder gets table schemas from (implemented by the engine's
/// catalog; mocked in tests).
pub trait SchemaProvider {
    /// Schema of `table` (columns qualified with the table's own name).
    fn table_schema(&self, table: &str) -> Result<Schema>;
}

/// Bind a parsed SELECT into a logical plan.
pub fn bind_select(stmt: &SelectStmt, provider: &dyn SchemaProvider) -> Result<LogicalPlan> {
    // ---- FROM --------------------------------------------------------
    let first = stmt
        .from_first
        .as_ref()
        .ok_or_else(|| EvoptError::Bind("SELECT without FROM is not supported".into()))?;
    let mut plan = bind_table(first, provider)?;
    for item in &stmt.from_rest {
        let right = bind_table(&item.table, provider)?;
        let combined = plan.schema().join(&right.schema());
        let predicate = match &item.on {
            Some(on) => Some(bind_scalar(on, &combined)?),
            None => None,
        };
        plan = LogicalPlan::Join {
            left: Box::new(plan),
            right: Box::new(right),
            predicate,
        };
    }
    let from_schema = plan.schema();

    // ---- WHERE -------------------------------------------------------
    if let Some(w) = &stmt.where_clause {
        let predicate = bind_scalar(w, &from_schema)?;
        plan = LogicalPlan::Filter {
            input: Box::new(plan),
            predicate,
        };
    }

    // ---- aggregate or plain projection --------------------------------
    let has_aggs = stmt.items.iter().any(|i| match i {
        SelectItem::Expr { expr, .. } => contains_agg(expr),
        SelectItem::Wildcard => false,
    }) || stmt.having.as_ref().is_some_and(contains_agg)
        || !stmt.group_by.is_empty();

    let projected = if has_aggs {
        bind_aggregate_query(stmt, plan, &from_schema)?
    } else {
        if stmt.having.is_some() {
            return Err(EvoptError::Bind(
                "HAVING requires GROUP BY or aggregates".into(),
            ));
        }
        bind_plain_projection(stmt, plan, &from_schema)?
    };

    // ---- DISTINCT: aggregate over every output column ------------------
    // Lowering to GROUP BY-all deliberately inherits grouping equality
    // (total order: `Null == Null`), which is SQL's DISTINCT rule — NULL
    // duplicates collapse to one row. Join-key equality (NULL never
    // matches) must NOT be used here.
    let projected = if stmt.distinct {
        let width = projected.schema().len();
        LogicalPlan::aggregate(projected, (0..width).collect(), vec![])?
    } else {
        projected
    };

    // ---- ORDER BY ------------------------------------------------------
    let out_schema = projected.schema();
    let mut plan = projected;
    if !stmt.order_by.is_empty() {
        let mut keys = Vec::with_capacity(stmt.order_by.len());
        for k in &stmt.order_by {
            let column = match &k.target {
                OrderTarget::Position(p) => {
                    if *p == 0 || *p > out_schema.len() {
                        return Err(EvoptError::Bind(format!(
                            "ORDER BY position {p} out of range (1..{})",
                            out_schema.len()
                        )));
                    }
                    p - 1
                }
                OrderTarget::Name { table, name } => out_schema.resolve(table.as_deref(), name)?,
            };
            keys.push(SortKey {
                column,
                ascending: k.ascending,
            });
        }
        plan = LogicalPlan::Sort {
            input: Box::new(plan),
            keys,
        };
    }

    // ---- LIMIT ---------------------------------------------------------
    if let Some(n) = stmt.limit {
        plan = LogicalPlan::Limit {
            input: Box::new(plan),
            limit: n,
        };
    }
    Ok(plan)
}

fn bind_table(t: &TableRef, provider: &dyn SchemaProvider) -> Result<LogicalPlan> {
    let schema = provider.table_schema(&t.name)?;
    let schema = match &t.alias {
        Some(a) => schema.with_qualifier(a),
        None => schema,
    };
    Ok(LogicalPlan::Scan {
        table: t.name.to_ascii_lowercase(),
        schema,
    })
}

/// Does the AST contain an aggregate call?
fn contains_agg(e: &AstExpr) -> bool {
    match e {
        AstExpr::AggCall { .. } => true,
        AstExpr::Ident { .. } | AstExpr::Literal(_) => false,
        AstExpr::Binary { left, right, .. } => contains_agg(left) || contains_agg(right),
        AstExpr::Unary { input, .. } => contains_agg(input),
        AstExpr::Like { input, .. } => contains_agg(input),
        AstExpr::InList { input, .. } => contains_agg(input),
        AstExpr::Between {
            input, low, high, ..
        } => contains_agg(input) || contains_agg(low) || contains_agg(high),
    }
}

/// Bind a scalar (non-aggregate) expression against `schema`.
fn bind_scalar(e: &AstExpr, schema: &Schema) -> Result<Expr> {
    match e {
        AstExpr::Ident { table, name } => {
            let idx = schema.resolve(table.as_deref(), name)?;
            Ok(Expr::Column(idx))
        }
        AstExpr::Literal(v) => Ok(Expr::Literal(v.clone())),
        AstExpr::Binary { op, left, right } => Ok(Expr::Binary {
            op: *op,
            left: Box::new(bind_scalar(left, schema)?),
            right: Box::new(bind_scalar(right, schema)?),
        }),
        AstExpr::Unary { op, input } => Ok(Expr::Unary {
            op: *op,
            input: Box::new(bind_scalar(input, schema)?),
        }),
        AstExpr::Like {
            input,
            pattern,
            negated,
        } => Ok(Expr::Like {
            input: Box::new(bind_scalar(input, schema)?),
            pattern: pattern.clone(),
            negated: *negated,
        }),
        AstExpr::InList {
            input,
            list,
            negated,
        } => Ok(Expr::InList {
            input: Box::new(bind_scalar(input, schema)?),
            list: list.clone(),
            negated: *negated,
        }),
        AstExpr::Between {
            input,
            low,
            high,
            negated,
        } => Ok(Expr::Between {
            input: Box::new(bind_scalar(input, schema)?),
            low: Box::new(bind_scalar(low, schema)?),
            high: Box::new(bind_scalar(high, schema)?),
            negated: *negated,
        }),
        AstExpr::AggCall { func, .. } => Err(EvoptError::Bind(format!(
            "aggregate {func} is not allowed here"
        ))),
    }
}

fn bind_plain_projection(
    stmt: &SelectStmt,
    input: LogicalPlan,
    from_schema: &Schema,
) -> Result<LogicalPlan> {
    let mut exprs = Vec::new();
    let mut names: Vec<Option<String>> = Vec::new();
    for item in &stmt.items {
        match item {
            SelectItem::Wildcard => {
                for i in 0..from_schema.len() {
                    exprs.push(Expr::Column(i));
                    names.push(None);
                }
            }
            SelectItem::Expr { expr, alias } => {
                exprs.push(bind_scalar(expr, from_schema)?);
                names.push(alias.clone());
            }
        }
    }
    LogicalPlan::project(input, exprs, names)
}

/// Bind `GROUP BY` + aggregates: Aggregate → (HAVING filter) → Project.
fn bind_aggregate_query(
    stmt: &SelectStmt,
    input: LogicalPlan,
    from_schema: &Schema,
) -> Result<LogicalPlan> {
    // Group columns must be plain column references.
    let mut group_cols: Vec<usize> = Vec::new();
    let mut group_asts: Vec<AstExpr> = Vec::new();
    for g in &stmt.group_by {
        match bind_scalar(g, from_schema)? {
            Expr::Column(i) => {
                group_cols.push(i);
                group_asts.push(g.clone());
            }
            _ => {
                return Err(EvoptError::Bind(
                    "GROUP BY supports only plain columns".into(),
                ))
            }
        }
    }

    // Collect aggregate calls (select list order, then HAVING).
    let mut agg_asts: Vec<AstExpr> = Vec::new();
    let mut aggs: Vec<AggExpr> = Vec::new();
    let mut collect = |e: &AstExpr, alias: Option<&str>| -> Result<()> {
        collect_aggs(e, from_schema, alias, &mut agg_asts, &mut aggs)
    };
    for item in &stmt.items {
        match item {
            SelectItem::Wildcard => {
                return Err(EvoptError::Bind(
                    "SELECT * cannot be combined with GROUP BY/aggregates".into(),
                ))
            }
            SelectItem::Expr { expr, alias } => collect(expr, alias.as_deref())?,
        }
    }
    if let Some(h) = &stmt.having {
        collect(h, None)?;
    }

    let agg_plan = LogicalPlan::aggregate(input, group_cols.clone(), aggs)?;

    // HAVING over the aggregate output.
    let mut plan = agg_plan;
    if let Some(h) = &stmt.having {
        let predicate = rebind_over_agg(h, &group_asts, &agg_asts, from_schema)?;
        plan = LogicalPlan::Filter {
            input: Box::new(plan),
            predicate,
        };
    }

    // SELECT list over the aggregate output.
    let mut exprs = Vec::new();
    let mut names: Vec<Option<String>> = Vec::new();
    for item in &stmt.items {
        if let SelectItem::Expr { expr, alias } = item {
            exprs.push(rebind_over_agg(expr, &group_asts, &agg_asts, from_schema)?);
            // No alias: let the projection inherit the aggregate-output
            // column (keeping any table qualifier, so `ORDER BY d.name`
            // still resolves).
            names.push(alias.clone());
        }
    }
    LogicalPlan::project(plan, exprs, names)
}

/// Register the aggregate calls inside `e` (depth-first).
#[allow(clippy::only_used_in_recursion)] // schema threads to bind_scalar at the leaves
fn collect_aggs(
    e: &AstExpr,
    from_schema: &Schema,
    alias: Option<&str>,
    agg_asts: &mut Vec<AstExpr>,
    aggs: &mut Vec<AggExpr>,
) -> Result<()> {
    match e {
        AstExpr::AggCall { func, arg } => {
            if agg_asts.contains(e) {
                return Ok(()); // same aggregate referenced twice
            }
            let bound_arg = match arg {
                Some(a) => {
                    if contains_agg(a) {
                        return Err(EvoptError::Bind("nested aggregates are not allowed".into()));
                    }
                    Some(bind_scalar(a, from_schema)?)
                }
                None => None,
            };
            let name = alias.map(str::to_owned).unwrap_or_else(|| {
                format!(
                    "{}_{}",
                    func.name().to_lowercase().replace("(*)", "_star"),
                    aggs.len()
                )
            });
            agg_asts.push(e.clone());
            aggs.push(AggExpr {
                func: *func,
                arg: bound_arg,
                name,
            });
            Ok(())
        }
        AstExpr::Ident { .. } | AstExpr::Literal(_) => Ok(()),
        AstExpr::Binary { left, right, .. } => {
            collect_aggs(left, from_schema, None, agg_asts, aggs)?;
            collect_aggs(right, from_schema, None, agg_asts, aggs)
        }
        AstExpr::Unary { input, .. } => collect_aggs(input, from_schema, None, agg_asts, aggs),
        AstExpr::Like { input, .. } => collect_aggs(input, from_schema, None, agg_asts, aggs),
        AstExpr::InList { input, .. } => collect_aggs(input, from_schema, None, agg_asts, aggs),
        AstExpr::Between {
            input, low, high, ..
        } => {
            collect_aggs(input, from_schema, None, agg_asts, aggs)?;
            collect_aggs(low, from_schema, None, agg_asts, aggs)?;
            collect_aggs(high, from_schema, None, agg_asts, aggs)
        }
    }
}

/// Rewrite an expression over the aggregate output: group columns map to
/// their output position, aggregate calls to theirs; anything else that
/// reads base columns is an error.
#[allow(clippy::only_used_in_recursion)] // schema kept for error context
fn rebind_over_agg(
    e: &AstExpr,
    group_asts: &[AstExpr],
    agg_asts: &[AstExpr],
    from_schema: &Schema,
) -> Result<Expr> {
    // Group expression match (structural)?
    if let Some(pos) = group_asts.iter().position(|g| ast_equivalent(g, e)) {
        return Ok(Expr::Column(pos));
    }
    if let Some(pos) = agg_asts.iter().position(|a| a == e) {
        return Ok(Expr::Column(group_asts.len() + pos));
    }
    match e {
        AstExpr::Literal(v) => Ok(Expr::Literal(v.clone())),
        AstExpr::Binary { op, left, right } => Ok(Expr::Binary {
            op: *op,
            left: Box::new(rebind_over_agg(left, group_asts, agg_asts, from_schema)?),
            right: Box::new(rebind_over_agg(right, group_asts, agg_asts, from_schema)?),
        }),
        AstExpr::Unary { op, input } => Ok(Expr::Unary {
            op: *op,
            input: Box::new(rebind_over_agg(input, group_asts, agg_asts, from_schema)?),
        }),
        AstExpr::Like {
            input,
            pattern,
            negated,
        } => Ok(Expr::Like {
            input: Box::new(rebind_over_agg(input, group_asts, agg_asts, from_schema)?),
            pattern: pattern.clone(),
            negated: *negated,
        }),
        AstExpr::InList {
            input,
            list,
            negated,
        } => Ok(Expr::InList {
            input: Box::new(rebind_over_agg(input, group_asts, agg_asts, from_schema)?),
            list: list.clone(),
            negated: *negated,
        }),
        AstExpr::Between {
            input,
            low,
            high,
            negated,
        } => Ok(Expr::Between {
            input: Box::new(rebind_over_agg(input, group_asts, agg_asts, from_schema)?),
            low: Box::new(rebind_over_agg(low, group_asts, agg_asts, from_schema)?),
            high: Box::new(rebind_over_agg(high, group_asts, agg_asts, from_schema)?),
            negated: *negated,
        }),
        AstExpr::Ident { table, name } => Err(EvoptError::Bind(format!(
            "column '{}' must appear in GROUP BY or inside an aggregate",
            match table {
                Some(t) => format!("{t}.{name}"),
                None => name.clone(),
            }
        ))),
        AstExpr::AggCall { .. } => Err(EvoptError::Internal("aggregate not collected".into())),
    }
}

/// Structural equivalence for group-expression matching. Idents compare by
/// (optional) qualifier loosely: `region` matches `t.region` when the bare
/// name is unambiguous in context — we approximate by comparing names and
/// letting resolution handle ambiguity at bind time.
fn ast_equivalent(a: &AstExpr, b: &AstExpr) -> bool {
    match (a, b) {
        (
            AstExpr::Ident {
                name: n1,
                table: t1,
            },
            AstExpr::Ident {
                name: n2,
                table: t2,
            },
        ) => {
            n1.eq_ignore_ascii_case(n2)
                && match (t1, t2) {
                    (Some(x), Some(y)) => x.eq_ignore_ascii_case(y),
                    _ => true, // one side unqualified: match by name
                }
        }
        _ => a == b,
    }
}

/// Helper so the engine can expose its catalog as a provider without a
/// newtype at every call site.
impl<F> SchemaProvider for F
where
    F: Fn(&str) -> Result<Schema>,
{
    fn table_schema(&self, table: &str) -> Result<Schema> {
        self(table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use evopt_common::{Column, DataType, UnOp};

    fn provider() -> impl SchemaProvider {
        |table: &str| -> Result<Schema> {
            match table {
                "t" => Ok(Schema::new(vec![
                    Column::new("a", DataType::Int).with_table("t"),
                    Column::new("b", DataType::Int).with_table("t"),
                    Column::new("s", DataType::Str).with_table("t"),
                ])),
                "u" => Ok(Schema::new(vec![
                    Column::new("a", DataType::Int).with_table("u"),
                    Column::new("x", DataType::Float).with_table("u"),
                ])),
                other => Err(EvoptError::Catalog(format!("unknown table '{other}'"))),
            }
        }
    }

    fn bind(sql: &str) -> Result<LogicalPlan> {
        match parse(sql)? {
            Statement::Select(s) => bind_select(&s, &provider()),
            other => panic!("expected select, got {other:?}"),
        }
    }

    #[test]
    fn simple_select_star() {
        let p = bind("SELECT * FROM t").unwrap();
        assert_eq!(p.schema().len(), 3);
        assert!(matches!(p, LogicalPlan::Project { .. }));
    }

    #[test]
    fn where_and_projection() {
        let p = bind("SELECT a, b + 1 AS b1 FROM t WHERE s = 'x'").unwrap();
        let s = p.schema();
        assert_eq!(s.column(0).unwrap().name, "a");
        assert_eq!(s.column(1).unwrap().name, "b1");
        assert_eq!(s.column(1).unwrap().dtype, DataType::Int);
        assert!(p.to_string().contains("Filter"));
    }

    #[test]
    fn join_with_alias_resolution() {
        let p = bind("SELECT t1.a, t2.x FROM t AS t1 JOIN u AS t2 ON t1.a = t2.a").unwrap();
        assert_eq!(p.schema().len(), 2);
        // Underneath: Join with bound predicate over combined ordinals.
        fn find_join(p: &LogicalPlan) -> Option<&LogicalPlan> {
            match p {
                LogicalPlan::Join { .. } => Some(p),
                _ => p.children().first().and_then(|c| find_join(c)),
            }
        }
        match find_join(&p).unwrap() {
            LogicalPlan::Join { predicate, .. } => {
                assert_eq!(predicate, &Some(Expr::eq(Expr::Column(0), Expr::Column(3))));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn comma_join_is_cross() {
        let p = bind("SELECT * FROM t, u").unwrap();
        assert!(p.to_string().contains("CrossJoin"));
        assert_eq!(p.schema().len(), 5);
    }

    #[test]
    fn ambiguous_and_unknown_columns() {
        let e = bind("SELECT a FROM t, u").unwrap_err();
        assert!(e.message().contains("ambiguous"));
        let e = bind("SELECT nope FROM t").unwrap_err();
        assert_eq!(e.kind(), "bind");
        let e = bind("SELECT a FROM missing").unwrap_err();
        assert_eq!(e.kind(), "catalog");
    }

    #[test]
    fn aggregate_query_shape() {
        let p = bind(
            "SELECT s, COUNT(*) AS n, SUM(a) AS total FROM t \
             GROUP BY s HAVING COUNT(*) > 2",
        )
        .unwrap();
        let schema = p.schema();
        assert_eq!(schema.len(), 3);
        assert_eq!(schema.column(1).unwrap().name, "n");
        assert_eq!(schema.column(2).unwrap().name, "total");
        let text = p.to_string();
        assert!(text.contains("Aggregate"), "{text}");
        assert!(text.contains("Filter"), "having became a filter: {text}");
    }

    #[test]
    fn global_aggregate_without_group() {
        let p = bind("SELECT COUNT(*), AVG(a) FROM t").unwrap();
        assert_eq!(p.schema().len(), 2);
        assert_eq!(p.schema().column(1).unwrap().dtype, DataType::Float);
    }

    #[test]
    fn group_by_errors() {
        assert!(bind("SELECT a FROM t GROUP BY s").is_err(), "a not grouped");
        assert!(bind("SELECT s, COUNT(*) FROM t GROUP BY a + 1").is_err());
        assert!(bind("SELECT * FROM t GROUP BY s").is_err());
        assert!(bind("SELECT SUM(COUNT(*)) FROM t").is_err(), "nested aggs");
        assert!(
            bind("SELECT a FROM t HAVING a > 1").is_err(),
            "having w/o group"
        );
        assert!(
            bind("SELECT a FROM t WHERE COUNT(*) > 1").is_err(),
            "agg in where"
        );
    }

    #[test]
    fn order_by_name_position_and_alias() {
        let p = bind("SELECT a, b AS bee FROM t ORDER BY bee DESC, 1").unwrap();
        match &p {
            LogicalPlan::Sort { keys, .. } => {
                assert_eq!(
                    keys,
                    &vec![
                        SortKey {
                            column: 1,
                            ascending: false
                        },
                        SortKey {
                            column: 0,
                            ascending: true
                        }
                    ]
                );
            }
            other => panic!("expected sort at root, got {other}"),
        }
        assert!(bind("SELECT a FROM t ORDER BY 5").is_err());
        assert!(bind("SELECT a FROM t ORDER BY nope").is_err());
    }

    #[test]
    fn distinct_becomes_group_by_all() {
        let p = bind("SELECT DISTINCT b FROM t ORDER BY b").unwrap();
        assert_eq!(p.schema().len(), 1);
        fn has_agg_no_fns(p: &LogicalPlan) -> bool {
            match p {
                LogicalPlan::Aggregate { group_by, aggs, .. } => {
                    group_by.len() == 1 && aggs.is_empty()
                }
                _ => p.children().iter().any(|c| has_agg_no_fns(c)),
            }
        }
        assert!(has_agg_no_fns(&p), "{p}");
    }

    #[test]
    fn limit_at_root() {
        let p = bind("SELECT a FROM t LIMIT 7").unwrap();
        assert!(matches!(p, LogicalPlan::Limit { limit: 7, .. }));
    }

    #[test]
    fn select_without_from_rejected() {
        let e = bind("SELECT 1").unwrap_err();
        assert!(e.message().contains("without FROM"));
    }

    #[test]
    fn aggregate_in_having_only() {
        let p = bind("SELECT s FROM t GROUP BY s HAVING SUM(a) > 10").unwrap();
        assert_eq!(p.schema().len(), 1);
        let text = p.to_string();
        assert!(text.contains("Aggregate"));
    }

    #[test]
    fn same_aggregate_twice_binds_once() {
        let p = bind("SELECT COUNT(*), COUNT(*) FROM t").unwrap();
        assert_eq!(p.schema().len(), 2);
        fn agg_count(p: &LogicalPlan) -> usize {
            match p {
                LogicalPlan::Aggregate { aggs, .. } => aggs.len(),
                _ => p.children().iter().map(|c| agg_count(c)).sum(),
            }
        }
        assert_eq!(agg_count(&p), 1);
    }

    #[test]
    fn is_null_binds() {
        let p = bind("SELECT a FROM t WHERE s IS NOT NULL").unwrap();
        fn has_isnotnull(p: &LogicalPlan) -> bool {
            match p {
                LogicalPlan::Filter { predicate, .. } => {
                    matches!(
                        predicate,
                        Expr::Unary {
                            op: UnOp::IsNotNull,
                            ..
                        }
                    )
                }
                _ => p.children().iter().any(|c| has_isnotnull(c)),
            }
        }
        assert!(has_isnotnull(&p));
    }
}
