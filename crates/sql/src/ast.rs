//! The abstract syntax tree produced by the parser (names unresolved).

use evopt_common::{AggFunc, BinOp, DataType, UnOp, Value};

/// A parsed (unbound) expression.
#[derive(Debug, Clone, PartialEq)]
pub enum AstExpr {
    /// `name` or `table.name`.
    Ident {
        table: Option<String>,
        name: String,
    },
    Literal(Value),
    Binary {
        op: BinOp,
        left: Box<AstExpr>,
        right: Box<AstExpr>,
    },
    Unary {
        op: UnOp,
        input: Box<AstExpr>,
    },
    Like {
        input: Box<AstExpr>,
        pattern: String,
        negated: bool,
    },
    InList {
        input: Box<AstExpr>,
        list: Vec<Value>,
        negated: bool,
    },
    Between {
        input: Box<AstExpr>,
        low: Box<AstExpr>,
        high: Box<AstExpr>,
        negated: bool,
    },
    /// `COUNT(*)`, `SUM(expr)`, ...
    AggCall {
        func: AggFunc,
        /// `None` only for `COUNT(*)`.
        arg: Option<Box<AstExpr>>,
    },
}

/// One item of the select list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `expr [AS alias]`
    Expr {
        expr: AstExpr,
        alias: Option<String>,
    },
}

/// A FROM-clause table reference.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    pub name: String,
    pub alias: Option<String>,
}

/// One extra FROM item: comma-joined (`on = None`) or `JOIN ... ON` .
#[derive(Debug, Clone, PartialEq)]
pub struct FromItem {
    pub table: TableRef,
    pub on: Option<AstExpr>,
}

/// ORDER BY key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderKey {
    /// A name or 1-based output position.
    pub target: OrderTarget,
    pub ascending: bool,
}

#[derive(Debug, Clone, PartialEq)]
pub enum OrderTarget {
    Name { table: Option<String>, name: String },
    Position(usize),
}

/// A SELECT statement.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SelectStmt {
    pub distinct: bool,
    pub items: Vec<SelectItem>,
    pub from_first: Option<TableRef>,
    pub from_rest: Vec<FromItem>,
    pub where_clause: Option<AstExpr>,
    pub group_by: Vec<AstExpr>,
    pub having: Option<AstExpr>,
    pub order_by: Vec<OrderKey>,
    pub limit: Option<usize>,
}

/// Column definition in CREATE TABLE.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDef {
    pub name: String,
    pub dtype: DataType,
    pub nullable: bool,
}

/// A parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    Select(SelectStmt),
    CreateTable {
        name: String,
        columns: Vec<ColumnDef>,
    },
    CreateIndex {
        name: String,
        table: String,
        column: String,
        unique: bool,
        clustered: bool,
    },
    Insert {
        table: String,
        rows: Vec<Vec<AstExpr>>,
    },
    Delete {
        table: String,
        predicate: Option<AstExpr>,
    },
    Update {
        table: String,
        /// (column name, new-value expression) pairs.
        sets: Vec<(String, AstExpr)>,
        predicate: Option<AstExpr>,
    },
    Analyze {
        table: Option<String>,
    },
    DropTable {
        name: String,
    },
    Explain {
        analyze: bool,
        /// `EXPLAIN TRACE`: include the optimizer's search journal.
        trace: bool,
        /// `EXPLAIN VERIFY`: run the static plan verifier at every phase
        /// and report issues and SQL-level lints instead of erroring.
        verify: bool,
        inner: Box<Statement>,
    },
    /// `SHOW QUERY LOG`: the engine's ring buffer of recent queries.
    ShowQueryLog,
}
