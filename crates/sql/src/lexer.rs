//! SQL lexer.
//!
//! Case-insensitive keywords, single-quoted strings with `''` escaping,
//! integer and float literals, `--` line comments.

use evopt_common::{EvoptError, Result};

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Keyword or identifier (lower-cased; keywords are matched by text).
    Word(String),
    Int(i64),
    Float(f64),
    Str(String),
    // Punctuation / operators.
    Comma,
    LParen,
    RParen,
    Star,
    Plus,
    Minus,
    Slash,
    Percent,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    Dot,
    Semicolon,
}

impl Token {
    /// Is this the given keyword (case-insensitive)?
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Word(w) if w.eq_ignore_ascii_case(kw))
    }
}

/// Tokenise `input`.
pub fn lex(input: &str) -> Result<Vec<Token>> {
    let chars: Vec<char> = input.chars().collect();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '-' if chars.get(i + 1) == Some(&'-') => {
                // Line comment.
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
            }
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            '*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            '+' => {
                tokens.push(Token::Plus);
                i += 1;
            }
            '-' => {
                tokens.push(Token::Minus);
                i += 1;
            }
            '/' => {
                tokens.push(Token::Slash);
                i += 1;
            }
            '%' => {
                tokens.push(Token::Percent);
                i += 1;
            }
            '.' => {
                tokens.push(Token::Dot);
                i += 1;
            }
            ';' => {
                tokens.push(Token::Semicolon);
                i += 1;
            }
            '=' => {
                tokens.push(Token::Eq);
                i += 1;
            }
            '!' if chars.get(i + 1) == Some(&'=') => {
                tokens.push(Token::NotEq);
                i += 2;
            }
            '<' => {
                if chars.get(i + 1) == Some(&'=') {
                    tokens.push(Token::LtEq);
                    i += 2;
                } else if chars.get(i + 1) == Some(&'>') {
                    tokens.push(Token::NotEq);
                    i += 2;
                } else {
                    tokens.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if chars.get(i + 1) == Some(&'=') {
                    tokens.push(Token::GtEq);
                    i += 2;
                } else {
                    tokens.push(Token::Gt);
                    i += 1;
                }
            }
            '\'' => {
                // String literal with '' escape.
                let mut s = String::new();
                i += 1;
                loop {
                    match chars.get(i) {
                        None => {
                            return Err(EvoptError::Parse("unterminated string literal".into()))
                        }
                        Some('\'') if chars.get(i + 1) == Some(&'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some('\'') => {
                            i += 1;
                            break;
                        }
                        Some(&ch) => {
                            s.push(ch);
                            i += 1;
                        }
                    }
                }
                tokens.push(Token::Str(s));
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < chars.len() && chars[i].is_ascii_digit() {
                    i += 1;
                }
                let is_float = chars.get(i) == Some(&'.')
                    && chars.get(i + 1).is_some_and(|c| c.is_ascii_digit());
                if is_float {
                    i += 1;
                    while i < chars.len() && chars[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                let text: String = chars[start..i].iter().collect();
                if is_float {
                    let f: f64 = text
                        .parse()
                        .map_err(|_| EvoptError::Parse(format!("bad float '{text}'")))?;
                    tokens.push(Token::Float(f));
                } else {
                    let n: i64 = text
                        .parse()
                        .map_err(|_| EvoptError::Parse(format!("integer overflow '{text}'")))?;
                    tokens.push(Token::Int(n));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                let word: String = chars[start..i].iter().collect::<String>().to_lowercase();
                tokens.push(Token::Word(word));
            }
            other => return Err(EvoptError::Parse(format!("unexpected character '{other}'"))),
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_select_tokens() {
        let toks = lex("SELECT a, b FROM t WHERE a >= 10;").unwrap();
        assert_eq!(toks[0], Token::Word("select".into()));
        assert_eq!(toks[1], Token::Word("a".into()));
        assert_eq!(toks[2], Token::Comma);
        assert!(toks.contains(&Token::GtEq));
        assert_eq!(*toks.last().unwrap(), Token::Semicolon);
    }

    #[test]
    fn strings_with_escapes() {
        let toks = lex("'it''s fine'").unwrap();
        assert_eq!(toks, vec![Token::Str("it's fine".into())]);
        assert!(lex("'unterminated").is_err());
    }

    #[test]
    fn numbers() {
        assert_eq!(lex("42").unwrap(), vec![Token::Int(42)]);
        assert_eq!(lex("3.5").unwrap(), vec![Token::Float(3.5)]);
        // `1.` is Int then Dot (qualified-name style), not a float.
        assert_eq!(lex("1.x").unwrap()[0], Token::Int(1));
        assert!(lex("99999999999999999999").is_err());
    }

    #[test]
    fn operators_and_comments() {
        let toks = lex("a <> b -- comment\n <= >=").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Word("a".into()),
                Token::NotEq,
                Token::Word("b".into()),
                Token::LtEq,
                Token::GtEq,
            ]
        );
    }

    #[test]
    fn keywords_case_insensitive() {
        let toks = lex("SeLeCt FROM").unwrap();
        assert!(toks[0].is_kw("select"));
        assert!(toks[1].is_kw("FROM"));
    }

    #[test]
    fn bad_char_is_error() {
        assert!(lex("select @").is_err());
    }
}
