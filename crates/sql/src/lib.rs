//! # evopt-sql
//!
//! The SQL front end: a hand-written lexer and recursive-descent parser for
//! the engine's SQL subset, and a binder that resolves names against a
//! schema provider and emits `evopt-plan` logical plans.
//!
//! Supported surface:
//!
//! ```sql
//! SELECT <exprs | aggregates | *> FROM t [AS a] [, u | JOIN u ON ...]
//!   [WHERE expr] [GROUP BY cols] [HAVING expr]
//!   [ORDER BY col [ASC|DESC], ...] [LIMIT n];
//! CREATE TABLE t (col TYPE [NOT NULL], ...);
//! CREATE [UNIQUE] [CLUSTERED] INDEX i ON t (col);
//! INSERT INTO t VALUES (...), (...);
//! ANALYZE [t];
//! DROP TABLE t;
//! EXPLAIN [ANALYZE] SELECT ...;
//! ```
//!
//! Out of scope (documented in DESIGN.md §6): subqueries, outer joins,
//! DISTINCT, window functions.

// Library code must not panic on fault paths: unwrap/expect are banned
// outside tests (see clippy.toml: allow-unwrap-in-tests).
#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod ast;
pub mod binder;
pub mod lexer;
pub mod parser;

pub use ast::Statement;
pub use binder::{bind_select, SchemaProvider};
pub use parser::parse;
