//! # evopt-engine
//!
//! The top of the stack: [`Database`] wires the SQL front end, the catalog,
//! the cost-based optimizer and the executor over one buffer pool and
//! simulated disk.
//!
//! ```no_run
//! use evopt_engine::Database;
//!
//! let db = Database::with_defaults();
//! db.execute("CREATE TABLE t (id INT NOT NULL, name STRING)").unwrap();
//! db.execute("INSERT INTO t VALUES (1, 'a'), (2, 'b')").unwrap();
//! db.execute("CREATE INDEX t_id ON t (id)").unwrap();
//! db.execute("ANALYZE").unwrap();
//! let rows = db.query("SELECT name FROM t WHERE id = 2").unwrap();
//! println!("{}", db.explain("SELECT * FROM t WHERE id < 2").unwrap());
//! ```
//!
//! The engine exposes the knobs the experiments sweep: the enumeration
//! [`Strategy`], the [`CostModel`], the ANALYZE configuration, and
//! [`Database::measured`] which runs a statement and reports the *physical*
//! page I/O it caused.

// Library code must not panic on fault paths: unwrap/expect are banned
// outside tests (see clippy.toml: allow-unwrap-in-tests).
#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod database;

pub use database::{
    Database, DatabaseConfig, Durability, QueryResult, Session, SessionConfig, TracedQuery,
};
pub use evopt_catalog::{AnalyzeConfig, HistogramKind};
pub use evopt_core::{CostModel, Strategy};
pub use evopt_exec::{CancellationToken, GovernorConfig, OperatorMetrics, QueryMetrics};
pub use evopt_obs::{
    EngineMetrics, HistogramSnapshot, MetricsSnapshot, Phase, PhaseSpan, QueryLog, QueryLogEntry,
    SearchTrace, StatementSpan,
};
pub use evopt_storage::{
    CrashingBackend, DiskBackend, DiskManager, FaultConfig, FaultInjector, FaultReport, IoSnapshot,
    PolicyKind, PoolSnapshot, RecoveryInfo, Wal, WalStats,
};
