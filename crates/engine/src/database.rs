//! The `Database` facade.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use evopt_catalog::{compute_stats, AnalyzeConfig, Catalog, TableInfo};
use evopt_common::{
    lockorder, Column, DataType, EvoptError, Expr, Result, Schema, Tuple, Value, DEFAULT_BATCH_ROWS,
};
use evopt_core::physical::PhysicalPlan;
use evopt_core::verify::{self, VerifyPhase};
use evopt_core::{CostModel, Optimizer, OptimizerConfig, Strategy};
use evopt_exec::{
    run_collect, run_collect_governed, run_collect_instrumented, CancellationToken, ExecEnv,
    GovernorConfig, QueryMetrics,
};
use evopt_obs::{
    EngineMetrics, MetricsSnapshot, Phase, PhaseSpan, QueryLog, QueryLogEntry, SearchTrace,
    StatementSpan, TraceSink, DEFAULT_QUERY_LOG_CAP, DEFAULT_SLOW_QUERY_US, DEFAULT_TRACE_EVENTS,
};
use evopt_plan::LogicalPlan;
use evopt_sql::ast::{AstExpr, Statement};
use evopt_sql::{bind_select, parse};
use evopt_storage::{
    BufferPool, CatalogImage, ColumnImage, DiskBackend, DiskManager, FaultConfig, FaultInjector,
    FlushGate, IndexImage, IoSnapshot, Lsn, PolicyKind, PoolSnapshot, RecoveryInfo, TableImage,
    Wal,
};
// Non-poisoning mutex (the vendored stand-in recovers poisoned state via
// `into_inner`): a panicking config writer can't brick later queries, and
// the config copy held under the lock is plain data — no invariants to
// corrupt halfway.
use parking_lot::Mutex;

/// Crash-durability mode.
///
/// `Off` (the default) is the historical behaviour: the simulated disk
/// holds whatever the buffer pool flushed, and a crash loses everything
/// else. `Wal` adds a redo-only write-ahead log: every successful DML/DDL
/// statement commits durably (page images + commit record, synced), the
/// pool refuses to flush uncommitted pages (no-steal), and
/// [`Database::recover`] rebuilds exactly the committed prefix after a
/// crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Durability {
    #[default]
    Off,
    Wal,
}

/// Construction-time knobs.
#[derive(Debug, Clone, Copy)]
pub struct DatabaseConfig {
    pub buffer_pages: usize,
    pub policy: PolicyKind,
    pub optimizer: OptimizerConfig,
    pub analyze: AnalyzeConfig,
    /// Fault-injection schedule for the underlying disk. `None` (the
    /// default) runs on a plain in-memory disk; `Some` wraps it in a
    /// deterministic [`FaultInjector`] — the chaos suite's entry point.
    pub faults: Option<FaultConfig>,
    /// Session-default resource limits applied to every SELECT run through
    /// [`Database::execute`]. Unlimited by default.
    pub governor: GovernorConfig,
    /// Executor batch size: tuples moved per `next_batch()` call. Defaults
    /// to [`DEFAULT_BATCH_ROWS`]; 1 degenerates to tuple-at-a-time Volcano.
    pub batch_rows: usize,
    /// Engine metrics: counters, optimize/execute histograms, and the query
    /// log. On (the default) costs a handful of relaxed atomic increments
    /// per query; off removes even those.
    pub metrics: bool,
    /// Ring-buffer capacity of the query log (entries; clamped to ≥ 1).
    pub query_log_cap: usize,
    /// Queries whose optimize+execute wall time meets this threshold are
    /// flagged slow in the query log and counted in `slow_queries`.
    pub slow_query_us: u64,
    /// Run the static plan verifier (`evopt_core::verify`) after binding
    /// and after every optimizer phase. Debug builds verify
    /// unconditionally; this opts release builds in. A violation surfaces
    /// as a structured plan error, never a panic.
    pub verify_plans: bool,
    /// Use the columnar operators (typed filter kernels, typed join key
    /// maps, typed aggregation) where available — the default. Off forces
    /// the original row-at-a-time operators everywhere, kept as the
    /// differential baseline for the columnar port.
    pub columnar: bool,
    /// Record per-statement phase spans (parse → bind → optimize → verify
    /// → execute → commit): rendered by `EXPLAIN ANALYZE` as a phase
    /// table and attached to query-log entries. On by default; costs a
    /// few clock reads and one small `Vec` per statement. Purely
    /// observational — the span differential suite proves plans and rows
    /// are identical either way.
    pub spans: bool,
    /// Crash durability: [`Durability::Wal`] turns on write-ahead logging
    /// with statement-granularity commits. Off by default — the
    /// optimizer-validation experiments measure query I/O, not commit
    /// overhead (EXPERIMENTS.md W1 measures the overhead itself).
    pub durability: Durability,
}

impl Default for DatabaseConfig {
    fn default() -> Self {
        DatabaseConfig {
            buffer_pages: 256,
            policy: PolicyKind::Lru,
            optimizer: OptimizerConfig::default(),
            analyze: AnalyzeConfig::default(),
            faults: None,
            governor: GovernorConfig::default(),
            batch_rows: DEFAULT_BATCH_ROWS,
            metrics: true,
            query_log_cap: DEFAULT_QUERY_LOG_CAP,
            slow_query_us: DEFAULT_SLOW_QUERY_US,
            verify_plans: false,
            columnar: true,
            spans: true,
            durability: Durability::Off,
        }
    }
}

/// Per-session execution knobs: everything a [`Session`] may retune without
/// affecting any other session. [`DatabaseConfig`] carries the instance-wide
/// defaults; a new session starts from a copy of whatever the defaults are
/// at creation time, and every statement snapshots its session's config
/// once at entry — a knob flipped mid-statement never changes a statement
/// already running.
#[derive(Debug, Clone, Copy)]
pub struct SessionConfig {
    pub optimizer: OptimizerConfig,
    pub analyze: AnalyzeConfig,
    pub governor: GovernorConfig,
    pub batch_rows: usize,
    pub verify_plans: bool,
    pub columnar: bool,
    /// Per-statement phase-span recording (see [`DatabaseConfig::spans`]).
    pub spans: bool,
}

impl DatabaseConfig {
    /// The per-session slice of this configuration.
    pub fn session(&self) -> SessionConfig {
        SessionConfig {
            optimizer: self.optimizer,
            analyze: self.analyze,
            governor: self.governor,
            batch_rows: self.batch_rows,
            verify_plans: self.verify_plans,
            columnar: self.columnar,
            spans: self.spans,
        }
    }
}

/// Everything one statement needs, captured once at statement start: the
/// session's config (no mid-statement config reads) and a frozen catalog
/// snapshot, so DDL committed by another session mid-statement never
/// changes what this statement sees.
struct StatementCtx {
    cfg: SessionConfig,
    catalog: Arc<Catalog>,
    /// The session that issued the statement (0 = the database-level
    /// implicit default session) — stamped into spans and log entries.
    session_id: u64,
    /// The session's own metrics registry, when the statement runs through
    /// a [`Session`] on a metrics-enabled instance.
    session_metrics: Option<Arc<EngineMetrics>>,
}

impl StatementCtx {
    fn verifying(&self) -> bool {
        cfg!(debug_assertions) || self.cfg.verify_plans
    }
}

/// Span assembly for one statement: the enclosing clock (stamped before
/// parse, so every phase is a sub-interval) plus the span being built.
/// Exists only while `cfg.spans` is on.
struct SpanState {
    started: Instant,
    span: StatementSpan,
}

impl SpanState {
    fn new(session_id: u64) -> SpanState {
        SpanState {
            started: Instant::now(),
            span: StatementSpan::new(session_id),
        }
    }

    fn push(&mut self, phase: PhaseSpan) {
        self.span.push(phase);
    }

    /// Stamp the statement's total wall time (call after the last phase).
    fn finish(&mut self) {
        self.span.total_us = self.started.elapsed().as_micros() as u64;
    }
}

/// The result of [`Database::execute`].
#[derive(Debug, Clone)]
pub enum QueryResult {
    /// A SELECT's output. `metrics` is populated when the statement ran
    /// through an instrumented path (`EXPLAIN ANALYZE`,
    /// [`Database::query_with_metrics`]).
    Rows {
        schema: Schema,
        rows: Vec<Tuple>,
        metrics: Option<Box<QueryMetrics>>,
    },
    /// Rows affected by DML.
    Affected(usize),
    /// EXPLAIN text.
    Explained(String),
    /// DDL success.
    Ok,
}

/// Equality ignores `metrics`: two runs of the same query are the "same
/// result" even though wall-clock and pool state differ.
impl PartialEq for QueryResult {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (
                QueryResult::Rows {
                    schema: s1,
                    rows: r1,
                    ..
                },
                QueryResult::Rows {
                    schema: s2,
                    rows: r2,
                    ..
                },
            ) => s1 == s2 && r1 == r2,
            (QueryResult::Affected(a), QueryResult::Affected(b)) => a == b,
            (QueryResult::Explained(a), QueryResult::Explained(b)) => a == b,
            (QueryResult::Ok, QueryResult::Ok) => true,
            _ => false,
        }
    }
}

impl QueryResult {
    /// The rows of a `Rows` result (empty otherwise).
    pub fn rows(self) -> Vec<Tuple> {
        match self {
            QueryResult::Rows { rows, .. } => rows,
            _ => Vec::new(),
        }
    }

    /// The runtime metrics of an instrumented `Rows` result.
    pub fn metrics(&self) -> Option<&QueryMetrics> {
        match self {
            QueryResult::Rows { metrics, .. } => metrics.as_deref(),
            _ => None,
        }
    }
}

/// A SELECT run with the optimizer's search trace attached
/// ([`Database::query_traced`] — the programmatic `EXPLAIN TRACE`).
#[derive(Debug)]
pub struct TracedQuery {
    pub rows: Vec<Tuple>,
    pub plan: PhysicalPlan,
    pub trace: SearchTrace,
}

/// A complete single-node database instance.
pub struct Database {
    disk: Arc<dyn DiskBackend>,
    /// Present when the database was built with `config.faults`: the same
    /// object as `disk`, retyped for fault-schedule control.
    injector: Option<Arc<FaultInjector>>,
    pool: Arc<BufferPool>,
    catalog: Arc<Catalog>,
    /// Present when `config.durability` is [`Durability::Wal`]; also
    /// registered as the pool's flush gate (no-steal).
    wal: Option<Arc<Wal>>,
    /// Instance-wide session defaults: copied into every new [`Session`]
    /// and used directly by the [`Database`]-level convenience API (which
    /// behaves as an implicit default session). Rank
    /// [`lockorder::CONFIG`].
    defaults: Mutex<SessionConfig>,
    /// Serializes write statements end-to-end (apply + WAL append). Rank
    /// [`lockorder::COMMIT`], the outermost lock in the hierarchy. The WAL
    /// *sync* happens after this lock is released, so adjacent sessions'
    /// commits coalesce into shared fsyncs (group commit).
    commit_lock: Mutex<()>,
    /// Cached frozen catalog snapshot keyed by catalog version: statements
    /// re-snapshot only after DDL/ANALYZE actually changed something. Rank
    /// [`lockorder::SNAPSHOT_CACHE`].
    snapshot_cache: Mutex<Option<(u64, Arc<Catalog>)>>,
    next_session_id: AtomicU64,
    /// Per-instance metrics registry; `None` when `config.metrics` is off.
    /// Engine-site recordings are mirrored into [`evopt_obs::global`] so
    /// process-wide tooling (bench reports) sees every instance.
    metrics: Option<Arc<EngineMetrics>>,
    query_log: QueryLog,
}

impl Database {
    /// The shared buffer pool (pool-level hit/miss stats for experiments).
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }
}

impl Database {
    pub fn new(config: DatabaseConfig) -> Database {
        let base: Arc<dyn DiskBackend> = Arc::new(DiskManager::new());
        // Bootstrap on a fresh in-memory disk cannot fail unless the
        // machine is out of memory — keep the historical infallible
        // signature rather than making every caller unwrap.
        Database::create_on(base, config)
            .unwrap_or_else(|e| panic!("database bootstrap failed on a fresh disk: {e}"))
    }

    /// Build a database over a caller-supplied backend (a fresh disk —
    /// with [`Durability::Wal`] the WAL claims page 0). This is the
    /// fallible constructor the crash tests use with
    /// [`evopt_storage::CrashingBackend`].
    pub fn create_on(base: Arc<dyn DiskBackend>, config: DatabaseConfig) -> Result<Database> {
        let (disk, injector) = Self::wire_faults(base, &config);
        let pool = BufferPool::new(Arc::clone(&disk), config.buffer_pages, config.policy);
        let catalog = Arc::new(Catalog::new(Arc::clone(&pool)));
        let wal = match config.durability {
            Durability::Off => None,
            Durability::Wal => Some(Self::bootstrap(&injector, || {
                Wal::create(Arc::clone(&disk))
            })?),
        };
        Ok(Self::assemble(disk, injector, pool, catalog, wal, config))
    }

    /// Reopen a database over a disk that already holds a WAL: run crash
    /// recovery (scan, truncate the torn tail, replay the committed
    /// prefix), rebuild the catalog from the recovered image, and return
    /// what recovery found. Requires `config.durability == Wal`.
    ///
    /// Statistics are not durable — run `ANALYZE` after recovery before
    /// trusting the optimizer's cost estimates.
    pub fn open_on(
        base: Arc<dyn DiskBackend>,
        config: DatabaseConfig,
    ) -> Result<(Database, RecoveryInfo)> {
        if config.durability != Durability::Wal {
            return Err(EvoptError::Internal(
                "open_on requires DatabaseConfig.durability = Wal".into(),
            ));
        }
        let (disk, injector) = Self::wire_faults(base, &config);
        let (wal, info) = Self::bootstrap(&injector, || Wal::open(Arc::clone(&disk)))?;
        let pool = BufferPool::new(Arc::clone(&disk), config.buffer_pages, config.policy);
        let catalog = Arc::new(Catalog::new(Arc::clone(&pool)));
        for t in &info.catalog.tables {
            let cols: Vec<Column> = t
                .columns
                .iter()
                .map(|c| {
                    let col = Column::new(c.name.clone(), c.dtype);
                    if c.nullable {
                        col
                    } else {
                        col.not_null()
                    }
                })
                .collect();
            catalog.restore_table(&t.name, Schema::new(cols), t.first_page)?;
            for i in &t.indexes {
                catalog.restore_index(
                    &i.name,
                    &t.name,
                    i.column as usize,
                    i.unique,
                    i.clustered,
                    i.meta_page,
                )?;
            }
        }
        let db = Self::assemble(disk, injector, pool, catalog, Some(wal), config);
        Ok((db, info))
    }

    /// Alias for [`Database::open_on`]: recover a crashed database.
    pub fn recover(
        base: Arc<dyn DiskBackend>,
        config: DatabaseConfig,
    ) -> Result<(Database, RecoveryInfo)> {
        Database::open_on(base, config)
    }

    fn wire_faults(
        base: Arc<dyn DiskBackend>,
        config: &DatabaseConfig,
    ) -> (Arc<dyn DiskBackend>, Option<Arc<FaultInjector>>) {
        match config.faults {
            Some(faults) => {
                let inj = Arc::new(FaultInjector::new(base, faults));
                (Arc::clone(&inj) as Arc<dyn DiskBackend>, Some(inj))
            }
            None => (base, None),
        }
    }

    /// Run a WAL bootstrap step with fault injection suspended: the chaos
    /// schedule targets steady-state operation, not construction (a fault
    /// while formatting a fresh log tests nothing interesting). The
    /// injector's previous state is restored afterwards.
    fn bootstrap<T>(
        injector: &Option<Arc<FaultInjector>>,
        f: impl FnOnce() -> Result<T>,
    ) -> Result<T> {
        let was = injector.as_ref().map(|i| {
            let on = i.is_enabled();
            i.set_enabled(false);
            on
        });
        let result = f();
        if let (Some(inj), Some(on)) = (injector, was) {
            inj.set_enabled(on);
        }
        result
    }

    fn assemble(
        disk: Arc<dyn DiskBackend>,
        injector: Option<Arc<FaultInjector>>,
        pool: Arc<BufferPool>,
        catalog: Arc<Catalog>,
        wal: Option<Arc<Wal>>,
        config: DatabaseConfig,
    ) -> Database {
        if let Some(w) = &wal {
            pool.set_flush_gate(Arc::clone(w) as Arc<dyn FlushGate>);
        }
        Database {
            disk,
            injector,
            pool,
            catalog,
            wal,
            metrics: config.metrics.then(|| Arc::new(EngineMetrics::default())),
            query_log: QueryLog::new(config.query_log_cap, config.slow_query_us),
            defaults: Mutex::new(config.session()),
            commit_lock: Mutex::new(()),
            snapshot_cache: Mutex::new(None),
            next_session_id: AtomicU64::new(1),
        }
    }

    /// 256-page LRU pool, System R optimizer, equi-depth ANALYZE.
    pub fn with_defaults() -> Database {
        Database::new(DatabaseConfig::default())
    }

    pub fn catalog(&self) -> &Arc<Catalog> {
        &self.catalog
    }

    pub fn disk(&self) -> &Arc<dyn DiskBackend> {
        &self.disk
    }

    /// The fault injector, when the database was built with
    /// `config.faults`. Use it to toggle the schedule (e.g. load clean,
    /// then unleash faults) and to read the [`FaultReport`].
    pub fn fault_injector(&self) -> Option<&Arc<FaultInjector>> {
        self.injector.as_ref()
    }

    /// The write-ahead log, when the database runs with
    /// [`Durability::Wal`].
    pub fn wal(&self) -> Option<&Arc<Wal>> {
        self.wal.as_ref()
    }

    /// Take a fuzzy checkpoint: flush all committed pages, write a
    /// checkpoint record with the full catalog image, and switch the log
    /// to a fresh chain — bounding the work the next recovery must do.
    /// A no-op when durability is off.
    pub fn checkpoint(&self) -> Result<()> {
        match &self.wal {
            Some(wal) => {
                // Hold the commit lock so the catalog image and the set of
                // committed pages are a consistent cut of the log.
                let (_c, _guard) = self.lock_commit(None);
                wal.checkpoint(&self.pool, &self.catalog_image())
            }
            None => Ok(()),
        }
    }

    /// Stage the current statement's WAL commit while the commit lock is
    /// held: append the dirty page images plus the commit record, but defer
    /// the sync. Returns the LSN the caller must sync through after
    /// releasing the lock (`None`: durability off, or nothing pending).
    fn wal_commit_locked(&self) -> Result<Option<Lsn>> {
        match &self.wal {
            Some(wal) => wal.commit_grouped(&self.pool),
            None => Ok(None),
        }
    }

    /// Make a staged commit durable, off the commit lock. Concurrent
    /// committers coalesce: whichever session syncs first covers every
    /// commit appended before it, and the rest return without touching the
    /// disk (`WalStats::coalesced_syncs`).
    fn wal_sync(&self, pending: Option<Lsn>) -> Result<()> {
        match (&self.wal, pending) {
            (Some(wal), Some(lsn)) => wal.sync_through(lsn),
            _ => Ok(()),
        }
    }

    /// Snapshot the live catalog as the WAL's logical image.
    fn catalog_image(&self) -> CatalogImage {
        CatalogImage {
            tables: self
                .catalog
                .tables()
                .iter()
                .map(|t| Self::table_image(t))
                .collect(),
        }
    }

    fn table_image(info: &TableInfo) -> TableImage {
        TableImage {
            name: info.name.clone(),
            columns: info
                .schema
                .columns()
                .iter()
                .map(|c| ColumnImage {
                    name: c.name.clone(),
                    dtype: c.dtype,
                    nullable: c.nullable,
                })
                .collect(),
            first_page: info.heap.first_page(),
            indexes: info
                .indexes()
                .iter()
                .map(|i| Self::index_image(i))
                .collect(),
        }
    }

    fn index_image(info: &evopt_catalog::IndexInfo) -> IndexImage {
        IndexImage {
            name: info.name.clone(),
            column: info.column as u32,
            unique: info.unique,
            clustered: info.clustered,
            meta_page: info.btree.meta_page(),
        }
    }

    /// Open a new session over this database. Sessions are cheap handles:
    /// each owns a copy of the instance defaults (taken now) and may retune
    /// its knobs without affecting any other session. Any number of
    /// sessions execute concurrently.
    pub fn session(self: &Arc<Self>) -> Session {
        Session::new(Arc::clone(self))
    }

    /// Copy of the current instance defaults (what a new session starts
    /// from, and what the [`Database`]-level convenience API runs with).
    pub fn session_defaults(&self) -> SessionConfig {
        let _r = lockorder::acquire(lockorder::CONFIG);
        *self.defaults.lock()
    }

    fn update_defaults(&self, f: impl FnOnce(&mut SessionConfig)) {
        let _r = lockorder::acquire(lockorder::CONFIG);
        f(&mut self.defaults.lock());
    }

    /// Replace the session-default governor limits for subsequent
    /// [`Database::execute`] calls.
    pub fn set_governor(&self, governor: GovernorConfig) {
        self.update_defaults(|c| c.governor = governor);
    }

    /// Change the executor batch size for subsequent queries (batch-size
    /// sweeps; 1 degenerates to tuple-at-a-time).
    pub fn set_batch_rows(&self, batch_rows: usize) {
        self.update_defaults(|c| c.batch_rows = batch_rows.max(1));
    }

    /// Current optimizer config (copy).
    pub fn optimizer_config(&self) -> OptimizerConfig {
        self.session_defaults().optimizer
    }

    /// Swap the join-enumeration strategy (T1/F1/F2 sweeps).
    pub fn set_strategy(&self, strategy: Strategy) {
        self.update_defaults(|c| c.optimizer.strategy = strategy);
    }

    /// Swap the cost model (ablations, F4 buffer sweeps).
    pub fn set_cost_model(&self, model: CostModel) {
        self.update_defaults(|c| c.optimizer.cost_model = model);
    }

    /// Toggle interesting-order tracking (F3 ablation).
    pub fn set_track_orders(&self, on: bool) {
        self.update_defaults(|c| c.optimizer.track_interesting_orders = on);
    }

    /// Toggle the algebraic rewrites (pushdown/folding ablation).
    pub fn set_rewrites(&self, on: bool) {
        self.update_defaults(|c| c.optimizer.enable_rewrites = on);
    }

    /// Swap the ANALYZE configuration (T3 sweeps).
    pub fn set_analyze_config(&self, cfg: AnalyzeConfig) {
        self.update_defaults(|c| c.analyze = cfg);
    }

    /// Toggle runtime plan verification for subsequent queries (debug
    /// builds always verify; this opts release builds in).
    pub fn set_verify_plans(&self, on: bool) {
        self.update_defaults(|c| c.verify_plans = on);
    }

    /// Toggle columnar execution for subsequent queries (row-vs-columnar
    /// differential testing; on by default).
    pub fn set_columnar(&self, on: bool) {
        self.update_defaults(|c| c.columnar = on);
    }

    /// Toggle statement-span recording for subsequent statements (the
    /// span differential suite's knob; on by default).
    pub fn set_spans(&self, on: bool) {
        self.update_defaults(|c| c.spans = on);
    }

    /// A frozen catalog snapshot for read statements, cached by catalog
    /// version so steady-state reads don't re-clone the namespace maps.
    /// Acquisition latency (cache hit or rebuild) lands in the
    /// `snapshot_acquire_us` histogram when metrics are on.
    fn read_snapshot(&self) -> Arc<Catalog> {
        match &self.metrics {
            Some(m) => {
                let started = Instant::now();
                let snap = self.read_snapshot_inner();
                let us = started.elapsed().as_micros() as u64;
                m.snapshot_acquire_us.observe(us);
                evopt_obs::global().snapshot_acquire_us.observe(us);
                snap
            }
            None => self.read_snapshot_inner(),
        }
    }

    fn read_snapshot_inner(&self) -> Arc<Catalog> {
        let version = self.catalog.version();
        let _r = lockorder::acquire(lockorder::SNAPSHOT_CACHE);
        let mut cache = self.snapshot_cache.lock();
        match cache.as_ref() {
            Some((v, snap)) if *v == version => Arc::clone(snap),
            _ => {
                let snap = self.catalog.snapshot();
                *cache = Some((snap.version(), Arc::clone(&snap)));
                snap
            }
        }
    }

    /// Acquire the commit lock through the timed wrapper: rank witness,
    /// timed wait, histogram stamp. Every commit site goes through here —
    /// no call site can take the lock without recording its wait.
    fn lock_commit(
        &self,
        ctx: Option<&StatementCtx>,
    ) -> (lockorder::RankGuard, parking_lot::MutexGuard<'_, ()>) {
        let rank = lockorder::acquire(lockorder::COMMIT);
        match &self.metrics {
            Some(m) => {
                let started = Instant::now();
                let guard = self.commit_lock.lock();
                let us = started.elapsed().as_micros() as u64;
                m.commit_lock_wait_us.observe(us);
                evopt_obs::global().commit_lock_wait_us.observe(us);
                if let Some(s) = ctx.and_then(|c| c.session_metrics.as_ref()) {
                    s.commit_lock_wait_us.observe(us);
                }
                (rank, guard)
            }
            None => (rank, self.commit_lock.lock()),
        }
    }

    /// The statement context the [`Database`]-level API runs with: current
    /// instance defaults, no per-session metrics, session id 0.
    fn default_ctx(&self) -> StatementCtx {
        StatementCtx {
            cfg: self.session_defaults(),
            catalog: self.read_snapshot(),
            session_id: 0,
            session_metrics: None,
        }
    }

    /// Bind a SELECT against the statement's catalog snapshot and, when
    /// verification is active, run the post-bind verifier pass over the
    /// freshly bound logical plan. With a span, the bind and verify
    /// phases are timed separately.
    fn bind_checked(
        &self,
        ctx: &StatementCtx,
        sel: &evopt_sql::ast::SelectStmt,
        mut span: Option<&mut SpanState>,
    ) -> Result<LogicalPlan> {
        let catalog = Arc::clone(&ctx.catalog);
        let provider =
            move |table: &str| -> Result<Schema> { Ok(catalog.table(table)?.schema.clone()) };
        let bind_started = Instant::now();
        let logical = bind_select(sel, &provider)?;
        if let Some(s) = span.as_mut() {
            s.push(PhaseSpan::new(
                Phase::Bind,
                bind_started.elapsed().as_micros() as u64,
            ));
        }
        if ctx.verifying() {
            let verify_started = Instant::now();
            let verdict = verify::verify_logical(&logical, VerifyPhase::PostBind).into_result();
            if let Some(s) = span.as_mut() {
                s.push(PhaseSpan::new(
                    Phase::Verify,
                    verify_started.elapsed().as_micros() as u64,
                ));
            }
            if let Err(e) = verdict {
                self.record_ctx(ctx, |m| m.verify_failures.inc());
                return Err(e);
            }
        }
        Ok(logical)
    }

    /// Execute any statement.
    pub fn execute(&self, sql: &str) -> Result<QueryResult> {
        let ctx = self.default_ctx();
        self.execute_sql_ctx(&ctx, sql)
    }

    /// Parse and execute under `ctx`, assembling the statement span
    /// (parse phase included) when spans are on, and counting the
    /// statement and its outcome.
    fn execute_sql_ctx(&self, ctx: &StatementCtx, sql: &str) -> Result<QueryResult> {
        // Stamped before parse so every phase is a sub-interval of the
        // statement total.
        let mut state = ctx.cfg.spans.then(|| SpanState::new(ctx.session_id));
        let parse_started = Instant::now();
        let parsed = parse(sql);
        if let Some(s) = &mut state {
            s.push(PhaseSpan::new(
                Phase::Parse,
                parse_started.elapsed().as_micros() as u64,
            ));
        }
        let result = match parsed {
            Ok(stmt) => self.execute_with_ctx(ctx, &stmt, sql, state.as_mut()),
            Err(e) => Err(e),
        };
        self.record_ctx(ctx, |m| {
            m.statements.inc();
            if result.is_err() {
                m.statement_errors.inc();
            }
        });
        result
    }

    /// Run a SELECT and return its rows.
    pub fn query(&self, sql: &str) -> Result<Vec<Tuple>> {
        match self.execute(sql)? {
            QueryResult::Rows { rows, .. } => Ok(rows),
            other => Err(EvoptError::Execution(format!(
                "expected a SELECT, statement returned {other:?}"
            ))),
        }
    }

    /// Run a SELECT instrumented: rows plus per-operator
    /// estimate-vs-actual [`QueryMetrics`].
    pub fn query_with_metrics(&self, sql: &str) -> Result<(Vec<Tuple>, QueryMetrics)> {
        let ctx = self.default_ctx();
        let (_, physical) = self.plan_sql_ctx(&ctx, sql)?;
        run_collect_instrumented(&physical, &self.exec_env(&ctx))
    }

    /// Run a SELECT under explicit resource governance.
    ///
    /// The rows (or the typed kill error — `Canceled`,
    /// `ResourceExhausted`, `Io`, `Corruption`) come back alongside the
    /// metrics the query accumulated up to that point, so a killed query
    /// still reports what it did. Metrics are `None` only when the
    /// statement failed before execution (parse/bind/optimize).
    pub fn query_governed(
        &self,
        sql: &str,
        governor: GovernorConfig,
        token: CancellationToken,
    ) -> (Result<Vec<Tuple>>, Option<QueryMetrics>) {
        let ctx = self.default_ctx();
        self.query_governed_ctx(&ctx, sql, governor, token)
    }

    fn query_governed_ctx(
        &self,
        ctx: &StatementCtx,
        sql: &str,
        governor: GovernorConfig,
        token: CancellationToken,
    ) -> (Result<Vec<Tuple>>, Option<QueryMetrics>) {
        let physical = match self.plan_sql_ctx(ctx, sql) {
            Ok((_, physical)) => physical,
            Err(e) => return (Err(e), None),
        };
        let (rows, metrics) = run_collect_governed(&physical, &self.exec_env(ctx), governor, token);
        if matches!(
            &rows,
            Err(EvoptError::Canceled(_) | EvoptError::ResourceExhausted(_))
        ) {
            self.record_ctx(ctx, |m| m.governor_kills.inc());
        }
        (rows, Some(metrics))
    }

    /// Run a SELECT instrumented and return the full [`QueryResult::Rows`]
    /// with its `metrics` field populated (the programmatic counterpart of
    /// `EXPLAIN ANALYZE`).
    pub fn execute_analyzed(&self, sql: &str) -> Result<QueryResult> {
        let ctx = self.default_ctx();
        let (_, physical) = self.plan_sql_ctx(&ctx, sql)?;
        let (rows, metrics) = run_collect_instrumented(&physical, &self.exec_env(&ctx))?;
        Ok(QueryResult::Rows {
            schema: physical.schema.clone(),
            rows,
            metrics: Some(Box::new(metrics)),
        })
    }

    /// EXPLAIN text for a SELECT (logical and physical plans).
    pub fn explain(&self, sql: &str) -> Result<String> {
        let ctx = self.default_ctx();
        let (logical, physical) = self.plan_sql_ctx(&ctx, sql)?;
        Ok(format!(
            "== logical ==\n{}== physical ({}) ==\n{}",
            logical.display_indent(),
            ctx.cfg.optimizer.strategy.name(),
            physical.display_indent()
        ))
    }

    /// `EXPLAIN ANALYZE` text for a SELECT: the physical plan annotated
    /// with per-operator estimated vs. actual rows, q-error, elapsed time,
    /// and pool/disk counters. Executes the query.
    pub fn explain_analyze(&self, sql: &str) -> Result<String> {
        match self.execute(&format!("EXPLAIN ANALYZE {sql}"))? {
            QueryResult::Explained(text) => Ok(text),
            other => Err(EvoptError::Execution(format!(
                "EXPLAIN ANALYZE returned {other:?}"
            ))),
        }
    }

    /// Parse + bind + optimize a SELECT, returning both plans.
    pub fn plan_sql(&self, sql: &str) -> Result<(LogicalPlan, PhysicalPlan)> {
        let ctx = self.default_ctx();
        self.plan_sql_ctx(&ctx, sql)
    }

    fn plan_sql_ctx(&self, ctx: &StatementCtx, sql: &str) -> Result<(LogicalPlan, PhysicalPlan)> {
        match parse(sql)? {
            Statement::Select(sel) => {
                let logical = self.bind_checked(ctx, &sel, None)?;
                let physical = self.optimize_full(ctx, &logical, false)?.0;
                Ok((logical, physical))
            }
            other => Err(EvoptError::Plan(format!(
                "plan_sql expects a SELECT, got {other:?}"
            ))),
        }
    }

    /// Optimize a bound logical plan with the current configuration.
    pub fn optimize(&self, logical: &LogicalPlan) -> Result<PhysicalPlan> {
        let ctx = self.default_ctx();
        Ok(self.optimize_full(&ctx, logical, false)?.0)
    }

    /// Apply `f` to the per-instance registry, the process-global one, and
    /// — when the statement runs through a [`Session`] — that session's
    /// own registry. A no-op when metrics are disabled.
    fn record_ctx(&self, ctx: &StatementCtx, f: impl Fn(&EngineMetrics)) {
        if let Some(m) = &self.metrics {
            f(m);
            f(evopt_obs::global());
            if let Some(s) = &ctx.session_metrics {
                f(s);
            }
        }
    }

    /// Optimize, recording optimizer metrics and (optionally) the full
    /// search journal. Returns the plan, the trace (always present when
    /// `want_trace` or metrics are on), and the optimize wall time in µs.
    ///
    /// When only metrics are on the sink is counts-only: exact
    /// considered/pruned totals, zero event storage.
    fn optimize_full(
        &self,
        ctx: &StatementCtx,
        logical: &LogicalPlan,
        want_trace: bool,
    ) -> Result<(PhysicalPlan, Option<SearchTrace>, u64)> {
        let mut cfg = ctx.cfg.optimizer;
        cfg.verify = cfg.verify || ctx.cfg.verify_plans;
        let verifying = cfg.verify || cfg!(debug_assertions);
        let mut optimizer = Optimizer::new(cfg);
        if want_trace {
            optimizer = optimizer.with_trace(TraceSink::bounded(DEFAULT_TRACE_EVENTS));
        } else if self.metrics.is_some() {
            optimizer = optimizer.with_trace(TraceSink::counts_only());
        }
        let started = Instant::now();
        let physical = match optimizer.optimize(logical, &ctx.catalog) {
            Ok(p) => {
                if verifying {
                    self.record_ctx(ctx, |m| m.plans_verified.inc());
                }
                p
            }
            Err(e) => {
                if verifying && e.message().contains("plan verification failed") {
                    self.record_ctx(ctx, |m| m.verify_failures.inc());
                }
                return Err(e);
            }
        };
        let optimize_us = started.elapsed().as_micros() as u64;
        let trace = optimizer.take_trace().map(TraceSink::into_trace);
        if let Some(t) = &trace {
            self.record_ctx(ctx, |m| {
                m.optimize_calls.inc();
                m.plans_considered.add(t.considered);
                m.plans_pruned.add(t.pruned);
                m.optimize_time_us.observe(optimize_us);
            });
        }
        Ok((physical, trace, optimize_us))
    }

    /// Post-execution bookkeeping for a successful SELECT: query counters,
    /// execute-time histogram, slow-query flagging, and the query-log
    /// entry.
    #[allow(clippy::too_many_arguments)]
    fn finish_select(
        &self,
        ctx: &StatementCtx,
        sql: &str,
        physical: &PhysicalPlan,
        actual_rows: u64,
        optimize_us: u64,
        execute_us: u64,
        io: &IoSnapshot,
        span: Option<StatementSpan>,
    ) {
        if self.metrics.is_none() {
            return;
        }
        let slow = optimize_us + execute_us >= self.query_log.slow_threshold_us();
        self.record_ctx(ctx, |m| {
            m.queries.inc();
            m.execute_time_us.observe(execute_us);
            if slow {
                m.slow_queries.inc();
            }
        });
        let _r = lockorder::acquire(lockorder::OBS);
        self.query_log.record(QueryLogEntry {
            sql: sql.to_string(),
            session_id: ctx.session_id,
            plan_digest: physical.digest_hex(),
            est_rows: physical.est_rows,
            actual_rows,
            optimize_us,
            execute_us,
            pages_read: io.reads,
            pages_written: io.writes,
            slow: false, // stamped by QueryLog::record against its threshold
            span,
        });
    }

    /// Point-in-time metrics for this instance. Storage counters come from
    /// the live pool/disk/injector (authoritative lifetime totals, DDL and
    /// loads included); optimizer/executor/engine counters from the query
    /// path. All zeros when `config.metrics` is off.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut snap = match &self.metrics {
            Some(m) => m.snapshot(),
            None => EngineMetrics::default().snapshot(),
        };
        let pool = self.pool.stats();
        snap.pool_hits = pool.hits;
        snap.pool_misses = pool.misses;
        snap.pool_evictions = pool.evictions;
        snap.pool_retries = pool.retries;
        snap.pool_corruptions = pool.corruptions;
        snap.pool_miss_io_us = self.pool.miss_io_histogram();
        snap.pool_load_wait_us = self.pool.load_wait_histogram();
        let io = self.disk.snapshot();
        snap.disk_reads = io.reads;
        snap.disk_writes = io.writes;
        if let Some(inj) = &self.injector {
            let report = inj.report();
            snap.faults_injected = report.total();
            snap.silent_corruptions = report.silent_corruptions();
        }
        if let Some(wal) = &self.wal {
            let w = wal.stats();
            snap.wal_records_written = w.records_written;
            snap.wal_bytes = w.bytes_written;
            snap.checkpoints = w.checkpoints;
            snap.recoveries = w.recoveries;
            snap.recovery_replayed_records = w.replayed_records;
            snap.wal_coalesced_syncs = w.coalesced_syncs;
            snap.wal_sync_wait_us = wal.sync_wait_histogram();
        }
        snap
    }

    /// Prometheus text exposition of [`Database::metrics_snapshot`].
    pub fn metrics_text(&self) -> String {
        self.metrics_snapshot().to_prometheus()
    }

    /// The ring buffer of recent queries (`SHOW QUERY LOG`).
    pub fn query_log(&self) -> &QueryLog {
        &self.query_log
    }

    /// Change the slow-query threshold for subsequent queries.
    pub fn set_slow_query_threshold_us(&self, us: u64) {
        self.query_log.set_slow_threshold_us(us);
    }

    /// Run a SELECT with the optimizer's full search journal attached.
    /// The programmatic counterpart of `EXPLAIN TRACE`: same plan, same
    /// rows as [`Database::query`] — tracing only observes.
    pub fn query_traced(&self, sql: &str) -> Result<TracedQuery> {
        let ctx = self.default_ctx();
        match parse(sql)? {
            Statement::Select(sel) => {
                let logical = self.bind_checked(&ctx, &sel, None)?;
                let (plan, trace, _) = self.optimize_full(&ctx, &logical, true)?;
                let trace = trace
                    .ok_or_else(|| EvoptError::Internal("trace requested but absent".into()))?;
                let rows = run_collect(&plan, &self.exec_env(&ctx))?;
                Ok(TracedQuery { rows, plan, trace })
            }
            other => Err(EvoptError::Plan(format!(
                "query_traced expects a SELECT, got {other:?}"
            ))),
        }
    }

    /// Execute a physical plan.
    pub fn run_plan(&self, plan: &PhysicalPlan) -> Result<Vec<Tuple>> {
        run_collect(plan, &self.exec_env(&self.default_ctx()))
    }

    /// Execute a physical plan with per-operator instrumentation.
    pub fn run_plan_instrumented(&self, plan: &PhysicalPlan) -> Result<(Vec<Tuple>, QueryMetrics)> {
        run_collect_instrumented(plan, &self.exec_env(&self.default_ctx()))
    }

    fn exec_env(&self, ctx: &StatementCtx) -> ExecEnv {
        let buffer_pages = ctx.cfg.optimizer.cost_model.buffer_pages;
        let env = ExecEnv::new(Arc::clone(&ctx.catalog), buffer_pages)
            .with_batch_rows(ctx.cfg.batch_rows)
            .with_columnar(ctx.cfg.columnar);
        match &self.metrics {
            Some(m) => env.with_metrics(Arc::clone(m)),
            None => env,
        }
    }

    /// Run a statement and report the physical I/O it performed.
    pub fn measured(&self, sql: &str) -> Result<(QueryResult, IoSnapshot)> {
        let before = self.disk.snapshot();
        let result = self.execute(sql)?;
        let after = self.disk.snapshot();
        Ok((result, after.since(&before)))
    }

    /// Run a statement and report the buffer-pool traffic it caused.
    pub fn measured_pool(&self, sql: &str) -> Result<(QueryResult, PoolSnapshot)> {
        let before = self.pool.stats();
        let result = self.execute(sql)?;
        let after = self.pool.stats();
        Ok((result, after.since(&before)))
    }

    /// Bulk-insert pre-built tuples (index-maintaining). One commit for
    /// the whole batch, serialized with other writers like any statement.
    pub fn insert_tuples(&self, table: &str, tuples: &[Tuple]) -> Result<usize> {
        let pending = {
            let (_c, _guard) = self.lock_commit(None);
            let info = self.catalog.table(table)?;
            for t in tuples {
                self.insert_one(&info, t)?;
            }
            self.wal_commit_locked()?
        };
        self.wal_sync(pending)?;
        Ok(tuples.len())
    }

    fn insert_one(&self, info: &Arc<TableInfo>, tuple: &Tuple) -> Result<()> {
        if tuple.len() != info.schema.len() {
            return Err(EvoptError::Execution(format!(
                "insert arity {} does not match table '{}' ({} columns)",
                tuple.len(),
                info.name,
                info.schema.len()
            )));
        }
        for (v, col) in tuple.values().iter().zip(info.schema.columns()) {
            match v.data_type() {
                None => {
                    if !col.nullable {
                        return Err(EvoptError::Execution(format!(
                            "NULL in NOT NULL column '{}'",
                            col.name
                        )));
                    }
                }
                Some(dt) => {
                    if dt.unify(col.dtype) != Some(col.dtype) {
                        return Err(EvoptError::Execution(format!(
                            "type mismatch for column '{}': expected {}, got {}",
                            col.name, col.dtype, dt
                        )));
                    }
                }
            }
        }
        let rid = info.heap.insert(tuple)?;
        for idx in info.indexes() {
            let key = tuple.value(idx.column)?;
            if !key.is_null() {
                idx.btree.insert(key, rid)?;
            }
        }
        Ok(())
    }

    /// Whether a statement mutates the database (and therefore must hold
    /// the commit lock). Everything else runs lock-free on snapshots.
    fn is_write(stmt: &Statement) -> bool {
        matches!(
            stmt,
            Statement::CreateTable { .. }
                | Statement::CreateIndex { .. }
                | Statement::Insert { .. }
                | Statement::Delete { .. }
                | Statement::Update { .. }
                | Statement::DropTable { .. }
                | Statement::Analyze { .. }
        )
    }

    /// Execute one parsed statement under a statement context.
    ///
    /// Writes serialize through the commit lock for apply + WAL append,
    /// then sync *after* releasing it: a session syncing the log covers
    /// every commit appended before it, so back-to-back writers share
    /// fsyncs (group commit). Reads never take the commit lock.
    fn execute_with_ctx(
        &self,
        ctx: &StatementCtx,
        stmt: &Statement,
        sql: &str,
        mut span: Option<&mut SpanState>,
    ) -> Result<QueryResult> {
        if Self::is_write(stmt) {
            let commit_started = Instant::now();
            let wal_before = self.wal.as_ref().map(|w| w.stats());
            let (result, pending) = {
                let (_c, _guard) = self.lock_commit(Some(ctx));
                let result = self.apply_write(ctx, stmt)?;
                let pending = self.wal_commit_locked()?;
                (result, pending)
            };
            self.wal_sync(pending)?;
            if let Some(s) = span.as_deref_mut() {
                let mut phase =
                    PhaseSpan::new(Phase::Commit, commit_started.elapsed().as_micros() as u64);
                if let (Some(before), Some(wal)) = (wal_before, self.wal.as_ref()) {
                    // Deltas are approximate under concurrency (the WAL
                    // counters are instance-wide), exact when this writer
                    // is alone.
                    let after = wal.stats();
                    phase = phase
                        .counter(
                            "wal_records",
                            after.records_written.saturating_sub(before.records_written),
                        )
                        .counter(
                            "wal_bytes",
                            after.bytes_written.saturating_sub(before.bytes_written),
                        );
                }
                s.push(phase);
                s.finish();
            }
            return Ok(result);
        }
        match stmt {
            Statement::Select(sel) => {
                let logical = self.bind_checked(ctx, sel, span.as_deref_mut())?;
                let (physical, search_trace, optimize_us) =
                    self.optimize_full(ctx, &logical, false)?;
                if let Some(s) = span.as_deref_mut() {
                    let mut phase = PhaseSpan::new(Phase::Optimize, optimize_us);
                    if let Some(t) = &search_trace {
                        phase = phase
                            .counter("considered", t.considered)
                            .counter("pruned", t.pruned);
                    }
                    s.push(phase);
                }
                let governor = ctx.cfg.governor;
                let pool_before = self.pool.stats();
                let io_before = self.disk.snapshot();
                let started = Instant::now();
                let outcome = if governor.is_unlimited() {
                    run_collect(&physical, &self.exec_env(ctx)).map(|rows| (rows, None))
                } else {
                    // Session-governed SELECT: run under the limits; the
                    // instrumented metrics ride along on success.
                    let (rows, metrics) = run_collect_governed(
                        &physical,
                        &self.exec_env(ctx),
                        governor,
                        CancellationToken::new(),
                    );
                    if matches!(
                        &rows,
                        Err(EvoptError::Canceled(_) | EvoptError::ResourceExhausted(_))
                    ) {
                        self.record_ctx(ctx, |m| m.governor_kills.inc());
                    }
                    rows.map(|rows| (rows, Some(Box::new(metrics))))
                };
                let execute_us = started.elapsed().as_micros() as u64;
                let (rows, metrics) = outcome?;
                let pool_delta = self.pool.stats().since(&pool_before);
                let io_delta = self.disk.snapshot().since(&io_before);
                let finished_span = span.as_deref_mut().map(|s| {
                    s.push(
                        PhaseSpan::new(Phase::Execute, execute_us)
                            .counter("rows", rows.len() as u64)
                            .counter("pool_hits", pool_delta.hits)
                            .counter("pool_misses", pool_delta.misses)
                            .counter("pages_read", io_delta.reads)
                            .counter("pages_written", io_delta.writes),
                    );
                    s.finish();
                    s.span.clone()
                });
                self.finish_select(
                    ctx,
                    sql,
                    &physical,
                    rows.len() as u64,
                    optimize_us,
                    execute_us,
                    &io_delta,
                    finished_span,
                );
                self.record_ctx(ctx, |m| {
                    m.pool_hits.add(pool_delta.hits);
                    m.pool_misses.add(pool_delta.misses);
                    m.pool_evictions.add(pool_delta.evictions);
                    m.pool_retries.add(pool_delta.retries);
                    m.pool_corruptions.add(pool_delta.corruptions);
                    m.disk_reads.add(io_delta.reads);
                    m.disk_writes.add(io_delta.writes);
                });
                Ok(QueryResult::Rows {
                    schema: physical.schema.clone(),
                    rows,
                    metrics,
                })
            }
            Statement::Explain {
                analyze,
                trace,
                verify,
                inner,
            } => match &**inner {
                Statement::Select(sel) => {
                    let logical = self.bind_checked(ctx, sel, span.as_deref_mut())?;
                    let (physical, search_trace, optimize_us) =
                        self.optimize_full(ctx, &logical, *trace)?;
                    if let Some(s) = span.as_deref_mut() {
                        let mut phase = PhaseSpan::new(Phase::Optimize, optimize_us);
                        if let Some(t) = &search_trace {
                            phase = phase
                                .counter("considered", t.considered)
                                .counter("pruned", t.pruned);
                        }
                        s.push(phase);
                    }
                    let mut text = format!(
                        "== logical ==\n{}== physical ({}) ==\n{}",
                        logical.display_indent(),
                        ctx.cfg.optimizer.strategy.name(),
                        physical.display_indent()
                    );
                    if *trace {
                        if let Some(t) = &search_trace {
                            text.push_str(&format!("== trace ({}) ==\n{}", t.strategy, t.render()));
                        }
                    }
                    if *verify {
                        text.push_str(&self.render_verify(ctx, &logical, &physical));
                    }
                    if *analyze {
                        let exec_started = Instant::now();
                        let (rows, metrics) =
                            run_collect_instrumented(&physical, &self.exec_env(ctx))?;
                        let execute_us = exec_started.elapsed().as_micros() as u64;
                        text.push_str(&format!(
                            "== measured ==\n{}rows: {}\npage reads: {}\npage writes: {}\n\
                             plan digest: {}\noptimize time: {optimize_us}µs\n",
                            metrics.render(),
                            rows.len(),
                            metrics.disk_reads,
                            metrics.disk_writes,
                            physical.digest_hex()
                        ));
                        if let Some(s) = span {
                            let batches =
                                metrics.operators.first().map(|o| o.next_calls).unwrap_or(0);
                            s.push(
                                PhaseSpan::new(Phase::Execute, execute_us)
                                    .counter("rows", rows.len() as u64)
                                    .counter("batches", batches)
                                    .counter("pool_hits", metrics.pool_hits)
                                    .counter("pool_misses", metrics.pool_misses),
                            );
                            s.finish();
                            text.push_str(&format!("== phases ==\n{}", s.span.render_table()));
                        }
                    }
                    Ok(QueryResult::Explained(text))
                }
                other => Err(EvoptError::Plan(format!(
                    "EXPLAIN supports SELECT only, got {other:?}"
                ))),
            },
            Statement::ShowQueryLog => Ok(self.render_query_log()),
            other => Err(EvoptError::Internal(format!(
                "write statement {other:?} escaped the commit path"
            ))),
        }
    }

    /// Apply one mutating statement against the *live* catalog. Caller
    /// holds the commit lock and stages the WAL commit afterwards.
    fn apply_write(&self, ctx: &StatementCtx, stmt: &Statement) -> Result<QueryResult> {
        match stmt {
            Statement::CreateTable { name, columns } => {
                let cols: Vec<Column> = columns
                    .iter()
                    .map(|c| {
                        let col = Column::new(c.name.clone(), c.dtype);
                        if c.nullable {
                            col
                        } else {
                            col.not_null()
                        }
                    })
                    .collect();
                let info = self.catalog.create_table(name, Schema::new(cols))?;
                if let Some(wal) = &self.wal {
                    wal.log_create_table(&Self::table_image(&info))?;
                }
                Ok(QueryResult::Ok)
            }
            Statement::CreateIndex {
                name,
                table,
                column,
                unique,
                clustered,
            } => {
                if *clustered {
                    self.verify_heap_sorted(table, column)?;
                }
                let info = self
                    .catalog
                    .create_index(name, table, column, *unique, *clustered)?;
                if let Some(wal) = &self.wal {
                    wal.log_create_index(&info.table, &Self::index_image(&info))?;
                }
                Ok(QueryResult::Ok)
            }
            Statement::Insert { table, rows } => {
                let info = self.catalog.table(table)?;
                let empty = Schema::empty();
                let blank = Tuple::new(vec![]);
                let mut n = 0;
                for row in rows {
                    let mut values = Vec::with_capacity(row.len());
                    for e in row {
                        let bound = bind_const(e, &empty)?;
                        values.push(bound.eval(&blank)?);
                    }
                    self.insert_one(&info, &Tuple::new(values))?;
                    n += 1;
                }
                Ok(QueryResult::Affected(n))
            }
            Statement::Delete { table, predicate } => {
                let info = self.catalog.table(table)?;
                let predicate = match predicate {
                    Some(p) => Some(bind_row_expr(p, &info.schema)?),
                    None => None,
                };
                let mut victims = Vec::new();
                for item in info.heap.scan() {
                    let (rid, tuple) = item?;
                    let keep = match &predicate {
                        Some(p) => !p.eval_predicate(&tuple)?,
                        None => false,
                    };
                    if !keep {
                        victims.push((rid, tuple));
                    }
                }
                for (rid, tuple) in &victims {
                    info.heap.delete(*rid)?;
                    for idx in info.indexes() {
                        let key = tuple.value(idx.column)?;
                        if !key.is_null() {
                            idx.btree.delete(key, *rid)?;
                        }
                    }
                }
                Ok(QueryResult::Affected(victims.len()))
            }
            Statement::Update {
                table,
                sets,
                predicate,
            } => {
                let info = self.catalog.table(table)?;
                let predicate = match predicate {
                    Some(p) => Some(bind_row_expr(p, &info.schema)?),
                    None => None,
                };
                let mut assignments = Vec::with_capacity(sets.len());
                for (col, value) in sets {
                    let ordinal = info.schema.resolve(None, col)?;
                    assignments.push((ordinal, bind_row_expr(value, &info.schema)?));
                }
                // Two phases: collect matches first, then rewrite — so the
                // new rows are never re-visited by the same scan.
                let mut matches = Vec::new();
                for item in info.heap.scan() {
                    let (rid, tuple) = item?;
                    let hit = match &predicate {
                        Some(p) => p.eval_predicate(&tuple)?,
                        None => true,
                    };
                    if hit {
                        matches.push((rid, tuple));
                    }
                }
                for (rid, old) in &matches {
                    let mut values = old.values().to_vec();
                    for (ordinal, expr) in &assignments {
                        values[*ordinal] = expr.eval(old)?;
                    }
                    let new = Tuple::new(values);
                    // Delete + reinsert keeps heap and indexes consistent
                    // without in-place size games.
                    info.heap.delete(*rid)?;
                    for idx in info.indexes() {
                        let key = old.value(idx.column)?;
                        if !key.is_null() {
                            idx.btree.delete(key, *rid)?;
                        }
                    }
                    self.insert_one(&info, &new)?;
                }
                Ok(QueryResult::Affected(matches.len()))
            }
            Statement::Analyze { table } => {
                // Statistics install copy-on-write: readers planning
                // against a snapshot keep the estimates they started with.
                let cfg = ctx.cfg.analyze;
                match table {
                    Some(t) => {
                        let info = self.catalog.table(t)?;
                        let stats = compute_stats(&info, &cfg)?;
                        self.catalog.install_stats(&info.name, stats)?;
                    }
                    None => {
                        for t in self.catalog.tables() {
                            let stats = compute_stats(&t, &cfg)?;
                            self.catalog.install_stats(&t.name, stats)?;
                        }
                    }
                }
                Ok(QueryResult::Ok)
            }
            Statement::DropTable { name } => {
                self.catalog.drop_table(name)?;
                if let Some(wal) = &self.wal {
                    wal.log_drop_table(&name.to_ascii_lowercase())?;
                }
                Ok(QueryResult::Ok)
            }
            other => Err(EvoptError::Internal(format!(
                "read statement {other:?} routed to the write path"
            ))),
        }
    }

    /// `EXPLAIN VERIFY`: run the verifier over both plans plus the SQL
    /// lints, reporting rather than erroring, and count the outcomes in
    /// the metrics registry.
    fn render_verify(
        &self,
        ctx: &StatementCtx,
        logical: &LogicalPlan,
        physical: &PhysicalPlan,
    ) -> String {
        let post_bind = verify::verify_logical(logical, VerifyPhase::PostBind);
        let post_phys =
            verify::verify_physical(physical, Some(&ctx.catalog), VerifyPhase::PostPhysical);
        let lints = verify::lint_logical(logical);
        let mut text = String::from("== verify ==\n");
        text.push_str(&post_bind.render());
        text.push_str(&post_phys.render());
        if lints.is_empty() {
            text.push_str("lints: none\n");
        } else {
            text.push_str(&format!("lints ({}):\n", lints.len()));
            for l in &lints {
                text.push_str(&format!("  {l}\n"));
            }
        }
        let failures = (post_bind.issues.len() + post_phys.issues.len()) as u64;
        let lint_count = lints.len() as u64;
        self.record_ctx(ctx, |m| {
            m.plans_verified.inc();
            m.verify_failures.add(failures);
            m.lints_flagged.add(lint_count);
        });
        text
    }

    /// `SHOW QUERY LOG`: recent queries, newest first, as a rows result.
    /// `session_id` attributes each entry to the session that ran it
    /// (0 = the database-level implicit session); `phases` is the
    /// statement span's compact rendering, empty when spans were off.
    fn render_query_log(&self) -> QueryResult {
        let schema = Schema::new(vec![
            Column::new("session_id", DataType::Int),
            Column::new("sql", DataType::Str),
            Column::new("plan_digest", DataType::Str),
            Column::new("est_rows", DataType::Float),
            Column::new("actual_rows", DataType::Int),
            Column::new("q_error", DataType::Float),
            Column::new("optimize_us", DataType::Int),
            Column::new("execute_us", DataType::Int),
            Column::new("pages_read", DataType::Int),
            Column::new("pages_written", DataType::Int),
            Column::new("slow", DataType::Bool),
            Column::new("phases", DataType::Str),
        ]);
        let _r = lockorder::acquire(lockorder::OBS);
        let rows = self
            .query_log
            .entries()
            .into_iter()
            .map(|e| {
                Tuple::new(vec![
                    Value::Int(e.session_id as i64),
                    Value::Str(e.sql.clone()),
                    Value::Str(e.plan_digest.clone()),
                    Value::Float(e.est_rows),
                    Value::Int(e.actual_rows as i64),
                    Value::Float(e.q_error()),
                    Value::Int(e.optimize_us as i64),
                    Value::Int(e.execute_us as i64),
                    Value::Int(e.pages_read as i64),
                    Value::Int(e.pages_written as i64),
                    Value::Bool(e.slow),
                    Value::Str(e.span.as_ref().map(|s| s.compact()).unwrap_or_default()),
                ])
            })
            .collect();
        QueryResult::Rows {
            schema,
            rows,
            metrics: None,
        }
    }

    /// CLUSTERED index invariant: the heap must already be physically
    /// sorted on the key column (load sorted, then create the index).
    fn verify_heap_sorted(&self, table: &str, column: &str) -> Result<()> {
        let info = self.catalog.table(table)?;
        let col = info
            .schema
            .resolve(None, column)
            .map_err(|_| EvoptError::Catalog(format!("unknown column '{column}' on '{table}'")))?;
        let mut last: Option<Value> = None;
        for item in info.heap.scan() {
            let (_, t) = item?;
            let v = t.value(col)?.clone();
            if let Some(prev) = &last {
                if v < *prev {
                    return Err(EvoptError::Catalog(format!(
                        "cannot create CLUSTERED index: heap of '{table}' is not \
                         sorted on '{column}' (load the data in key order first)"
                    )));
                }
            }
            last = Some(v);
        }
        Ok(())
    }
}

/// A client session: a cheap handle over a shared [`Database`] with its own
/// copy of the execution knobs and its own metrics registry. Create with
/// [`Database::session`]; hand each connection (or thread) one.
///
/// Any number of sessions execute concurrently. Each statement pins a
/// frozen catalog snapshot and a config copy at entry; reads run entirely
/// on the snapshot, writes serialize through the engine commit lock and
/// group-commit their WAL syncs with adjacent sessions. Knob changes on
/// one session never affect another — the [`Database`]-level setters only
/// change the *defaults* future sessions start from.
pub struct Session {
    db: Arc<Database>,
    id: u64,
    config: Mutex<SessionConfig>,
    /// Per-session metrics registry (present when the instance records
    /// metrics): same schema as the engine-wide registry, scoped to this
    /// session's statements.
    metrics: Option<Arc<EngineMetrics>>,
}

impl Session {
    fn new(db: Arc<Database>) -> Session {
        let id = db.next_session_id.fetch_add(1, Ordering::Relaxed);
        let config = db.session_defaults();
        let metrics = db
            .metrics
            .is_some()
            .then(|| Arc::new(EngineMetrics::default()));
        Session {
            db,
            id,
            config: Mutex::new(config),
            metrics,
        }
    }

    /// This session's id (unique within its database, starting at 1).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The shared database this session runs against.
    pub fn database(&self) -> &Arc<Database> {
        &self.db
    }

    /// Copy of this session's current config.
    pub fn config(&self) -> SessionConfig {
        let _r = lockorder::acquire(lockorder::CONFIG);
        *self.config.lock()
    }

    fn update(&self, f: impl FnOnce(&mut SessionConfig)) {
        let _r = lockorder::acquire(lockorder::CONFIG);
        f(&mut self.config.lock());
    }

    /// Resource limits for this session's SELECTs.
    pub fn set_governor(&self, governor: GovernorConfig) {
        self.update(|c| c.governor = governor);
    }

    /// Executor batch size for this session (1 = tuple-at-a-time).
    pub fn set_batch_rows(&self, batch_rows: usize) {
        self.update(|c| c.batch_rows = batch_rows.max(1));
    }

    /// Join-enumeration strategy for this session.
    pub fn set_strategy(&self, strategy: Strategy) {
        self.update(|c| c.optimizer.strategy = strategy);
    }

    /// Cost model for this session.
    pub fn set_cost_model(&self, model: CostModel) {
        self.update(|c| c.optimizer.cost_model = model);
    }

    /// ANALYZE configuration for this session.
    pub fn set_analyze_config(&self, cfg: AnalyzeConfig) {
        self.update(|c| c.analyze = cfg);
    }

    /// Opt this session's release-build queries into plan verification.
    pub fn set_verify_plans(&self, on: bool) {
        self.update(|c| c.verify_plans = on);
    }

    /// Toggle columnar execution for this session.
    pub fn set_columnar(&self, on: bool) {
        self.update(|c| c.columnar = on);
    }

    /// Toggle statement-span recording for this session.
    pub fn set_spans(&self, on: bool) {
        self.update(|c| c.spans = on);
    }

    fn ctx(&self) -> StatementCtx {
        StatementCtx {
            cfg: self.config(),
            catalog: self.db.read_snapshot(),
            session_id: self.id,
            session_metrics: self.metrics.clone(),
        }
    }

    /// Execute any statement in this session.
    pub fn execute(&self, sql: &str) -> Result<QueryResult> {
        let ctx = self.ctx();
        self.db.execute_sql_ctx(&ctx, sql)
    }

    /// Run a SELECT and return its rows.
    pub fn query(&self, sql: &str) -> Result<Vec<Tuple>> {
        match self.execute(sql)? {
            QueryResult::Rows { rows, .. } => Ok(rows),
            other => Err(EvoptError::Execution(format!(
                "expected a SELECT, statement returned {other:?}"
            ))),
        }
    }

    /// Run a SELECT under this session's governor with an external
    /// cancellation token (kill-from-another-thread).
    pub fn query_governed(
        &self,
        sql: &str,
        token: CancellationToken,
    ) -> (Result<Vec<Tuple>>, Option<QueryMetrics>) {
        let ctx = self.ctx();
        let governor = ctx.cfg.governor;
        self.db.query_governed_ctx(&ctx, sql, governor, token)
    }

    /// Point-in-time snapshot of this session's own counters (all zeros
    /// when the instance runs with metrics off). Storage-level counters
    /// (pool, disk, WAL) are instance-wide — read them from
    /// [`Database::metrics_snapshot`].
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        match &self.metrics {
            Some(m) => m.snapshot(),
            None => EngineMetrics::default().snapshot(),
        }
    }

    /// Prometheus text exposition for a scrape arriving through this
    /// session: the instance-wide families from
    /// [`Database::metrics_text`] followed by this session's own
    /// counters rendered with a `session="<id>"` label, so a server
    /// scrape can attribute per-client work.
    pub fn metrics_text(&self) -> String {
        let mut out = self.db.metrics_text();
        out.push_str(
            &self
                .metrics_snapshot()
                .to_prometheus_labeled(&format!("session=\"{}\"", self.id)),
        );
        out
    }
}

/// Bind an expression over one table's row schema (DELETE predicates and
/// UPDATE assignments — no aggregates, no other tables).
fn bind_row_expr(e: &AstExpr, schema: &Schema) -> Result<Expr> {
    match e {
        AstExpr::Ident { table, name } => Ok(Expr::Column(schema.resolve(table.as_deref(), name)?)),
        AstExpr::Literal(v) => Ok(Expr::Literal(v.clone())),
        AstExpr::Binary { op, left, right } => Ok(Expr::Binary {
            op: *op,
            left: Box::new(bind_row_expr(left, schema)?),
            right: Box::new(bind_row_expr(right, schema)?),
        }),
        AstExpr::Unary { op, input } => Ok(Expr::Unary {
            op: *op,
            input: Box::new(bind_row_expr(input, schema)?),
        }),
        AstExpr::Like {
            input,
            pattern,
            negated,
        } => Ok(Expr::Like {
            input: Box::new(bind_row_expr(input, schema)?),
            pattern: pattern.clone(),
            negated: *negated,
        }),
        AstExpr::InList {
            input,
            list,
            negated,
        } => Ok(Expr::InList {
            input: Box::new(bind_row_expr(input, schema)?),
            list: list.clone(),
            negated: *negated,
        }),
        AstExpr::Between {
            input,
            low,
            high,
            negated,
        } => Ok(Expr::Between {
            input: Box::new(bind_row_expr(input, schema)?),
            low: Box::new(bind_row_expr(low, schema)?),
            high: Box::new(bind_row_expr(high, schema)?),
            negated: *negated,
        }),
        AstExpr::AggCall { func, .. } => Err(EvoptError::Bind(format!(
            "aggregate {func} is not allowed in DML"
        ))),
    }
}

/// Bind an INSERT value expression (constants and arithmetic only).
#[allow(clippy::only_used_in_recursion)]
fn bind_const(e: &AstExpr, empty: &Schema) -> Result<Expr> {
    match e {
        AstExpr::Ident { name, .. } => Err(EvoptError::Bind(format!(
            "INSERT values must be constants, found identifier '{name}'"
        ))),
        AstExpr::Literal(v) => Ok(Expr::Literal(v.clone())),
        AstExpr::Unary { op, input } => Ok(Expr::Unary {
            op: *op,
            input: Box::new(bind_const(input, empty)?),
        }),
        AstExpr::Binary { op, left, right } => Ok(Expr::Binary {
            op: *op,
            left: Box::new(bind_const(left, empty)?),
            right: Box::new(bind_const(right, empty)?),
        }),
        other => Err(EvoptError::Bind(format!(
            "unsupported INSERT value expression: {other:?}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seeded() -> Database {
        let db = Database::with_defaults();
        db.execute("CREATE TABLE dept (id INT NOT NULL, name STRING)")
            .unwrap();
        db.execute("CREATE TABLE emp (id INT NOT NULL, dept_id INT, salary INT)")
            .unwrap();
        db.execute("INSERT INTO dept VALUES (1, 'eng'), (2, 'sales'), (3, 'hr')")
            .unwrap();
        let rows: Vec<Tuple> = (0..300)
            .map(|i| {
                Tuple::new(vec![
                    Value::Int(i),
                    Value::Int(i % 3 + 1),
                    Value::Int(1000 + i * 10),
                ])
            })
            .collect();
        db.insert_tuples("emp", &rows).unwrap();
        db.execute("CREATE INDEX emp_id ON emp (id)").unwrap();
        db.execute("ANALYZE").unwrap();
        db
    }

    #[test]
    fn end_to_end_select() {
        let db = seeded();
        let rows = db.query("SELECT name FROM dept WHERE id = 2").unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].value(0).unwrap(), &Value::Str("sales".into()));
    }

    #[test]
    fn join_query_counts() {
        let db = seeded();
        let rows = db
            .query(
                "SELECT d.name, COUNT(*) AS n FROM emp e JOIN dept d \
                 ON e.dept_id = d.id GROUP BY d.name ORDER BY n DESC, d.name",
            )
            .unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].value(1).unwrap(), &Value::Int(100));
    }

    #[test]
    fn index_is_maintained_by_inserts() {
        let db = seeded();
        db.execute("INSERT INTO emp VALUES (999, 1, 5)").unwrap();
        // Point query should find the new row via the index.
        let (_, physical) = db
            .plan_sql("SELECT salary FROM emp WHERE id = 999")
            .unwrap();
        fn has_index_scan(p: &PhysicalPlan) -> bool {
            p.op_name() == "IndexScan" || p.children().iter().any(|c| has_index_scan(c))
        }
        assert!(has_index_scan(&physical), "{physical}");
        let rows = db.query("SELECT salary FROM emp WHERE id = 999").unwrap();
        assert_eq!(rows, vec![Tuple::new(vec![Value::Int(5)])]);
    }

    #[test]
    fn insert_type_and_null_enforcement() {
        let db = seeded();
        let e = db
            .execute("INSERT INTO dept VALUES (NULL, 'x')")
            .unwrap_err();
        assert!(e.message().contains("NOT NULL"));
        let e = db
            .execute("INSERT INTO dept VALUES ('str', 'x')")
            .unwrap_err();
        assert!(e.message().contains("type mismatch"));
        let e = db.execute("INSERT INTO dept VALUES (1)").unwrap_err();
        assert!(e.message().contains("arity"));
    }

    #[test]
    fn explain_outputs_both_plans() {
        let db = seeded();
        let text = db.explain("SELECT * FROM emp WHERE id < 10").unwrap();
        assert!(text.contains("== logical =="));
        assert!(text.contains("== physical"));
        assert!(text.contains("system-r"));
    }

    #[test]
    fn explain_analyze_reports_io() {
        let db = seeded();
        match db
            .execute("EXPLAIN ANALYZE SELECT * FROM emp WHERE id = 5")
            .unwrap()
        {
            QueryResult::Explained(text) => {
                assert!(text.contains("rows: 1"), "{text}");
                assert!(text.contains("page reads:"), "{text}");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn strategies_agree_on_results() {
        let db = seeded();
        let sql = "SELECT e.id, d.name FROM emp e JOIN dept d ON e.dept_id = d.id \
                   WHERE e.salary > 2500 ORDER BY e.id";
        let baseline = db.query(sql).unwrap();
        assert!(!baseline.is_empty());
        for strategy in [
            Strategy::BushyDp,
            Strategy::Greedy,
            Strategy::Goo,
            Strategy::QuickPick {
                samples: 4,
                seed: 9,
            },
            Strategy::Syntactic,
        ] {
            db.set_strategy(strategy);
            assert_eq!(
                db.query(sql).unwrap(),
                baseline,
                "strategy {} changed results",
                strategy.name()
            );
        }
    }

    #[test]
    fn clustered_index_requires_sorted_heap() {
        let db = Database::with_defaults();
        db.execute("CREATE TABLE s (k INT)").unwrap();
        db.execute("INSERT INTO s VALUES (3), (1), (2)").unwrap();
        let e = db
            .execute("CREATE CLUSTERED INDEX s_k ON s (k)")
            .unwrap_err();
        assert!(e.message().contains("not"), "{e}");
        // Sorted data is accepted.
        db.execute("CREATE TABLE s2 (k INT)").unwrap();
        db.execute("INSERT INTO s2 VALUES (1), (2), (3)").unwrap();
        db.execute("CREATE CLUSTERED INDEX s2_k ON s2 (k)").unwrap();
    }

    #[test]
    fn measured_io_nonzero_for_cold_scan() {
        let db = Database::new(DatabaseConfig {
            buffer_pages: 8,
            ..Default::default()
        });
        db.execute("CREATE TABLE big (x INT, pad STRING)").unwrap();
        let rows: Vec<Tuple> = (0..5000)
            .map(|i| Tuple::new(vec![Value::Int(i), Value::Str(format!("pad-{i:06}"))]))
            .collect();
        db.insert_tuples("big", &rows).unwrap();
        db.execute("ANALYZE").unwrap();
        let (result, io) = db.measured("SELECT COUNT(*) FROM big").unwrap();
        assert_eq!(result.rows()[0].value(0).unwrap(), &Value::Int(5000));
        let pages = db.catalog().table("big").unwrap().heap.page_count();
        assert!(
            io.reads >= pages,
            "scan read {} pages, table has {pages}",
            io.reads
        );
    }

    #[test]
    fn drop_table_then_queries_fail() {
        let db = seeded();
        db.execute("DROP TABLE dept").unwrap();
        assert!(db.query("SELECT * FROM dept").is_err());
    }

    #[test]
    fn delete_with_predicate_updates_heap_and_indexes() {
        let db = seeded();
        match db.execute("DELETE FROM emp WHERE salary < 1500").unwrap() {
            QueryResult::Affected(n) => assert_eq!(n, 50),
            other => panic!("{other:?}"),
        }
        let n = db.query("SELECT COUNT(*) FROM emp").unwrap()[0]
            .value(0)
            .unwrap()
            .as_i64()
            .unwrap();
        assert_eq!(n, 250);
        // Index no longer returns deleted rows.
        assert!(db
            .query("SELECT * FROM emp WHERE id = 10")
            .unwrap()
            .is_empty());
        assert_eq!(
            db.query("SELECT * FROM emp WHERE id = 100").unwrap().len(),
            1
        );
        // DELETE without predicate empties the table.
        db.execute("DELETE FROM emp").unwrap();
        assert!(db.query("SELECT * FROM emp").unwrap().is_empty());
    }

    #[test]
    fn update_rewrites_rows_and_indexes() {
        let db = seeded();
        match db
            .execute("UPDATE emp SET salary = salary + 10000, id = id + 1000 WHERE id < 3")
            .unwrap()
        {
            QueryResult::Affected(n) => assert_eq!(n, 3),
            other => panic!("{other:?}"),
        }
        // Old ids are gone from the index path; new ids are findable.
        assert!(db
            .query("SELECT * FROM emp WHERE id = 1")
            .unwrap()
            .is_empty());
        let rows = db.query("SELECT salary FROM emp WHERE id = 1001").unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].value(0).unwrap(), &Value::Int(1000 + 10 + 10000));
        // Row count unchanged.
        let n = db.query("SELECT COUNT(*) FROM emp").unwrap()[0]
            .value(0)
            .unwrap()
            .as_i64()
            .unwrap();
        assert_eq!(n, 300);
        // Constraint enforcement still applies through UPDATE.
        assert!(db
            .execute("UPDATE emp SET id = NULL WHERE id = 1001")
            .is_err());
    }

    #[test]
    fn select_distinct_end_to_end() {
        let db = seeded();
        let rows = db
            .query("SELECT DISTINCT dept_id FROM emp ORDER BY dept_id")
            .unwrap();
        let got: Vec<i64> = rows
            .iter()
            .map(|t| t.value(0).unwrap().as_i64().unwrap())
            .collect();
        assert_eq!(got, vec![1, 2, 3]);
    }

    #[test]
    fn durable_database_survives_losing_the_buffer_pool() {
        let disk: Arc<dyn DiskBackend> = Arc::new(DiskManager::new());
        let cfg = DatabaseConfig {
            durability: Durability::Wal,
            ..Default::default()
        };
        let db = Database::create_on(Arc::clone(&disk), cfg).unwrap();
        db.execute("CREATE TABLE t (id INT NOT NULL, name STRING)")
            .unwrap();
        db.execute("INSERT INTO t VALUES (1, 'a'), (2, 'b'), (3, 'c')")
            .unwrap();
        db.execute("CREATE INDEX t_id ON t (id)").unwrap();
        db.execute("DELETE FROM t WHERE id = 2").unwrap();
        let expect = db.query("SELECT id, name FROM t ORDER BY id").unwrap();
        // Crash: drop the database (pool and all) without ever flushing.
        drop(db);
        let (db2, info) = Database::recover(disk, cfg).unwrap();
        assert!(info.replayed_records > 0);
        assert_eq!(info.catalog.tables.len(), 1);
        assert_eq!(
            db2.query("SELECT id, name FROM t ORDER BY id").unwrap(),
            expect
        );
        // The recovered index answers point queries.
        assert_eq!(
            db2.query("SELECT name FROM t WHERE id = 3").unwrap().len(),
            1
        );
        assert!(db2
            .query("SELECT name FROM t WHERE id = 2")
            .unwrap()
            .is_empty());
        // And the recovered database keeps working durably.
        db2.execute("INSERT INTO t VALUES (4, 'd')").unwrap();
        let snap = db2.metrics_snapshot();
        assert_eq!(snap.recoveries, 1);
        assert!(snap.wal_records_written > 0);
        assert!(snap.wal_bytes > 0);
    }

    #[test]
    fn checkpoint_is_durable_and_counted() {
        let disk: Arc<dyn DiskBackend> = Arc::new(DiskManager::new());
        let cfg = DatabaseConfig {
            durability: Durability::Wal,
            ..Default::default()
        };
        let db = Database::create_on(Arc::clone(&disk), cfg).unwrap();
        db.execute("CREATE TABLE t (x INT)").unwrap();
        db.execute("INSERT INTO t VALUES (1), (2)").unwrap();
        db.checkpoint().unwrap();
        db.execute("INSERT INTO t VALUES (3)").unwrap();
        drop(db);
        let (db2, info) = Database::recover(disk, cfg).unwrap();
        // The pre-checkpoint commits are out of the log: recovery scans
        // only the checkpoint record and the one commit after it.
        assert!(info.scanned_records <= 3, "{info:?}");
        let n = db2.query("SELECT COUNT(*) FROM t").unwrap()[0]
            .value(0)
            .unwrap()
            .as_i64()
            .unwrap();
        assert_eq!(n, 3);
        assert_eq!(db2.metrics_snapshot().recoveries, 1);
    }

    #[test]
    fn durability_off_behaves_as_before() {
        let db = Database::with_defaults();
        assert!(db.wal().is_none());
        db.execute("CREATE TABLE t (x INT)").unwrap();
        db.checkpoint().unwrap(); // no-op, not an error
        let snap = db.metrics_snapshot();
        assert_eq!(snap.wal_records_written, 0);
        assert_eq!(snap.recoveries, 0);
        // open_on over a non-durable config is a typed error.
        let disk: Arc<dyn DiskBackend> = Arc::new(DiskManager::new());
        assert!(Database::open_on(disk, DatabaseConfig::default()).is_err());
    }

    #[test]
    fn arithmetic_in_insert_values() {
        let db = Database::with_defaults();
        db.execute("CREATE TABLE c (x INT, y FLOAT)").unwrap();
        db.execute("INSERT INTO c VALUES (2 + 3 * 4, -1.5)")
            .unwrap();
        let rows = db.query("SELECT x, y FROM c").unwrap();
        assert_eq!(rows[0].value(0).unwrap(), &Value::Int(14));
        assert_eq!(rows[0].value(1).unwrap(), &Value::Float(-1.5));
    }

    #[test]
    fn select_constant_expressions_over_table() {
        let db = seeded();
        let rows = db
            .query("SELECT id * 2 AS twice FROM emp WHERE id BETWEEN 1 AND 3 ORDER BY twice")
            .unwrap();
        let vals: Vec<i64> = rows
            .iter()
            .map(|t| t.value(0).unwrap().as_i64().unwrap())
            .collect();
        assert_eq!(vals, vec![2, 4, 6]);
    }
}
