//! Access-path selection for a single base relation.
//!
//! Given a table, its pushed-down predicates (table-local ordinals) and
//! statistics, enumerate the ways to produce its filtered rows:
//!
//! * the **sequential scan** (always available), and
//! * an **index scan** per B+-tree whose column appears in a *sargable*
//!   conjunct (`col = c`, `col < c`, `col BETWEEN a AND b`, ...), with the
//!   matching range extracted into a [`KeyRange`] and everything else left
//!   as a residual filter.
//!
//! Candidates are pruned by dominance: the cheapest path survives, plus the
//! cheapest path *per produced sort order* — an ordered-but-costlier path
//! can still win later if it saves a sort (interesting orders, experiment
//! F3).

use std::ops::Bound;

use evopt_common::{BinOp, Expr, Value};

use crate::cost::{Cost, CostModel};
use crate::physical::KeyRange;
use crate::selectivity::EstimationContext;

/// Everything the path generator needs to know about one candidate index.
#[derive(Debug, Clone)]
pub struct IndexMeta {
    pub name: String,
    /// Table-local ordinal of the indexed column.
    pub column: usize,
    pub height: f64,
    pub pages: f64,
    pub clustered: bool,
    pub unique: bool,
}

/// Physical facts about the relation.
#[derive(Debug, Clone)]
pub struct RelMeta {
    pub table: String,
    pub rows: f64,
    pub pages: f64,
    pub indexes: Vec<IndexMeta>,
}

/// One way to produce the relation's filtered rows.
#[derive(Debug, Clone)]
pub struct PathChoice {
    /// How to scan.
    pub kind: PathKind,
    /// Cost of the scan itself.
    pub cost: Cost,
    /// Output rows (after all local predicates).
    pub rows: f64,
    /// Table-local ordinal whose ascending order the output satisfies.
    pub order: Option<usize>,
}

/// The scan flavour.
#[derive(Debug, Clone)]
pub enum PathKind {
    SeqScan {
        filter: Option<Expr>,
    },
    IndexScan {
        index: String,
        range: KeyRange,
        residual: Option<Expr>,
        clustered: bool,
    },
}

/// Extracted bounds on one column.
#[derive(Debug, Clone, Default)]
struct Sarg {
    low: Option<(Value, bool)>,  // (bound, inclusive)
    high: Option<(Value, bool)>, // (bound, inclusive)
}

impl Sarg {
    fn is_empty(&self) -> bool {
        self.low.is_none() && self.high.is_none()
    }

    fn tighten_low(&mut self, v: Value, inclusive: bool) {
        let better = match &self.low {
            None => true,
            Some((cur, cur_inc)) => v > *cur || (v == *cur && *cur_inc && !inclusive),
        };
        if better {
            self.low = Some((v, inclusive));
        }
    }

    fn tighten_high(&mut self, v: Value, inclusive: bool) {
        let better = match &self.high {
            None => true,
            Some((cur, cur_inc)) => v < *cur || (v == *cur && *cur_inc && !inclusive),
        };
        if better {
            self.high = Some((v, inclusive));
        }
    }

    fn to_range(&self) -> KeyRange {
        let low = match &self.low {
            None => Bound::Unbounded,
            Some((v, true)) => Bound::Included(v.clone()),
            Some((v, false)) => Bound::Excluded(v.clone()),
        };
        let high = match &self.high {
            None => Bound::Unbounded,
            Some((v, true)) => Bound::Included(v.clone()),
            Some((v, false)) => Bound::Excluded(v.clone()),
        };
        KeyRange { low, high }
    }

    /// Selectivity of the extracted bounds alone.
    fn selectivity(&self, col: usize, est: &EstimationContext) -> f64 {
        match (&self.low, &self.high) {
            (Some((lo, _)), Some((hi, _))) if lo == hi => est.eq_selectivity(col, lo),
            _ => {
                let lo = self.low.as_ref().and_then(|(v, _)| v.as_f64());
                let hi = self.high.as_ref().and_then(|(v, _)| v.as_f64());
                if lo.is_none() && hi.is_none() && !self.is_empty() {
                    // Non-numeric bounds (strings): fall back.
                    crate::selectivity::DEFAULT_RANGE_SEL
                } else {
                    est.range_selectivity(col, lo, hi)
                }
            }
        }
    }
}

/// Try to fold `conjunct` into the sarg for `column`. Returns true when the
/// conjunct is fully absorbed (no residual needed).
fn absorb(conjunct: &Expr, column: usize, sarg: &mut Sarg) -> bool {
    match conjunct {
        Expr::Binary { op, left, right } if op.is_comparison() => {
            // Normalise to col OP lit.
            let (col, op, lit) = match (&**left, &**right) {
                (Expr::Column(c), Expr::Literal(v)) => (*c, *op, v),
                (Expr::Literal(v), Expr::Column(c)) => (*c, op.flip(), v),
                _ => return false,
            };
            if col != column || lit.is_null() {
                return false;
            }
            match op {
                BinOp::Eq => {
                    sarg.tighten_low(lit.clone(), true);
                    sarg.tighten_high(lit.clone(), true);
                    true
                }
                BinOp::Lt => {
                    sarg.tighten_high(lit.clone(), false);
                    true
                }
                BinOp::LtEq => {
                    sarg.tighten_high(lit.clone(), true);
                    true
                }
                BinOp::Gt => {
                    sarg.tighten_low(lit.clone(), false);
                    true
                }
                BinOp::GtEq => {
                    sarg.tighten_low(lit.clone(), true);
                    true
                }
                _ => false,
            }
        }
        Expr::Between {
            input,
            low,
            high,
            negated: false,
        } => match (&**input, &**low, &**high) {
            (Expr::Column(c), Expr::Literal(lo), Expr::Literal(hi))
                if *c == column && !lo.is_null() && !hi.is_null() =>
            {
                sarg.tighten_low(lo.clone(), true);
                sarg.tighten_high(hi.clone(), true);
                true
            }
            _ => false,
        },
        _ => false,
    }
}

/// Enumerate and prune the access paths for one relation.
///
/// `local_preds` use table-local ordinals; `est` is indexed the same way.
pub fn access_paths(
    rel: &RelMeta,
    local_preds: &[Expr],
    est: &EstimationContext,
    model: &CostModel,
) -> Vec<PathChoice> {
    let sel_all: f64 = local_preds.iter().map(|p| est.selectivity(p)).product();
    let out_rows = rel.rows * sel_all;
    let mut paths = Vec::new();

    // Sequential scan. If the heap is clustered on some index's column, the
    // scan inherits that order.
    let heap_order = rel.indexes.iter().find(|i| i.clustered).map(|i| i.column);
    paths.push(PathChoice {
        kind: PathKind::SeqScan {
            filter: nonempty_conjunction(local_preds.to_vec()),
        },
        cost: model.seq_scan(rel.pages, rel.rows),
        rows: out_rows,
        order: heap_order,
    });

    // Index scans.
    for idx in &rel.indexes {
        let mut sarg = Sarg::default();
        let mut residual = Vec::new();
        for p in local_preds {
            if !absorb(p, idx.column, &mut sarg) {
                residual.push(p.clone());
            }
        }
        let key_sel = if sarg.is_empty() {
            1.0 // full-index scan: only useful as an order provider
        } else {
            sarg.selectivity(idx.column, est)
        };
        let match_rows = rel.rows * key_sel;
        let cost = model.index_scan(
            idx.clustered,
            key_sel,
            rel.pages,
            idx.pages,
            idx.height,
            match_rows,
        );
        paths.push(PathChoice {
            kind: PathKind::IndexScan {
                index: idx.name.clone(),
                range: sarg.to_range(),
                residual: nonempty_conjunction(residual),
                clustered: idx.clustered,
            },
            cost,
            rows: out_rows,
            order: Some(idx.column),
        });
    }

    let mut kept = prune_paths(paths, model);
    // The sequential scan can be dominated (e.g. by a cheaper clustered
    // index scan that also provides an order), but it must always remain a
    // candidate: the syntactic baseline is defined in terms of it, and
    // keeping it costs nothing.
    if !kept
        .iter()
        .any(|p| matches!(p.kind, PathKind::SeqScan { .. }))
    {
        kept.push(PathChoice {
            kind: PathKind::SeqScan {
                filter: nonempty_conjunction(local_preds.to_vec()),
            },
            cost: model.seq_scan(rel.pages, rel.rows),
            rows: out_rows,
            order: heap_order,
        });
    }
    kept
}

/// Keep the cheapest path overall plus the cheapest per distinct order.
pub fn prune_paths(paths: Vec<PathChoice>, model: &CostModel) -> Vec<PathChoice> {
    let mut kept: Vec<PathChoice> = Vec::new();
    for p in paths {
        let mut dominated = false;
        kept.retain(|k| {
            let k_cheaper = model.total(k.cost) <= model.total(p.cost);
            let p_cheaper = model.total(p.cost) <= model.total(k.cost);
            // k dominates p: at least as cheap and provides p's order (or p
            // has none).
            if k_cheaper && (p.order.is_none() || k.order == p.order) {
                dominated = true;
            }
            // Drop k if p dominates it.
            !(p_cheaper && (k.order.is_none() || p.order == k.order))
        });
        if !dominated {
            kept.push(p);
        }
    }
    kept
}

fn nonempty_conjunction(preds: Vec<Expr>) -> Option<Expr> {
    if preds.is_empty() {
        None
    } else {
        Some(Expr::conjunction(preds))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selectivity::ColumnInfo;
    use evopt_catalog::{ColumnStats, Histogram};
    use evopt_common::expr::{col, lit};

    /// 100k rows over 1000 pages; col 0 uniform 0..100_000 with an index.
    fn fixture(clustered: bool) -> (RelMeta, EstimationContext) {
        let rel = RelMeta {
            table: "t".into(),
            rows: 100_000.0,
            pages: 1000.0,
            indexes: vec![IndexMeta {
                name: "t_idx".into(),
                column: 0,
                height: 3.0,
                pages: 300.0,
                clustered,
                unique: false,
            }],
        };
        let vals: Vec<f64> = (0..10_000).map(|i| (i * 10) as f64).collect();
        let est = EstimationContext::new(vec![
            ColumnInfo {
                stats: Some(ColumnStats {
                    null_count: 0,
                    ndv: 100_000,
                    min: Some(Value::Int(0)),
                    max: Some(Value::Int(99_999)),
                    mcvs: vec![],
                    histogram: Histogram::equi_depth(&vals, 32),
                }),
                table_rows: 100_000,
            },
            ColumnInfo {
                stats: None,
                table_rows: 100_000,
            },
        ]);
        (rel, est)
    }

    fn cheapest<'a>(paths: &'a [PathChoice], model: &CostModel) -> &'a PathChoice {
        paths
            .iter()
            .min_by(|a, b| model.total(a.cost).total_cmp(&model.total(b.cost)))
            .unwrap()
    }

    #[test]
    fn point_lookup_picks_index() {
        let (rel, est) = fixture(false);
        let model = CostModel::default();
        let preds = vec![Expr::eq(col(0), lit(42i64))];
        let paths = access_paths(&rel, &preds, &est, &model);
        let best = cheapest(&paths, &model);
        match &best.kind {
            PathKind::IndexScan {
                range, residual, ..
            } => {
                assert_eq!(range, &KeyRange::eq(Value::Int(42)) as &KeyRange);
                assert!(residual.is_none());
            }
            other => panic!("expected index scan, got {other:?}"),
        }
        assert!(best.rows <= 20.0, "rows = {}", best.rows);
    }

    #[test]
    fn wide_range_picks_seq_scan() {
        let (rel, est) = fixture(false);
        let model = CostModel::default();
        // 90% of the table: unclustered index would do ~90k random I/Os.
        let preds = vec![Expr::binary(BinOp::Gt, col(0), lit(10_000i64))];
        let paths = access_paths(&rel, &preds, &est, &model);
        let best = cheapest(&paths, &model);
        assert!(
            matches!(best.kind, PathKind::SeqScan { .. }),
            "expected seq scan for 90% selectivity"
        );
    }

    #[test]
    fn clustered_index_survives_wider_ranges() {
        let model = CostModel::default();
        let preds = vec![Expr::binary(BinOp::Lt, col(0), lit(30_000i64))]; // 30%
        let (rel_u, est) = fixture(false);
        let (rel_c, _) = fixture(true);
        let best_u = {
            let paths = access_paths(&rel_u, &preds, &est, &model);
            cheapest(&paths, &model).kind.clone()
        };
        let best_c = {
            let paths = access_paths(&rel_c, &preds, &est, &model);
            cheapest(&paths, &model).kind.clone()
        };
        assert!(matches!(best_u, PathKind::SeqScan { .. }));
        assert!(
            matches!(best_c, PathKind::IndexScan { .. }),
            "clustered index should win at 30%"
        );
    }

    #[test]
    fn range_bounds_intersect() {
        let (rel, est) = fixture(false);
        let model = CostModel::default();
        let preds = vec![
            Expr::binary(BinOp::GtEq, col(0), lit(10i64)),
            Expr::binary(BinOp::Lt, col(0), lit(100i64)),
            Expr::binary(BinOp::Gt, lit(50_000i64), col(0)), // flipped: col < 50000
        ];
        let paths = access_paths(&rel, &preds, &est, &model);
        let idx = paths
            .iter()
            .find(|p| matches!(p.kind, PathKind::IndexScan { .. }))
            .unwrap();
        match &idx.kind {
            PathKind::IndexScan {
                range, residual, ..
            } => {
                assert_eq!(range.low, Bound::Included(Value::Int(10)));
                assert_eq!(range.high, Bound::Excluded(Value::Int(100)));
                assert!(residual.is_none(), "all three absorbed");
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn non_sargable_becomes_residual() {
        let (rel, est) = fixture(false);
        let model = CostModel::default();
        let preds = vec![
            Expr::eq(col(0), lit(5i64)),
            Expr::eq(col(1), lit("x")), // other column: residual
        ];
        let paths = access_paths(&rel, &preds, &est, &model);
        let idx = paths
            .iter()
            .find(|p| matches!(p.kind, PathKind::IndexScan { .. }))
            .unwrap();
        match &idx.kind {
            PathKind::IndexScan { residual, .. } => {
                assert_eq!(residual, &Some(Expr::eq(col(1), lit("x"))));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn between_absorbed() {
        let (rel, est) = fixture(false);
        let model = CostModel::default();
        let preds = vec![Expr::Between {
            input: Box::new(col(0)),
            low: Box::new(lit(5i64)),
            high: Box::new(lit(15i64)),
            negated: false,
        }];
        let paths = access_paths(&rel, &preds, &est, &model);
        let idx = paths
            .iter()
            .find(|p| matches!(p.kind, PathKind::IndexScan { .. }))
            .unwrap();
        match &idx.kind {
            PathKind::IndexScan { range, .. } => {
                assert_eq!(range.low, Bound::Included(Value::Int(5)));
                assert_eq!(range.high, Bound::Included(Value::Int(15)));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn unfiltered_table_keeps_ordered_path_for_interesting_orders() {
        let (rel, est) = fixture(false);
        let model = CostModel::default();
        let paths = access_paths(&rel, &[], &est, &model);
        // Seq scan is cheapest; the full index scan survives only because it
        // provides an order.
        assert_eq!(paths.len(), 2);
        assert!(paths
            .iter()
            .any(|p| matches!(p.kind, PathKind::SeqScan { .. })));
        assert!(paths
            .iter()
            .any(|p| p.order == Some(0) && matches!(p.kind, PathKind::IndexScan { .. })));
    }

    #[test]
    fn pruning_drops_dominated_ordered_paths() {
        let model = CostModel::default();
        let mk = |io: f64, order| PathChoice {
            kind: PathKind::SeqScan { filter: None },
            cost: Cost::new(io, 0.0),
            rows: 10.0,
            order,
        };
        // Ordered path cheaper than unordered: unordered is dominated.
        let kept = prune_paths(vec![mk(10.0, Some(0)), mk(20.0, None)], &model);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].order, Some(0));
        // Two orders both kept; plus cheapest overall.
        let kept = prune_paths(
            vec![
                mk(10.0, None),
                mk(15.0, Some(0)),
                mk(18.0, Some(1)),
                mk(30.0, Some(1)),
            ],
            &model,
        );
        assert_eq!(kept.len(), 3);
    }

    #[test]
    fn clustered_heap_gives_seq_scan_an_order() {
        let (rel, est) = fixture(true);
        let model = CostModel::default();
        let paths = access_paths(&rel, &[], &est, &model);
        let seq = paths
            .iter()
            .find(|p| matches!(p.kind, PathKind::SeqScan { .. }))
            .unwrap();
        assert_eq!(seq.order, Some(0));
    }
}
