//! The optimizer facade.
//!
//! [`Optimizer::optimize`] turns a bound [`LogicalPlan`] into an annotated
//! [`PhysicalPlan`]:
//!
//! 1. run the always-win rewrites (constant folding, predicate pushdown);
//! 2. for join subtrees: extract the join graph, build per-relation access
//!    paths and statistics, run the configured enumeration [`Strategy`];
//! 3. for everything else (aggregate, sort, limit, projection): recurse and
//!    stack the physical operator, exploiting input orders where possible
//!    (a sort is skipped when the child already delivers the order).

use std::sync::Arc;

use evopt_catalog::{Catalog, TableInfo};
use evopt_common::{EvoptError, Expr, Result, Schema};
use evopt_obs::TraceSink;
use evopt_plan::join_graph::JoinGraph;
use evopt_plan::{fold_constants, push_down_filters, LogicalPlan, SortKey};

use crate::access_path::{self, IndexMeta, RelMeta};
use crate::cost::CostModel;
use crate::enumerate::{enumerate, BaseRel, JoinContext, Strategy, SubPlan};
use crate::physical::{PhysAgg, PhysOp, PhysicalPlan};
use crate::selectivity::{ColumnInfo, EstimationContext};
use crate::verify;

/// Fallback tuple width when a relation has no statistics.
const DEFAULT_WIDTH: f64 = 64.0;
/// Fallback grouping-reduction ratio when group-column NDVs are unknown.
const DEFAULT_GROUP_RATIO: f64 = 0.1;

/// Optimizer configuration.
#[derive(Debug, Clone, Copy)]
pub struct OptimizerConfig {
    pub strategy: Strategy,
    pub cost_model: CostModel,
    /// Track interesting orders during enumeration (ablation for F3).
    pub track_interesting_orders: bool,
    /// Run the algebraic rewrites (constant folding, predicate pushdown)
    /// before enumeration. Turning this off is an ablation: plans stay
    /// correct (the join-graph extraction still routes predicates), but
    /// single-table pushdown into access paths is lost.
    pub enable_rewrites: bool,
    /// Run the static plan verifier ([`crate::verify`]) after every phase
    /// (post-rewrite, post-enumeration, post-physical). Always on in debug
    /// builds; this flag opts release builds in (`DatabaseConfig::
    /// verify_plans` at the engine level). A violation aborts optimization
    /// with a structured [`EvoptError::Plan`] — never a panic.
    pub verify: bool,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        OptimizerConfig {
            strategy: Strategy::SystemR,
            cost_model: CostModel::default(),
            track_interesting_orders: true,
            enable_rewrites: true,
            verify: false,
        }
    }
}

/// The cost-based optimizer.
pub struct Optimizer {
    pub config: OptimizerConfig,
    /// Search-trace sink ([`Optimizer::with_trace`]). Interior-mutable, so
    /// `optimize(&self)` can record into it; events accumulate across every
    /// enumeration one `optimize` call performs (a query that plans a join
    /// subtree twice — e.g. the aggregate order-hint probe — counts both).
    trace: Option<TraceSink>,
}

impl Optimizer {
    pub fn new(config: OptimizerConfig) -> Self {
        Optimizer {
            config,
            trace: None,
        }
    }

    /// Optimizer with all defaults (System R strategy).
    pub fn default_system_r() -> Self {
        Optimizer::new(OptimizerConfig::default())
    }

    /// Attach a search-trace sink; every enumeration records into it.
    pub fn with_trace(mut self, sink: TraceSink) -> Self {
        self.trace = Some(sink);
        self
    }

    /// Detach the sink (freeze it with [`TraceSink::into_trace`] afterward).
    pub fn take_trace(&mut self) -> Option<TraceSink> {
        self.trace.take()
    }

    /// The attached sink, if any.
    pub fn trace(&self) -> Option<&TraceSink> {
        self.trace.as_ref()
    }

    /// Whether the per-phase verifier hooks fire: unconditional in debug
    /// builds (the `debug_assert` analogue, minus the panic), opt-in via
    /// [`OptimizerConfig::verify`] everywhere else.
    fn verifying(&self) -> bool {
        cfg!(debug_assertions) || self.config.verify
    }

    /// Optimize a bound logical plan against `catalog`.
    pub fn optimize(&self, plan: &LogicalPlan, catalog: &Catalog) -> Result<PhysicalPlan> {
        let prepared = if self.config.enable_rewrites {
            push_down_filters(fold_constants(plan.clone())?)?
        } else {
            plan.clone()
        };
        if self.verifying() {
            verify::verify_logical(&prepared, verify::VerifyPhase::PostRewrite).into_result()?;
        }
        let phys = self.optimize_rec(&prepared, catalog, None)?;
        if self.verifying() {
            verify::verify_physical(&phys, Some(catalog), verify::VerifyPhase::PostPhysical)
                .into_result()?;
        }
        Ok(phys)
    }

    /// `required`: output-ordinal column the parent would like ascending.
    fn optimize_rec(
        &self,
        plan: &LogicalPlan,
        catalog: &Catalog,
        required: Option<usize>,
    ) -> Result<PhysicalPlan> {
        match plan {
            LogicalPlan::Scan { table, .. } => {
                self.plan_single_table(catalog, table, &[], required)
            }
            LogicalPlan::Filter { input, predicate } => match &**input {
                LogicalPlan::Scan { table, .. } => {
                    self.plan_single_table(catalog, table, &predicate.split_conjuncts(), required)
                }
                LogicalPlan::Join { .. } => self.plan_joins(plan, catalog, required),
                _ => {
                    let child = self.optimize_rec(input, catalog, required)?;
                    let rows = (child.est_rows
                        * EstimationContext::unknown(child.schema.len()).selectivity(predicate))
                    .max(1e-6);
                    let cost = child.est_cost + self.config.cost_model.per_tuple(child.est_rows);
                    Ok(PhysicalPlan {
                        schema: child.schema.clone(),
                        est_rows: rows,
                        est_cost: cost,
                        output_order: child.output_order,
                        op: PhysOp::Filter {
                            input: Box::new(child),
                            predicate: predicate.clone(),
                        },
                    })
                }
            },
            LogicalPlan::Join { .. } => self.plan_joins(plan, catalog, required),
            LogicalPlan::Project {
                input,
                exprs,
                schema,
            } => {
                // Propagate the order requirement through pure column refs.
                let child_required = required.and_then(|k| match exprs.get(k) {
                    Some(Expr::Column(j)) => Some(*j),
                    _ => None,
                });
                let child = self.optimize_rec(input, catalog, child_required)?;
                let output_order = child.output_order.and_then(|j| {
                    exprs
                        .iter()
                        .position(|e| matches!(e, Expr::Column(c) if *c == j))
                });
                let cost = child.est_cost + self.config.cost_model.per_tuple(child.est_rows);
                Ok(PhysicalPlan {
                    schema: schema.clone(),
                    est_rows: child.est_rows,
                    est_cost: cost,
                    output_order,
                    op: PhysOp::Project {
                        input: Box::new(child),
                        exprs: exprs.clone(),
                    },
                })
            }
            LogicalPlan::Aggregate {
                input,
                group_by,
                aggs,
                schema,
            } => {
                // Two candidate shapes: an order-seeking child feeding a
                // streaming sort-aggregate, vs an unconstrained child
                // feeding a hash aggregate. The order hint is an option,
                // not a requirement — plan both and keep the cheaper
                // (a forced sort usually loses; a free order usually wins).
                let hint = match group_by.as_slice() {
                    [g] if self.config.track_interesting_orders => Some(*g),
                    _ => None,
                };
                let plain = self.optimize_rec(input, catalog, None)?;
                let child = match hint {
                    Some(g) => {
                        let ordered = self.optimize_rec(input, catalog, hint)?;
                        let m = &self.config.cost_model;
                        if ordered.output_order == Some(g)
                            && m.total(ordered.est_cost) <= m.total(plain.est_cost)
                        {
                            ordered
                        } else {
                            plain
                        }
                    }
                    None => plain,
                };
                let rows = if group_by.is_empty() {
                    1.0
                } else {
                    (child.est_rows * DEFAULT_GROUP_RATIO).max(1.0)
                };
                let cost = child.est_cost + self.config.cost_model.hash_aggregate(child.est_rows);
                let phys_aggs: Vec<PhysAgg> = aggs
                    .iter()
                    .map(|a| PhysAgg {
                        func: a.func,
                        arg: a.arg.clone(),
                    })
                    .collect();
                let streaming = self.config.track_interesting_orders
                    && group_by.len() == 1
                    && child.output_order == Some(group_by[0]);
                let (op, output_order) = if streaming {
                    (
                        PhysOp::SortAggregate {
                            input: Box::new(child),
                            group_by: group_by.clone(),
                            aggs: phys_aggs,
                        },
                        // Output column 0 is the group column, still sorted.
                        Some(0),
                    )
                } else {
                    (
                        PhysOp::HashAggregate {
                            input: Box::new(child),
                            group_by: group_by.clone(),
                            aggs: phys_aggs,
                        },
                        None,
                    )
                };
                Ok(PhysicalPlan {
                    schema: schema.clone(),
                    est_rows: rows,
                    est_cost: cost,
                    output_order,
                    op,
                })
            }
            LogicalPlan::Sort { input, keys } => {
                let hint = match keys.as_slice() {
                    [SortKey {
                        column,
                        ascending: true,
                    }, ..] => Some(*column),
                    _ => None,
                };
                let child = self.optimize_rec(input, catalog, hint)?;
                // A single ascending key already satisfied → no sort node.
                if let (1, Some(k), Some(have)) = (keys.len(), hint, child.output_order) {
                    if k == have {
                        return Ok(child);
                    }
                }
                let rows = child.est_rows;
                let pages = (rows * DEFAULT_WIDTH / 4084.0).ceil().max(1.0);
                let cost = child.est_cost + self.config.cost_model.sort(rows, pages);
                Ok(PhysicalPlan {
                    schema: child.schema.clone(),
                    est_rows: rows,
                    est_cost: cost,
                    output_order: match keys.first() {
                        Some(SortKey {
                            column,
                            ascending: true,
                        }) => Some(*column),
                        _ => None,
                    },
                    op: PhysOp::Sort {
                        input: Box::new(child),
                        keys: keys.iter().map(|k| (k.column, k.ascending)).collect(),
                    },
                })
            }
            LogicalPlan::Limit { input, limit } => {
                let child = self.optimize_rec(input, catalog, required)?;
                Ok(PhysicalPlan {
                    schema: child.schema.clone(),
                    est_rows: child.est_rows.min(*limit as f64),
                    est_cost: child.est_cost,
                    output_order: child.output_order,
                    op: PhysOp::Limit {
                        input: Box::new(child),
                        limit: *limit,
                    },
                })
            }
        }
    }

    /// Single base relation with local predicates: pure access-path choice.
    fn plan_single_table(
        &self,
        catalog: &Catalog,
        table: &str,
        preds: &[Expr],
        required: Option<usize>,
    ) -> Result<PhysicalPlan> {
        let info = catalog.table(table)?;
        let (rel_meta, est) = table_meta(&info)?;
        let model = &self.config.cost_model;
        let paths = access_path::access_paths(&rel_meta, preds, &est, model);
        let schema = info.schema.clone();
        let mut candidates: Vec<PhysicalPlan> = paths
            .into_iter()
            .map(|p| {
                let op = match p.kind {
                    access_path::PathKind::SeqScan { filter } => PhysOp::SeqScan {
                        table: info.name.clone(),
                        filter,
                    },
                    access_path::PathKind::IndexScan {
                        index,
                        range,
                        residual,
                        clustered,
                    } => PhysOp::IndexScan {
                        table: info.name.clone(),
                        index,
                        range,
                        residual,
                        clustered,
                    },
                };
                PhysicalPlan {
                    op,
                    schema: schema.clone(),
                    est_rows: p.rows,
                    est_cost: p.cost,
                    output_order: if self.config.track_interesting_orders {
                        p.order
                    } else {
                        None
                    },
                }
            })
            .collect();
        // With a required order, an ordered path competes against
        // cheapest-plus-sort; the Sort node itself is added by the caller,
        // so here we just bias the choice by charging the virtual sort.
        let chosen = candidates
            .drain(..)
            .min_by(|a, b| {
                let penalty = |p: &PhysicalPlan| match required {
                    Some(k) if p.output_order != Some(k) => {
                        let pages = (p.est_rows * DEFAULT_WIDTH / 4084.0).ceil().max(1.0);
                        model.total(model.sort(p.est_rows, pages))
                    }
                    _ => 0.0,
                };
                (model.total(a.est_cost) + penalty(a))
                    .total_cmp(&(model.total(b.est_cost) + penalty(b)))
            })
            .ok_or_else(|| EvoptError::Internal("no access path produced".into()))?;
        Ok(chosen)
    }

    /// Join subtree: extract the graph and enumerate.
    fn plan_joins(
        &self,
        plan: &LogicalPlan,
        catalog: &Catalog,
        required: Option<usize>,
    ) -> Result<PhysicalPlan> {
        let graph = JoinGraph::extract(plan)
            .ok_or_else(|| EvoptError::Internal("plan_joins called on a non-join".into()))?;
        let model = self.config.cost_model;

        // Build per-relation info + the global estimation context.
        let mut rels = Vec::with_capacity(graph.relations.len());
        let mut global_cols: Vec<ColumnInfo> = Vec::new();
        for (r, leaf) in graph.relations.iter().enumerate() {
            let offset = graph.offsets[r];
            let local_preds_global: Vec<Expr> = graph
                .local_predicates(r)
                .into_iter()
                .map(|p| p.expr.clone())
                .collect();
            let local_preds: Vec<Expr> = local_preds_global
                .iter()
                .map(|e| e.remap_columns(&|g| g - offset))
                .collect();
            match leaf {
                LogicalPlan::Scan { table, .. } => {
                    let info = catalog.table(table)?;
                    let (rel_meta, local_est) = table_meta(&info)?;
                    let paths =
                        access_path::access_paths(&rel_meta, &local_preds, &local_est, &model);
                    let local_sel: f64 = local_preds
                        .iter()
                        .map(|p| local_est.selectivity(p))
                        .product();
                    let width = info
                        .stats()
                        .map(|s| s.avg_tuple_bytes.max(8.0))
                        .unwrap_or(DEFAULT_WIDTH);
                    global_cols.extend(local_est.columns.iter().cloned());
                    rels.push(BaseRel {
                        table: Some(info.name.clone()),
                        rows_raw: rel_meta.rows,
                        pages_raw: rel_meta.pages,
                        width,
                        local_sel,
                        local_preds_global,
                        paths,
                        indexes: rel_meta.indexes,
                        opaque_plan: None,
                    });
                }
                other => {
                    // Opaque leaf: optimize recursively; local predicates
                    // (if any) become a physical filter on top.
                    let mut inner = self.optimize_rec(other, catalog, None)?;
                    if !local_preds.is_empty() {
                        let predicate = Expr::conjunction(local_preds.clone());
                        let rows = (inner.est_rows
                            * EstimationContext::unknown(inner.schema.len())
                                .selectivity(&predicate))
                        .max(1e-6);
                        inner = PhysicalPlan {
                            schema: inner.schema.clone(),
                            est_rows: rows,
                            est_cost: inner.est_cost + model.per_tuple(inner.est_rows),
                            output_order: None,
                            op: PhysOp::Filter {
                                input: Box::new(inner),
                                predicate,
                            },
                        };
                    }
                    let ncols = graph.schemas[r].len();
                    global_cols.extend((0..ncols).map(|_| ColumnInfo {
                        stats: None,
                        table_rows: inner.est_rows as u64,
                    }));
                    rels.push(BaseRel {
                        table: None,
                        rows_raw: inner.est_rows,
                        pages_raw: (inner.est_rows * DEFAULT_WIDTH / 4084.0).ceil().max(1.0),
                        width: DEFAULT_WIDTH,
                        local_sel: 1.0,
                        local_preds_global: vec![],
                        paths: vec![],
                        indexes: vec![],
                        opaque_plan: Some(inner),
                    });
                }
            }
        }
        let est = EstimationContext::new(global_cols);
        let ctx = JoinContext {
            graph: &graph,
            est: &est,
            model: &self.config.cost_model,
            rels,
            required_order: required,
            track_orders: self.config.track_interesting_orders,
            trace: self.trace.as_ref(),
        };
        let sub = enumerate(&ctx, self.config.strategy)?;
        let phys = finalize(&ctx, sub, plan.schema())?;
        if self.verifying() {
            verify::verify_physical(&phys, Some(catalog), verify::VerifyPhase::PostEnumeration)
                .into_result()?;
        }
        Ok(phys)
    }
}

/// Convert a catalog table into the access-path inputs.
fn table_meta(info: &Arc<TableInfo>) -> Result<(RelMeta, EstimationContext)> {
    let stats = info.stats();
    let (rows, pages) = match &stats {
        Some(s) => (s.row_count as f64, s.page_count as f64),
        None => (
            info.heap.tuple_count() as f64,
            info.heap.page_count() as f64,
        ),
    };
    let mut indexes = Vec::new();
    for idx in info.indexes() {
        indexes.push(IndexMeta {
            name: idx.name.clone(),
            column: idx.column,
            height: idx.btree.height()? as f64,
            pages: idx.btree.page_count()? as f64,
            clustered: idx.clustered,
            unique: idx.unique,
        });
    }
    let columns = (0..info.schema.len())
        .map(|c| ColumnInfo {
            stats: stats.as_ref().and_then(|s| s.column(c).cloned()),
            table_rows: rows as u64,
        })
        .collect();
    Ok((
        RelMeta {
            table: info.name.clone(),
            rows,
            pages,
            indexes,
        },
        EstimationContext::new(columns),
    ))
}

/// Restore syntactic column order on top of an enumerated subplan so the
/// join node's output matches the logical schema.
fn finalize(ctx: &JoinContext, sub: SubPlan, logical_schema: Schema) -> Result<PhysicalPlan> {
    let total = ctx.total_cols();
    let identity = (0..total).all(|g| sub.col_map.get(g).copied().flatten() == Some(g));
    if identity {
        return Ok(sub.plan);
    }
    let mut exprs: Vec<Expr> = Vec::with_capacity(total);
    for g in 0..total {
        let local = sub.col_map.get(g).copied().flatten().ok_or_else(|| {
            EvoptError::Internal(format!("finalize: output column {g} missing from col_map"))
        })?;
        exprs.push(Expr::Column(local));
    }
    let output_order = sub.order;
    Ok(PhysicalPlan {
        schema: logical_schema,
        est_rows: sub.rows,
        est_cost: sub.cost + ctx.model.per_tuple(sub.rows),
        output_order,
        op: PhysOp::Project {
            input: Box::new(sub.plan),
            exprs,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use evopt_catalog::{analyze_table, AnalyzeConfig};
    use evopt_common::expr::{col, lit};
    use evopt_common::{Column, DataType, Tuple, Value};
    use evopt_storage::{BufferPool, DiskManager, PolicyKind};

    /// Catalog with customers(1k), orders(10k, fk customer), both analyzed;
    /// index on orders.customer_id and customers.id.
    fn setup() -> Catalog {
        let pool = BufferPool::new(Arc::new(DiskManager::new()), 256, PolicyKind::Lru);
        let cat = Catalog::new(pool);
        let customers = cat
            .create_table(
                "customers",
                Schema::new(vec![
                    Column::new("id", DataType::Int).not_null(),
                    Column::new("name", DataType::Str),
                    Column::new("region", DataType::Int),
                ]),
            )
            .unwrap();
        for i in 0..1000i64 {
            customers
                .heap
                .insert(&Tuple::new(vec![
                    Value::Int(i),
                    Value::Str(format!("cust{i}")),
                    Value::Int(i % 10),
                ]))
                .unwrap();
        }
        let orders = cat
            .create_table(
                "orders",
                Schema::new(vec![
                    Column::new("id", DataType::Int).not_null(),
                    Column::new("customer_id", DataType::Int),
                    Column::new("amount", DataType::Int),
                ]),
            )
            .unwrap();
        for i in 0..10_000i64 {
            orders
                .heap
                .insert(&Tuple::new(vec![
                    Value::Int(i),
                    Value::Int(i % 1000),
                    Value::Int(i % 500),
                ]))
                .unwrap();
        }
        // Data was loaded in id order, so the index is clustered: the heap
        // scan itself delivers id-order for free.
        cat.create_index("customers_id", "customers", "id", true, true)
            .unwrap();
        cat.create_index("orders_cust", "orders", "customer_id", false, false)
            .unwrap();
        // create_index clone-and-swaps the registered TableInfo (CoW
        // catalog), so the pre-index handles above are stale snapshots —
        // re-fetch before installing stats or the optimizer won't see them.
        let customers = cat.table("customers").unwrap();
        let orders = cat.table("orders").unwrap();
        analyze_table(&customers, &AnalyzeConfig::default()).unwrap();
        analyze_table(&orders, &AnalyzeConfig::default()).unwrap();
        cat
    }

    fn scan(cat: &Catalog, t: &str) -> LogicalPlan {
        LogicalPlan::Scan {
            table: t.into(),
            schema: cat.table(t).unwrap().schema.clone(),
        }
    }

    #[test]
    fn point_query_uses_index() {
        let cat = setup();
        let plan = LogicalPlan::Filter {
            input: Box::new(scan(&cat, "customers")),
            predicate: Expr::eq(col(0), lit(42i64)),
        };
        let opt = Optimizer::default_system_r();
        let phys = opt.optimize(&plan, &cat).unwrap();
        assert_eq!(phys.op_name(), "IndexScan", "plan:\n{phys}");
        assert!(phys.est_rows < 5.0);
    }

    #[test]
    fn wide_filter_uses_seq_scan() {
        let cat = setup();
        let plan = LogicalPlan::Filter {
            input: Box::new(scan(&cat, "customers")),
            predicate: Expr::binary(evopt_common::BinOp::Gt, col(0), lit(10i64)),
        };
        let phys = Optimizer::default_system_r().optimize(&plan, &cat).unwrap();
        assert_eq!(phys.op_name(), "SeqScan", "plan:\n{phys}");
    }

    #[test]
    fn join_produces_covering_plan_with_restored_order() {
        let cat = setup();
        // orders ⋈ customers ON orders.customer_id = customers.id — written
        // big-table-first so the optimizer has something to fix.
        let join = LogicalPlan::Join {
            left: Box::new(scan(&cat, "orders")),
            right: Box::new(scan(&cat, "customers")),
            predicate: Some(Expr::eq(col(1), col(3))),
        };
        let phys = Optimizer::default_system_r().optimize(&join, &cat).unwrap();
        // Output schema must match the logical join schema (6 cols,
        // syntactic order), regardless of the join order chosen.
        assert_eq!(phys.schema.len(), 6);
        assert_eq!(phys.schema.resolve(Some("orders"), "id").unwrap(), 0);
        assert_eq!(phys.schema.resolve(Some("customers"), "id").unwrap(), 3);
        // ~10k output rows (every order matches one customer).
        assert!(
            (phys.est_rows - 10_000.0).abs() / 10_000.0 < 0.2,
            "est {}",
            phys.est_rows
        );
        assert!(!phys.join_methods().is_empty());
    }

    #[test]
    fn optimizer_beats_syntactic_baseline() {
        let cat = setup();
        let join = LogicalPlan::Filter {
            input: Box::new(LogicalPlan::Join {
                left: Box::new(scan(&cat, "orders")),
                right: Box::new(scan(&cat, "customers")),
                predicate: Some(Expr::eq(col(1), col(3))),
            }),
            // region = 3: selective filter on customers.
            predicate: Expr::eq(col(5), lit(3i64)),
        };
        let model = CostModel::default();
        let opt = Optimizer::new(OptimizerConfig {
            strategy: Strategy::SystemR,
            ..Default::default()
        })
        .optimize(&join, &cat)
        .unwrap();
        let base = Optimizer::new(OptimizerConfig {
            strategy: Strategy::Syntactic,
            ..Default::default()
        })
        .optimize(&join, &cat)
        .unwrap();
        assert!(
            model.total(opt.est_cost) < model.total(base.est_cost),
            "optimized {} !< baseline {}",
            model.total(opt.est_cost),
            model.total(base.est_cost)
        );
    }

    #[test]
    fn sort_skipped_when_index_provides_order() {
        let cat = setup();
        let plan = LogicalPlan::Sort {
            input: Box::new(scan(&cat, "customers")),
            keys: vec![SortKey {
                column: 0,
                ascending: true,
            }],
        };
        let phys = Optimizer::default_system_r().optimize(&plan, &cat).unwrap();
        // The clustered heap/index provides the order; the plan must
        // satisfy it one way or another (ordered scan or explicit sort).
        match phys.op_name() {
            "Sort" | "IndexScan" | "SeqScan" => {}
            other => panic!("expected ordered plan at root, got {other}:\n{phys}"),
        }
        assert_eq!(phys.output_order, Some(0));
    }

    #[test]
    fn streaming_aggregate_used_when_order_is_free() {
        let cat = setup();
        // customers has an ordered path on id (customers_id index); group
        // by id → the optimizer should pick the streaming aggregate.
        let agg = LogicalPlan::aggregate(
            scan(&cat, "customers"),
            vec![0],
            vec![evopt_plan::AggExpr {
                func: evopt_common::AggFunc::CountStar,
                arg: None,
                name: "n".into(),
            }],
        )
        .unwrap();
        let phys = Optimizer::default_system_r().optimize(&agg, &cat).unwrap();
        assert_eq!(phys.op_name(), "SortAggregate", "plan:\n{phys}");
        assert_eq!(phys.output_order, Some(0));
        // The ordered input comes free: clustered heap order or index scan.
        assert!(matches!(
            phys.children()[0].op_name(),
            "SeqScan" | "IndexScan"
        ));
        // Grouping by a non-indexed column falls back to hashing.
        let agg = LogicalPlan::aggregate(scan(&cat, "customers"), vec![2], vec![]).unwrap();
        let phys = Optimizer::default_system_r().optimize(&agg, &cat).unwrap();
        assert_eq!(phys.op_name(), "HashAggregate", "plan:\n{phys}");
    }

    #[test]
    fn aggregate_and_limit_stack() {
        let cat = setup();
        let agg = LogicalPlan::aggregate(
            scan(&cat, "orders"),
            vec![1],
            vec![evopt_plan::AggExpr {
                func: evopt_common::AggFunc::Sum,
                arg: Some(col(2)),
                name: "total".into(),
            }],
        )
        .unwrap();
        let plan = LogicalPlan::Limit {
            input: Box::new(agg),
            limit: 5,
        };
        let phys = Optimizer::default_system_r().optimize(&plan, &cat).unwrap();
        assert_eq!(phys.op_name(), "Limit");
        assert_eq!(phys.children()[0].op_name(), "HashAggregate");
        assert!(phys.est_rows <= 5.0);
    }

    #[test]
    fn projection_passes_order_requirement_through() {
        let cat = setup();
        let proj = LogicalPlan::project(
            scan(&cat, "customers"),
            vec![col(0), col(1)],
            vec![None, None],
        )
        .unwrap();
        let plan = LogicalPlan::Sort {
            input: Box::new(proj),
            keys: vec![SortKey {
                column: 0,
                ascending: true,
            }],
        };
        let phys = Optimizer::default_system_r().optimize(&plan, &cat).unwrap();
        assert_eq!(phys.output_order, Some(0), "plan:\n{phys}");
    }

    #[test]
    fn all_strategies_produce_plans_for_three_way_join() {
        let cat = setup();
        // Third table to make it interesting.
        let regions = cat
            .create_table(
                "regions",
                Schema::new(vec![
                    Column::new("id", DataType::Int).not_null(),
                    Column::new("label", DataType::Str),
                ]),
            )
            .unwrap();
        for i in 0..10i64 {
            regions
                .heap
                .insert(&Tuple::new(vec![
                    Value::Int(i),
                    Value::Str(format!("r{i}")),
                ]))
                .unwrap();
        }
        analyze_table(&regions, &AnalyzeConfig::default()).unwrap();
        let join = LogicalPlan::Join {
            left: Box::new(LogicalPlan::Join {
                left: Box::new(scan(&cat, "orders")),
                right: Box::new(scan(&cat, "customers")),
                predicate: Some(Expr::eq(col(1), col(3))),
            }),
            right: Box::new(scan(&cat, "regions")),
            predicate: Some(Expr::eq(col(5), col(6))),
        };
        let model = CostModel::default();
        let mut costs = Vec::new();
        for strategy in [
            Strategy::SystemR,
            Strategy::BushyDp,
            Strategy::DpCcp,
            Strategy::Greedy,
            Strategy::Goo,
            Strategy::QuickPick {
                samples: 8,
                seed: 1,
            },
            Strategy::Syntactic,
        ] {
            let phys = Optimizer::new(OptimizerConfig {
                strategy,
                ..Default::default()
            })
            .optimize(&join, &cat)
            .unwrap();
            assert_eq!(phys.schema.len(), 8, "{}", strategy.name());
            assert_eq!(phys.scan_order().len(), 3, "{}", strategy.name());
            costs.push((strategy.name(), model.total(phys.est_cost)));
        }
        // DP strategies are never beaten.
        let dp = costs.iter().find(|(n, _)| *n == "bushy-dp").unwrap().1;
        for (name, c) in &costs {
            assert!(dp <= c + 1e-6, "bushy-dp {dp} beaten by {name} {c}");
        }
    }
}
