//! The cost model.
//!
//! Every formula charges two currencies: **page I/Os** and **tuple
//! touches**. The scalar objective is `w_io · io + w_cpu · cpu`, I/O
//! dominant by default (`w_io = 1.0`, `w_cpu = 0.01`) — the 1977 balance,
//! where one disk access bought thousands of instructions. The weights are
//! exposed so ablations can explore other regimes.
//!
//! Formula inventory (per DESIGN.md §3.1):
//!
//! | operator | I/O | CPU |
//! |---|---|---|
//! | SeqScan(R) | `P(R)` | `|R|` |
//! | IndexScan clustered | `h + ⌈sel·P(R)⌉` | matches |
//! | IndexScan unclustered | `h + ⌈sel·P(I)⌉ + matches` | matches |
//! | BNL(L, R) | `write P(R) + ⌈P(L)/(B−2)⌉·P(R)` | `|L|·|R|` |
//! | INL(L, r) | `|L| · (h + match-pages)` | `|L| · matches` |
//! | SMJ | sort passes | merge `|L|+|R|` |
//! | HJ | 0, or `2(P(L)+P(R))` Grace | build+probe |
//! | Sort(N pages) | `2·N·passes` | `|R|·log|R|` |
//!
//! All charges are for work **above** producing the inputs; enumeration sums
//! them bottom-up.

/// Two-currency cost. Additive.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cost {
    pub io: f64,
    pub cpu: f64,
}

impl Cost {
    pub const ZERO: Cost = Cost { io: 0.0, cpu: 0.0 };

    pub fn new(io: f64, cpu: f64) -> Cost {
        Cost { io, cpu }
    }

    #[allow(clippy::should_implement_trait)] // also exposed via ops::Add below
    pub fn add(self, other: Cost) -> Cost {
        Cost {
            io: self.io + other.io,
            cpu: self.cpu + other.cpu,
        }
    }
}

impl std::ops::Add for Cost {
    type Output = Cost;
    fn add(self, rhs: Cost) -> Cost {
        Cost::add(self, rhs)
    }
}

impl std::iter::Sum for Cost {
    fn sum<I: Iterator<Item = Cost>>(iter: I) -> Cost {
        iter.fold(Cost::ZERO, Cost::add)
    }
}

/// Cost-model parameters.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Weight of one page I/O in the scalar objective.
    pub w_io: f64,
    /// Weight of one tuple touch.
    pub w_cpu: f64,
    /// Buffer pages the executor may assume (drives BNL block size, sort
    /// fan-in, and the in-memory hash-join threshold).
    pub buffer_pages: usize,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            w_io: 1.0,
            w_cpu: 0.01,
            buffer_pages: 64,
        }
    }
}

impl CostModel {
    /// Scalarise a cost for comparison.
    pub fn total(&self, c: Cost) -> f64 {
        self.w_io * c.io + self.w_cpu * c.cpu
    }

    /// Sequential scan of a base relation.
    pub fn seq_scan(&self, pages: f64, rows: f64) -> Cost {
        Cost::new(pages.max(1.0), rows)
    }

    /// Index scan fetching `match_rows` of `rows` via a tree of `height`
    /// pages, where the heap spans `heap_pages` and the leaf level
    /// `index_pages`.
    pub fn index_scan(
        &self,
        clustered: bool,
        key_sel: f64,
        heap_pages: f64,
        index_pages: f64,
        height: f64,
        match_rows: f64,
    ) -> Cost {
        let leaf_io = (key_sel * index_pages).ceil().max(1.0);
        let heap_io = if clustered {
            (key_sel * heap_pages).ceil().max(1.0)
        } else {
            // Unclustered: up to one heap page per match, capped at touching
            // every page once per... the classic pessimistic bound is one
            // fetch per match (no cap — revisits cost real I/O with a small
            // pool).
            match_rows
        };
        Cost::new(height + leaf_io + heap_io, match_rows)
    }

    /// Tuple nested loops: the right plan (already costed per execution at
    /// `inner_cost`) re-runs once per outer row.
    pub fn nl_join(&self, outer_rows: f64, inner_cost: Cost, inner_rows: f64) -> Cost {
        Cost::new(
            outer_rows * inner_cost.io,
            outer_rows * (inner_cost.cpu + inner_rows),
        )
    }

    /// Block nested loops with a materialised inner of `inner_pages`.
    /// Charges the materialisation write plus one inner read per outer
    /// block. (Reading the inputs was already charged when producing them.)
    pub fn bnl_join(
        &self,
        outer_rows: f64,
        outer_pages: f64,
        inner_rows: f64,
        inner_pages: f64,
    ) -> Cost {
        let block = (self.buffer_pages.saturating_sub(2)).max(1) as f64;
        let blocks = (outer_pages.max(1.0) / block).ceil().max(1.0);
        let io = inner_pages + blocks * inner_pages;
        Cost::new(io, outer_rows * inner_rows)
    }

    /// Index nested loops: one probe per outer row.
    pub fn inl_join(
        &self,
        outer_rows: f64,
        height: f64,
        matches_per_probe: f64,
        clustered: bool,
        inner_heap_pages: f64,
        inner_rows: f64,
    ) -> Cost {
        let heap_per_probe = if clustered {
            (matches_per_probe / (inner_rows / inner_heap_pages).max(1.0))
                .ceil()
                .max(1.0)
        } else {
            matches_per_probe.max(1.0)
        };
        Cost::new(
            outer_rows * (height + heap_per_probe),
            outer_rows * matches_per_probe.max(1.0),
        )
    }

    /// External merge sort of `pages` pages / `rows` rows: read+write per
    /// pass, `⌈log_{B-1}(pages/B)⌉` merge passes after run formation.
    pub fn sort(&self, rows: f64, pages: f64) -> Cost {
        let b = self.buffer_pages.max(3) as f64;
        let pages = pages.max(1.0);
        let runs = (pages / b).ceil().max(1.0);
        let passes = if runs <= 1.0 {
            0.0
        } else {
            (runs.ln() / (b - 1.0).ln()).ceil().max(1.0)
        };
        // Run formation (1 read + 1 write) happens only when spilling.
        let io = if pages <= b {
            0.0 // fits in memory: no extra I/O beyond producing the input
        } else {
            2.0 * pages * (1.0 + passes)
        };
        let cpu = rows * (rows.max(2.0)).log2();
        Cost::new(io, cpu)
    }

    /// Merge phase of a sort-merge join (inputs already sorted).
    pub fn merge_join(&self, left_rows: f64, right_rows: f64) -> Cost {
        Cost::new(0.0, left_rows + right_rows)
    }

    /// Hash join, building on the right input.
    pub fn hash_join(
        &self,
        left_rows: f64,
        left_pages: f64,
        right_rows: f64,
        right_pages: f64,
    ) -> Cost {
        let io = if right_pages <= self.buffer_pages as f64 {
            0.0 // in-memory build
        } else {
            // Grace: partition both sides to disk and read back.
            2.0 * (left_pages + right_pages)
        };
        Cost::new(io, right_rows + left_rows)
    }

    /// Hash aggregation.
    pub fn hash_aggregate(&self, input_rows: f64) -> Cost {
        Cost::new(0.0, input_rows)
    }

    /// Row filter / projection.
    pub fn per_tuple(&self, rows: f64) -> Cost {
        Cost::new(0.0, rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m() -> CostModel {
        CostModel::default()
    }

    #[test]
    fn total_weighs_io_over_cpu() {
        let c = Cost::new(10.0, 100.0);
        assert!((m().total(c) - 11.0).abs() < 1e-9);
    }

    #[test]
    fn seq_scan_charges_pages() {
        let c = m().seq_scan(100.0, 5000.0);
        assert_eq!(c.io, 100.0);
        assert_eq!(c.cpu, 5000.0);
        // Empty tables still cost one page peek.
        assert_eq!(m().seq_scan(0.0, 0.0).io, 1.0);
    }

    #[test]
    fn clustered_index_beats_unclustered_at_same_selectivity() {
        // 1% of a 1000-page, 100k-row table = 1000 matches.
        let cl = m().index_scan(true, 0.01, 1000.0, 200.0, 3.0, 1000.0);
        let uncl = m().index_scan(false, 0.01, 1000.0, 200.0, 3.0, 1000.0);
        assert!(
            cl.io < uncl.io,
            "clustered {} vs unclustered {}",
            cl.io,
            uncl.io
        );
        // Clustered reads ~1% of heap pages.
        assert!(cl.io < 20.0);
        // Unclustered pays ~one page per match.
        assert!(uncl.io > 900.0);
    }

    #[test]
    fn index_scan_crossover_vs_seq_scan() {
        // The T2 shape: unclustered index wins at tiny selectivity, loses
        // past roughly 1/tuples-per-page.
        let (pages, rows) = (1000.0, 100_000.0); // 100 tuples/page
        let seq = m().total(m().seq_scan(pages, rows));
        let probe = |sel: f64| m().total(m().index_scan(false, sel, pages, 200.0, 3.0, sel * rows));
        assert!(probe(0.0001) < seq, "0.01% should favour the index");
        assert!(probe(0.5) > seq, "50% should favour the scan");
    }

    #[test]
    fn bnl_scales_with_outer_blocks() {
        let small_pool = CostModel {
            buffer_pages: 10,
            ..Default::default()
        };
        let big_pool = CostModel {
            buffer_pages: 1000,
            ..Default::default()
        };
        let small = small_pool.bnl_join(10_000.0, 100.0, 10_000.0, 100.0);
        let big = big_pool.bnl_join(10_000.0, 100.0, 10_000.0, 100.0);
        assert!(small.io > big.io, "F4 shape: more buffers, less I/O");
        // With everything resident: materialise (100) + one pass (100).
        assert_eq!(big.io, 200.0);
    }

    #[test]
    fn sort_free_when_fits_in_memory() {
        let c = m().sort(1000.0, 10.0);
        assert_eq!(c.io, 0.0);
        let c = m().sort(1_000_000.0, 10_000.0);
        assert!(c.io > 2.0 * 10_000.0);
    }

    #[test]
    fn hash_join_grace_threshold() {
        let inmem = m().hash_join(1000.0, 10.0, 1000.0, 10.0);
        assert_eq!(inmem.io, 0.0);
        let grace = m().hash_join(100_000.0, 1000.0, 100_000.0, 1000.0);
        assert_eq!(grace.io, 4000.0);
    }

    #[test]
    fn nl_join_multiplies_inner_cost() {
        let c = m().nl_join(100.0, Cost::new(5.0, 50.0), 10.0);
        assert_eq!(c.io, 500.0);
        assert_eq!(c.cpu, 100.0 * 60.0);
    }

    #[test]
    fn cost_sum_and_add() {
        let total: Cost = [Cost::new(1.0, 2.0), Cost::new(3.0, 4.0)].into_iter().sum();
        assert_eq!(total, Cost::new(4.0, 6.0));
        assert_eq!(total + Cost::ZERO, total);
    }
}
