//! Static plan verification: a compiler-IR-style checker for logical and
//! physical plans.
//!
//! Every optimizer phase can hand its output to this module and get back a
//! structured [`VerifyReport`] instead of letting a malformed plan reach the
//! executor (where it would surface as a wrong answer or a runtime panic).
//! The rules mirror what Postgres' plan tree invariants and Calcite's
//! `RelValidityChecker` enforce:
//!
//! * **schema propagation** — every column reference in filters, projections,
//!   join keys and aggregate inputs resolves against the child's output
//!   schema with a matching type, and every operator's declared schema is
//!   the one its children actually produce;
//! * **physical-property obligations** — merge-join inputs carry the
//!   required sort order (derived *structurally*, never trusted from
//!   annotations), index scans name an index that exists in the catalog
//!   with a compatible key type, hash-join build/probe key types unify,
//!   block/Grace parameters are sane;
//! * **cardinality/cost sanity** — estimates are finite and non-negative,
//!   and monotone where the model demands it (filter output ≤ input,
//!   limit output ≤ limit, cumulative cost ≥ the inputs it includes);
//! * **SQL-level lints** ([`lint_logical`]) — contradictory predicates,
//!   accidental cross products, unused projected columns. Lints are
//!   warnings, not errors: the plan is well-formed, the query is suspect.
//!
//! Verification never panics: every violation becomes a [`VerifyIssue`] and
//! [`VerifyReport::into_result`] folds them into one [`EvoptError::Plan`].
//! The optimizer runs these checks after every phase in debug builds and
//! when [`crate::OptimizerConfig::verify`] is set (see `DatabaseConfig::
//! verify_plans` at the engine level); `EXPLAIN VERIFY` surfaces the same
//! reports — plus the lints — to SQL users.

use std::fmt;
use std::ops::Bound;

use evopt_catalog::Catalog;
use evopt_common::{DataType, EvoptError, Expr, Result, Schema, Value};
use evopt_plan::join_graph::JoinGraph;
use evopt_plan::LogicalPlan;

use crate::physical::{PhysAgg, PhysOp, PhysicalPlan};

/// Relative slack for row-count monotonicity checks (estimates are floats
/// built from products of selectivities; exact comparisons would flag
/// rounding noise).
const REL_EPS: f64 = 1.01;
/// Absolute slack: the enumerator floors intermediate cardinalities at
/// `1e-6`, which can exceed a genuinely-zero input estimate.
const ABS_EPS: f64 = 1e-3;

/// Which optimizer phase produced the plan being checked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerifyPhase {
    /// The bound logical plan, straight out of the binder.
    PostBind,
    /// After the algebraic rewrites (constant folding, predicate pushdown).
    PostRewrite,
    /// A physical subplan as join enumeration finalised it.
    PostEnumeration,
    /// The complete physical plan the optimizer returns.
    PostPhysical,
}

impl VerifyPhase {
    pub fn name(self) -> &'static str {
        match self {
            VerifyPhase::PostBind => "post-bind",
            VerifyPhase::PostRewrite => "post-rewrite",
            VerifyPhase::PostEnumeration => "post-enumeration",
            VerifyPhase::PostPhysical => "post-physical",
        }
    }
}

impl fmt::Display for VerifyPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One rule violation, attached to the node (pre-order id + operator name)
/// where it was detected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyIssue {
    /// Stable rule code, e.g. `schema/propagation`, `order/merge-input`.
    pub rule: &'static str,
    /// `#<pre-order id> <OpName>` of the offending node.
    pub node: String,
    pub message: String,
}

impl fmt::Display for VerifyIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}", self.rule, self.node, self.message)
    }
}

/// The outcome of verifying one plan at one phase.
#[derive(Debug, Clone)]
pub struct VerifyReport {
    pub phase: VerifyPhase,
    /// Operators walked.
    pub nodes_checked: usize,
    pub issues: Vec<VerifyIssue>,
}

impl VerifyReport {
    pub fn ok(&self) -> bool {
        self.issues.is_empty()
    }

    /// `Ok(())` when clean; otherwise one [`EvoptError::Plan`] carrying
    /// every issue. Verification never panics — a corrupt plan is data,
    /// not a programming error in the caller.
    pub fn into_result(self) -> Result<()> {
        if self.issues.is_empty() {
            return Ok(());
        }
        let list: Vec<String> = self.issues.iter().map(|i| i.to_string()).collect();
        Err(EvoptError::Plan(format!(
            "plan verification failed at {} ({} issue{}): {}",
            self.phase,
            self.issues.len(),
            if self.issues.len() == 1 { "" } else { "s" },
            list.join("; ")
        )))
    }

    /// Multi-line rendering for `EXPLAIN VERIFY`.
    pub fn render(&self) -> String {
        if self.issues.is_empty() {
            return format!("{}: ok ({} nodes)\n", self.phase, self.nodes_checked);
        }
        let mut s = format!(
            "{}: {} issue(s) over {} nodes\n",
            self.phase,
            self.issues.len(),
            self.nodes_checked
        );
        for i in &self.issues {
            s.push_str(&format!("  {i}\n"));
        }
        s
    }
}

/// A SQL-level lint: the plan is valid, the query is probably not what the
/// author meant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lint {
    /// Stable code: `contradiction`, `cross-product`, `unused-column`.
    pub code: &'static str,
    pub message: String,
}

impl fmt::Display for Lint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.code, self.message)
    }
}

// ---------------------------------------------------------------------------
// Logical-plan verification
// ---------------------------------------------------------------------------

/// Check a bound logical plan: column references in range, predicates
/// boolean-typed, projection/aggregate schemas consistent with their
/// expressions.
pub fn verify_logical(plan: &LogicalPlan, phase: VerifyPhase) -> VerifyReport {
    let mut v = Verifier::new(phase);
    v.walk_logical(plan);
    v.finish()
}

/// Check a physical plan. With a catalog, scans are validated against table
/// schemas and index metadata, and sort-order obligations (merge join,
/// streaming aggregate) are enforced structurally; without one, the
/// catalog-dependent rules are skipped.
pub fn verify_physical(
    plan: &PhysicalPlan,
    catalog: Option<&Catalog>,
    phase: VerifyPhase,
) -> VerifyReport {
    let mut v = Verifier::new(phase);
    v.catalog = catalog;
    v.walk_physical(plan);
    v.finish()
}

struct Verifier<'a> {
    phase: VerifyPhase,
    catalog: Option<&'a Catalog>,
    next_id: usize,
    nodes: usize,
    issues: Vec<VerifyIssue>,
}

impl<'a> Verifier<'a> {
    fn new(phase: VerifyPhase) -> Self {
        Verifier {
            phase,
            catalog: None,
            next_id: 0,
            nodes: 0,
            issues: Vec::new(),
        }
    }

    fn finish(self) -> VerifyReport {
        VerifyReport {
            phase: self.phase,
            nodes_checked: self.nodes,
            issues: self.issues,
        }
    }

    fn issue(&mut self, rule: &'static str, id: usize, op: &str, message: String) {
        self.issues.push(VerifyIssue {
            rule,
            node: format!("#{id} {op}"),
            message,
        });
    }

    /// Type-check `e` against `schema`, demanding an exact result type when
    /// `want` is given. Any failure (unresolvable column, operand mismatch)
    /// becomes an issue.
    fn check_expr(
        &mut self,
        e: &Expr,
        schema: &Schema,
        want: Option<DataType>,
        what: &str,
        id: usize,
        op: &str,
    ) {
        // Bounds first: data_type reports ordinal errors too, but a
        // dedicated pass gives the mutation harness a precise rule code.
        for c in e.referenced_columns() {
            if c >= schema.len() {
                self.issue(
                    "schema/column-ref",
                    id,
                    op,
                    format!(
                        "{what} references column #{c}, but the input has only {} columns",
                        schema.len()
                    ),
                );
                return;
            }
        }
        match e.data_type(schema) {
            Ok(t) => {
                if let Some(w) = want {
                    if t != w {
                        self.issue(
                            "expr/type",
                            id,
                            op,
                            format!("{what} must be {w}, got {t} ({e})"),
                        );
                    }
                }
            }
            Err(err) => self.issue(
                "expr/type",
                id,
                op,
                format!("{what} does not type-check: {}", err.message()),
            ),
        }
    }

    /// Declared schema must carry exactly the child-derived column types.
    /// Names and qualifiers may differ (aliasing renames them legally);
    /// arity and types may not.
    fn check_types(
        &mut self,
        declared: &Schema,
        derived: &[DataType],
        what: &str,
        id: usize,
        op: &str,
    ) {
        let have = declared.types();
        if have != derived {
            self.issue(
                "schema/propagation",
                id,
                op,
                format!("declared schema types {have:?} != {what} {derived:?}"),
            );
        }
    }

    // -- logical ------------------------------------------------------------

    fn walk_logical(&mut self, plan: &LogicalPlan) {
        let id = self.next_id;
        self.next_id += 1;
        self.nodes += 1;
        match plan {
            LogicalPlan::Scan { table, schema } => {
                if let Some(cat) = self.catalog {
                    match cat.table(table) {
                        Ok(info) => self.check_types(
                            schema,
                            &info.schema.types(),
                            "catalog table types",
                            id,
                            "Scan",
                        ),
                        Err(_) => self.issue(
                            "catalog/table",
                            id,
                            "Scan",
                            format!("table '{table}' does not exist"),
                        ),
                    }
                }
            }
            LogicalPlan::Filter { input, predicate } => {
                self.check_expr(
                    predicate,
                    &input.schema(),
                    Some(DataType::Bool),
                    "filter predicate",
                    id,
                    "Filter",
                );
            }
            LogicalPlan::Project {
                input,
                exprs,
                schema,
            } => {
                if exprs.len() != schema.len() {
                    self.issue(
                        "schema/arity",
                        id,
                        "Project",
                        format!(
                            "{} expressions but {} output columns",
                            exprs.len(),
                            schema.len()
                        ),
                    );
                }
                let in_schema = input.schema();
                for (i, e) in exprs.iter().enumerate() {
                    let want = schema.column(i).map(|c| c.dtype);
                    self.check_expr(
                        e,
                        &in_schema,
                        want,
                        &format!("projection #{i}"),
                        id,
                        "Project",
                    );
                }
            }
            LogicalPlan::Join {
                left,
                right,
                predicate,
            } => {
                if let Some(p) = predicate {
                    let combined = left.schema().join(&right.schema());
                    self.check_expr(
                        p,
                        &combined,
                        Some(DataType::Bool),
                        "join predicate",
                        id,
                        "Join",
                    );
                }
            }
            LogicalPlan::Aggregate {
                input,
                group_by,
                aggs,
                schema,
            } => {
                let in_schema = input.schema();
                for &g in group_by {
                    if g >= in_schema.len() {
                        self.issue(
                            "schema/column-ref",
                            id,
                            "Aggregate",
                            format!(
                                "group-by column #{g} out of range (input has {})",
                                in_schema.len()
                            ),
                        );
                    }
                }
                let mut derived: Vec<DataType> = group_by
                    .iter()
                    .filter_map(|&g| in_schema.column(g).map(|c| c.dtype))
                    .collect();
                for (i, a) in aggs.iter().enumerate() {
                    let arg_type = match &a.arg {
                        Some(e) => {
                            self.check_expr(
                                e,
                                &in_schema,
                                None,
                                &format!("aggregate #{i} input"),
                                id,
                                "Aggregate",
                            );
                            e.data_type(&in_schema).ok()
                        }
                        None => None,
                    };
                    match a.func.result_type(arg_type.unwrap_or(DataType::Int)) {
                        Ok(t) => derived.push(t),
                        Err(err) => self.issue(
                            "expr/agg-input",
                            id,
                            "Aggregate",
                            format!("aggregate #{i}: {}", err.message()),
                        ),
                    }
                }
                if derived.len() == schema.len() {
                    self.check_types(schema, &derived, "derived aggregate types", id, "Aggregate");
                } else if self.issues.is_empty() {
                    self.issue(
                        "schema/arity",
                        id,
                        "Aggregate",
                        format!(
                            "schema has {} columns, group-by + aggregates produce {}",
                            schema.len(),
                            derived.len()
                        ),
                    );
                }
            }
            LogicalPlan::Sort { input, keys } => {
                let n = input.schema().len();
                for k in keys {
                    if k.column >= n {
                        self.issue(
                            "schema/column-ref",
                            id,
                            "Sort",
                            format!("sort key #{} out of range (input has {n})", k.column),
                        );
                    }
                }
            }
            LogicalPlan::Limit { .. } => {}
        }
        for c in plan.children() {
            self.walk_logical(c);
        }
    }

    // -- physical -----------------------------------------------------------

    fn walk_physical(&mut self, plan: &PhysicalPlan) {
        let id = self.next_id;
        self.next_id += 1;
        self.nodes += 1;
        let op = plan.op_name();

        self.check_estimates(plan, id, op);
        self.check_physical_schema(plan, id, op);
        self.check_physical_props(plan, id, op);

        for c in plan.children() {
            self.walk_physical(c);
        }
    }

    /// Rule group 3: cardinality and cost sanity.
    fn check_estimates(&mut self, plan: &PhysicalPlan, id: usize, op: &str) {
        if !plan.est_rows.is_finite() || plan.est_rows < 0.0 {
            self.issue(
                "est/rows",
                id,
                op,
                format!(
                    "row estimate {} is not a finite non-negative number",
                    plan.est_rows
                ),
            );
        }
        let total = plan.est_cost.io + plan.est_cost.cpu;
        if !total.is_finite() || plan.est_cost.io < 0.0 || plan.est_cost.cpu < 0.0 {
            self.issue(
                "est/cost",
                id,
                op,
                format!(
                    "cost (io={}, cpu={}) is not finite and non-negative",
                    plan.est_cost.io, plan.est_cost.cpu
                ),
            );
            return;
        }
        // Cumulative cost covers the inputs whose cost the model folded in.
        // Tuple nested loops re-runs the inner per outer row, so its cost
        // formula owns the inner; only the outer/left subtree is additive.
        let must_cover: Vec<&PhysicalPlan> = match &plan.op {
            PhysOp::NestedLoopJoin { left, .. } => vec![left],
            PhysOp::IndexNestedLoopJoin { outer, .. } => vec![outer],
            PhysOp::BlockNestedLoopJoin { left, right, .. }
            | PhysOp::SortMergeJoin { left, right, .. }
            | PhysOp::HashJoin { left, right, .. } => vec![left, right],
            _ => plan.children(),
        };
        for child in must_cover {
            let child_total = child.est_cost.io + child.est_cost.cpu;
            if child_total.is_finite() && total < child_total - ABS_EPS {
                self.issue(
                    "est/cost-monotone",
                    id,
                    op,
                    format!("cumulative cost {total:.3} is below its input's {child_total:.3}"),
                );
            }
        }
        match &plan.op {
            PhysOp::Filter { input, .. } if plan.est_rows > input.est_rows * REL_EPS + ABS_EPS => {
                self.issue(
                    "est/filter-monotone",
                    id,
                    op,
                    format!(
                        "filter output estimate {} exceeds input estimate {}",
                        plan.est_rows, input.est_rows
                    ),
                );
            }
            PhysOp::Limit { limit, .. } if plan.est_rows > *limit as f64 * REL_EPS + ABS_EPS => {
                self.issue(
                    "est/limit",
                    id,
                    op,
                    format!("estimate {} exceeds the limit {limit}", plan.est_rows),
                );
            }
            _ => {}
        }
    }

    /// Rule group 1: schema propagation + expression typing, per operator.
    fn check_physical_schema(&mut self, plan: &PhysicalPlan, id: usize, op: &str) {
        match &plan.op {
            PhysOp::SeqScan { table, filter } => {
                if let Some(f) = filter {
                    self.check_expr(f, &plan.schema, Some(DataType::Bool), "scan filter", id, op);
                }
                if let Some(info) = self.catalog.and_then(|c| c.table(table).ok()) {
                    self.check_types(
                        &plan.schema,
                        &info.schema.types(),
                        "catalog table types",
                        id,
                        op,
                    );
                }
            }
            PhysOp::IndexScan {
                table, residual, ..
            } => {
                if let Some(r) = residual {
                    self.check_expr(r, &plan.schema, Some(DataType::Bool), "residual", id, op);
                }
                if let Some(info) = self.catalog.and_then(|c| c.table(table).ok()) {
                    self.check_types(
                        &plan.schema,
                        &info.schema.types(),
                        "catalog table types",
                        id,
                        op,
                    );
                }
            }
            PhysOp::Filter { input, predicate } => {
                self.check_types(&plan.schema, &input.schema.types(), "input types", id, op);
                self.check_expr(
                    predicate,
                    &input.schema,
                    Some(DataType::Bool),
                    "filter predicate",
                    id,
                    op,
                );
            }
            PhysOp::Project { input, exprs } => {
                if exprs.len() != plan.schema.len() {
                    self.issue(
                        "schema/arity",
                        id,
                        op,
                        format!(
                            "{} expressions but {} output columns",
                            exprs.len(),
                            plan.schema.len()
                        ),
                    );
                    return;
                }
                for (i, e) in exprs.iter().enumerate() {
                    let want = plan.schema.column(i).map(|c| c.dtype);
                    self.check_expr(e, &input.schema, want, &format!("projection #{i}"), id, op);
                }
            }
            PhysOp::NestedLoopJoin {
                left,
                right,
                predicate,
            }
            | PhysOp::BlockNestedLoopJoin {
                left,
                right,
                predicate,
                ..
            } => {
                let derived: Vec<DataType> = left
                    .schema
                    .types()
                    .into_iter()
                    .chain(right.schema.types())
                    .collect();
                self.check_types(&plan.schema, &derived, "left ++ right types", id, op);
                if let Some(p) = predicate {
                    let combined = left.schema.join(&right.schema);
                    self.check_expr(p, &combined, Some(DataType::Bool), "join predicate", id, op);
                }
            }
            PhysOp::SortMergeJoin {
                left,
                right,
                left_key,
                right_key,
                residual,
            }
            | PhysOp::HashJoin {
                left,
                right,
                left_key,
                right_key,
                residual,
            } => {
                let derived: Vec<DataType> = left
                    .schema
                    .types()
                    .into_iter()
                    .chain(right.schema.types())
                    .collect();
                self.check_types(&plan.schema, &derived, "left ++ right types", id, op);
                let lk = left.schema.column(*left_key).map(|c| c.dtype);
                let rk = right.schema.column(*right_key).map(|c| c.dtype);
                match (lk, rk) {
                    (None, _) => self.issue(
                        "schema/column-ref",
                        id,
                        op,
                        format!(
                            "left key #{left_key} out of range (left has {} columns)",
                            left.schema.len()
                        ),
                    ),
                    (_, None) => self.issue(
                        "schema/column-ref",
                        id,
                        op,
                        format!(
                            "right key #{right_key} out of range (right has {} columns)",
                            right.schema.len()
                        ),
                    ),
                    (Some(a), Some(b)) => {
                        if a.unify(b).is_none() {
                            self.issue(
                                "key/type",
                                id,
                                op,
                                format!("join key types {a} and {b} are not comparable"),
                            );
                        }
                    }
                }
                if let Some(r) = residual {
                    let combined = left.schema.join(&right.schema);
                    self.check_expr(r, &combined, Some(DataType::Bool), "residual", id, op);
                }
            }
            PhysOp::IndexNestedLoopJoin {
                outer,
                residual,
                outer_key,
                ..
            } => {
                if *outer_key >= outer.schema.len() {
                    self.issue(
                        "schema/column-ref",
                        id,
                        op,
                        format!(
                            "probe key #{outer_key} out of range (outer has {} columns)",
                            outer.schema.len()
                        ),
                    );
                }
                // Output = outer ++ inner-table columns; the outer prefix is
                // checkable without a catalog.
                let out = plan.schema.types();
                let prefix = outer.schema.types();
                if out.len() < prefix.len() || out[..prefix.len()] != prefix[..] {
                    self.issue(
                        "schema/propagation",
                        id,
                        op,
                        format!(
                            "output schema does not start with the outer's types \
                             (outer {prefix:?}, output {out:?})"
                        ),
                    );
                } else if let Some(r) = residual {
                    self.check_expr(r, &plan.schema, Some(DataType::Bool), "residual", id, op);
                }
            }
            PhysOp::Sort { input, keys } => {
                self.check_types(&plan.schema, &input.schema.types(), "input types", id, op);
                for (k, _) in keys {
                    if *k >= input.schema.len() {
                        self.issue(
                            "schema/column-ref",
                            id,
                            op,
                            format!(
                                "sort key #{k} out of range (input has {} columns)",
                                input.schema.len()
                            ),
                        );
                    }
                }
            }
            PhysOp::HashAggregate {
                input,
                group_by,
                aggs,
            }
            | PhysOp::SortAggregate {
                input,
                group_by,
                aggs,
            } => {
                self.check_aggregate(plan, input, group_by, aggs, id, op);
            }
            PhysOp::Limit { input, .. } => {
                self.check_types(&plan.schema, &input.schema.types(), "input types", id, op);
            }
        }
    }

    fn check_aggregate(
        &mut self,
        plan: &PhysicalPlan,
        input: &PhysicalPlan,
        group_by: &[usize],
        aggs: &[PhysAgg],
        id: usize,
        op: &str,
    ) {
        let mut derived: Vec<DataType> = Vec::with_capacity(group_by.len() + aggs.len());
        for &g in group_by {
            match input.schema.column(g) {
                Some(c) => derived.push(c.dtype),
                None => {
                    self.issue(
                        "schema/column-ref",
                        id,
                        op,
                        format!(
                            "group-by column #{g} out of range (input has {})",
                            input.schema.len()
                        ),
                    );
                    return;
                }
            }
        }
        for (i, a) in aggs.iter().enumerate() {
            let arg_type = match &a.arg {
                Some(e) => {
                    self.check_expr(
                        e,
                        &input.schema,
                        None,
                        &format!("aggregate #{i} input"),
                        id,
                        op,
                    );
                    match e.data_type(&input.schema) {
                        Ok(t) => t,
                        Err(_) => return, // already reported
                    }
                }
                None => DataType::Int,
            };
            match a.func.result_type(arg_type) {
                Ok(t) => derived.push(t),
                Err(err) => {
                    self.issue(
                        "expr/agg-input",
                        id,
                        op,
                        format!("aggregate #{i}: {}", err.message()),
                    );
                    return;
                }
            }
        }
        self.check_types(
            &plan.schema,
            &derived,
            "group-by ++ aggregate types",
            id,
            op,
        );
    }

    /// Rule group 2: physical-property obligations.
    fn check_physical_props(&mut self, plan: &PhysicalPlan, id: usize, op: &str) {
        match &plan.op {
            PhysOp::IndexScan {
                table,
                index,
                range,
                clustered,
                ..
            } => {
                // Note: an *empty* key range (low > high) is deliberately
                // not an error — the optimizer compiles contradictory
                // sargable predicates into exactly that, and it executes
                // correctly (zero rows). Only bound *types* are checked.
                let Some(cat) = self.catalog else { return };
                let Ok(info) = cat.table(table) else {
                    self.issue(
                        "catalog/table",
                        id,
                        op,
                        format!("table '{table}' does not exist"),
                    );
                    return;
                };
                let Some(idx) = info.indexes().into_iter().find(|i| &i.name == index) else {
                    self.issue(
                        "index/exists",
                        id,
                        op,
                        format!("index '{index}' does not exist on '{table}'"),
                    );
                    return;
                };
                if idx.clustered != *clustered {
                    self.issue(
                        "index/clustered",
                        id,
                        op,
                        format!(
                            "plan says clustered={clustered}, catalog says {}",
                            idx.clustered
                        ),
                    );
                }
                if let Some(key_type) = info.schema.column(idx.column).map(|c| c.dtype) {
                    for bound in [&range.low, &range.high] {
                        let v = match bound {
                            Bound::Included(v) | Bound::Excluded(v) => v,
                            Bound::Unbounded => continue,
                        };
                        if let Some(vt) = v.data_type() {
                            if key_type.unify(vt).is_none() {
                                self.issue(
                                    "key/type",
                                    id,
                                    op,
                                    format!(
                                        "range bound {v} ({vt}) is not comparable with the \
                                         indexed column's type {key_type}"
                                    ),
                                );
                            }
                        }
                    }
                }
            }
            PhysOp::IndexNestedLoopJoin {
                inner_table,
                index,
                outer,
                outer_key,
                ..
            } => {
                let Some(cat) = self.catalog else { return };
                let Ok(info) = cat.table(inner_table) else {
                    self.issue(
                        "catalog/table",
                        id,
                        op,
                        format!("inner table '{inner_table}' does not exist"),
                    );
                    return;
                };
                let Some(idx) = info.indexes().into_iter().find(|i| &i.name == index) else {
                    self.issue(
                        "index/exists",
                        id,
                        op,
                        format!("index '{index}' does not exist on '{inner_table}'"),
                    );
                    return;
                };
                let probe = outer.schema.column(*outer_key).map(|c| c.dtype);
                let key = info.schema.column(idx.column).map(|c| c.dtype);
                if let (Some(p), Some(k)) = (probe, key) {
                    if p.unify(k).is_none() {
                        self.issue(
                            "key/type",
                            id,
                            op,
                            format!("probe key type {p} is not comparable with index key {k}"),
                        );
                    }
                }
            }
            PhysOp::BlockNestedLoopJoin { block_pages, .. } if *block_pages == 0 => {
                self.issue(
                    "join/block-pages",
                    id,
                    op,
                    "block nested loops with a zero-page block".into(),
                );
            }
            PhysOp::SortMergeJoin {
                left,
                right,
                left_key,
                right_key,
                ..
            } => {
                for (side, input, key) in [("left", left, left_key), ("right", right, right_key)] {
                    if let OrderFact::Known(have) = provides_order(input, self.catalog) {
                        if have != Some(*key) {
                            self.issue(
                                "order/merge-input",
                                id,
                                op,
                                format!(
                                    "{side} input must arrive sorted on #{key}, but it \
                                     delivers {}",
                                    match have {
                                        Some(c) => format!("order on #{c}"),
                                        None => "no order".to_string(),
                                    }
                                ),
                            );
                        }
                    }
                }
            }
            PhysOp::SortAggregate {
                input, group_by, ..
            } => {
                let Some(&g) = group_by.first() else {
                    self.issue(
                        "order/stream-agg",
                        id,
                        op,
                        "streaming aggregate without group columns".into(),
                    );
                    return;
                };
                if let OrderFact::Known(have) = provides_order(input, self.catalog) {
                    if have != Some(g) {
                        self.issue(
                            "order/stream-agg",
                            id,
                            op,
                            format!(
                                "input must arrive sorted on group column #{g}, but it delivers {}",
                                match have {
                                    Some(c) => format!("order on #{c}"),
                                    None => "no order".to_string(),
                                }
                            ),
                        );
                    }
                }
            }
            _ => {}
        }
    }
}

/// What we can prove about the ascending sort order an operator's output
/// satisfies, in the operator's *own output ordinal space*.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OrderFact {
    /// Provably ordered by this column (or provably unordered for `None`).
    Known(Option<usize>),
    /// Not derivable (e.g. a scan with no catalog to consult).
    Unknown,
}

/// Derive the order an operator delivers from its *structure* — never from
/// the `output_order` annotation (which the optimizer keeps in global
/// ordinals mid-enumeration and which a buggy enumerator could get wrong;
/// trusting it would make the merge-input rule vacuous).
fn provides_order(plan: &PhysicalPlan, catalog: Option<&Catalog>) -> OrderFact {
    match &plan.op {
        PhysOp::SeqScan { table, .. } => match catalog.and_then(|c| c.table(table).ok()) {
            // A clustered index means the heap itself is key-ordered.
            Some(info) => OrderFact::Known(
                info.indexes()
                    .into_iter()
                    .find(|i| i.clustered)
                    .map(|i| i.column),
            ),
            None => OrderFact::Unknown,
        },
        PhysOp::IndexScan { table, index, .. } => match catalog.and_then(|c| c.table(table).ok()) {
            Some(info) => match info.indexes().into_iter().find(|i| &i.name == index) {
                Some(idx) => OrderFact::Known(Some(idx.column)),
                // Nonexistent index: flagged by index/exists, order unknown.
                None => OrderFact::Unknown,
            },
            None => OrderFact::Unknown,
        },
        PhysOp::Filter { input, .. } | PhysOp::Limit { input, .. } => {
            provides_order(input, catalog)
        }
        PhysOp::Project { input, exprs } => match provides_order(input, catalog) {
            OrderFact::Known(Some(c)) => OrderFact::Known(
                exprs
                    .iter()
                    .position(|e| matches!(e, Expr::Column(i) if *i == c)),
            ),
            other => other,
        },
        PhysOp::Sort { keys, .. } => OrderFact::Known(match keys.first() {
            Some((c, true)) => Some(*c),
            _ => None,
        }),
        // The probe/outer side streams through in order; its columns keep
        // their positions in the join output.
        PhysOp::HashJoin { left, .. } | PhysOp::NestedLoopJoin { left, .. } => {
            provides_order(left, catalog)
        }
        PhysOp::IndexNestedLoopJoin { outer, .. } => provides_order(outer, catalog),
        // Block nested loops interleaves outer blocks: order destroyed.
        PhysOp::BlockNestedLoopJoin { .. } => OrderFact::Known(None),
        PhysOp::SortMergeJoin { left_key, .. } => OrderFact::Known(Some(*left_key)),
        PhysOp::HashAggregate { .. } => OrderFact::Known(None),
        // Streaming aggregate emits groups in input order; the first group
        // column is output column 0.
        PhysOp::SortAggregate {
            input, group_by, ..
        } => match (provides_order(input, catalog), group_by.first()) {
            (OrderFact::Known(have), Some(&g)) if have == Some(g) => OrderFact::Known(Some(0)),
            (OrderFact::Unknown, _) => OrderFact::Unknown,
            _ => OrderFact::Known(None),
        },
    }
}

/// Total-order comparison for same-type (or numerically unifiable) values;
/// `None` when the values aren't comparable.
fn compare_values(a: &Value, b: &Value) -> Option<std::cmp::Ordering> {
    use std::cmp::Ordering;
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => Some(x.cmp(y)),
        (Value::Float(x), Value::Float(y)) => x.partial_cmp(y),
        (Value::Int(x), Value::Float(y)) => (*x as f64).partial_cmp(y),
        (Value::Float(x), Value::Int(y)) => x.partial_cmp(&(*y as f64)),
        (Value::Str(x), Value::Str(y)) => Some(x.cmp(y)),
        (Value::Bool(x), Value::Bool(y)) => Some(x.cmp(y)),
        _ => None,
    }
    .map(|o| {
        if o == Ordering::Equal {
            Ordering::Equal
        } else {
            o
        }
    })
}

// ---------------------------------------------------------------------------
// SQL-level lints
// ---------------------------------------------------------------------------

/// Scan a bound logical plan for queries that are valid but probably wrong:
/// contradictory predicates, accidental cross products, projected columns
/// no ancestor consumes.
pub fn lint_logical(plan: &LogicalPlan) -> Vec<Lint> {
    let mut lints = Vec::new();
    lint_contradictions(plan, &mut lints);
    lint_cross_products(plan, &mut lints);
    let all = (0..plan.schema().len()).collect();
    lint_unused_columns(plan, &all, &mut lints);
    lints
}

/// `a > 5 AND a < 3`-style contradictions: per-column range intersection
/// over each filter's conjuncts, plus constant predicates that evaluate to
/// false outright.
fn lint_contradictions(plan: &LogicalPlan, lints: &mut Vec<Lint>) {
    if let LogicalPlan::Filter { predicate, .. } = plan {
        lint_predicate_contradiction(predicate, lints);
    }
    for c in plan.children() {
        lint_contradictions(c, lints);
    }
}

fn lint_predicate_contradiction(predicate: &Expr, lints: &mut Vec<Lint>) {
    use std::collections::BTreeMap;
    // (low, low_inclusive), (high, high_inclusive) per column.
    type Range = (Option<(Value, bool)>, Option<(Value, bool)>);
    let mut ranges: BTreeMap<usize, Range> = BTreeMap::new();

    if predicate.is_constant() {
        if let Ok(false) = predicate.eval_predicate(&evopt_common::Tuple::new(vec![])) {
            lints.push(Lint {
                code: "contradiction",
                message: format!("predicate `{predicate}` is constant and always false"),
            });
            return;
        }
    }
    for conj in predicate.split_conjuncts() {
        // Normalise to `col OP literal`.
        let (col, op, v) = match &conj {
            Expr::Binary { op, left, right } if op.is_comparison() => match (&**left, &**right) {
                (Expr::Column(c), Expr::Literal(v)) => (*c, *op, v.clone()),
                (Expr::Literal(v), Expr::Column(c)) => (*c, op.flip(), v.clone()),
                _ => continue,
            },
            _ => continue,
        };
        if v.is_null() {
            continue;
        }
        let entry = ranges.entry(col).or_default();
        let tighten_low = |cur: &mut Option<(Value, bool)>, v: Value, inc: bool| {
            let replace = match cur {
                Some((have, have_inc)) => match compare_values(&v, have) {
                    Some(std::cmp::Ordering::Greater) => true,
                    Some(std::cmp::Ordering::Equal) => *have_inc && !inc,
                    _ => false,
                },
                None => true,
            };
            if replace {
                *cur = Some((v, inc));
            }
        };
        let tighten_high = |cur: &mut Option<(Value, bool)>, v: Value, inc: bool| {
            let replace = match cur {
                Some((have, have_inc)) => match compare_values(&v, have) {
                    Some(std::cmp::Ordering::Less) => true,
                    Some(std::cmp::Ordering::Equal) => *have_inc && !inc,
                    _ => false,
                },
                None => true,
            };
            if replace {
                *cur = Some((v, inc));
            }
        };
        use evopt_common::BinOp;
        match op {
            BinOp::Eq => {
                tighten_low(&mut entry.0, v.clone(), true);
                tighten_high(&mut entry.1, v, true);
            }
            BinOp::Gt => tighten_low(&mut entry.0, v, false),
            BinOp::GtEq => tighten_low(&mut entry.0, v, true),
            BinOp::Lt => tighten_high(&mut entry.1, v, false),
            BinOp::LtEq => tighten_high(&mut entry.1, v, true),
            _ => {}
        }
    }
    for (col, (low, high)) in ranges {
        let (Some((lo, lo_inc)), Some((hi, hi_inc))) = (low, high) else {
            continue;
        };
        let empty = match compare_values(&lo, &hi) {
            Some(std::cmp::Ordering::Greater) => true,
            Some(std::cmp::Ordering::Equal) => !(lo_inc && hi_inc),
            _ => false,
        };
        if empty {
            lints.push(Lint {
                code: "contradiction",
                message: format!(
                    "conjuncts on column #{col} demand {} {lo} and {} {hi}: no value satisfies both",
                    if lo_inc { ">=" } else { ">" },
                    if hi_inc { "<=" } else { "<" },
                ),
            });
        }
    }
}

/// Accidental cross products: a join subtree whose relations the available
/// predicates (join-node and enclosing-filter conjuncts alike) fail to
/// connect. Written `FROM a, b WHERE a.x = b.y` is connected; `FROM a, b`
/// with no linking predicate is flagged.
fn lint_cross_products(plan: &LogicalPlan, lints: &mut Vec<Lint>) {
    let is_join_root = matches!(plan, LogicalPlan::Join { .. })
        || matches!(plan, LogicalPlan::Filter { input, .. } if matches!(**input, LogicalPlan::Join { .. }));
    if is_join_root {
        if let Some(graph) = JoinGraph::extract(plan) {
            let n = graph.relations.len();
            // Union-find over relations; merge any pair of components the
            // graph can connect.
            let mut comp: Vec<usize> = (0..n).collect();
            let mut changed = true;
            while changed {
                changed = false;
                for a in 0..n {
                    for b in (a + 1)..n {
                        if comp[a] != comp[b] && graph.connected(1u64 << a, 1u64 << b) {
                            let (from, to) = (comp[b], comp[a]);
                            for c in comp.iter_mut() {
                                if *c == from {
                                    *c = to;
                                }
                            }
                            changed = true;
                        }
                    }
                }
                // Pairwise base-relation edges miss chains only when a
                // predicate spans 3+ relations; grow components by testing
                // whole components against each other too.
                for a in 0..n {
                    for b in (a + 1)..n {
                        if comp[a] != comp[b] {
                            let mask_of = |k: usize| -> u64 {
                                (0..n)
                                    .filter(|&r| comp[r] == comp[k])
                                    .map(|r| 1u64 << r)
                                    .sum()
                            };
                            if graph.connected(mask_of(a), mask_of(b)) {
                                let (from, to) = (comp[b], comp[a]);
                                for c in comp.iter_mut() {
                                    if *c == from {
                                        *c = to;
                                    }
                                }
                                changed = true;
                            }
                        }
                    }
                }
            }
            let mut comps: Vec<usize> = comp.clone();
            comps.sort_unstable();
            comps.dedup();
            if comps.len() > 1 {
                let names: Vec<String> = graph
                    .relations
                    .iter()
                    .map(|r| match r {
                        LogicalPlan::Scan { table, .. } => table.clone(),
                        other => other
                            .schema()
                            .column(0)
                            .and_then(|c| c.table.clone())
                            .unwrap_or_else(|| format!("<{}>", name_of(other))),
                    })
                    .collect();
                lints.push(Lint {
                    code: "cross-product",
                    message: format!(
                        "no predicate connects all of [{}]: the plan must contain a cross product",
                        names.join(", ")
                    ),
                });
            }
            // Recurse into opaque (non-scan) leaves only; the join subtree
            // itself has been handled.
            for r in &graph.relations {
                if !matches!(r, LogicalPlan::Scan { .. }) {
                    lint_cross_products(r, lints);
                }
            }
            return;
        }
    }
    for c in plan.children() {
        lint_cross_products(c, lints);
    }
}

fn name_of(plan: &LogicalPlan) -> &'static str {
    match plan {
        LogicalPlan::Scan { .. } => "Scan",
        LogicalPlan::Filter { .. } => "Filter",
        LogicalPlan::Project { .. } => "Project",
        LogicalPlan::Join { .. } => "Join",
        LogicalPlan::Aggregate { .. } => "Aggregate",
        LogicalPlan::Sort { .. } => "Sort",
        LogicalPlan::Limit { .. } => "Limit",
    }
}

/// Projected columns no ancestor reads: top-down needed-set analysis.
/// `needed` holds the output ordinals of `plan` some ancestor consumes.
fn lint_unused_columns(
    plan: &LogicalPlan,
    needed: &std::collections::BTreeSet<usize>,
    lints: &mut Vec<Lint>,
) {
    use std::collections::BTreeSet;
    match plan {
        LogicalPlan::Project {
            input,
            exprs,
            schema,
        } => {
            for (i, _) in exprs.iter().enumerate() {
                if !needed.contains(&i) {
                    let label = schema
                        .column(i)
                        .map(|c| c.name.clone())
                        .unwrap_or_else(|| format!("#{i}"));
                    lints.push(Lint {
                        code: "unused-column",
                        message: format!("projected column `{label}` is never used"),
                    });
                }
            }
            let mut child_needed = BTreeSet::new();
            for &i in needed {
                if let Some(e) = exprs.get(i) {
                    child_needed.extend(e.referenced_columns());
                }
            }
            lint_unused_columns(input, &child_needed, lints);
        }
        LogicalPlan::Filter { input, predicate } => {
            let mut n = needed.clone();
            n.extend(predicate.referenced_columns());
            lint_unused_columns(input, &n, lints);
        }
        LogicalPlan::Sort { input, keys } => {
            let mut n = needed.clone();
            n.extend(keys.iter().map(|k| k.column));
            lint_unused_columns(input, &n, lints);
        }
        LogicalPlan::Limit { input, .. } => lint_unused_columns(input, needed, lints),
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
            ..
        } => {
            let mut n: BTreeSet<usize> = group_by.iter().copied().collect();
            for a in aggs {
                if let Some(e) = &a.arg {
                    n.extend(e.referenced_columns());
                }
            }
            lint_unused_columns(input, &n, lints);
        }
        LogicalPlan::Join {
            left,
            right,
            predicate,
        } => {
            let lcols = left.schema().len();
            let mut ln = BTreeSet::new();
            let mut rn = BTreeSet::new();
            let mut all: BTreeSet<usize> = needed.clone();
            if let Some(p) = predicate {
                all.extend(p.referenced_columns());
            }
            for &c in &all {
                if c < lcols {
                    ln.insert(c);
                } else {
                    rn.insert(c - lcols);
                }
            }
            lint_unused_columns(left, &ln, lints);
            lint_unused_columns(right, &rn, lints);
        }
        LogicalPlan::Scan { .. } => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::Cost;
    use evopt_common::expr::{col, lit};
    use evopt_common::{BinOp, Column, Schema, Tuple};
    use evopt_plan::SortKey;

    fn int_schema(names: &[&str]) -> Schema {
        Schema::new(
            names
                .iter()
                .map(|n| Column::new(*n, DataType::Int))
                .collect(),
        )
    }

    fn leaf(table: &str, cols: &[&str]) -> PhysicalPlan {
        PhysicalPlan {
            op: PhysOp::SeqScan {
                table: table.into(),
                filter: None,
            },
            schema: int_schema(cols),
            est_rows: 100.0,
            est_cost: Cost::new(10.0, 100.0),
            output_order: None,
        }
    }

    #[test]
    fn clean_physical_plan_verifies() {
        let l = leaf("t", &["a", "b"]);
        let r = leaf("u", &["c"]);
        let join = PhysicalPlan {
            schema: l.schema.join(&r.schema),
            est_rows: 100.0,
            est_cost: Cost::new(30.0, 400.0),
            output_order: None,
            op: PhysOp::HashJoin {
                left: Box::new(l),
                right: Box::new(r),
                left_key: 0,
                right_key: 0,
                residual: None,
            },
        };
        let report = verify_physical(&join, None, VerifyPhase::PostPhysical);
        assert!(report.ok(), "{:?}", report.issues);
        assert_eq!(report.nodes_checked, 3);
    }

    #[test]
    fn out_of_range_column_is_caught() {
        let scan = leaf("t", &["a"]);
        let filter = PhysicalPlan {
            schema: scan.schema.clone(),
            est_rows: 50.0,
            est_cost: Cost::new(10.0, 200.0),
            output_order: None,
            op: PhysOp::Filter {
                input: Box::new(scan),
                predicate: Expr::eq(col(7), lit(1i64)),
            },
        };
        let report = verify_physical(&filter, None, VerifyPhase::PostPhysical);
        assert!(report.issues.iter().any(|i| i.rule == "schema/column-ref"));
    }

    #[test]
    fn non_boolean_predicate_is_caught() {
        let scan = leaf("t", &["a"]);
        let filter = PhysicalPlan {
            schema: scan.schema.clone(),
            est_rows: 50.0,
            est_cost: Cost::new(10.0, 200.0),
            output_order: None,
            op: PhysOp::Filter {
                input: Box::new(scan),
                predicate: Expr::binary(BinOp::Add, col(0), lit(1i64)),
            },
        };
        let report = verify_physical(&filter, None, VerifyPhase::PostPhysical);
        assert!(report.issues.iter().any(|i| i.rule == "expr/type"));
    }

    #[test]
    fn negative_and_nonfinite_estimates_are_caught() {
        let mut scan = leaf("t", &["a"]);
        scan.est_rows = -5.0;
        let report = verify_physical(&scan, None, VerifyPhase::PostPhysical);
        assert!(report.issues.iter().any(|i| i.rule == "est/rows"));

        let mut scan = leaf("t", &["a"]);
        scan.est_cost = Cost::new(f64::NAN, 1.0);
        let report = verify_physical(&scan, None, VerifyPhase::PostPhysical);
        assert!(report.issues.iter().any(|i| i.rule == "est/cost"));
    }

    #[test]
    fn filter_monotonicity_is_enforced() {
        let scan = leaf("t", &["a"]);
        let filter = PhysicalPlan {
            schema: scan.schema.clone(),
            est_rows: 5_000.0, // input is only 100
            est_cost: Cost::new(10.0, 200.0),
            output_order: None,
            op: PhysOp::Filter {
                input: Box::new(scan),
                predicate: Expr::eq(col(0), lit(1i64)),
            },
        };
        let report = verify_physical(&filter, None, VerifyPhase::PostPhysical);
        assert!(report
            .issues
            .iter()
            .any(|i| i.rule == "est/filter-monotone"));
    }

    #[test]
    fn merge_join_without_sorted_inputs_is_caught() {
        // Sort only the left input; leave the right raw. Without a catalog
        // the left leaf's order is unknown, but the right's Sort-lessness is
        // provable… actually a bare SeqScan is Unknown without a catalog, so
        // wrap the right in a Sort on the *wrong* key to get a Known order.
        let l = leaf("t", &["a"]);
        let sorted_l = PhysicalPlan {
            schema: l.schema.clone(),
            est_rows: l.est_rows,
            est_cost: Cost::new(20.0, 300.0),
            output_order: Some(0),
            op: PhysOp::Sort {
                input: Box::new(l),
                keys: vec![(0, true)],
            },
        };
        let r = leaf("u", &["c", "d"]);
        let sorted_r_wrong = PhysicalPlan {
            schema: r.schema.clone(),
            est_rows: r.est_rows,
            est_cost: Cost::new(20.0, 300.0),
            output_order: Some(1),
            op: PhysOp::Sort {
                input: Box::new(r),
                keys: vec![(1, true)],
            },
        };
        let join = PhysicalPlan {
            schema: sorted_l.schema.join(&sorted_r_wrong.schema),
            est_rows: 100.0,
            est_cost: Cost::new(60.0, 900.0),
            output_order: Some(0),
            op: PhysOp::SortMergeJoin {
                left: Box::new(sorted_l),
                right: Box::new(sorted_r_wrong),
                left_key: 0,
                right_key: 0, // but the right is sorted on #1
                residual: None,
            },
        };
        let report = verify_physical(&join, None, VerifyPhase::PostPhysical);
        assert!(
            report.issues.iter().any(|i| i.rule == "order/merge-input"),
            "{:?}",
            report.issues
        );
    }

    #[test]
    fn logical_plan_checks_projection_types() {
        let scan = LogicalPlan::Scan {
            table: "t".into(),
            schema: int_schema(&["a", "b"]),
        };
        // Declared STRING output for an INT expression.
        let bad = LogicalPlan::Project {
            input: Box::new(scan),
            exprs: vec![col(0)],
            schema: Schema::new(vec![Column::new("a", DataType::Str)]),
        };
        let report = verify_logical(&bad, VerifyPhase::PostBind);
        assert!(report.issues.iter().any(|i| i.rule == "expr/type"));
    }

    #[test]
    fn contradiction_lint_fires() {
        let scan = LogicalPlan::Scan {
            table: "t".into(),
            schema: int_schema(&["a"]),
        };
        let plan = LogicalPlan::Filter {
            input: Box::new(scan),
            predicate: Expr::binary(
                BinOp::And,
                Expr::binary(BinOp::Gt, col(0), lit(5i64)),
                Expr::binary(BinOp::Lt, col(0), lit(3i64)),
            ),
        };
        let lints = lint_logical(&plan);
        assert!(lints.iter().any(|l| l.code == "contradiction"), "{lints:?}");

        // A satisfiable range must not fire.
        let scan = LogicalPlan::Scan {
            table: "t".into(),
            schema: int_schema(&["a"]),
        };
        let ok = LogicalPlan::Filter {
            input: Box::new(scan),
            predicate: Expr::binary(
                BinOp::And,
                Expr::binary(BinOp::Gt, col(0), lit(3i64)),
                Expr::binary(BinOp::Lt, col(0), lit(5i64)),
            ),
        };
        assert!(lint_logical(&ok).iter().all(|l| l.code != "contradiction"));
    }

    #[test]
    fn cross_product_lint_fires_only_when_unconnected() {
        let t = LogicalPlan::Scan {
            table: "t".into(),
            schema: int_schema(&["a"]),
        };
        let u = LogicalPlan::Scan {
            table: "u".into(),
            schema: int_schema(&["b"]),
        };
        let cross = LogicalPlan::Join {
            left: Box::new(t.clone()),
            right: Box::new(u.clone()),
            predicate: None,
        };
        assert!(lint_logical(&cross)
            .iter()
            .any(|l| l.code == "cross-product"));

        // Same shape, but a WHERE conjunct connects them: no lint.
        let connected = LogicalPlan::Filter {
            input: Box::new(LogicalPlan::Join {
                left: Box::new(t),
                right: Box::new(u),
                predicate: None,
            }),
            predicate: Expr::eq(col(0), col(1)),
        };
        assert!(lint_logical(&connected)
            .iter()
            .all(|l| l.code != "cross-product"));
    }

    #[test]
    fn unused_column_lint_fires() {
        let scan = LogicalPlan::Scan {
            table: "t".into(),
            schema: int_schema(&["a", "b"]),
        };
        let proj = LogicalPlan::project(scan, vec![col(0), col(1)], vec![None, None]).unwrap();
        // Aggregate over the projection only touches column 0; column 1 of
        // the projection is dead weight.
        let agg = LogicalPlan::aggregate(proj, vec![0], vec![]).unwrap();
        let lints = lint_logical(&agg);
        assert!(lints.iter().any(|l| l.code == "unused-column"), "{lints:?}");
    }

    #[test]
    fn always_false_constant_predicate_lints() {
        let scan = LogicalPlan::Scan {
            table: "t".into(),
            schema: int_schema(&["a"]),
        };
        let plan = LogicalPlan::Filter {
            input: Box::new(scan),
            predicate: Expr::binary(BinOp::Gt, lit(1i64), lit(5i64)),
        };
        assert!(lint_logical(&plan)
            .iter()
            .any(|l| l.code == "contradiction"));
        let _ = Tuple::new(vec![]); // keep the import exercised
    }

    #[test]
    fn sort_keys_out_of_range_logical() {
        let scan = LogicalPlan::Scan {
            table: "t".into(),
            schema: int_schema(&["a"]),
        };
        let plan = LogicalPlan::Sort {
            input: Box::new(scan),
            keys: vec![SortKey {
                column: 9,
                ascending: true,
            }],
        };
        let report = verify_logical(&plan, VerifyPhase::PostBind);
        assert!(report.issues.iter().any(|i| i.rule == "schema/column-ref"));
    }

    #[test]
    fn report_renders_and_errors() {
        let mut scan = leaf("t", &["a"]);
        scan.est_rows = f64::INFINITY;
        let report = verify_physical(&scan, None, VerifyPhase::PostEnumeration);
        assert!(!report.ok());
        assert!(report.render().contains("post-enumeration"));
        let err = report.into_result().unwrap_err();
        assert!(err.message().contains("est/rows"), "{}", err.message());
    }
}
