//! Selectivity estimation.
//!
//! Given a predicate and per-column statistics, estimate the fraction of
//! rows it keeps. The estimation ladder, best information first:
//!
//! 1. **MCV list** — exact frequency for tracked heavy hitters.
//! 2. **Histogram** — bucket mass (equi-width or equi-depth).
//! 3. **Uniformity** — `1/NDV` for equality, min–max interpolation for
//!    ranges.
//! 4. **Magic constants** — the 1977 defaults (`1/10` equality, `1/3`
//!    range) when no statistics exist.
//!
//! Conjuncts combine under the independence assumption (`s₁·s₂`), the known
//! weakness that experiment F5 quantifies: errors compound multiplicatively
//! up a join tree.

use evopt_catalog::ColumnStats;
use evopt_common::{BinOp, Expr, UnOp, Value};

/// Default equality selectivity with no statistics (System R's 1/10).
pub const DEFAULT_EQ_SEL: f64 = 0.1;
/// Default range selectivity with no statistics (System R's 1/3).
pub const DEFAULT_RANGE_SEL: f64 = 1.0 / 3.0;
/// Default LIKE-prefix selectivity.
pub const DEFAULT_PREFIX_SEL: f64 = 0.05;
/// Default LIKE-substring selectivity.
pub const DEFAULT_CONTAINS_SEL: f64 = 0.25;

/// What the estimator knows about one column of the (global) ordinal space.
#[derive(Debug, Clone, Default)]
pub struct ColumnInfo {
    /// ANALYZE output for this column, when available.
    pub stats: Option<ColumnStats>,
    /// Row count of the relation this column belongs to.
    pub table_rows: u64,
}

/// Column-ordinal-indexed statistics for selectivity estimation.
#[derive(Debug, Clone, Default)]
pub struct EstimationContext {
    pub columns: Vec<ColumnInfo>,
}

impl EstimationContext {
    pub fn new(columns: Vec<ColumnInfo>) -> Self {
        EstimationContext { columns }
    }

    /// A context with no information at all (`n` columns): every estimate
    /// falls back to the magic constants.
    pub fn unknown(n: usize) -> Self {
        EstimationContext {
            columns: vec![ColumnInfo::default(); n],
        }
    }

    fn info(&self, col: usize) -> Option<&ColumnInfo> {
        self.columns.get(col)
    }

    fn stats(&self, col: usize) -> Option<&ColumnStats> {
        self.info(col).and_then(|i| i.stats.as_ref())
    }

    /// Estimate the fraction of rows satisfying `predicate`. Always in
    /// `[0, 1]`.
    pub fn selectivity(&self, predicate: &Expr) -> f64 {
        self.sel(predicate).clamp(0.0, 1.0)
    }

    fn sel(&self, e: &Expr) -> f64 {
        // A predicate reading no columns is a constant: evaluate it rather
        // than guessing (keeps unfolded tautologies like `1+1=2` from
        // distorting cardinalities).
        if !matches!(e, Expr::Literal(_)) && e.is_constant() {
            if let Ok(v) = e.eval(&evopt_common::Tuple::new(vec![])) {
                return match v {
                    Value::Bool(true) => 1.0,
                    Value::Bool(false) | Value::Null => 0.0,
                    _ => 1.0,
                };
            }
        }
        self.sel_inner(e)
    }

    fn sel_inner(&self, e: &Expr) -> f64 {
        match e {
            Expr::Literal(Value::Bool(true)) => 1.0,
            Expr::Literal(Value::Bool(false)) | Expr::Literal(Value::Null) => 0.0,
            Expr::Literal(_) => 1.0,
            // A bare boolean column: assume half.
            Expr::Column(_) => 0.5,
            Expr::Binary { op, left, right } => match op {
                BinOp::And => self.sel(left) * self.sel(right),
                BinOp::Or => {
                    let (a, b) = (self.sel(left), self.sel(right));
                    a + b - a * b
                }
                op if op.is_comparison() => self.sel_comparison(*op, left, right),
                // Arithmetic at predicate position shouldn't happen.
                _ => DEFAULT_RANGE_SEL,
            },
            Expr::Unary { op, input } => match op {
                UnOp::Not => 1.0 - self.sel(input),
                UnOp::IsNull => match self.column_of(input) {
                    Some(c) => self.null_fraction(c),
                    None => DEFAULT_EQ_SEL,
                },
                UnOp::IsNotNull => match self.column_of(input) {
                    Some(c) => 1.0 - self.null_fraction(c),
                    None => 1.0 - DEFAULT_EQ_SEL,
                },
                UnOp::Neg => DEFAULT_RANGE_SEL,
            },
            Expr::Like {
                input: _,
                pattern,
                negated,
            } => {
                let s = if pattern.starts_with('%') || pattern.starts_with('_') {
                    DEFAULT_CONTAINS_SEL
                } else if pattern.contains('%') || pattern.contains('_') {
                    DEFAULT_PREFIX_SEL
                } else {
                    // No wildcards: effectively equality.
                    DEFAULT_EQ_SEL
                };
                if *negated {
                    1.0 - s
                } else {
                    s
                }
            }
            Expr::InList {
                input,
                list,
                negated,
            } => {
                let s: f64 = match self.column_of(input) {
                    Some(c) => list.iter().map(|v| self.eq_selectivity(c, v)).sum(),
                    None => DEFAULT_EQ_SEL * list.len() as f64,
                };
                let s = s.min(1.0);
                if *negated {
                    1.0 - s
                } else {
                    s
                }
            }
            Expr::Between {
                input,
                low,
                high,
                negated,
            } => {
                let s = match (self.column_of(input), constant_of(low), constant_of(high)) {
                    (Some(c), Some(lo), Some(hi)) => {
                        self.range_selectivity(c, lo.as_f64(), hi.as_f64())
                    }
                    _ => DEFAULT_RANGE_SEL,
                };
                if *negated {
                    1.0 - s
                } else {
                    s
                }
            }
        }
    }

    fn sel_comparison(&self, op: BinOp, left: &Expr, right: &Expr) -> f64 {
        // Normalise to `col OP rhs`.
        let (col, op, rhs) = match (self.column_of(left), self.column_of(right)) {
            (Some(c), _) => (Some(c), op, right),
            (None, Some(c)) => (Some(c), op.flip(), left),
            (None, None) => (None, op, right),
        };
        let Some(col) = col else {
            return if op == BinOp::Eq {
                DEFAULT_EQ_SEL
            } else {
                DEFAULT_RANGE_SEL
            };
        };
        // Column-column: join selectivity.
        if let Some(col2) = self.column_of(rhs) {
            return match op {
                BinOp::Eq => self.join_eq_selectivity(col, col2),
                BinOp::NotEq => 1.0 - self.join_eq_selectivity(col, col2),
                _ => DEFAULT_RANGE_SEL,
            };
        }
        let Some(v) = constant_of(rhs) else {
            return if op == BinOp::Eq {
                DEFAULT_EQ_SEL
            } else {
                DEFAULT_RANGE_SEL
            };
        };
        match op {
            BinOp::Eq => self.eq_selectivity(col, v),
            BinOp::NotEq => 1.0 - self.eq_selectivity(col, v),
            BinOp::Lt | BinOp::LtEq => self.range_selectivity(col, None, v.as_f64()),
            BinOp::Gt | BinOp::GtEq => self.range_selectivity(col, v.as_f64(), None),
            _ => DEFAULT_RANGE_SEL,
        }
    }

    /// `col = v` selectivity via the estimation ladder.
    pub fn eq_selectivity(&self, col: usize, v: &Value) -> f64 {
        let Some(stats) = self.stats(col) else {
            return DEFAULT_EQ_SEL;
        };
        if v.is_null() {
            return 0.0; // = NULL never matches
        }
        if let Some(frac) = stats.mcv_fraction(v) {
            return frac;
        }
        if let Some(h) = &stats.histogram {
            if let Some(s) = h.selectivity_eq(v, stats.ndv.max(1)) {
                // The MCV list already covers its mass; spread the histogram
                // estimate over the remainder (cheap correction: cap).
                return s.min(1.0 - stats.mcv_total_fraction()).max(0.0);
            }
        }
        // Out-of-bounds constants match nothing.
        if let (Some(min), Some(max)) = (&stats.min, &stats.max) {
            if v < min || v > max {
                return 0.0;
            }
        }
        if stats.ndv > 0 {
            let rows = self.info(col).map_or(0, |i| i.table_rows);
            let non_null = 1.0 - stats.null_fraction(rows);
            (non_null / stats.ndv as f64).min(1.0)
        } else {
            DEFAULT_EQ_SEL
        }
    }

    /// `lo <= col <= hi` selectivity (either bound optional).
    pub fn range_selectivity(&self, col: usize, lo: Option<f64>, hi: Option<f64>) -> f64 {
        let Some(stats) = self.stats(col) else {
            return DEFAULT_RANGE_SEL;
        };
        if let Some(h) = &stats.histogram {
            return h.selectivity_range(lo, hi);
        }
        // Min–max interpolation (uniformity over the domain).
        let (min, max) = match (
            stats.min.as_ref().and_then(|v| v.as_f64()),
            stats.max.as_ref().and_then(|v| v.as_f64()),
        ) {
            (Some(a), Some(b)) if b > a => (a, b),
            (Some(a), Some(b)) if a == b => {
                let inside = lo.is_none_or(|l| l <= a) && hi.is_none_or(|h| h >= b);
                return if inside { 1.0 } else { 0.0 };
            }
            _ => return DEFAULT_RANGE_SEL,
        };
        let lo = lo.unwrap_or(min).max(min);
        let hi = hi.unwrap_or(max).min(max);
        if hi < lo {
            return 0.0;
        }
        ((hi - lo) / (max - min)).clamp(0.0, 1.0)
    }

    /// `a = b` across relations: `1 / max(NDV(a), NDV(b))` (the Selinger
    /// containment assumption).
    pub fn join_eq_selectivity(&self, a: usize, b: usize) -> f64 {
        let ndv_a = self.stats(a).map(|s| s.ndv).unwrap_or(0);
        let ndv_b = self.stats(b).map(|s| s.ndv).unwrap_or(0);
        match ndv_a.max(ndv_b) {
            0 => DEFAULT_EQ_SEL,
            m => 1.0 / m as f64,
        }
    }

    fn null_fraction(&self, col: usize) -> f64 {
        match (self.stats(col), self.info(col)) {
            (Some(s), Some(i)) => s.null_fraction(i.table_rows),
            _ => DEFAULT_EQ_SEL,
        }
    }

    fn column_of(&self, e: &Expr) -> Option<usize> {
        match e {
            Expr::Column(i) => Some(*i),
            _ => None,
        }
    }
}

fn constant_of(e: &Expr) -> Option<&Value> {
    match e {
        Expr::Literal(v) => Some(v),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evopt_catalog::Histogram;
    use evopt_common::expr::{col, lit};

    /// 1000-row table, col0 = uniform ints 0..100 (ndv 100), col1 = strings.
    fn ctx() -> EstimationContext {
        let vals: Vec<f64> = (0..1000).map(|i| (i % 100) as f64).collect();
        let c0 = ColumnInfo {
            stats: Some(ColumnStats {
                null_count: 0,
                ndv: 100,
                min: Some(Value::Int(0)),
                max: Some(Value::Int(99)),
                mcvs: vec![],
                histogram: Histogram::equi_depth(&vals, 16),
            }),
            table_rows: 1000,
        };
        let c1 = ColumnInfo {
            stats: Some(ColumnStats {
                null_count: 100,
                ndv: 50,
                min: Some(Value::Str("a".into())),
                max: Some(Value::Str("z".into())),
                mcvs: vec![(Value::Str("hot".into()), 0.3)],
                histogram: None,
            }),
            table_rows: 1000,
        };
        EstimationContext::new(vec![c0, c1])
    }

    #[test]
    fn equality_via_histogram_near_truth() {
        let s = ctx().selectivity(&Expr::eq(col(0), lit(42i64)));
        assert!((s - 0.01).abs() < 0.01, "got {s}, want ~0.01");
    }

    #[test]
    fn equality_via_mcv_exact() {
        let s = ctx().selectivity(&Expr::eq(col(1), lit("hot")));
        assert!((s - 0.3).abs() < 1e-9);
    }

    #[test]
    fn equality_fallback_ndv() {
        // String column, not an MCV: (1 - nullfrac)/ndv = 0.9/50.
        let s = ctx().selectivity(&Expr::eq(col(1), lit("cold")));
        assert!((s - 0.018).abs() < 1e-9, "got {s}");
    }

    #[test]
    fn out_of_domain_equality_is_zero() {
        let s = ctx().selectivity(&Expr::eq(col(0), lit(500i64)));
        assert_eq!(s, 0.0);
    }

    #[test]
    fn range_via_histogram() {
        let e = Expr::binary(BinOp::Lt, col(0), lit(50i64));
        let s = ctx().selectivity(&e);
        assert!((s - 0.5).abs() < 0.08, "got {s}");
        // Flipped spelling gives the same estimate.
        let e2 = Expr::binary(BinOp::Gt, lit(50i64), col(0));
        assert!((ctx().selectivity(&e2) - s).abs() < 1e-9);
    }

    #[test]
    fn between_and_negation() {
        let e = Expr::Between {
            input: Box::new(col(0)),
            low: Box::new(lit(25i64)),
            high: Box::new(lit(74i64)),
            negated: false,
        };
        let s = ctx().selectivity(&e);
        assert!((s - 0.5).abs() < 0.08, "got {s}");
        let neg = Expr::Between {
            input: Box::new(col(0)),
            low: Box::new(lit(25i64)),
            high: Box::new(lit(74i64)),
            negated: true,
        };
        assert!((ctx().selectivity(&neg) - (1.0 - s)).abs() < 1e-9);
    }

    #[test]
    fn and_or_independence() {
        let c = ctx();
        let a = Expr::eq(col(0), lit(1i64));
        let b = Expr::eq(col(0), lit(2i64));
        let sa = c.selectivity(&a);
        let sand = c.selectivity(&Expr::and(a.clone(), b.clone()));
        let sor = c.selectivity(&Expr::or(a, b));
        assert!((sand - sa * sa).abs() < 1e-9);
        assert!((sor - (2.0 * sa - sa * sa)).abs() < 1e-9);
    }

    #[test]
    fn not_complements() {
        let c = ctx();
        let e = Expr::eq(col(0), lit(1i64));
        let s = c.selectivity(&e);
        assert!((c.selectivity(&Expr::not(e)) - (1.0 - s)).abs() < 1e-9);
    }

    #[test]
    fn null_predicates_use_null_fraction() {
        let c = ctx();
        let isnull = Expr::Unary {
            op: UnOp::IsNull,
            input: Box::new(col(1)),
        };
        assert!((c.selectivity(&isnull) - 0.1).abs() < 1e-9);
        let notnull = Expr::Unary {
            op: UnOp::IsNotNull,
            input: Box::new(col(1)),
        };
        assert!((c.selectivity(&notnull) - 0.9).abs() < 1e-9);
        // Equality with NULL matches nothing.
        assert_eq!(c.selectivity(&Expr::eq(col(0), lit(Value::Null))), 0.0);
    }

    #[test]
    fn in_list_sums() {
        let c = ctx();
        let e = Expr::InList {
            input: Box::new(col(0)),
            list: vec![Value::Int(1), Value::Int(2), Value::Int(3)],
            negated: false,
        };
        let s = c.selectivity(&e);
        assert!((s - 0.03).abs() < 0.02, "got {s}");
    }

    #[test]
    fn like_constants() {
        let c = ctx();
        let mk = |pattern: &str, negated| Expr::Like {
            input: Box::new(col(1)),
            pattern: pattern.into(),
            negated,
        };
        assert_eq!(c.selectivity(&mk("abc%", false)), DEFAULT_PREFIX_SEL);
        assert_eq!(c.selectivity(&mk("%abc", false)), DEFAULT_CONTAINS_SEL);
        assert_eq!(c.selectivity(&mk("abc", false)), DEFAULT_EQ_SEL);
        assert_eq!(c.selectivity(&mk("abc%", true)), 1.0 - DEFAULT_PREFIX_SEL);
    }

    #[test]
    fn join_selectivity_uses_larger_ndv() {
        let c = ctx();
        // col0 ndv=100, col1 ndv=50 → 1/100.
        let s = c.selectivity(&Expr::eq(col(0), col(1)));
        assert!((s - 0.01).abs() < 1e-9);
    }

    #[test]
    fn unknown_context_uses_magic_constants() {
        let c = EstimationContext::unknown(3);
        assert_eq!(c.selectivity(&Expr::eq(col(0), lit(1i64))), DEFAULT_EQ_SEL);
        assert_eq!(
            c.selectivity(&Expr::binary(BinOp::Lt, col(0), lit(1i64))),
            DEFAULT_RANGE_SEL
        );
        assert_eq!(c.selectivity(&Expr::eq(col(0), col(2))), DEFAULT_EQ_SEL);
    }

    #[test]
    fn boolean_literals() {
        let c = EstimationContext::unknown(1);
        assert_eq!(c.selectivity(&lit(true)), 1.0);
        assert_eq!(c.selectivity(&lit(false)), 0.0);
    }

    use evopt_common::BinOp;
}
