//! Physical plans: the optimizer's output, the executor's input.
//!
//! A [`PhysicalPlan`] is an operator ([`PhysOp`]) plus the annotations the
//! optimizer computed for it: output schema, estimated rows, estimated
//! [`Cost`], and (when known) the sort order its output satisfies. The
//! executor ignores the estimates; the experiment harness compares them
//! against measured truth.

use std::fmt;
use std::ops::Bound;

use evopt_common::{AggFunc, Expr, Schema, Value};

use crate::cost::Cost;

/// Key range for an index scan (bounds on the indexed column).
#[derive(Debug, Clone, PartialEq)]
pub struct KeyRange {
    pub low: Bound<Value>,
    pub high: Bound<Value>,
}

impl KeyRange {
    pub fn all() -> KeyRange {
        KeyRange {
            low: Bound::Unbounded,
            high: Bound::Unbounded,
        }
    }

    pub fn eq(v: Value) -> KeyRange {
        KeyRange {
            low: Bound::Included(v.clone()),
            high: Bound::Included(v),
        }
    }
}

impl fmt::Display for KeyRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.low {
            Bound::Unbounded => write!(f, "(-inf")?,
            Bound::Included(v) => write!(f, "[{v}")?,
            Bound::Excluded(v) => write!(f, "({v}")?,
        }
        f.write_str(", ")?;
        match &self.high {
            Bound::Unbounded => write!(f, "+inf)"),
            Bound::Included(v) => write!(f, "{v}]"),
            Bound::Excluded(v) => write!(f, "{v})"),
        }
    }
}

/// One aggregate computation in a physical aggregate.
#[derive(Debug, Clone, PartialEq)]
pub struct PhysAgg {
    pub func: AggFunc,
    pub arg: Option<Expr>,
}

/// Physical operators. All expressions use the operator's **input** ordinal
/// space (joins: left ++ right).
#[derive(Debug, Clone, PartialEq)]
pub enum PhysOp {
    /// Full heap scan with an optional pushed-down filter.
    SeqScan { table: String, filter: Option<Expr> },
    /// B+-tree driven scan: fetch rids in `range`, then heap lookups, then
    /// the residual filter.
    IndexScan {
        table: String,
        index: String,
        range: KeyRange,
        residual: Option<Expr>,
        clustered: bool,
    },
    Filter {
        input: Box<PhysicalPlan>,
        predicate: Expr,
    },
    Project {
        input: Box<PhysicalPlan>,
        exprs: Vec<Expr>,
    },
    /// Tuple-at-a-time nested loops; the right side is re-opened per outer
    /// row (only used over cheap inners; the optimizer prefers BNL).
    NestedLoopJoin {
        left: Box<PhysicalPlan>,
        right: Box<PhysicalPlan>,
        predicate: Option<Expr>,
    },
    /// Block nested loops: materialise the right side once, stream the left
    /// in blocks of `block_pages` buffer pages.
    BlockNestedLoopJoin {
        left: Box<PhysicalPlan>,
        right: Box<PhysicalPlan>,
        predicate: Option<Expr>,
        block_pages: usize,
    },
    /// For each outer row, probe `index` on the inner base table.
    IndexNestedLoopJoin {
        outer: Box<PhysicalPlan>,
        inner_table: String,
        index: String,
        /// Ordinal in the outer output whose value keys the probe.
        outer_key: usize,
        /// Residual predicate over outer ++ inner.
        residual: Option<Expr>,
    },
    /// Merge join on single equality keys; inputs must arrive sorted.
    SortMergeJoin {
        left: Box<PhysicalPlan>,
        right: Box<PhysicalPlan>,
        left_key: usize,
        right_key: usize,
        residual: Option<Expr>,
    },
    /// Hash join: build on the right input, probe with the left.
    HashJoin {
        left: Box<PhysicalPlan>,
        right: Box<PhysicalPlan>,
        left_key: usize,
        right_key: usize,
        residual: Option<Expr>,
    },
    /// External merge sort.
    Sort {
        input: Box<PhysicalPlan>,
        keys: Vec<(usize, bool)>,
    },
    /// Hash aggregation (no input order required).
    HashAggregate {
        input: Box<PhysicalPlan>,
        group_by: Vec<usize>,
        aggs: Vec<PhysAgg>,
    },
    /// Streaming aggregation over an input already sorted by the group
    /// columns: O(1) state, emits each group as it closes, preserves the
    /// group order. The interesting-orders payoff for GROUP BY.
    SortAggregate {
        input: Box<PhysicalPlan>,
        group_by: Vec<usize>,
        aggs: Vec<PhysAgg>,
    },
    Limit {
        input: Box<PhysicalPlan>,
        limit: usize,
    },
}

/// An annotated physical operator tree.
#[derive(Debug, Clone, PartialEq)]
pub struct PhysicalPlan {
    pub op: PhysOp,
    pub schema: Schema,
    /// Optimizer's row estimate.
    pub est_rows: f64,
    /// Optimizer's cumulative cost estimate (this operator and below).
    pub est_cost: Cost,
    /// Global-ordinal column (see `enumerate`) whose ascending order the
    /// output satisfies, when known. Used for interesting-order reasoning;
    /// `None` after ordinal spaces change (e.g. projections).
    pub output_order: Option<usize>,
}

impl PhysicalPlan {
    pub fn children(&self) -> Vec<&PhysicalPlan> {
        match &self.op {
            PhysOp::SeqScan { .. } | PhysOp::IndexScan { .. } => vec![],
            PhysOp::Filter { input, .. }
            | PhysOp::Project { input, .. }
            | PhysOp::Sort { input, .. }
            | PhysOp::HashAggregate { input, .. }
            | PhysOp::SortAggregate { input, .. }
            | PhysOp::Limit { input, .. } => vec![input],
            PhysOp::IndexNestedLoopJoin { outer, .. } => vec![outer],
            PhysOp::NestedLoopJoin { left, right, .. }
            | PhysOp::BlockNestedLoopJoin { left, right, .. }
            | PhysOp::SortMergeJoin { left, right, .. }
            | PhysOp::HashJoin { left, right, .. } => vec![left, right],
        }
    }

    /// Operator name for EXPLAIN output.
    pub fn op_name(&self) -> &'static str {
        match &self.op {
            PhysOp::SeqScan { .. } => "SeqScan",
            PhysOp::IndexScan { .. } => "IndexScan",
            PhysOp::Filter { .. } => "Filter",
            PhysOp::Project { .. } => "Project",
            PhysOp::NestedLoopJoin { .. } => "NestedLoopJoin",
            PhysOp::BlockNestedLoopJoin { .. } => "BlockNestedLoopJoin",
            PhysOp::IndexNestedLoopJoin { .. } => "IndexNestedLoopJoin",
            PhysOp::SortMergeJoin { .. } => "SortMergeJoin",
            PhysOp::HashJoin { .. } => "HashJoin",
            PhysOp::Sort { .. } => "Sort",
            PhysOp::HashAggregate { .. } => "HashAggregate",
            PhysOp::SortAggregate { .. } => "SortAggregate",
            PhysOp::Limit { .. } => "Limit",
        }
    }

    /// Number of operators in the tree.
    pub fn node_count(&self) -> usize {
        1 + self
            .children()
            .iter()
            .map(|c| c.node_count())
            .sum::<usize>()
    }

    /// All join operators in the tree, pre-order.
    pub fn join_methods(&self) -> Vec<&'static str> {
        let mut out = Vec::new();
        fn walk(p: &PhysicalPlan, out: &mut Vec<&'static str>) {
            match &p.op {
                PhysOp::NestedLoopJoin { .. }
                | PhysOp::BlockNestedLoopJoin { .. }
                | PhysOp::IndexNestedLoopJoin { .. }
                | PhysOp::SortMergeJoin { .. }
                | PhysOp::HashJoin { .. } => out.push(p.op_name()),
                _ => {}
            }
            for c in p.children() {
                walk(c, out);
            }
        }
        walk(self, &mut out);
        out
    }

    /// Base tables scanned, left-to-right (the join order for left-deep
    /// trees).
    pub fn scan_order(&self) -> Vec<String> {
        let mut out = Vec::new();
        fn walk(p: &PhysicalPlan, out: &mut Vec<String>) {
            match &p.op {
                PhysOp::SeqScan { table, .. } | PhysOp::IndexScan { table, .. } => {
                    out.push(table.clone());
                }
                PhysOp::IndexNestedLoopJoin {
                    outer, inner_table, ..
                } => {
                    walk(outer, out);
                    out.push(inner_table.clone());
                }
                _ => {
                    for c in p.children() {
                        walk(c, out);
                    }
                }
            }
        }
        walk(self, &mut out);
        out
    }

    /// All nodes of the tree in pre-order, each with its depth. Index `i` of
    /// this list is the node's *pre-order id* — the correlation key between
    /// plan nodes and runtime metrics (`evopt_exec` instruments operators in
    /// the same order).
    pub fn pre_order(&self) -> Vec<(usize, &PhysicalPlan)> {
        let mut out = Vec::with_capacity(self.node_count());
        fn walk<'p>(p: &'p PhysicalPlan, depth: usize, out: &mut Vec<(usize, &'p PhysicalPlan)>) {
            out.push((depth, p));
            for c in p.children() {
                walk(c, depth + 1, out);
            }
        }
        walk(self, 0, &mut out);
        out
    }

    /// Stable digest of the plan's *shape*: every operator's detail line,
    /// hashed in pre-order. Two plans with the same operators, tables,
    /// predicates and structure share a digest; estimates don't contribute.
    /// This is the correlation key between the query log, `EXPLAIN ANALYZE`
    /// and `EXPLAIN TRACE` output for one query.
    pub fn digest(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        for (depth, node) in self.pre_order() {
            depth.hash(&mut h);
            node.op_detail().hash(&mut h);
        }
        h.finish()
    }

    /// [`PhysicalPlan::digest`] as the fixed-width hex string the query log
    /// and EXPLAIN surfaces print.
    pub fn digest_hex(&self) -> String {
        format!("{:016x}", self.digest())
    }

    /// One-line operator description (the EXPLAIN line minus estimates).
    pub fn op_detail(&self) -> String {
        let p = self;
        match &p.op {
            PhysOp::SeqScan { table, filter } => match filter {
                Some(f) => format!("SeqScan: {table} filter={f}"),
                None => format!("SeqScan: {table}"),
            },
            PhysOp::IndexScan {
                table,
                index,
                range,
                residual,
                clustered,
            } => {
                let c = if *clustered { " clustered" } else { "" };
                let r = residual
                    .as_ref()
                    .map(|e| format!(" residual={e}"))
                    .unwrap_or_default();
                format!("IndexScan: {table} via {index}{c} range={range}{r}")
            }
            PhysOp::Filter { predicate, .. } => format!("Filter: {predicate}"),
            PhysOp::Project { exprs, .. } => {
                let list: Vec<String> = exprs.iter().map(|e| e.to_string()).collect();
                format!("Project: {}", list.join(", "))
            }
            PhysOp::NestedLoopJoin { predicate, .. } => match predicate {
                Some(e) => format!("NestedLoopJoin: {e}"),
                None => "NestedLoopJoin: cross".to_string(),
            },
            PhysOp::BlockNestedLoopJoin {
                predicate,
                block_pages,
                ..
            } => match predicate {
                Some(e) => format!("BlockNestedLoopJoin(B={block_pages}): {e}"),
                None => format!("BlockNestedLoopJoin(B={block_pages}): cross"),
            },
            PhysOp::IndexNestedLoopJoin {
                inner_table,
                index,
                outer_key,
                ..
            } => format!("IndexNestedLoopJoin: probe {inner_table}.{index} with #{outer_key}"),
            PhysOp::SortMergeJoin {
                left_key,
                right_key,
                ..
            } => format!("SortMergeJoin: #{left_key} = #{right_key}"),
            PhysOp::HashJoin {
                left_key,
                right_key,
                ..
            } => format!("HashJoin: #{left_key} = #{right_key}"),
            PhysOp::Sort { keys, .. } => {
                let list: Vec<String> = keys
                    .iter()
                    .map(|(c, asc)| format!("#{c}{}", if *asc { "" } else { " DESC" }))
                    .collect();
                format!("Sort: {}", list.join(", "))
            }
            PhysOp::HashAggregate { group_by, aggs, .. }
            | PhysOp::SortAggregate { group_by, aggs, .. } => {
                let alist: Vec<String> = aggs
                    .iter()
                    .map(|a| match &a.arg {
                        Some(e) => format!("{}({e})", a.func),
                        None => a.func.to_string(),
                    })
                    .collect();
                format!(
                    "{}: group_by={group_by:?} aggs=[{}]",
                    p.op_name(),
                    alist.join(", ")
                )
            }
            PhysOp::Limit { limit, .. } => format!("Limit: {limit}"),
        }
    }

    /// EXPLAIN-style indented rendering with estimates.
    pub fn display_indent(&self) -> String {
        let mut s = String::new();
        for (depth, p) in self.pre_order() {
            for _ in 0..depth {
                s.push_str("  ");
            }
            s.push_str(&format!(
                "{}  (rows={:.0}, cost={:.1})\n",
                p.op_detail(),
                p.est_rows,
                p.est_cost.io + p.est_cost.cpu
            ));
        }
        s
    }
}

impl fmt::Display for PhysicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.display_indent())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evopt_common::{Column, DataType};

    fn leaf(table: &str) -> PhysicalPlan {
        PhysicalPlan {
            op: PhysOp::SeqScan {
                table: table.into(),
                filter: None,
            },
            schema: Schema::new(vec![Column::new("a", DataType::Int).with_table(table)]),
            est_rows: 100.0,
            est_cost: Cost {
                io: 10.0,
                cpu: 100.0,
            },
            output_order: None,
        }
    }

    #[test]
    fn tree_introspection() {
        let join = PhysicalPlan {
            schema: leaf("t").schema.join(&leaf("u").schema),
            op: PhysOp::HashJoin {
                left: Box::new(leaf("t")),
                right: Box::new(leaf("u")),
                left_key: 0,
                right_key: 0,
                residual: None,
            },
            est_rows: 100.0,
            est_cost: Cost {
                io: 20.0,
                cpu: 400.0,
            },
            output_order: None,
        };
        assert_eq!(join.node_count(), 3);
        assert_eq!(join.join_methods(), vec!["HashJoin"]);
        assert_eq!(join.scan_order(), vec!["t", "u"]);
        let text = join.display_indent();
        assert!(text.contains("HashJoin: #0 = #0"));
        assert!(text.contains("  SeqScan: t"));
    }

    #[test]
    fn inl_scan_order_includes_inner_table() {
        let inl = PhysicalPlan {
            schema: leaf("t").schema.clone(),
            op: PhysOp::IndexNestedLoopJoin {
                outer: Box::new(leaf("t")),
                inner_table: "u".into(),
                index: "u_idx".into(),
                outer_key: 0,
                residual: None,
            },
            est_rows: 50.0,
            est_cost: Cost::ZERO,
            output_order: None,
        };
        assert_eq!(inl.scan_order(), vec!["t", "u"]);
        assert_eq!(inl.join_methods(), vec!["IndexNestedLoopJoin"]);
    }

    #[test]
    fn key_range_display() {
        assert_eq!(KeyRange::all().to_string(), "(-inf, +inf)");
        assert_eq!(KeyRange::eq(Value::Int(5)).to_string(), "[5, 5]");
        let r = KeyRange {
            low: Bound::Excluded(Value::Int(1)),
            high: Bound::Included(Value::Int(9)),
        };
        assert_eq!(r.to_string(), "(1, 9]");
    }
}
