//! Bushy dynamic programming: exhaustive over all tree shapes.
//!
//! For every subset, every partition into two non-empty halves is tried
//! (each counted once via the lowest-bit convention), so bushy trees —
//! e.g. `(a ⋈ b) ⋈ (c ⋈ d)` — are reachable. Strictly more general than
//! left-deep DP, and strictly more expensive: the partition count is
//! 3^n-ish versus n·2^n. Experiment F1 measures exactly that gap.

use evopt_common::Result;

use super::{JoinContext, PlanTable, SubPlan};

pub fn run(ctx: &JoinContext) -> Result<SubPlan> {
    let n = ctx.rels.len();
    let all = ctx.graph.all_mask();
    let mut table = PlanTable::new();

    let mut level_started = std::time::Instant::now();
    for r in 0..n {
        for sp in ctx.base_subplans(r) {
            ctx.admit(&mut table, sp);
        }
    }
    ctx.trace_level(1, table.len(), level_started);

    for size in 2..=n as u32 {
        level_started = std::time::Instant::now();
        for mask in 1..=all {
            if mask.count_ones() != size {
                continue;
            }
            let low = 1u64 << mask.trailing_zeros();
            // Does any partition have a connecting predicate?
            let mut has_connected = false;
            let mut sub = (mask - 1) & mask;
            while sub != 0 {
                if sub & low != 0 && ctx.is_connected(sub, mask ^ sub) {
                    has_connected = true;
                    break;
                }
                sub = (sub - 1) & mask;
            }
            // Enumerate partitions (sub ∋ lowest bit ⇒ each pair once).
            let mut sub = (mask - 1) & mask;
            while sub != 0 {
                if sub & low != 0 {
                    let other = mask ^ sub;
                    let connected = ctx.is_connected(sub, other);
                    if !has_connected || connected {
                        for l in table.plans_for_cloned(sub) {
                            for r in table.plans_for_cloned(other) {
                                for cand in ctx.join_candidates(&l, &r, !connected)? {
                                    ctx.admit(&mut table, cand);
                                }
                                for cand in ctx.join_candidates(&r, &l, !connected)? {
                                    ctx.admit(&mut table, cand);
                                }
                            }
                        }
                    }
                }
                sub = (sub - 1) & mask;
            }
        }
        ctx.trace_level(size, table.len(), level_started);
    }

    ctx.trace_memo(table.len());
    ctx.pick_final(table.plans_for_cloned(all))
}

#[cfg(test)]
mod tests {
    use crate::enumerate::fixtures::{build, chain3, RelSpec};
    use crate::enumerate::{enumerate, Strategy};

    #[test]
    fn matches_or_beats_left_deep() {
        let f = chain3();
        let ctx = f.ctx();
        let bushy = enumerate(&ctx, Strategy::BushyDp).unwrap();
        let leftdeep = enumerate(&ctx, Strategy::SystemR).unwrap();
        assert!(
            ctx.model.total(bushy.cost) <= ctx.model.total(leftdeep.cost) + 1e-6,
            "bushy {} > left-deep {}",
            ctx.model.total(bushy.cost),
            ctx.model.total(leftdeep.cost)
        );
    }

    #[test]
    fn finds_bushy_shape_when_it_wins() {
        // Two heavy chains meeting in the middle: a(10k)—b(10) and
        // c(10)—d(10k), linked b—c. Joining the two small middles first on
        // each side (bushy) beats any left-deep order... at minimum bushy
        // must still cover everything and cost no more than left-deep.
        let f = build(
            &[
                RelSpec {
                    name: "a",
                    rows: 10_000.0,
                    ndv: [10_000, 10],
                    indexed: false,
                },
                RelSpec {
                    name: "b",
                    rows: 10.0,
                    ndv: [10, 10],
                    indexed: false,
                },
                RelSpec {
                    name: "c",
                    rows: 10.0,
                    ndv: [10, 10],
                    indexed: false,
                },
                RelSpec {
                    name: "d",
                    rows: 10_000.0,
                    ndv: [10_000, 10],
                    indexed: false,
                },
            ],
            // a.c1=b.c0, b.c1=c.c0, c.c1=d.c1
            &[(0, 1, 1, 0), (1, 1, 2, 0), (2, 1, 3, 1)],
        );
        let ctx = f.ctx();
        let bushy = enumerate(&ctx, Strategy::BushyDp).unwrap();
        let leftdeep = enumerate(&ctx, Strategy::SystemR).unwrap();
        assert_eq!(bushy.mask, ctx.graph.all_mask());
        assert!(ctx.model.total(bushy.cost) <= ctx.model.total(leftdeep.cost) + 1e-6);
    }

    #[test]
    fn two_relations_degenerate_to_single_join() {
        let f = build(
            &[
                RelSpec {
                    name: "a",
                    rows: 100.0,
                    ndv: [100, 10],
                    indexed: false,
                },
                RelSpec {
                    name: "b",
                    rows: 100.0,
                    ndv: [100, 10],
                    indexed: false,
                },
            ],
            &[(0, 0, 1, 0)],
        );
        let plan = enumerate(&f.ctx(), Strategy::BushyDp).unwrap();
        assert_eq!(plan.plan.join_methods().len(), 1);
    }
}
