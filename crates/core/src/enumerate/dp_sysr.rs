//! System R dynamic programming: optimal left-deep trees with interesting
//! orders and deferred cross products.
//!
//! `best(S)` for every relation subset `S` is built by extending every
//! `best(S \ {r})` with relation `r` as the inner (right) input. Plans are
//! kept per `(subset, produced order)` equivalence class, so a costlier plan
//! that delivers a useful sort order survives to compete where the order
//! pays off (a merge join above, or the query's ORDER BY). Cartesian
//! products are considered only for subsets with no connected split.

use evopt_common::Result;

use super::{JoinContext, PlanTable, SubPlan};

pub fn run(ctx: &JoinContext) -> Result<SubPlan> {
    let n = ctx.rels.len();
    let all = ctx.graph.all_mask();
    let mut table = PlanTable::new();

    let mut level_started = std::time::Instant::now();
    for r in 0..n {
        for sp in ctx.base_subplans(r) {
            ctx.admit(&mut table, sp);
        }
    }
    ctx.trace_level(1, table.len(), level_started);

    for size in 2..=n as u32 {
        level_started = std::time::Instant::now();
        for mask in 1..=all {
            if mask.count_ones() != size {
                continue;
            }
            // Deferred cross products: if any split (S \ r, r) is connected,
            // only connected splits are considered.
            let rels: Vec<usize> = (0..n).filter(|&r| mask & (1u64 << r) != 0).collect();
            let has_connected = rels
                .iter()
                .any(|&r| ctx.is_connected(mask ^ (1u64 << r), 1u64 << r));
            for &r in &rels {
                let rbit = 1u64 << r;
                let left_mask = mask ^ rbit;
                let connected = ctx.is_connected(left_mask, rbit);
                if has_connected && !connected {
                    continue;
                }
                for left in table.plans_for_cloned(left_mask) {
                    for right in ctx.base_subplans(r) {
                        for cand in ctx.join_candidates(&left, &right, !connected)? {
                            ctx.admit(&mut table, cand);
                        }
                    }
                }
            }
        }
        ctx.trace_level(size, table.len(), level_started);
    }

    ctx.trace_memo(table.len());
    ctx.pick_final(table.plans_for_cloned(all))
}

#[cfg(test)]
mod tests {
    use crate::enumerate::fixtures::{build, chain3, star4, RelSpec};
    use crate::enumerate::{enumerate, Strategy};

    #[test]
    fn covers_all_relations() {
        let f = chain3();
        let ctx = f.ctx();
        let plan = enumerate(&ctx, Strategy::SystemR).unwrap();
        assert_eq!(plan.mask, ctx.graph.all_mask());
        let order = plan.plan.scan_order();
        assert_eq!(order.len(), 3);
    }

    #[test]
    fn chain_joins_small_relations_first() {
        // t(1k) — u(10k) — v(100k): the optimal left-deep order starts from
        // the small end, never from v.
        let f = chain3();
        let plan = enumerate(&f.ctx(), Strategy::SystemR).unwrap();
        let order = plan.plan.scan_order();
        assert_ne!(order[0], "v", "plan:\n{}", plan.plan);
    }

    #[test]
    fn star_avoids_cartesian_when_connected() {
        let f = star4();
        let plan = enumerate(&f.ctx(), Strategy::SystemR).unwrap();
        // The fact table joins each dimension directly; with deferred cross
        // products the plan contains no cross join (every join has a
        // predicate or key).
        fn no_pure_cross(p: &crate::physical::PhysicalPlan) -> bool {
            use crate::physical::PhysOp;
            let ok = match &p.op {
                PhysOp::BlockNestedLoopJoin { predicate, .. }
                | PhysOp::NestedLoopJoin { predicate, .. } => predicate.is_some(),
                _ => true,
            };
            ok && p.children().iter().all(|c| no_pure_cross(c))
        }
        assert!(no_pure_cross(&plan.plan), "plan:\n{}", plan.plan);
    }

    #[test]
    fn disconnected_graph_still_plans_via_cross() {
        let f = build(
            &[
                RelSpec {
                    name: "a",
                    rows: 10.0,
                    ndv: [10, 10],
                    indexed: false,
                },
                RelSpec {
                    name: "b",
                    rows: 20.0,
                    ndv: [20, 20],
                    indexed: false,
                },
            ],
            &[], // no edges: forced cartesian
        );
        let plan = enumerate(&f.ctx(), Strategy::SystemR).unwrap();
        assert_eq!(plan.mask, 0b11);
        assert!((plan.rows - 200.0).abs() < 1.0);
    }

    #[test]
    fn required_order_prefers_order_producing_plan_or_sorts() {
        let f = chain3();
        let mut ctx = f.ctx();
        ctx.required_order = Some(4); // v.c0 (indexed on v)
        let plan = enumerate(&ctx, Strategy::SystemR).unwrap();
        assert_eq!(plan.order, Some(4));
    }

    #[test]
    fn interesting_orders_never_hurt() {
        // With order tracking off the final cost can only be >= (it's a
        // strict subset of the tracked search space) for an ordered query.
        let f = chain3();
        let mut with = f.ctx();
        with.required_order = Some(0);
        let mut without = f.ctx();
        without.required_order = Some(0);
        without.track_orders = false;
        let p_with = enumerate(&with, Strategy::SystemR).unwrap();
        let p_without = enumerate(&without, Strategy::SystemR).unwrap();
        assert!(
            with.model.total(p_with.cost) <= without.model.total(p_without.cost) + 1e-6,
            "tracked {} > untracked {}",
            with.model.total(p_with.cost),
            without.model.total(p_without.cost)
        );
    }

    #[test]
    fn two_relation_join() {
        let f = build(
            &[
                RelSpec {
                    name: "a",
                    rows: 1000.0,
                    ndv: [1000, 100],
                    indexed: false,
                },
                RelSpec {
                    name: "b",
                    rows: 1000.0,
                    ndv: [1000, 100],
                    indexed: false,
                },
            ],
            &[(0, 0, 1, 0)],
        );
        let plan = enumerate(&f.ctx(), Strategy::SystemR).unwrap();
        assert_eq!(plan.mask, 0b11);
        // |a ⋈ b| on ndv-1000 keys ≈ 1000.
        assert!((plan.rows - 1000.0).abs() / 1000.0 < 0.01);
    }
}
