//! Greedy Operator Ordering (GOO).
//!
//! Unlike left-deep greedy, GOO maintains a *forest* of subplans and
//! repeatedly merges the pair whose join result is smallest — so it can
//! produce bushy shapes that left-deep greedy cannot. Still polynomial
//! (O(n³) pair evaluations), still heuristic.

use evopt_common::{EvoptError, Result};
use evopt_obs::PruneReason;

use super::{JoinContext, SubPlan};

pub fn run(ctx: &JoinContext) -> Result<SubPlan> {
    let n = ctx.rels.len();
    let mut forest: Vec<SubPlan> = (0..n)
        .map(|r| ctx.cheapest_base(r))
        .collect::<Result<_>>()?;

    while forest.len() > 1 {
        let any_connected =
            pairs(forest.len()).any(|(i, j)| ctx.is_connected(forest[i].mask, forest[j].mask));
        let mut best: Option<(usize, usize, SubPlan)> = None;
        for (i, j) in pairs(forest.len()) {
            let connected = ctx.is_connected(forest[i].mask, forest[j].mask);
            if any_connected && !connected {
                continue;
            }
            for (a, b) in [(i, j), (j, i)] {
                for cand in ctx.join_candidates(&forest[a], &forest[b], !connected)? {
                    ctx.trace_consider(&cand);
                    let better = match &best {
                        None => true,
                        Some((_, _, cur)) => {
                            (cand.rows, ctx.model.total(cand.cost))
                                < (cur.rows, ctx.model.total(cur.cost))
                        }
                    };
                    if better {
                        if let Some((_, _, prev)) = best.take() {
                            ctx.trace_prune(&prev, PruneReason::NotChosen);
                        }
                        best = Some((i, j, cand));
                    } else {
                        ctx.trace_prune(&cand, PruneReason::NotChosen);
                    }
                }
            }
        }
        let (i, j, merged) = best.ok_or_else(|| {
            EvoptError::Internal("goo: no join candidate (cross join should be a fallback)".into())
        })?;
        // Remove the higher index first to keep the lower index valid.
        let (hi, lo) = (i.max(j), i.min(j));
        forest.swap_remove(hi);
        forest.swap_remove(lo);
        forest.push(merged);
    }

    let last = forest
        .pop()
        .ok_or_else(|| EvoptError::Plan("goo: no relations to enumerate".into()))?;
    ctx.pick_final(vec![last])
}

fn pairs(n: usize) -> impl Iterator<Item = (usize, usize)> {
    (0..n).flat_map(move |i| ((i + 1)..n).map(move |j| (i, j)))
}

#[cfg(test)]
mod tests {
    use crate::enumerate::fixtures::{chain3, star4};
    use crate::enumerate::{enumerate, Strategy};

    #[test]
    fn covers_all_relations() {
        let f = star4();
        let plan = enumerate(&f.ctx(), Strategy::Goo).unwrap();
        assert_eq!(plan.mask, f.ctx().graph.all_mask());
        assert_eq!(plan.plan.scan_order().len(), 4);
    }

    #[test]
    fn bushy_dp_never_loses_to_goo() {
        for f in [chain3(), star4()] {
            let ctx = f.ctx();
            let dp = enumerate(&ctx, Strategy::BushyDp).unwrap();
            let goo = enumerate(&ctx, Strategy::Goo).unwrap();
            assert!(
                ctx.model.total(dp.cost) <= ctx.model.total(goo.cost) + 1e-6,
                "bushy dp {} > goo {}",
                ctx.model.total(dp.cost),
                ctx.model.total(goo.cost)
            );
        }
    }
}
