//! Join-order enumeration.
//!
//! All strategies share one plan space, defined here:
//!
//! * a [`SubPlan`] is a costed physical plan covering a subset of the join
//!   graph's relations (a [`RelMask`]), carrying the map from *global*
//!   column ordinals to its output positions and the order it produces;
//! * [`JoinContext::base_subplans`] turns access-path choices into leaf
//!   subplans;
//! * [`JoinContext::join_candidates`] combines two subplans with every
//!   applicable join method (NL, block-NL, index-NL, sort-merge, hash),
//!   applying exactly the predicates that first become evaluable at that
//!   join.
//!
//! The strategies ([`Strategy`]) then differ only in *which* combinations
//! they explore: exhaustive left-deep DP with interesting orders (System R),
//! exhaustive bushy DP, greedy left-deep, greedy operator ordering, random
//! sampling, or the unoptimized syntactic baseline.

pub mod dp_bushy;
pub mod dp_ccp;
pub mod dp_sysr;
pub mod goo;
pub mod greedy;
pub mod quickpick;
pub mod syntactic;

use std::collections::BTreeMap;
use std::time::Instant;

use evopt_common::{EvoptError, Expr, Result};
use evopt_obs::{PruneReason, TraceSink};
use evopt_plan::join_graph::{JoinGraph, RelMask};

use crate::access_path::{IndexMeta, PathChoice, PathKind};
use crate::cost::{Cost, CostModel};
use crate::physical::{PhysOp, PhysicalPlan};
use crate::selectivity::EstimationContext;

/// Usable bytes per page when estimating materialised sizes.
const USABLE_PAGE_BYTES: f64 = 4084.0;

/// Which enumeration algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// System R: dynamic programming over left-deep trees with interesting
    /// orders and deferred cross products. The default.
    SystemR,
    /// Dynamic programming over all bushy trees (naive partition
    /// enumeration, O(3ⁿ)).
    BushyDp,
    /// Bushy DP via connected-subgraph/complement-pair enumeration
    /// (DPccp): identical plan space and optimum, enumeration effort
    /// proportional to the number of *connected* pairs.
    DpCcp,
    /// Left-deep greedy: repeatedly join in the neighbour producing the
    /// smallest intermediate result.
    Greedy,
    /// Greedy operator ordering: repeatedly merge the *pair* of subplans
    /// with the smallest join result (produces bushy trees).
    Goo,
    /// Sample `samples` random join orders, keep the cheapest.
    QuickPick { samples: usize, seed: u64 },
    /// No optimization: syntactic order, sequential scans, block nested
    /// loops. The 1977 "unoptimized" baseline.
    Syntactic,
}

impl Strategy {
    pub fn name(&self) -> &'static str {
        match self {
            Strategy::SystemR => "system-r",
            Strategy::BushyDp => "bushy-dp",
            Strategy::DpCcp => "dpccp",
            Strategy::Greedy => "greedy",
            Strategy::Goo => "goo",
            Strategy::QuickPick { .. } => "quickpick",
            Strategy::Syntactic => "syntactic",
        }
    }
}

/// One relation of the join graph, with everything the enumerator needs.
#[derive(Debug, Clone)]
pub struct BaseRel {
    /// Base-table name (`None` for opaque leaves like aggregates-in-FROM).
    pub table: Option<String>,
    /// Rows before local predicates.
    pub rows_raw: f64,
    /// Heap pages.
    pub pages_raw: f64,
    /// Mean tuple bytes.
    pub width: f64,
    /// Combined selectivity of the relation's local predicates.
    pub local_sel: f64,
    /// Local predicates in **global** ordinals (for index-NL residuals).
    pub local_preds_global: Vec<Expr>,
    /// Access-path candidates (table-local ordinals).
    pub paths: Vec<PathChoice>,
    /// Indexes (table-local column ordinals), for index nested loops.
    pub indexes: Vec<IndexMeta>,
    /// Pre-built physical plan for opaque leaves.
    pub opaque_plan: Option<PhysicalPlan>,
}

/// Shared state for one enumeration run.
pub struct JoinContext<'a> {
    pub graph: &'a JoinGraph,
    /// Global-ordinal statistics.
    pub est: &'a EstimationContext,
    pub model: &'a CostModel,
    pub rels: Vec<BaseRel>,
    /// Global ordinal the final output should be ordered by, if any.
    pub required_order: Option<usize>,
    /// When false, produced orders are discarded (ablation for F3).
    pub track_orders: bool,
    /// Search-trace sink; `None` disables all recording.
    pub trace: Option<&'a TraceSink>,
}

/// A costed plan covering `mask`'s relations.
#[derive(Debug, Clone)]
pub struct SubPlan {
    pub mask: RelMask,
    pub plan: PhysicalPlan,
    pub rows: f64,
    pub width: f64,
    pub cost: Cost,
    /// Global ordinal → position in this plan's output (None if absent —
    /// never happens today since leaves keep full schemas).
    pub col_map: Vec<Option<usize>>,
    /// Global ordinal whose ascending order the output satisfies.
    pub order: Option<usize>,
}

impl SubPlan {
    /// Estimated materialised size in pages.
    pub fn pages(&self) -> f64 {
        ((self.rows * self.width) / USABLE_PAGE_BYTES)
            .ceil()
            .max(1.0)
    }
}

impl<'a> JoinContext<'a> {
    /// Total number of global columns.
    pub fn total_cols(&self) -> usize {
        self.graph.offsets.last().map_or(0, |&o| o)
            + self.graph.schemas.last().map_or(0, |s| s.len())
    }

    fn bit(r: usize) -> RelMask {
        1u64 << r
    }

    /// Leaf subplans for relation `r`, one per surviving access path.
    pub fn base_subplans(&self, r: usize) -> Vec<SubPlan> {
        let rel = &self.rels[r];
        let offset = self.graph.offsets[r];
        let schema = self.graph.schemas[r].clone();
        let ncols = schema.len();
        let total = self.total_cols();
        let mut col_map = vec![None; total];
        for i in 0..ncols {
            col_map[offset + i] = Some(i);
        }
        if let Some(plan) = &rel.opaque_plan {
            return vec![SubPlan {
                mask: Self::bit(r),
                rows: plan.est_rows,
                width: rel.width,
                cost: plan.est_cost,
                plan: plan.clone(),
                col_map,
                order: None,
            }];
        }
        // A non-opaque leaf always names a table; if that invariant ever
        // breaks, return no paths and let the caller surface the error.
        let Some(table) = rel.table.clone() else {
            return Vec::new();
        };
        rel.paths
            .iter()
            .map(|p| {
                let op = match &p.kind {
                    PathKind::SeqScan { filter } => PhysOp::SeqScan {
                        table: table.clone(),
                        filter: filter.clone(),
                    },
                    PathKind::IndexScan {
                        index,
                        range,
                        residual,
                        clustered,
                    } => PhysOp::IndexScan {
                        table: table.clone(),
                        index: index.clone(),
                        range: range.clone(),
                        residual: residual.clone(),
                        clustered: *clustered,
                    },
                };
                let order = if self.track_orders {
                    p.order.map(|c| c + offset)
                } else {
                    None
                };
                SubPlan {
                    mask: Self::bit(r),
                    plan: PhysicalPlan {
                        op,
                        schema: schema.clone(),
                        est_rows: p.rows,
                        est_cost: p.cost,
                        output_order: order,
                    },
                    rows: p.rows,
                    width: rel.width,
                    cost: p.cost,
                    col_map: col_map.clone(),
                    order,
                }
            })
            .collect()
    }

    /// The cheapest leaf subplan for `r` (by total cost).
    pub fn cheapest_base(&self, r: usize) -> Result<SubPlan> {
        self.base_subplans(r)
            .into_iter()
            .min_by(|a, b| {
                self.model
                    .total(a.cost)
                    .total_cmp(&self.model.total(b.cost))
            })
            .ok_or_else(|| EvoptError::Internal(format!("relation {r} has no access path")))
    }

    /// The sequential-scan leaf for `r` (the baseline's only choice).
    pub fn seq_base(&self, r: usize) -> Result<SubPlan> {
        self.base_subplans(r)
            .into_iter()
            .find(|sp| {
                matches!(sp.plan.op, PhysOp::SeqScan { .. }) || self.rels[r].opaque_plan.is_some()
            })
            .ok_or_else(|| EvoptError::Internal(format!("relation {r} has no seq-scan path")))
    }

    /// Remap a global-ordinal expression into `col_map`-local ordinals.
    fn remap(&self, e: &Expr, col_map: &[Option<usize>]) -> Result<Expr> {
        e.try_remap_columns(&|g| col_map.get(g).copied().flatten())
            .map_err(|_| {
                EvoptError::Plan(format!(
                    "predicate {e} references a column outside the joined subset"
                ))
            })
    }

    /// All join methods applicable to `left ⋈ right`. Empty when the pair is
    /// unconnected and `allow_cross` is false.
    pub fn join_candidates(
        &self,
        left: &SubPlan,
        right: &SubPlan,
        allow_cross: bool,
    ) -> Result<Vec<SubPlan>> {
        debug_assert_eq!(left.mask & right.mask, 0, "overlapping subplans");
        let preds = self.graph.join_predicates(left.mask, right.mask);
        if preds.is_empty() && !allow_cross {
            return Ok(vec![]);
        }
        let sel: f64 = preds
            .iter()
            .map(|p| self.est.selectivity(&p.expr))
            .product();
        let out_rows = (left.rows * right.rows * sel).max(1e-6);
        let out_width = left.width + right.width;
        let mask = left.mask | right.mask;
        let left_cols = left.plan.schema.len();
        // Combined global→local map.
        let mut col_map = vec![None; self.total_cols()];
        for (g, pos) in left.col_map.iter().enumerate() {
            col_map[g] = *pos;
        }
        for (g, pos) in right.col_map.iter().enumerate() {
            if let Some(p) = pos {
                col_map[g] = Some(left_cols + p);
            }
        }
        let schema = left.plan.schema.join(&right.plan.schema);

        // Pick the first usable equi-join predicate as the physical key.
        let mut key: Option<(usize, usize)> = None; // (global left col, global right col)
        for p in &preds {
            if let Some((a, b)) = p.as_equi_join() {
                if left.col_map[a].is_some() && right.col_map[b].is_some() {
                    key = Some((a, b));
                    break;
                }
                if left.col_map[b].is_some() && right.col_map[a].is_some() {
                    key = Some((b, a));
                    break;
                }
            }
        }

        let all_pred: Option<Expr> = if preds.is_empty() {
            None
        } else {
            Some(self.remap(
                &Expr::conjunction(preds.iter().map(|p| p.expr.clone()).collect()),
                &col_map,
            )?)
        };
        // Residual = every predicate except the keyed equi-join.
        let residual: Option<Expr> = {
            let rest: Vec<Expr> = preds
                .iter()
                .filter(|p| match (key, p.as_equi_join()) {
                    (Some((a, b)), Some((x, y))) => !(x == a.min(b) && y == a.max(b)),
                    _ => true,
                })
                .map(|p| p.expr.clone())
                .collect();
            if rest.is_empty() {
                None
            } else {
                Some(self.remap(&Expr::conjunction(rest), &col_map)?)
            }
        };

        let mut out = Vec::new();
        let mk = |op: PhysOp, cost: Cost, order: Option<usize>| SubPlan {
            mask,
            plan: PhysicalPlan {
                op,
                schema: schema.clone(),
                est_rows: out_rows,
                est_cost: cost,
                output_order: if self.track_orders { order } else { None },
            },
            rows: out_rows,
            width: out_width,
            cost,
            col_map: col_map.clone(),
            order: if self.track_orders { order } else { None },
        };

        // Block nested loops: always applicable. Does NOT preserve the
        // outer order (the executor loops inner-tuple-over-block).
        let bnl_cost = left.cost
            + right.cost
            + self
                .model
                .bnl_join(left.rows, left.pages(), right.rows, right.pages());
        out.push(mk(
            PhysOp::BlockNestedLoopJoin {
                left: Box::new(left.plan.clone()),
                right: Box::new(right.plan.clone()),
                predicate: all_pred.clone(),
                block_pages: self.model.buffer_pages,
            },
            bnl_cost,
            None,
        ));

        // Tuple nested loops: right side re-run per outer row; only offered
        // when the right side is a single relation (re-running a deep tree
        // is never competitive and bloats the search).
        if right.mask.count_ones() == 1 {
            let nl_cost = left.cost + self.model.nl_join(left.rows, right.cost, right.rows);
            out.push(mk(
                PhysOp::NestedLoopJoin {
                    left: Box::new(left.plan.clone()),
                    right: Box::new(right.plan.clone()),
                    predicate: all_pred.clone(),
                },
                nl_cost,
                left.order,
            ));
        }

        if let Some((ga, gb)) = key {
            let missing_key =
                |side: &str| EvoptError::Internal(format!("join key missing from {side} col_map"));
            let lk = left
                .col_map
                .get(ga)
                .copied()
                .flatten()
                .ok_or_else(|| missing_key("left"))?;
            let rk = right
                .col_map
                .get(gb)
                .copied()
                .flatten()
                .ok_or_else(|| missing_key("right"))?;

            // Hash join (build right, probe left; probe order preserved).
            let hj_cost = left.cost
                + right.cost
                + self
                    .model
                    .hash_join(left.rows, left.pages(), right.rows, right.pages());
            out.push(mk(
                PhysOp::HashJoin {
                    left: Box::new(left.plan.clone()),
                    right: Box::new(right.plan.clone()),
                    left_key: lk,
                    right_key: rk,
                    residual: residual.clone(),
                },
                hj_cost,
                left.order,
            ));

            // Sort-merge join: sort whichever inputs aren't already ordered.
            let (lplan, lsort) = self.sorted_input(left, ga)?;
            let (rplan, rsort) = self.sorted_input(right, gb)?;
            let smj_cost = left.cost
                + right.cost
                + lsort
                + rsort
                + self.model.merge_join(left.rows, right.rows);
            out.push(mk(
                PhysOp::SortMergeJoin {
                    left: Box::new(lplan),
                    right: Box::new(rplan),
                    left_key: lk,
                    right_key: rk,
                    residual: residual.clone(),
                },
                smj_cost,
                Some(ga),
            ));

            // Index nested loops: right must be one base relation with an
            // index on the join column.
            if right.mask.count_ones() == 1 {
                let r_idx = right.mask.trailing_zeros() as usize;
                let rel = &self.rels[r_idx];
                if let Some(table) = &rel.table {
                    let local_col = gb - self.graph.offsets[r_idx];
                    for idx in rel.indexes.iter().filter(|i| i.column == local_col) {
                        let probe_sel = self.est.join_eq_selectivity(ga, gb);
                        let matches_per_probe = rel.rows_raw * probe_sel;
                        let inl_cost = left.cost
                            + self.model.inl_join(
                                left.rows,
                                idx.height,
                                matches_per_probe,
                                idx.clustered,
                                rel.pages_raw,
                                rel.rows_raw,
                            );
                        // Residual: non-key join predicates + the inner's
                        // local predicates (the probe bypasses access paths).
                        let mut resid = preds
                            .iter()
                            .filter(|p| p.as_equi_join() != Some((ga.min(gb), ga.max(gb))))
                            .map(|p| p.expr.clone())
                            .collect::<Vec<_>>();
                        resid.extend(rel.local_preds_global.iter().cloned());
                        let resid = if resid.is_empty() {
                            None
                        } else {
                            Some(self.remap(&Expr::conjunction(resid), &col_map)?)
                        };
                        out.push(mk(
                            PhysOp::IndexNestedLoopJoin {
                                outer: Box::new(left.plan.clone()),
                                inner_table: table.clone(),
                                index: idx.name.clone(),
                                outer_key: lk,
                                residual: resid,
                            },
                            inl_cost,
                            left.order,
                        ));
                    }
                }
            }
        }
        Ok(out)
    }

    /// Local ordinal of global column `g` in `sp`, or a structured error.
    fn local_key(sp: &SubPlan, g: usize) -> Result<usize> {
        sp.col_map.get(g).copied().flatten().ok_or_else(|| {
            EvoptError::Internal(format!("sort key column {g} missing from col_map"))
        })
    }

    /// `(plan, extra sort cost)` for using `sp` as a merge-join input keyed
    /// on global column `g`.
    fn sorted_input(&self, sp: &SubPlan, g: usize) -> Result<(PhysicalPlan, Cost)> {
        if self.track_orders && sp.order == Some(g) {
            return Ok((sp.plan.clone(), Cost::ZERO));
        }
        let local = Self::local_key(sp, g)?;
        let sort_cost = self.model.sort(sp.rows, sp.pages());
        let plan = PhysicalPlan {
            schema: sp.plan.schema.clone(),
            est_rows: sp.rows,
            est_cost: sp.cost + sort_cost,
            output_order: Some(g),
            op: PhysOp::Sort {
                input: Box::new(sp.plan.clone()),
                keys: vec![(local, true)],
            },
        };
        Ok((plan, sort_cost))
    }

    /// Wrap `sp` in an explicit sort on global column `g`.
    pub fn enforce_order(&self, sp: &SubPlan, g: usize) -> Result<SubPlan> {
        let local = Self::local_key(sp, g)?;
        let sort_cost = self.model.sort(sp.rows, sp.pages());
        let plan = PhysicalPlan {
            schema: sp.plan.schema.clone(),
            est_rows: sp.rows,
            est_cost: sp.cost + sort_cost,
            output_order: Some(g),
            op: PhysOp::Sort {
                input: Box::new(sp.plan.clone()),
                keys: vec![(local, true)],
            },
        };
        Ok(SubPlan {
            mask: sp.mask,
            plan,
            rows: sp.rows,
            width: sp.width,
            cost: sp.cost + sort_cost,
            col_map: sp.col_map.clone(),
            order: Some(g),
        })
    }

    /// From complete candidates, pick the best given the required order:
    /// an already-ordered plan competes against cheapest-plus-sort. The
    /// comparison also charges the column-order-restoring projection that
    /// `finalize` will add for non-identity outputs, so the enumeration
    /// objective matches the cost of the plan actually returned.
    pub fn pick_final(&self, candidates: Vec<SubPlan>) -> Result<SubPlan> {
        if candidates.is_empty() {
            return Err(EvoptError::Plan("enumeration produced no plan".into()));
        }
        let total = self.total_cols();
        let effective = |sp: &SubPlan| {
            let identity = (0..total).all(|g| sp.col_map[g] == Some(g));
            let restore = if identity {
                Cost::ZERO
            } else {
                self.model.per_tuple(sp.rows)
            };
            self.model.total(sp.cost + restore)
        };
        let mut best: Option<SubPlan> = None;
        for sp in candidates {
            let sp = match self.required_order {
                Some(g) if sp.order != Some(g) => self.enforce_order(&sp, g)?,
                _ => sp,
            };
            let replace = match &best {
                None => true,
                Some(b) => effective(&sp) < effective(b),
            };
            if replace {
                best = Some(sp);
            }
        }
        best.ok_or_else(|| EvoptError::Plan("enumeration produced no plan".into()))
    }

    /// Whether joining `left` to `right` is connected (has a predicate).
    pub fn is_connected(&self, left: RelMask, right: RelMask) -> bool {
        self.graph.connected(left, right)
    }

    // -- search-trace recording ---------------------------------------------
    //
    // The DP invariant `considered == pruned + retained` (retained = final
    // table size) holds because every candidate routed through
    // [`JoinContext::admit`] is counted considered exactly once, and leaves
    // the search exactly once: rejected on arrival (dominated), or evicted
    // later by a cheaper arrival (superseded).

    /// Admit `sp` into `table`, recording the trace events for the
    /// candidate and for whichever plan the dominance test kills.
    /// Returns whether `sp` entered the table.
    pub fn admit(&self, table: &mut PlanTable, sp: SubPlan) -> bool {
        let (mask, method, order) = (sp.mask, sp.plan.op_name(), sp.order);
        self.trace_consider(&sp);
        match table.admit(sp, self.model) {
            Admission::New => {
                if let (Some(t), Some(o)) = (self.trace, order) {
                    t.order_kept(mask, method, o);
                }
                true
            }
            Admission::Replaced(old) => {
                if let Some(t) = self.trace {
                    t.prune(old.mask, old.plan.op_name(), PruneReason::Superseded);
                    if let Some(o) = order {
                        t.order_kept(mask, method, o);
                    }
                }
                true
            }
            Admission::Dominated(sp) => {
                self.trace_prune(&sp, PruneReason::Dominated);
                false
            }
        }
    }

    /// Record a candidate being generated and costed.
    pub fn trace_consider(&self, sp: &SubPlan) {
        if let Some(t) = self.trace {
            t.consider(
                sp.mask,
                sp.plan.op_name(),
                sp.cost.io,
                sp.cost.cpu,
                sp.rows,
                sp.order,
            );
        }
    }

    /// Record a plan leaving the search.
    pub fn trace_prune(&self, sp: &SubPlan, reason: PruneReason) {
        if let Some(t) = self.trace {
            t.prune(sp.mask, sp.plan.op_name(), reason);
        }
    }

    /// Record one completed enumeration level.
    pub fn trace_level(&self, level: u32, table_entries: usize, started: Instant) {
        if let Some(t) = self.trace {
            t.level(level, table_entries, started.elapsed().as_micros());
        }
    }

    /// Record the final dominance-table size.
    pub fn trace_memo(&self, entries: usize) {
        if let Some(t) = self.trace {
            t.set_memo_entries(entries);
        }
    }
}

/// Outcome of one [`PlanTable::admit`] call.
pub enum Admission {
    /// Inserted; no incumbent existed for its (mask, order) class.
    New,
    /// Inserted; the returned incumbent was evicted.
    Replaced(Box<SubPlan>),
    /// Rejected; the incumbent dominates. The candidate comes back so the
    /// caller can trace (or reuse) it.
    Dominated(Box<SubPlan>),
}

/// Dominance table keyed by `(mask, order)`; admits a plan only if it beats
/// the incumbent. BTreeMap (not HashMap) so iteration — and therefore tie
/// resolution between equal-cost plans — is deterministic run to run.
#[derive(Default)]
pub struct PlanTable {
    plans: BTreeMap<(RelMask, Option<usize>), SubPlan>,
}

impl PlanTable {
    pub fn new() -> Self {
        PlanTable::default()
    }

    /// Insert if cheaper than the incumbent for the same (mask, order).
    /// Exact cost ties go to the plan whose column map is closer to the
    /// identity — mirror-image join trees often tie, and the identity-closer
    /// one avoids the final column-restoring projection.
    ///
    /// The returned [`Admission`] says which plan (if any) the dominance
    /// test killed, so callers can trace the search.
    pub fn admit(&mut self, sp: SubPlan, model: &CostModel) -> Admission {
        let fixed_points = |p: &SubPlan| {
            p.col_map
                .iter()
                .enumerate()
                .filter(|(g, m)| **m == Some(*g))
                .count()
        };
        let key = (sp.mask, sp.order);
        match self.plans.get(&key) {
            Some(cur) => {
                let (a, b) = (model.total(sp.cost), model.total(cur.cost));
                if a < b || (a == b && fixed_points(&sp) > fixed_points(cur)) {
                    match self.plans.insert(key, sp) {
                        Some(old) => Admission::Replaced(Box::new(old)),
                        None => Admission::New,
                    }
                } else {
                    Admission::Dominated(Box::new(sp))
                }
            }
            None => {
                self.plans.insert(key, sp);
                Admission::New
            }
        }
    }

    /// All retained plans for `mask`.
    pub fn plans_for(&self, mask: RelMask) -> Vec<&SubPlan> {
        self.plans
            .iter()
            .filter(|((m, _), _)| *m == mask)
            .map(|(_, p)| p)
            .collect()
    }

    /// All retained plans for `mask`, cloned (for mutation-during-iteration
    /// call sites).
    pub fn plans_for_cloned(&self, mask: RelMask) -> Vec<SubPlan> {
        self.plans_for(mask).into_iter().cloned().collect()
    }

    pub fn len(&self) -> usize {
        self.plans.len()
    }

    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }
}

/// Run the chosen strategy.
pub fn enumerate(ctx: &JoinContext, strategy: Strategy) -> Result<SubPlan> {
    let started = Instant::now();
    let result = match strategy {
        Strategy::SystemR => dp_sysr::run(ctx),
        Strategy::BushyDp => dp_bushy::run(ctx),
        Strategy::DpCcp => dp_ccp::run(ctx),
        Strategy::Greedy => greedy::run(ctx),
        Strategy::Goo => goo::run(ctx),
        Strategy::QuickPick { samples, seed } => quickpick::run(ctx, samples, seed),
        Strategy::Syntactic => syntactic::run(ctx),
    };
    if let Some(t) = ctx.trace {
        t.set_strategy(strategy.name());
        t.set_total_micros(started.elapsed().as_micros());
    }
    result
}

#[cfg(test)]
pub(crate) mod fixtures {
    //! Synthetic join graphs + contexts for strategy tests, built without a
    //! real catalog.

    use super::*;
    use crate::selectivity::ColumnInfo;
    use evopt_catalog::ColumnStats;
    use evopt_common::expr::col;
    use evopt_common::{Column, DataType, Schema, Value};
    use evopt_plan::LogicalPlan;

    /// Specification of one synthetic relation.
    pub struct RelSpec {
        pub name: &'static str,
        pub rows: f64,
        /// NDV of each of the relation's 2 int columns (c0 = key, c1 = fk).
        pub ndv: [u64; 2],
        pub indexed: bool,
    }

    pub struct Fixture {
        pub graph: JoinGraph,
        pub est: EstimationContext,
        pub model: CostModel,
        pub rels: Vec<BaseRel>,
    }

    impl Fixture {
        pub fn ctx(&self) -> JoinContext<'_> {
            JoinContext {
                graph: &self.graph,
                est: &self.est,
                model: &self.model,
                rels: self.rels.clone(),
                required_order: None,
                track_orders: true,
                trace: None,
            }
        }
    }

    /// Build a fixture: relations with 2 int columns each, joined by the
    /// given edges `(rel_a, col_a, rel_b, col_b)` (column 0 or 1, local).
    pub fn build(specs: &[RelSpec], edges: &[(usize, usize, usize, usize)]) -> Fixture {
        let model = CostModel::default();
        // Logical scans.
        let scans: Vec<LogicalPlan> = specs
            .iter()
            .map(|s| LogicalPlan::Scan {
                table: s.name.to_string(),
                schema: Schema::new(vec![
                    Column::new("c0", DataType::Int).with_table(s.name),
                    Column::new("c1", DataType::Int).with_table(s.name),
                ]),
            })
            .collect();
        // Fold into a left-deep cross join, then a filter with the edges.
        let mut plan = scans[0].clone();
        for s in &scans[1..] {
            plan = LogicalPlan::Join {
                left: Box::new(plan),
                right: Box::new(s.clone()),
                predicate: None,
            };
        }
        let mut conjuncts = Vec::new();
        for &(ra, ca, rb, cb) in edges {
            conjuncts.push(Expr::eq(col(ra * 2 + ca), col(rb * 2 + cb)));
        }
        if !conjuncts.is_empty() {
            plan = LogicalPlan::Filter {
                input: Box::new(plan),
                predicate: Expr::conjunction(conjuncts),
            };
        }
        let graph = JoinGraph::extract(&plan).expect("fixture is a join");

        // Stats: uniform ints, no histograms (NDV-only estimation).
        let mut cols = Vec::new();
        for s in specs {
            for c in 0..2 {
                cols.push(ColumnInfo {
                    stats: Some(ColumnStats {
                        null_count: 0,
                        ndv: s.ndv[c],
                        min: Some(Value::Int(0)),
                        max: Some(Value::Int(s.ndv[c] as i64 - 1)),
                        mcvs: vec![],
                        histogram: None,
                    }),
                    table_rows: s.rows as u64,
                });
            }
        }
        let est = EstimationContext::new(cols);

        // Base relations: 40-byte tuples, ~100/page.
        let mut rels = Vec::new();
        for (i, s) in specs.iter().enumerate() {
            let pages = (s.rows / 100.0).ceil().max(1.0);
            let indexes = if s.indexed {
                vec![IndexMeta {
                    name: format!("{}_c0", s.name),
                    column: 0,
                    height: 2.0,
                    pages: (s.rows / 300.0).ceil().max(1.0),
                    clustered: false,
                    unique: false,
                }]
            } else {
                vec![]
            };
            // Local estimation context (table-local ordinals).
            let local_est =
                EstimationContext::new((0..2).map(|c| est.columns[i * 2 + c].clone()).collect());
            let rel_meta = crate::access_path::RelMeta {
                table: s.name.to_string(),
                rows: s.rows,
                pages,
                indexes: indexes.clone(),
            };
            let paths = crate::access_path::access_paths(&rel_meta, &[], &local_est, &model);
            rels.push(BaseRel {
                table: Some(s.name.to_string()),
                rows_raw: s.rows,
                pages_raw: pages,
                width: 40.0,
                local_sel: 1.0,
                local_preds_global: vec![],
                paths,
                indexes,
                opaque_plan: None,
            });
        }
        Fixture {
            graph,
            est,
            model,
            rels,
        }
    }

    /// A 3-relation chain: t(1k) — u(10k) — v(100k), keys indexed on v.
    pub fn chain3() -> Fixture {
        build(
            &[
                RelSpec {
                    name: "t",
                    rows: 1_000.0,
                    ndv: [1_000, 100],
                    indexed: false,
                },
                RelSpec {
                    name: "u",
                    rows: 10_000.0,
                    ndv: [10_000, 1_000],
                    indexed: false,
                },
                RelSpec {
                    name: "v",
                    rows: 100_000.0,
                    ndv: [100_000, 10_000],
                    indexed: true,
                },
            ],
            // t.c0 = u.c1, u.c0 = v.c1
            &[(0, 0, 1, 1), (1, 0, 2, 1)],
        )
    }

    /// A star: fact f(100k) joined to 3 dimensions (100, 1k, 10k rows).
    pub fn star4() -> Fixture {
        build(
            &[
                RelSpec {
                    name: "f",
                    rows: 100_000.0,
                    ndv: [100_000, 100],
                    indexed: false,
                },
                RelSpec {
                    name: "d1",
                    rows: 100.0,
                    ndv: [100, 10],
                    indexed: false,
                },
                RelSpec {
                    name: "d2",
                    rows: 1_000.0,
                    ndv: [1_000, 10],
                    indexed: false,
                },
                RelSpec {
                    name: "d3",
                    rows: 10_000.0,
                    ndv: [10_000, 10],
                    indexed: true,
                },
            ],
            // f.c1 = d1.c0; f.c0 = d2.c0 (abusing c0 as another fk); f.c0 = d3.c0
            &[(0, 1, 1, 0), (0, 0, 2, 0), (0, 0, 3, 0)],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::fixtures::*;
    use super::*;

    #[test]
    fn base_subplans_have_global_col_maps() {
        let f = chain3();
        let ctx = f.ctx();
        assert_eq!(ctx.total_cols(), 6);
        let t = ctx.base_subplans(1);
        assert!(!t.is_empty());
        let sp = &t[0];
        assert_eq!(sp.mask, 0b010);
        assert_eq!(sp.col_map[2], Some(0));
        assert_eq!(sp.col_map[3], Some(1));
        assert_eq!(sp.col_map[0], None);
    }

    #[test]
    fn join_candidates_produce_all_methods_with_key() {
        let f = chain3();
        let ctx = f.ctx();
        let t = ctx.cheapest_base(0).unwrap();
        let u = ctx.cheapest_base(1).unwrap();
        let cands = ctx.join_candidates(&t, &u, false).unwrap();
        let names: Vec<_> = cands.iter().map(|c| c.plan.op_name()).collect();
        assert!(names.contains(&"BlockNestedLoopJoin"));
        assert!(names.contains(&"NestedLoopJoin"));
        assert!(names.contains(&"HashJoin"));
        assert!(names.contains(&"SortMergeJoin"));
        // No index on u → no INL.
        assert!(!names.contains(&"IndexNestedLoopJoin"));
        // Rows: |t| × |u| / max(ndv) = 1k × 10k / 10^3... edge t.c0=u.c1
        // (ndv 1000 both) → 10k rows.
        for c in &cands {
            assert!(
                (c.rows - 10_000.0).abs() / 10_000.0 < 0.01,
                "rows {}",
                c.rows
            );
        }
    }

    #[test]
    fn inl_offered_against_indexed_inner() {
        let f = chain3();
        let ctx = f.ctx();
        // u joined to v (v has index on c0; edge is u.c0 = v.c1 → the index
        // is NOT on the join column, so still no INL).
        let u = ctx.cheapest_base(1).unwrap();
        let v = ctx.cheapest_base(2).unwrap();
        let cands = ctx.join_candidates(&u, &v, false).unwrap();
        assert!(!cands
            .iter()
            .any(|c| c.plan.op_name() == "IndexNestedLoopJoin"));
        // Star fixture: f.c0 = d3.c0 and d3 has an index on c0 → INL exists.
        let s = star4();
        let sctx = s.ctx();
        let fact = sctx.cheapest_base(0).unwrap();
        let d3 = sctx.cheapest_base(3).unwrap();
        let cands = sctx.join_candidates(&fact, &d3, false).unwrap();
        assert!(
            cands
                .iter()
                .any(|c| c.plan.op_name() == "IndexNestedLoopJoin"),
            "methods: {:?}",
            cands.iter().map(|c| c.plan.op_name()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn unconnected_pair_requires_allow_cross() {
        let f = chain3();
        let ctx = f.ctx();
        let t = ctx.cheapest_base(0).unwrap();
        let v = ctx.cheapest_base(2).unwrap();
        assert!(ctx.join_candidates(&t, &v, false).unwrap().is_empty());
        let crossed = ctx.join_candidates(&t, &v, true).unwrap();
        assert!(!crossed.is_empty());
        // Cross product cardinality.
        assert!((crossed[0].rows - 1_000.0 * 100_000.0).abs() < 1.0);
    }

    #[test]
    fn smj_output_is_ordered_and_reuses_sorted_inputs() {
        let f = chain3();
        let ctx = f.ctx();
        let t = ctx.cheapest_base(0).unwrap();
        let u = ctx.cheapest_base(1).unwrap();
        let cands = ctx.join_candidates(&t, &u, false).unwrap();
        let smj = cands
            .iter()
            .find(|c| c.plan.op_name() == "SortMergeJoin")
            .unwrap();
        // Key is t.c0 (global 0).
        assert_eq!(smj.order, Some(0));
        // Both inputs unsorted → two Sort children.
        match &smj.plan.op {
            PhysOp::SortMergeJoin { left, right, .. } => {
                assert_eq!(left.op_name(), "Sort");
                assert_eq!(right.op_name(), "Sort");
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn plan_table_dominance() {
        let f = chain3();
        let ctx = f.ctx();
        let model = ctx.model;
        let mut table = PlanTable::new();
        let cheap = ctx.cheapest_base(0).unwrap();
        let mut pricey = cheap.clone();
        pricey.cost = Cost::new(cheap.cost.io + 1000.0, cheap.cost.cpu);
        table.admit(pricey.clone(), model);
        table.admit(cheap.clone(), model);
        table.admit(pricey, model);
        let kept = table.plans_for(cheap.mask);
        assert_eq!(kept.len(), 1);
        assert_eq!(model.total(kept[0].cost), model.total(cheap.cost));
    }

    #[test]
    fn dp_trace_invariant_considered_equals_pruned_plus_memo() {
        // Every candidate routed through ctx.admit either lives in the memo
        // or was pruned exactly once — for all three DP strategies.
        for strategy in [Strategy::SystemR, Strategy::BushyDp, Strategy::DpCcp] {
            for f in [chain3(), star4()] {
                let sink = TraceSink::counts_only();
                let mut ctx = f.ctx();
                ctx.trace = Some(&sink);
                enumerate(&ctx, strategy).unwrap();
                drop(ctx);
                let trace = sink.into_trace();
                assert!(trace.memo_entries > 0, "{}", strategy.name());
                assert_eq!(
                    trace.considered,
                    trace.pruned + trace.memo_entries as u64,
                    "{}: considered {} != pruned {} + memo {}",
                    strategy.name(),
                    trace.considered,
                    trace.pruned,
                    trace.memo_entries
                );
            }
        }
    }

    #[test]
    fn dp_considers_strictly_more_plans_than_greedy() {
        let f = star4();
        let count = |strategy: Strategy| {
            let sink = TraceSink::counts_only();
            let mut ctx = f.ctx();
            ctx.trace = Some(&sink);
            enumerate(&ctx, strategy).unwrap();
            drop(ctx);
            sink.into_trace().considered
        };
        let dp = count(Strategy::SystemR);
        let greedy = count(Strategy::Greedy);
        assert!(
            dp > greedy,
            "dp_sysr considered {dp} plans, greedy {greedy} — expected strictly more"
        );
    }

    #[test]
    fn trace_is_observation_only_and_never_changes_the_plan() {
        for strategy in [
            Strategy::SystemR,
            Strategy::BushyDp,
            Strategy::DpCcp,
            Strategy::Greedy,
            Strategy::Goo,
            Strategy::QuickPick {
                samples: 8,
                seed: 5,
            },
            Strategy::Syntactic,
        ] {
            let f = star4();
            let plain = enumerate(&f.ctx(), strategy).unwrap();
            let sink = TraceSink::bounded(1024);
            let mut ctx = f.ctx();
            ctx.trace = Some(&sink);
            let traced = enumerate(&ctx, strategy).unwrap();
            drop(ctx);
            assert_eq!(
                plain.plan.digest(),
                traced.plan.digest(),
                "{}: tracing changed the chosen plan",
                strategy.name()
            );
            let trace = sink.into_trace();
            assert_eq!(trace.strategy, strategy.name());
            assert!(trace.considered > 0);
        }
    }

    #[test]
    fn enforce_order_adds_sort_once() {
        let f = chain3();
        let ctx = f.ctx();
        let t = ctx.cheapest_base(0).unwrap();
        let sorted = ctx.enforce_order(&t, 1).unwrap();
        assert_eq!(sorted.order, Some(1));
        assert_eq!(sorted.plan.op_name(), "Sort");
        assert!(ctx.model.total(sorted.cost) >= ctx.model.total(t.cost));
    }
}
