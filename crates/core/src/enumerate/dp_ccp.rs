//! DPccp: bushy dynamic programming over **connected subgraph /
//! complement pairs** (Moerkotte & Neumann, "Analysis of Two Existing and
//! One New Dynamic Programming Algorithm", VLDB 2006 — a later-era
//! refinement included here as the natural "future work" of the 1977
//! enumeration story).
//!
//! Naive bushy DP (`dp_bushy`) enumerates *every* partition of every
//! subset — O(3ⁿ) — and discards the disconnected ones. DPccp walks the
//! predicate graph so that each connected-subgraph/connected-complement
//! pair is emitted exactly once, making enumeration cost proportional to
//! the number of *valid* joins: O(n²) on chains, O(n·2ⁿ) on stars, equal
//! to naive only on cliques. Same plan space, same optimum, far less work
//! on sparse graphs — the ablation `benches/enumeration.rs` measures.
//!
//! On a disconnected predicate graph (cartesian products required) DPccp's
//! preconditions fail; we fall back to naive bushy DP.

use evopt_common::Result;
use evopt_plan::join_graph::RelMask;

use super::{dp_bushy, JoinContext, PlanTable, SubPlan};

pub fn run(ctx: &JoinContext) -> Result<SubPlan> {
    let n = ctx.rels.len();
    let all = ctx.graph.all_mask();
    if n > 1 && !ctx.graph.subgraph_connected(all) {
        // Cross products needed: DPccp doesn't apply, use naive bushy.
        return dp_bushy::run(ctx);
    }
    let mut table = PlanTable::new();
    let level_started = std::time::Instant::now();
    for r in 0..n {
        for sp in ctx.base_subplans(r) {
            ctx.admit(&mut table, sp);
        }
    }
    ctx.trace_level(1, table.len(), level_started);

    // Emit all csg-cmp pairs; for each, join best plans both ways.
    let mut pairs: Vec<(RelMask, RelMask)> = Vec::new();
    enumerate_csg(ctx, &mut pairs);
    // Sort by combined size so sub-plans exist before they're needed.
    pairs.sort_by_key(|(a, b)| (a | b).count_ones());
    for (s1, s2) in pairs {
        for l in table.plans_for_cloned(s1) {
            for r in table.plans_for_cloned(s2) {
                for cand in ctx.join_candidates(&l, &r, false)? {
                    ctx.admit(&mut table, cand);
                }
                for cand in ctx.join_candidates(&r, &l, false)? {
                    ctx.admit(&mut table, cand);
                }
            }
        }
    }
    ctx.trace_memo(table.len());
    ctx.pick_final(table.plans_for_cloned(all))
}

/// Bits strictly below `i`, plus `i` itself: the canonical "forbidden"
/// prefix that makes every subgraph enumerate exactly once.
fn b_set(i: usize) -> RelMask {
    (1u64 << i) | ((1u64 << i) - 1)
}

fn lowest(mask: RelMask) -> usize {
    mask.trailing_zeros() as usize
}

/// Iterate all non-empty subsets of `mask`.
fn subsets(mask: RelMask) -> Vec<RelMask> {
    let mut out = Vec::new();
    let mut s = mask;
    while s != 0 {
        out.push(s);
        s = (s - 1) & mask;
    }
    out
}

fn enumerate_csg(ctx: &JoinContext, pairs: &mut Vec<(RelMask, RelMask)>) {
    let n = ctx.rels.len();
    for i in (0..n).rev() {
        let s = 1u64 << i;
        enumerate_cmp(ctx, s, pairs);
        enumerate_csg_rec(ctx, s, b_set(i), pairs);
    }
}

fn enumerate_csg_rec(
    ctx: &JoinContext,
    s: RelMask,
    x: RelMask,
    pairs: &mut Vec<(RelMask, RelMask)>,
) {
    let neighbours = ctx.graph.neighbours(s) & !x;
    if neighbours == 0 {
        return;
    }
    for sub in subsets(neighbours) {
        let grown = s | sub;
        enumerate_cmp(ctx, grown, pairs);
    }
    for sub in subsets(neighbours) {
        enumerate_csg_rec(ctx, s | sub, x | neighbours, pairs);
    }
}

fn enumerate_cmp(ctx: &JoinContext, s1: RelMask, pairs: &mut Vec<(RelMask, RelMask)>) {
    let x = b_set(lowest(s1)) | s1;
    let neighbours = ctx.graph.neighbours(s1) & !x;
    if neighbours == 0 {
        return;
    }
    // Descending start nodes, same once-only discipline as csg.
    let mut starts: Vec<usize> = (0..64).filter(|&i| neighbours & (1u64 << i) != 0).collect();
    starts.reverse();
    for i in starts {
        let s2 = 1u64 << i;
        pairs.push((s1, s2));
        // Grow s2 avoiding x, s1, and neighbours below i (handled by their
        // own start).
        let forbidden = x | (b_set(i) & neighbours);
        enumerate_cmp_rec(ctx, s1, s2, forbidden, pairs);
    }
}

fn enumerate_cmp_rec(
    ctx: &JoinContext,
    s1: RelMask,
    s2: RelMask,
    x: RelMask,
    pairs: &mut Vec<(RelMask, RelMask)>,
) {
    let neighbours = ctx.graph.neighbours(s2) & !x;
    if neighbours == 0 {
        return;
    }
    for sub in subsets(neighbours) {
        let grown = s2 | sub;
        if ctx.graph.subgraph_connected(grown) && ctx.graph.connected(s1, grown) {
            pairs.push((s1, grown));
        }
    }
    for sub in subsets(neighbours) {
        enumerate_cmp_rec(ctx, s1, s2 | sub, x | neighbours, pairs);
    }
}

#[cfg(test)]
mod tests {
    use crate::enumerate::fixtures::{build, chain3, star4, RelSpec};
    use crate::enumerate::{enumerate, Strategy};

    #[test]
    fn matches_naive_bushy_dp_exactly() {
        for f in [chain3(), star4()] {
            let ctx = f.ctx();
            let ccp = enumerate(&ctx, Strategy::DpCcp).unwrap();
            let naive = enumerate(&ctx, Strategy::BushyDp).unwrap();
            let (a, b) = (ctx.model.total(ccp.cost), ctx.model.total(naive.cost));
            assert!(
                (a - b).abs() <= 1e-6 * b.max(1.0),
                "DPccp {a} != naive bushy {b}"
            );
            assert_eq!(ccp.mask, ctx.graph.all_mask());
        }
    }

    #[test]
    fn handles_cycles_and_cliques() {
        // Cycle: a-b, b-c, c-a.
        let f = build(
            &[
                RelSpec {
                    name: "a",
                    rows: 100.0,
                    ndv: [100, 50],
                    indexed: false,
                },
                RelSpec {
                    name: "b",
                    rows: 200.0,
                    ndv: [200, 50],
                    indexed: false,
                },
                RelSpec {
                    name: "c",
                    rows: 400.0,
                    ndv: [400, 50],
                    indexed: false,
                },
            ],
            &[(0, 0, 1, 0), (1, 1, 2, 1), (2, 0, 0, 1)],
        );
        let ctx = f.ctx();
        let ccp = enumerate(&ctx, Strategy::DpCcp).unwrap();
        let naive = enumerate(&ctx, Strategy::BushyDp).unwrap();
        assert!((ctx.model.total(ccp.cost) - ctx.model.total(naive.cost)).abs() < 1e-6);
    }

    #[test]
    fn disconnected_graph_falls_back_to_naive() {
        let f = build(
            &[
                RelSpec {
                    name: "a",
                    rows: 10.0,
                    ndv: [10, 10],
                    indexed: false,
                },
                RelSpec {
                    name: "b",
                    rows: 20.0,
                    ndv: [20, 20],
                    indexed: false,
                },
            ],
            &[],
        );
        let plan = enumerate(&f.ctx(), Strategy::DpCcp).unwrap();
        assert_eq!(plan.mask, 0b11);
        assert!((plan.rows - 200.0).abs() < 1.0);
    }
}
