//! Left-deep greedy enumeration (minimum intermediate result).
//!
//! Start from the smallest filtered relation; at every step join in the
//! connected neighbour whose join yields the fewest rows (cost as the
//! tiebreak). Polynomial — O(n²) join evaluations — and good on chains, but
//! blind to globally-better orders; experiment F2 quantifies the regret
//! against DP.

use evopt_common::{EvoptError, Result};
use evopt_obs::PruneReason;

use super::{JoinContext, SubPlan};

pub fn run(ctx: &JoinContext) -> Result<SubPlan> {
    let n = ctx.rels.len();
    let all = ctx.graph.all_mask();

    // Seed: smallest relation by filtered rows (cheapest path as tiebreak).
    let mut current: Option<SubPlan> = None;
    for r in 0..n {
        let cand = ctx.cheapest_base(r)?;
        let better = match &current {
            None => true,
            Some(cur) => (cand.rows.total_cmp(&cur.rows))
                .then(
                    ctx.model
                        .total(cand.cost)
                        .total_cmp(&ctx.model.total(cur.cost)),
                )
                .is_lt(),
        };
        if better {
            current = Some(cand);
        }
    }
    let mut current =
        current.ok_or_else(|| EvoptError::Plan("greedy: no relations to enumerate".into()))?;

    while current.mask != all {
        let remaining: Vec<usize> = (0..n)
            .filter(|&r| current.mask & (1u64 << r) == 0)
            .collect();
        let any_connected = remaining
            .iter()
            .any(|&r| ctx.is_connected(current.mask, 1u64 << r));
        let mut best: Option<SubPlan> = None;
        for &r in &remaining {
            let connected = ctx.is_connected(current.mask, 1u64 << r);
            if any_connected && !connected {
                continue;
            }
            for base in ctx.base_subplans(r) {
                for cand in ctx.join_candidates(&current, &base, !connected)? {
                    ctx.trace_consider(&cand);
                    let better = match &best {
                        None => true,
                        Some(b) => {
                            (cand.rows, ctx.model.total(cand.cost))
                                < (b.rows, ctx.model.total(b.cost))
                        }
                    };
                    if better {
                        if let Some(prev) = best.take() {
                            ctx.trace_prune(&prev, PruneReason::NotChosen);
                        }
                        best = Some(cand);
                    } else {
                        ctx.trace_prune(&cand, PruneReason::NotChosen);
                    }
                }
            }
        }
        current = best.ok_or_else(|| {
            EvoptError::Internal(
                "greedy: no join candidate (cross join should be a fallback)".into(),
            )
        })?;
    }

    ctx.pick_final(vec![current])
}

#[cfg(test)]
mod tests {
    use crate::enumerate::fixtures::{chain3, star4};
    use crate::enumerate::{enumerate, Strategy};

    #[test]
    fn covers_all_and_is_left_deep() {
        let f = chain3();
        let plan = enumerate(&f.ctx(), Strategy::Greedy).unwrap();
        assert_eq!(plan.mask, f.ctx().graph.all_mask());
        assert_eq!(plan.plan.scan_order().len(), 3);
    }

    #[test]
    fn starts_from_smallest_relation() {
        let f = chain3();
        let plan = enumerate(&f.ctx(), Strategy::Greedy).unwrap();
        assert_eq!(plan.plan.scan_order()[0], "t");
    }

    #[test]
    fn never_better_than_dp() {
        for f in [chain3(), star4()] {
            let ctx = f.ctx();
            let dp = enumerate(&ctx, Strategy::SystemR).unwrap();
            let gr = enumerate(&ctx, Strategy::Greedy).unwrap();
            assert!(
                ctx.model.total(dp.cost) <= ctx.model.total(gr.cost) + 1e-6,
                "dp {} > greedy {}",
                ctx.model.total(dp.cost),
                ctx.model.total(gr.cost)
            );
        }
    }
}
