//! QuickPick: random sampling of join orders.
//!
//! Draw `samples` random left-deep orders (seeded, reproducible), build each
//! with the cheapest method per step, keep the best. A baseline between
//! "no optimization" and exhaustive search: quality improves with samples,
//! never reaches DP reliably on hard graphs — exactly the F2 story.

use evopt_common::{EvoptError, Result};
use evopt_obs::PruneReason;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use super::{JoinContext, SubPlan};

pub fn run(ctx: &JoinContext, samples: usize, seed: u64) -> Result<SubPlan> {
    if samples == 0 {
        return Err(EvoptError::Plan(
            "QuickPick needs at least one sample".into(),
        ));
    }
    let n = ctx.rels.len();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut finals: Vec<SubPlan> = Vec::with_capacity(samples);

    for _ in 0..samples {
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(&mut rng);
        let mut current = ctx.cheapest_base(order[0])?;
        for &r in &order[1..] {
            let connected = ctx.is_connected(current.mask, 1u64 << r);
            let mut best: Option<SubPlan> = None;
            for base in ctx.base_subplans(r) {
                // Random orders may force cross products; always allowed.
                for cand in ctx.join_candidates(&current, &base, true)? {
                    ctx.trace_consider(&cand);
                    let better = match &best {
                        None => true,
                        Some(b) => ctx.model.total(cand.cost) < ctx.model.total(b.cost),
                    };
                    if better {
                        if let Some(prev) = best.take() {
                            ctx.trace_prune(&prev, PruneReason::NotChosen);
                        }
                        best = Some(cand);
                    } else {
                        ctx.trace_prune(&cand, PruneReason::NotChosen);
                    }
                }
            }
            let _ = connected;
            current = best.ok_or_else(|| {
                EvoptError::Internal(
                    "quickpick: no join candidate (cross join should be a fallback)".into(),
                )
            })?;
        }
        finals.push(current);
    }

    ctx.pick_final(finals)
}

#[cfg(test)]
mod tests {
    use crate::enumerate::fixtures::{chain3, star4};
    use crate::enumerate::{enumerate, Strategy};

    #[test]
    fn deterministic_for_same_seed() {
        let f = chain3();
        let ctx = f.ctx();
        let a = enumerate(
            &ctx,
            Strategy::QuickPick {
                samples: 8,
                seed: 7,
            },
        )
        .unwrap();
        let b = enumerate(
            &ctx,
            Strategy::QuickPick {
                samples: 8,
                seed: 7,
            },
        )
        .unwrap();
        assert_eq!(ctx.model.total(a.cost), ctx.model.total(b.cost));
        assert_eq!(a.plan.scan_order(), b.plan.scan_order());
    }

    #[test]
    fn more_samples_never_worse() {
        let f = star4();
        let ctx = f.ctx();
        let few = enumerate(
            &ctx,
            Strategy::QuickPick {
                samples: 1,
                seed: 3,
            },
        )
        .unwrap();
        let many = enumerate(
            &ctx,
            Strategy::QuickPick {
                samples: 32,
                seed: 3,
            },
        )
        .unwrap();
        assert!(
            ctx.model.total(many.cost) <= ctx.model.total(few.cost) + 1e-6,
            "32 samples {} > 1 sample {}",
            ctx.model.total(many.cost),
            ctx.model.total(few.cost)
        );
    }

    #[test]
    fn dp_never_loses_to_quickpick() {
        let f = star4();
        let ctx = f.ctx();
        let dp = enumerate(&ctx, Strategy::SystemR).unwrap();
        let qp = enumerate(
            &ctx,
            Strategy::QuickPick {
                samples: 16,
                seed: 1,
            },
        )
        .unwrap();
        assert!(ctx.model.total(dp.cost) <= ctx.model.total(qp.cost) + 1e-6);
    }

    #[test]
    fn zero_samples_is_an_error() {
        let f = chain3();
        assert!(enumerate(
            &f.ctx(),
            Strategy::QuickPick {
                samples: 0,
                seed: 0
            }
        )
        .is_err());
    }
}
