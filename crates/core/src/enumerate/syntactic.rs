//! The unoptimized baseline: syntactic join order, sequential scans, block
//! nested loops.
//!
//! This is what "no optimizer" meant in the foundational era: evaluate the
//! FROM clause left to right, scan every relation sequentially, nested-loop
//! every join. Every T1 speedup factor is measured against this plan.

use evopt_common::{EvoptError, Result};
use evopt_obs::PruneReason;

use super::{JoinContext, SubPlan};
use crate::physical::PhysOp;

pub fn run(ctx: &JoinContext) -> Result<SubPlan> {
    let n = ctx.rels.len();
    let mut current = ctx.seq_base(0)?;
    for r in 1..n {
        let right = ctx.seq_base(r)?;
        let cands = ctx.join_candidates(&current, &right, true)?;
        let mut chosen: Option<SubPlan> = None;
        for c in cands {
            ctx.trace_consider(&c);
            if chosen.is_none() && matches!(c.plan.op, PhysOp::BlockNestedLoopJoin { .. }) {
                chosen = Some(c);
            } else {
                ctx.trace_prune(&c, PruneReason::NotChosen);
            }
        }
        current =
            chosen.ok_or_else(|| EvoptError::Internal("BNL candidate always generated".into()))?;
    }
    ctx.pick_final(vec![current])
}

#[cfg(test)]
mod tests {
    use crate::enumerate::fixtures::{chain3, star4};
    use crate::enumerate::{enumerate, Strategy};

    #[test]
    fn preserves_syntactic_order_and_uses_bnl_only() {
        let f = chain3();
        let plan = enumerate(&f.ctx(), Strategy::Syntactic).unwrap();
        assert_eq!(plan.plan.scan_order(), vec!["t", "u", "v"]);
        assert!(plan
            .plan
            .join_methods()
            .iter()
            .all(|m| *m == "BlockNestedLoopJoin"));
    }

    #[test]
    fn optimizer_beats_baseline_substantially() {
        // The headline T1 claim in miniature.
        for f in [chain3(), star4()] {
            let ctx = f.ctx();
            let base = enumerate(&ctx, Strategy::Syntactic).unwrap();
            let opt = enumerate(&ctx, Strategy::SystemR).unwrap();
            let ratio = ctx.model.total(base.cost) / ctx.model.total(opt.cost);
            assert!(ratio > 2.0, "only {ratio:.1}x better than baseline");
        }
    }
}
