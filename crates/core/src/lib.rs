//! # evopt-core
//!
//! **The paper's contribution**: cost-based evaluation and optimization of
//! relational queries. Given a logical plan, a catalog of statistics, and a
//! cost model, produce the cheapest physical plan:
//!
//! 1. [`selectivity`] — estimate what fraction of rows each predicate keeps
//!    (MCVs → histograms → uniformity rules → 1977 magic constants, in that
//!    order of preference).
//! 2. [`cost`] — charge every physical operator its page I/Os and tuple
//!    touches; `cost = w_io · pages + w_cpu · tuples`.
//! 3. [`access_path`] — per base relation, choose among the sequential scan
//!    and every matching B+-tree (sargable predicate extraction, clustered
//!    vs. unclustered I/O, order-producing paths kept for later).
//! 4. [`enumerate`] — join-order search. Six strategies share one plan
//!    space: System R dynamic programming over left-deep trees with
//!    interesting orders (the default), bushy DP, two greedy heuristics,
//!    random sampling (QuickPick), and the unoptimized syntactic baseline.
//! 5. [`optimizer`] — the facade tying it together and handling the
//!    non-join operators (aggregate, sort, limit, projection).
//!
//! The output is a [`physical::PhysicalPlan`] annotated with estimated rows
//! and cost; `evopt-exec` interprets it, and the experiments compare the
//! annotations against measured page I/O.

// Library code must not panic on fault paths: unwrap/expect are banned
// outside tests (see clippy.toml: allow-unwrap-in-tests).
#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod access_path;
pub mod cost;
pub mod enumerate;
pub mod optimizer;
pub mod physical;
pub mod selectivity;
pub mod verify;

pub use cost::{Cost, CostModel};
pub use enumerate::Strategy;
pub use optimizer::{Optimizer, OptimizerConfig};
pub use physical::{PhysOp, PhysicalPlan};
pub use selectivity::EstimationContext;
pub use verify::{
    lint_logical, verify_logical, verify_physical, Lint, VerifyIssue, VerifyPhase, VerifyReport,
};
