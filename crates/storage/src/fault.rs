//! Deterministic fault injection for the disk layer.
//!
//! [`FaultInjector`] wraps any [`DiskBackend`] and perturbs its operations
//! on a seed-driven schedule: transient and permanent I/O errors, torn
//! writes (prefix-only persistence), and bit-flip corruption. Everything is
//! deterministic given [`FaultConfig::seed`] and the operation sequence, so
//! a failing chaos run reproduces exactly.
//!
//! Fault semantics:
//!
//! * **Transient read/write error** — the op fails once with
//!   [`EvoptError::Io`]; the next attempt on the same page passes clean.
//!   The buffer pool's bounded retry heals these invisibly (counted in
//!   `PoolSnapshot::retries`).
//! * **Permanent read error** — the page joins the dead set; every later
//!   read fails. Surfaces as a typed `Io` error after retries exhaust.
//! * **Torn write** — only a random prefix of the buffer is persisted, the
//!   rest of the page keeps its previous bytes; the op *reports success*.
//!   Caught by page checksums on the next physical read.
//! * **Bit flip (write)** — one random bit of the persisted image is
//!   inverted; the op reports success. Caught by checksums on read.
//! * **Bit flip (read)** — one random bit of the *returned buffer* is
//!   inverted; the persisted page is intact, so the pool's checksum
//!   retry re-reads it clean.
//! * **Sync failure** — a `sync` durability barrier fails once with
//!   [`EvoptError::Io`]; the next attempt passes clean. The WAL's bounded
//!   commit retry heals these.
//!
//! [`CrashingBackend`] is the other half of the robustness harness: instead
//! of perturbing individual ops it models whole-process death — after a
//! budget of N mutating operations, every subsequent I/O fails, and the
//! surviving bytes are exactly what the first N operations persisted.

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use evopt_common::{EvoptError, Result};
use parking_lot::Mutex;

use crate::disk::{DiskBackend, IoSnapshot};
use crate::page::{PageData, PageId, PAGE_SIZE};

/// Per-operation fault probabilities, all in `[0, 1]`. `Default` is the
/// all-zero (fault-free) schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Seed for the deterministic fault schedule.
    pub seed: u64,
    /// Transient read I/O error probability (heals on retry).
    pub read_error: f64,
    /// Transient write I/O error probability (heals on retry).
    pub write_error: f64,
    /// Probability a read marks the page permanently unreadable.
    pub permanent_read_error: f64,
    /// Silent prefix-only persistence probability per write.
    pub torn_write: f64,
    /// Silent persisted single-bit corruption probability per write.
    pub bit_flip_write: f64,
    /// Transient single-bit corruption probability per read (the persisted
    /// page stays intact).
    pub bit_flip_read: f64,
    /// Transient sync (durability barrier) failure probability (heals on
    /// retry).
    pub sync_error: f64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            seed: 0,
            read_error: 0.0,
            write_error: 0.0,
            permanent_read_error: 0.0,
            torn_write: 0.0,
            bit_flip_write: 0.0,
            bit_flip_read: 0.0,
            sync_error: 0.0,
        }
    }
}

impl FaultConfig {
    /// The chaos-suite preset: frequent transient faults (exercising the
    /// retry path) plus occasional silent corruption (exercising checksum
    /// detection). No permanent faults, so data loss is always detectable
    /// rather than total.
    pub fn chaos(seed: u64) -> FaultConfig {
        FaultConfig {
            seed,
            read_error: 0.02,
            write_error: 0.02,
            permanent_read_error: 0.0,
            torn_write: 0.01,
            bit_flip_write: 0.01,
            bit_flip_read: 0.02,
            sync_error: 0.02,
        }
    }
}

/// Counts of faults the injector has fired, by kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultReport {
    pub transient_read_errors: u64,
    pub transient_write_errors: u64,
    pub permanent_read_errors: u64,
    pub torn_writes: u64,
    pub bit_flips_write: u64,
    pub bit_flips_read: u64,
    pub sync_failures: u64,
}

impl FaultReport {
    /// All injected faults.
    pub fn total(&self) -> u64 {
        self.transient_read_errors
            + self.transient_write_errors
            + self.permanent_read_errors
            + self.torn_writes
            + self.bit_flips_write
            + self.bit_flips_read
            + self.sync_failures
    }

    /// Faults that silently damaged persisted bytes (checksum territory).
    pub fn silent_corruptions(&self) -> u64 {
        self.torn_writes + self.bit_flips_write
    }
}

/// SplitMix64: tiny, fast, full-period deterministic PRNG. Implemented
/// inline so the fault schedule has no external dependency.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[0, bound)`.
    fn next_below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }
}

/// Deterministic fault-injecting wrapper around a [`DiskBackend`].
pub struct FaultInjector {
    inner: Arc<dyn DiskBackend>,
    cfg: FaultConfig,
    enabled: AtomicBool,
    rng: Mutex<SplitMix64>, // lockorder: leaf
    /// Pages whose next read passes clean (a transient read fault or a
    /// read-side bit flip just fired), so bounded retry always converges.
    skip_next_read: Mutex<HashSet<PageId>>, // lockorder: leaf
    /// Pages whose next write passes clean.
    skip_next_write: Mutex<HashSet<PageId>>, // lockorder: leaf
    /// Whether the next sync passes clean (a sync fault just fired).
    skip_next_sync: AtomicBool,
    /// Permanently unreadable pages.
    dead: Mutex<HashSet<PageId>>, // lockorder: leaf
    /// Pages whose persisted bytes were silently damaged and not yet
    /// overwritten by a later clean write.
    corrupted: Mutex<HashSet<PageId>>, // lockorder: leaf
    transient_read_errors: AtomicU64,
    transient_write_errors: AtomicU64,
    permanent_read_errors: AtomicU64,
    torn_writes: AtomicU64,
    bit_flips_write: AtomicU64,
    bit_flips_read: AtomicU64,
    sync_failures: AtomicU64,
}

impl FaultInjector {
    /// Wrap `inner` with the fault schedule `cfg`. Starts **enabled**.
    pub fn new(inner: Arc<dyn DiskBackend>, cfg: FaultConfig) -> FaultInjector {
        FaultInjector {
            inner,
            cfg,
            enabled: AtomicBool::new(true),
            rng: Mutex::new(SplitMix64(cfg.seed)),
            skip_next_read: Mutex::new(HashSet::new()),
            skip_next_write: Mutex::new(HashSet::new()),
            skip_next_sync: AtomicBool::new(false),
            dead: Mutex::new(HashSet::new()),
            corrupted: Mutex::new(HashSet::new()),
            transient_read_errors: AtomicU64::new(0),
            transient_write_errors: AtomicU64::new(0),
            permanent_read_errors: AtomicU64::new(0),
            torn_writes: AtomicU64::new(0),
            bit_flips_write: AtomicU64::new(0),
            bit_flips_read: AtomicU64::new(0),
            sync_failures: AtomicU64::new(0),
        }
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &Arc<dyn DiskBackend> {
        &self.inner
    }

    /// Turn fault injection on/off (e.g. load data clean, then unleash).
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Counts of faults fired so far.
    pub fn report(&self) -> FaultReport {
        FaultReport {
            transient_read_errors: self.transient_read_errors.load(Ordering::Relaxed),
            transient_write_errors: self.transient_write_errors.load(Ordering::Relaxed),
            permanent_read_errors: self.permanent_read_errors.load(Ordering::Relaxed),
            torn_writes: self.torn_writes.load(Ordering::Relaxed),
            bit_flips_write: self.bit_flips_write.load(Ordering::Relaxed),
            bit_flips_read: self.bit_flips_read.load(Ordering::Relaxed),
            sync_failures: self.sync_failures.load(Ordering::Relaxed),
        }
    }

    /// Pages whose persisted bytes are currently silently damaged (torn or
    /// bit-flipped, with no later clean overwrite). The chaos suite reads
    /// each of these back to prove checksum detection is exhaustive.
    pub fn corrupted_pages(&self) -> Vec<PageId> {
        let mut v: Vec<PageId> = self.corrupted.lock().iter().copied().collect();
        v.sort_unstable();
        v
    }

    /// Deterministically tear the persisted image of `id` right now
    /// (targeted-test hook; bypasses the probability schedule).
    pub fn force_torn_write(&self, id: PageId) -> Result<()> {
        let mut current = [0u8; PAGE_SIZE];
        self.inner.read_page(id, &mut current)?;
        let cut = {
            let mut rng = self.rng.lock();
            1 + rng.next_below(PAGE_SIZE - 1)
        };
        for b in current.iter_mut().skip(cut) {
            *b = !*b;
        }
        self.inner.write_page(id, &current)?;
        self.torn_writes.fetch_add(1, Ordering::Relaxed);
        self.corrupted.lock().insert(id);
        Ok(())
    }

    /// Deterministically flip one persisted bit of `id` right now
    /// (targeted-test hook; bypasses the probability schedule).
    pub fn force_bit_flip(&self, id: PageId) -> Result<()> {
        let mut current = [0u8; PAGE_SIZE];
        self.inner.read_page(id, &mut current)?;
        {
            let mut rng = self.rng.lock();
            let byte = rng.next_below(PAGE_SIZE);
            let bit = rng.next_below(8);
            current[byte] ^= 1 << bit;
        }
        self.inner.write_page(id, &current)?;
        self.bit_flips_write.fetch_add(1, Ordering::Relaxed);
        self.corrupted.lock().insert(id);
        Ok(())
    }

    fn roll(&self, p: f64) -> bool {
        p > 0.0 && self.rng.lock().next_f64() < p
    }
}

impl DiskBackend for FaultInjector {
    fn allocate_page(&self) -> PageId {
        self.inner.allocate_page()
    }

    fn deallocate_page(&self, id: PageId) -> Result<()> {
        self.corrupted.lock().remove(&id);
        self.inner.deallocate_page(id)
    }

    fn read_page(&self, id: PageId, buf: &mut PageData) -> Result<()> {
        if !self.is_enabled() {
            return self.inner.read_page(id, buf);
        }
        if self.dead.lock().contains(&id) {
            return Err(EvoptError::Io(format!(
                "injected permanent read failure on page {id}"
            )));
        }
        if self.skip_next_read.lock().remove(&id) {
            return self.inner.read_page(id, buf);
        }
        if self.roll(self.cfg.permanent_read_error) {
            self.dead.lock().insert(id);
            self.permanent_read_errors.fetch_add(1, Ordering::Relaxed);
            return Err(EvoptError::Io(format!(
                "injected permanent read failure on page {id}"
            )));
        }
        if self.roll(self.cfg.read_error) {
            self.skip_next_read.lock().insert(id);
            self.transient_read_errors.fetch_add(1, Ordering::Relaxed);
            return Err(EvoptError::Io(format!(
                "injected transient read error on page {id}"
            )));
        }
        self.inner.read_page(id, buf)?;
        if self.roll(self.cfg.bit_flip_read) {
            let (byte, bit) = {
                let mut rng = self.rng.lock();
                (rng.next_below(PAGE_SIZE), rng.next_below(8))
            };
            buf[byte] ^= 1 << bit;
            // Persisted bytes are fine; let the verifying retry through.
            self.skip_next_read.lock().insert(id);
            self.bit_flips_read.fetch_add(1, Ordering::Relaxed);
        }
        Ok(())
    }

    fn write_page(&self, id: PageId, buf: &PageData) -> Result<()> {
        if !self.is_enabled() {
            self.inner.write_page(id, buf)?;
            self.corrupted.lock().remove(&id);
            return Ok(());
        }
        if self.dead.lock().contains(&id) {
            return Err(EvoptError::Io(format!(
                "injected permanent failure on page {id}"
            )));
        }
        if self.skip_next_write.lock().remove(&id) {
            self.inner.write_page(id, buf)?;
            self.corrupted.lock().remove(&id);
            return Ok(());
        }
        if self.roll(self.cfg.write_error) {
            self.skip_next_write.lock().insert(id);
            self.transient_write_errors.fetch_add(1, Ordering::Relaxed);
            return Err(EvoptError::Io(format!(
                "injected transient write error on page {id}"
            )));
        }
        if self.roll(self.cfg.torn_write) {
            // Persist only a prefix; the suffix keeps its previous bytes.
            let mut torn = [0u8; PAGE_SIZE];
            self.inner.read_page(id, &mut torn)?;
            let cut = 1 + self.rng.lock().next_below(PAGE_SIZE - 1);
            torn[..cut].copy_from_slice(&buf[..cut]);
            if torn == *buf {
                // The stale suffix happened to match the new bytes — the
                // tear is a no-op; treat it as a clean write.
                self.inner.write_page(id, buf)?;
                self.corrupted.lock().remove(&id);
                return Ok(());
            }
            self.inner.write_page(id, &torn)?;
            self.torn_writes.fetch_add(1, Ordering::Relaxed);
            self.corrupted.lock().insert(id);
            return Ok(());
        }
        if self.roll(self.cfg.bit_flip_write) {
            let mut flipped = *buf;
            let (byte, bit) = {
                let mut rng = self.rng.lock();
                (rng.next_below(PAGE_SIZE), rng.next_below(8))
            };
            flipped[byte] ^= 1 << bit;
            self.inner.write_page(id, &flipped)?;
            self.bit_flips_write.fetch_add(1, Ordering::Relaxed);
            self.corrupted.lock().insert(id);
            return Ok(());
        }
        self.inner.write_page(id, buf)?;
        self.corrupted.lock().remove(&id);
        Ok(())
    }

    fn sync(&self) -> Result<()> {
        if !self.is_enabled() {
            return self.inner.sync();
        }
        if self.skip_next_sync.swap(false, Ordering::Relaxed) {
            return self.inner.sync();
        }
        if self.roll(self.cfg.sync_error) {
            self.skip_next_sync.store(true, Ordering::Relaxed);
            self.sync_failures.fetch_add(1, Ordering::Relaxed);
            return Err(EvoptError::Io("injected sync failure".into()));
        }
        self.inner.sync()
    }

    fn page_count(&self) -> u64 {
        self.inner.page_count()
    }

    fn snapshot(&self) -> IoSnapshot {
        let base = self.inner.snapshot();
        let r = self.report();
        IoSnapshot {
            read_faults: r.transient_read_errors + r.permanent_read_errors + r.bit_flips_read,
            write_faults: r.transient_write_errors + r.silent_corruptions() + r.sync_failures,
            ..base
        }
    }

    fn reset_stats(&self) {
        self.inner.reset_stats();
        self.transient_read_errors.store(0, Ordering::Relaxed);
        self.transient_write_errors.store(0, Ordering::Relaxed);
        self.permanent_read_errors.store(0, Ordering::Relaxed);
        self.torn_writes.store(0, Ordering::Relaxed);
        self.bit_flips_write.store(0, Ordering::Relaxed);
        self.bit_flips_read.store(0, Ordering::Relaxed);
        self.sync_failures.store(0, Ordering::Relaxed);
    }
}

/// Process-death simulator: allows a budget of N *mutating* operations
/// (`write_page`, `sync`, `deallocate_page`), then fails that op and every
/// subsequent I/O — reads included — as if the process died mid-call.
///
/// Operations are atomic: a write either lands fully or not at all (torn
/// writes are the [`FaultInjector`]'s job; composing the two models both).
/// `allocate_page` always succeeds — in the simulation, allocation only
/// grows the address space and persists no data, so there is nothing for a
/// crash to tear; the first write to the new page consumes budget normally.
///
/// The crash-point torture suite sweeps the budget N across a write
/// workload, then re-opens a `Database` over [`CrashingBackend::inner`] —
/// the surviving platter — and asserts recovery restores exactly the
/// committed prefix.
pub struct CrashingBackend {
    inner: Arc<dyn DiskBackend>,
    /// Mutating ops still allowed before the simulated death.
    remaining: AtomicU64,
    crashed: AtomicBool,
    /// Mutating ops attempted (pre-crash ones that consumed budget).
    mutations: AtomicU64,
}

impl CrashingBackend {
    /// Wrap `inner`, allowing `budget` mutating ops before the crash.
    pub fn new(inner: Arc<dyn DiskBackend>, budget: u64) -> CrashingBackend {
        CrashingBackend {
            inner,
            remaining: AtomicU64::new(budget),
            crashed: AtomicBool::new(false),
            mutations: AtomicU64::new(0),
        }
    }

    /// A wrapper that never crashes but still counts mutating ops — used to
    /// size the sweep (run once, read [`CrashingBackend::mutation_ops`]).
    pub fn unlimited(inner: Arc<dyn DiskBackend>) -> CrashingBackend {
        CrashingBackend::new(inner, u64::MAX)
    }

    /// The wrapped backend: the bytes that survived the crash.
    pub fn inner(&self) -> &Arc<dyn DiskBackend> {
        &self.inner
    }

    /// Whether the budget has been exhausted.
    pub fn has_crashed(&self) -> bool {
        self.crashed.load(Ordering::Relaxed)
    }

    /// Mutating operations that completed before the crash.
    pub fn mutation_ops(&self) -> u64 {
        self.mutations.load(Ordering::Relaxed)
    }

    fn dead(&self) -> EvoptError {
        EvoptError::Io("simulated crash: backend is dead".into())
    }

    /// Spend one unit of mutation budget; the op that exhausts it dies.
    fn consume(&self) -> Result<()> {
        if self.has_crashed() {
            return Err(self.dead());
        }
        let prev = self.remaining.fetch_sub(1, Ordering::Relaxed);
        if prev == 0 {
            // Undo the wrap and stay crashed.
            self.remaining.store(0, Ordering::Relaxed);
            self.crashed.store(true, Ordering::Relaxed);
            return Err(self.dead());
        }
        self.mutations.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }
}

impl DiskBackend for CrashingBackend {
    fn allocate_page(&self) -> PageId {
        self.inner.allocate_page()
    }

    fn deallocate_page(&self, id: PageId) -> Result<()> {
        self.consume()?;
        self.inner.deallocate_page(id)
    }

    fn read_page(&self, id: PageId, buf: &mut PageData) -> Result<()> {
        if self.has_crashed() {
            return Err(self.dead());
        }
        self.inner.read_page(id, buf)
    }

    fn write_page(&self, id: PageId, buf: &PageData) -> Result<()> {
        self.consume()?;
        self.inner.write_page(id, buf)
    }

    fn sync(&self) -> Result<()> {
        self.consume()?;
        self.inner.sync()
    }

    fn page_count(&self) -> u64 {
        self.inner.page_count()
    }

    fn snapshot(&self) -> IoSnapshot {
        self.inner.snapshot()
    }

    fn reset_stats(&self) {
        self.inner.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use crate::disk::DiskManager;

    fn injected(cfg: FaultConfig) -> (Arc<DiskManager>, FaultInjector) {
        let disk = Arc::new(DiskManager::new());
        let inj = FaultInjector::new(Arc::clone(&disk) as Arc<dyn DiskBackend>, cfg);
        (disk, inj)
    }

    #[test]
    fn disabled_injector_is_transparent() {
        let (_, inj) = injected(FaultConfig::chaos(1));
        inj.set_enabled(false);
        let id = inj.allocate_page();
        let mut buf = [7u8; PAGE_SIZE];
        for _ in 0..200 {
            inj.write_page(id, &buf).unwrap();
            inj.read_page(id, &mut buf).unwrap();
            assert!(buf.iter().all(|&b| b == 7));
        }
        assert_eq!(inj.report().total(), 0);
    }

    #[test]
    fn transient_read_error_heals_on_retry() {
        let cfg = FaultConfig {
            seed: 42,
            read_error: 1.0,
            ..Default::default()
        };
        let (_, inj) = injected(cfg);
        let id = inj.allocate_page();
        let data = [9u8; PAGE_SIZE];
        inj.write_page(id, &data).unwrap();
        let mut out = [0u8; PAGE_SIZE];
        let err = inj.read_page(id, &mut out).unwrap_err();
        assert_eq!(err.kind(), "io");
        // The very next attempt passes clean.
        inj.read_page(id, &mut out).unwrap();
        assert_eq!(out[0], 9);
        assert_eq!(inj.report().transient_read_errors, 1);
    }

    #[test]
    fn transient_write_error_heals_on_retry() {
        let cfg = FaultConfig {
            seed: 7,
            write_error: 1.0,
            ..Default::default()
        };
        let (_, inj) = injected(cfg);
        let id = inj.allocate_page();
        let data = [3u8; PAGE_SIZE];
        assert_eq!(inj.write_page(id, &data).unwrap_err().kind(), "io");
        inj.write_page(id, &data).unwrap();
        let mut out = [0u8; PAGE_SIZE];
        // Reads are unaffected by a pure write-error schedule.
        inj.read_page(id, &mut out).unwrap();
        assert_eq!(out[0], 3);
    }

    #[test]
    fn permanent_fault_keeps_failing() {
        let cfg = FaultConfig {
            seed: 5,
            permanent_read_error: 1.0,
            ..Default::default()
        };
        let (_, inj) = injected(cfg);
        let id = inj.allocate_page();
        inj.write_page(id, &[1u8; PAGE_SIZE]).unwrap();
        let mut out = [0u8; PAGE_SIZE];
        for _ in 0..5 {
            assert_eq!(inj.read_page(id, &mut out).unwrap_err().kind(), "io");
        }
        assert_eq!(inj.report().permanent_read_errors, 1);
    }

    #[test]
    fn torn_write_persists_prefix_only_and_is_tracked() {
        let cfg = FaultConfig {
            seed: 11,
            torn_write: 1.0,
            ..Default::default()
        };
        let (disk, inj) = injected(cfg);
        let id = inj.allocate_page();
        let intended = [0xAAu8; PAGE_SIZE];
        inj.write_page(id, &intended).unwrap(); // reports success
        let mut persisted = [0u8; PAGE_SIZE];
        disk.read_page(id, &mut persisted).unwrap();
        assert_ne!(persisted, intended, "tear must damage the image");
        assert_eq!(persisted[0], 0xAA, "prefix must persist");
        assert_eq!(inj.corrupted_pages(), vec![id]);
        // A later clean write repairs the page and clears tracking.
        inj.set_enabled(false);
        inj.write_page(id, &intended).unwrap();
        assert!(inj.corrupted_pages().is_empty());
    }

    #[test]
    fn bit_flip_write_damages_exactly_one_bit() {
        let cfg = FaultConfig {
            seed: 13,
            bit_flip_write: 1.0,
            ..Default::default()
        };
        let (disk, inj) = injected(cfg);
        let id = inj.allocate_page();
        let intended = [0u8; PAGE_SIZE];
        inj.write_page(id, &intended).unwrap();
        let mut persisted = [0u8; PAGE_SIZE];
        disk.read_page(id, &mut persisted).unwrap();
        let flipped_bits: u32 = persisted.iter().map(|b| b.count_ones()).sum();
        assert_eq!(flipped_bits, 1);
        assert_eq!(inj.corrupted_pages(), vec![id]);
    }

    #[test]
    fn bit_flip_read_is_transient() {
        let cfg = FaultConfig {
            seed: 17,
            bit_flip_read: 1.0,
            ..Default::default()
        };
        let (_, inj) = injected(cfg);
        let id = inj.allocate_page();
        inj.write_page(id, &[0u8; PAGE_SIZE]).unwrap();
        let mut out = [0u8; PAGE_SIZE];
        inj.read_page(id, &mut out).unwrap();
        let damaged: u32 = out.iter().map(|b| b.count_ones()).sum();
        assert_eq!(damaged, 1, "one bit flipped in the returned buffer");
        // The persisted page is intact: the next read is exempted.
        inj.read_page(id, &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 0));
    }

    #[test]
    fn schedule_is_deterministic_per_seed() {
        let run = |seed: u64| -> (FaultReport, Vec<PageId>) {
            let (_, inj) = injected(FaultConfig::chaos(seed));
            let ids: Vec<PageId> = (0..16).map(|_| inj.allocate_page()).collect();
            let mut out = [0u8; PAGE_SIZE];
            for round in 0..50u8 {
                for &id in &ids {
                    let _ = inj.write_page(id, &[round; PAGE_SIZE]);
                    let _ = inj.read_page(id, &mut out);
                }
            }
            (inj.report(), inj.corrupted_pages())
        };
        assert_eq!(run(99), run(99));
        assert_ne!(run(99).0, run(100).0, "different seeds, different schedule");
    }

    #[test]
    fn sync_failure_heals_on_retry_and_is_counted() {
        let cfg = FaultConfig {
            seed: 21,
            sync_error: 1.0,
            ..Default::default()
        };
        let (disk, inj) = injected(cfg);
        let before = inj.snapshot();
        assert_eq!(inj.sync().unwrap_err().kind(), "io");
        // The very next barrier passes clean and reaches the inner disk.
        inj.sync().unwrap();
        assert_eq!(disk.snapshot().syncs, 1);
        let delta = inj.snapshot().since(&before);
        assert_eq!(delta.syncs, 1);
        assert_eq!(delta.write_faults, 1);
        assert_eq!(inj.report().sync_failures, 1);
        // Disabled injector never rolls sync faults.
        inj.set_enabled(false);
        for _ in 0..50 {
            inj.sync().unwrap();
        }
        assert_eq!(inj.report().sync_failures, 1);
    }

    #[test]
    fn crashing_backend_dies_after_budget() {
        let disk = Arc::new(DiskManager::new());
        let crash = CrashingBackend::new(Arc::clone(&disk) as Arc<dyn DiskBackend>, 3);
        let id = crash.allocate_page();
        let buf = [5u8; PAGE_SIZE];
        crash.write_page(id, &buf).unwrap(); // 1
        crash.sync().unwrap(); // 2
        crash.write_page(id, &buf).unwrap(); // 3
        assert!(!crash.has_crashed());
        assert_eq!(crash.mutation_ops(), 3);
        // The 4th mutating op dies, and everything after it — reads too.
        assert_eq!(crash.write_page(id, &buf).unwrap_err().kind(), "io");
        assert!(crash.has_crashed());
        let mut out = [0u8; PAGE_SIZE];
        assert!(crash.read_page(id, &mut out).is_err());
        assert!(crash.sync().is_err());
        assert_eq!(crash.mutation_ops(), 3, "post-crash ops consume nothing");
        // The inner platter holds exactly the pre-crash bytes.
        disk.read_page(id, &mut out).unwrap();
        assert_eq!(out[0], 5);
    }

    #[test]
    fn crashing_backend_zero_budget_fails_first_mutation() {
        let disk = Arc::new(DiskManager::new());
        let crash = CrashingBackend::new(disk as Arc<dyn DiskBackend>, 0);
        let id = crash.allocate_page(); // allocation is exempt
        let mut out = [0u8; PAGE_SIZE];
        crash.read_page(id, &mut out).unwrap(); // reads pass until death
        assert!(crash.write_page(id, &out).is_err());
        assert!(crash.has_crashed());
        assert!(crash.read_page(id, &mut out).is_err());
    }

    #[test]
    fn crashing_backend_unlimited_counts_without_dying() {
        let disk = Arc::new(DiskManager::new());
        let crash = CrashingBackend::unlimited(disk as Arc<dyn DiskBackend>);
        let id = crash.allocate_page();
        let buf = [0u8; PAGE_SIZE];
        for _ in 0..100 {
            crash.write_page(id, &buf).unwrap();
        }
        crash.sync().unwrap();
        assert!(!crash.has_crashed());
        assert_eq!(crash.mutation_ops(), 101);
    }

    #[test]
    fn snapshot_carries_fault_counters() {
        let cfg = FaultConfig {
            seed: 3,
            read_error: 1.0,
            ..Default::default()
        };
        let (_, inj) = injected(cfg);
        let id = inj.allocate_page();
        inj.write_page(id, &[0u8; PAGE_SIZE]).unwrap();
        let mut out = [0u8; PAGE_SIZE];
        let before = inj.snapshot();
        let _ = inj.read_page(id, &mut out); // fails
        inj.read_page(id, &mut out).unwrap(); // heals
        let delta = inj.snapshot().since(&before);
        assert_eq!(delta.read_faults, 1);
        assert_eq!(delta.reads, 1, "only the successful read is physical");
        assert_eq!(delta.total_faults(), 1);
    }
}
