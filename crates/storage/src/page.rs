//! Slotted pages.
//!
//! Every page is [`PAGE_SIZE`] bytes. A slotted page stores variable-length
//! records with this layout:
//!
//! ```text
//! offset 0   [u16] slot count
//! offset 2   [u16] free-space pointer (data grows down from USABLE_PAGE_SIZE)
//! offset 4   [u64] next page id (heap-file chaining; INVALID_PAGE_ID = none)
//! offset 12  slot array, 4 bytes each: [u16 record offset][u16 record len]
//! ...        free space
//! free_ptr.. record data, packed towards the end of the page
//! ```
//!
//! A deleted record's slot keeps its index (so [`Rid`]s of other records stay
//! stable) with offset = `DEAD_SLOT`.
//!
//! The last eight bytes of *every* page are reserved for the page LSN
//! trailer (see [`page_lsn`]): the WAL sequence number of the last logged
//! write that covered this page. Recovery replays a redo record only when
//! the on-disk page's LSN is older, which makes replay idempotent. Page
//! payloads therefore end at [`USABLE_PAGE_SIZE`], not [`PAGE_SIZE`].

use evopt_common::{EvoptError, Result};

/// Size of every page, in bytes. 4 KiB mirrors the classic DBMS setting and
/// gives ~60 Wisconsin-style tuples per page.
pub const PAGE_SIZE: usize = 4096;

/// Byte offset of the 8-byte page LSN trailer (little-endian u64 in the
/// last eight bytes of the page).
pub const PAGE_LSN_OFFSET: usize = PAGE_SIZE - 8;

/// Bytes usable by page payloads: everything before the LSN trailer.
pub const USABLE_PAGE_SIZE: usize = PAGE_LSN_OFFSET;

/// Identifies a page on the disk.
pub type PageId = u64;

/// Sentinel for "no page".
pub const INVALID_PAGE_ID: PageId = u64::MAX;

/// Raw page bytes.
pub type PageData = [u8; PAGE_SIZE];

/// Read the page LSN trailer: sequence number of the last WAL record that
/// covered this page (0 = never logged; fresh pages are zeroed).
pub fn page_lsn(data: &PageData) -> u64 {
    let mut bytes = [0u8; 8];
    bytes.copy_from_slice(&data[PAGE_LSN_OFFSET..]);
    u64::from_le_bytes(bytes)
}

/// Stamp the page LSN trailer. Called by the WAL at commit, just before the
/// page image is captured into a redo record.
pub fn set_page_lsn(data: &mut PageData, lsn: u64) {
    data[PAGE_LSN_OFFSET..].copy_from_slice(&lsn.to_le_bytes());
}

/// A record id: which page, which slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Rid {
    pub page: PageId,
    pub slot: u16,
}

impl Rid {
    pub fn new(page: PageId, slot: u16) -> Self {
        Rid { page, slot }
    }
}

impl std::fmt::Display for Rid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}:{})", self.page, self.slot)
    }
}

const HEADER_SIZE: usize = 12;
const SLOT_SIZE: usize = 4;
const DEAD_SLOT: u16 = u16::MAX;

/// Mutable slotted-page view over raw page bytes.
///
/// The view is a thin wrapper — all state lives in the page bytes, so a view
/// can be re-created freely from buffer-pool frames.
pub struct SlottedPage<'a> {
    data: &'a mut PageData,
}

impl<'a> SlottedPage<'a> {
    /// Wrap existing page bytes (must already be initialised).
    pub fn new(data: &'a mut PageData) -> Self {
        SlottedPage { data }
    }

    /// Initialise fresh page bytes as an empty slotted page.
    pub fn init(data: &'a mut PageData) -> Self {
        data[..HEADER_SIZE].fill(0);
        let mut p = SlottedPage { data };
        p.set_slot_count(0);
        p.set_free_ptr(USABLE_PAGE_SIZE as u16);
        p.set_next_page(INVALID_PAGE_ID);
        p
    }

    fn u16_at(&self, off: usize) -> u16 {
        u16::from_le_bytes([self.data[off], self.data[off + 1]])
    }

    fn set_u16_at(&mut self, off: usize, v: u16) {
        self.data[off..off + 2].copy_from_slice(&v.to_le_bytes());
    }

    pub fn slot_count(&self) -> u16 {
        self.u16_at(0)
    }

    fn set_slot_count(&mut self, v: u16) {
        self.set_u16_at(0, v);
    }

    fn free_ptr(&self) -> u16 {
        self.u16_at(2)
    }

    fn set_free_ptr(&mut self, v: u16) {
        self.set_u16_at(2, v);
    }

    /// Next page in the heap-file chain.
    pub fn next_page(&self) -> PageId {
        let mut bytes = [0u8; 8];
        bytes.copy_from_slice(&self.data[4..12]);
        u64::from_le_bytes(bytes)
    }

    pub fn set_next_page(&mut self, id: PageId) {
        self.data[4..12].copy_from_slice(&id.to_le_bytes());
    }

    fn slot(&self, idx: u16) -> (u16, u16) {
        let off = HEADER_SIZE + idx as usize * SLOT_SIZE;
        (self.u16_at(off), self.u16_at(off + 2))
    }

    fn set_slot(&mut self, idx: u16, offset: u16, len: u16) {
        let off = HEADER_SIZE + idx as usize * SLOT_SIZE;
        self.set_u16_at(off, offset);
        self.set_u16_at(off + 2, len);
    }

    /// Bytes available for a new record (including its slot entry).
    pub fn free_space(&self) -> usize {
        let used_by_slots = HEADER_SIZE + self.slot_count() as usize * SLOT_SIZE;
        (self.free_ptr() as usize).saturating_sub(used_by_slots)
    }

    /// Whether a record of `len` bytes fits.
    pub fn fits(&self, len: usize) -> bool {
        self.free_space() >= len + SLOT_SIZE
    }

    /// Insert a record, returning its slot index.
    pub fn insert(&mut self, record: &[u8]) -> Result<u16> {
        if record.len() > u16::MAX as usize {
            return Err(EvoptError::Storage(format!(
                "record of {} bytes exceeds maximum",
                record.len()
            )));
        }
        if !self.fits(record.len()) {
            return Err(EvoptError::Storage("page full".into()));
        }
        let slot = self.slot_count();
        let new_free = self.free_ptr() as usize - record.len();
        self.data[new_free..new_free + record.len()].copy_from_slice(record);
        self.set_free_ptr(new_free as u16);
        self.set_slot(slot, new_free as u16, record.len() as u16);
        self.set_slot_count(slot + 1);
        Ok(slot)
    }

    /// Read the record in `slot`; `None` if the slot was deleted.
    pub fn get(&self, slot: u16) -> Result<Option<&[u8]>> {
        if slot >= self.slot_count() {
            return Err(EvoptError::Storage(format!(
                "slot {slot} out of range (page has {})",
                self.slot_count()
            )));
        }
        let (off, len) = self.slot(slot);
        if off == DEAD_SLOT {
            return Ok(None);
        }
        Ok(Some(&self.data[off as usize..off as usize + len as usize]))
    }

    /// Mark the record in `slot` deleted. Space is reclaimed only on
    /// `compact` (not implemented — heap files are append-mostly).
    pub fn delete(&mut self, slot: u16) -> Result<()> {
        if slot >= self.slot_count() {
            return Err(EvoptError::Storage(format!("slot {slot} out of range")));
        }
        self.set_slot(slot, DEAD_SLOT, 0);
        Ok(())
    }

    /// Iterate live (slot, record) pairs.
    pub fn records(&self) -> impl Iterator<Item = (u16, &[u8])> + '_ {
        (0..self.slot_count()).filter_map(move |s| {
            let (off, len) = self.slot(s);
            if off == DEAD_SLOT {
                None
            } else {
                Some((s, &self.data[off as usize..off as usize + len as usize]))
            }
        })
    }

    /// Number of live records.
    pub fn live_count(&self) -> usize {
        (0..self.slot_count())
            .filter(|&s| self.slot(s).0 != DEAD_SLOT)
            .count()
    }
}

/// Read-only view over slotted-page bytes.
///
/// [`SlottedPage`] requires `&mut PageData`, which forces callers through
/// [`crate::buffer::PageGuard::write`] — and *that* marks the page dirty.
/// Read paths (scans, point lookups) going through the mutable view
/// therefore dirtied every page they touched, turning clean evictions into
/// physical write-backs. This view borrows the bytes immutably so read
/// paths compose with [`crate::buffer::PageGuard::read`] and leave the
/// dirty bit alone.
pub struct SlottedPageView<'a> {
    data: &'a PageData,
}

impl<'a> SlottedPageView<'a> {
    /// Wrap existing page bytes (must already be initialised).
    pub fn new(data: &'a PageData) -> Self {
        SlottedPageView { data }
    }

    fn u16_at(&self, off: usize) -> u16 {
        u16::from_le_bytes([self.data[off], self.data[off + 1]])
    }

    pub fn slot_count(&self) -> u16 {
        self.u16_at(0)
    }

    /// Next page in the heap-file chain.
    pub fn next_page(&self) -> PageId {
        let mut bytes = [0u8; 8];
        bytes.copy_from_slice(&self.data[4..12]);
        u64::from_le_bytes(bytes)
    }

    fn slot(&self, idx: u16) -> (u16, u16) {
        let off = HEADER_SIZE + idx as usize * SLOT_SIZE;
        (self.u16_at(off), self.u16_at(off + 2))
    }

    /// Read the record in `slot`; `None` if the slot was deleted.
    pub fn get(&self, slot: u16) -> Result<Option<&'a [u8]>> {
        if slot >= self.slot_count() {
            return Err(EvoptError::Storage(format!(
                "slot {slot} out of range (page has {})",
                self.slot_count()
            )));
        }
        let (off, len) = self.slot(slot);
        if off == DEAD_SLOT {
            return Ok(None);
        }
        Ok(Some(&self.data[off as usize..off as usize + len as usize]))
    }

    /// Iterate live (slot, record) pairs.
    pub fn records(&self) -> impl Iterator<Item = (u16, &'a [u8])> + '_ {
        (0..self.slot_count()).filter_map(move |s| {
            let (off, len) = self.slot(s);
            if off == DEAD_SLOT {
                None
            } else {
                Some((s, &self.data[off as usize..off as usize + len as usize]))
            }
        })
    }

    /// Number of live records.
    pub fn live_count(&self) -> usize {
        (0..self.slot_count())
            .filter(|&s| self.slot(s).0 != DEAD_SLOT)
            .count()
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use proptest::prelude::*;

    fn fresh() -> Box<PageData> {
        Box::new([0u8; PAGE_SIZE])
    }

    #[test]
    fn insert_and_get() {
        let mut data = fresh();
        let mut p = SlottedPage::init(&mut data);
        let s0 = p.insert(b"hello").unwrap();
        let s1 = p.insert(b"world!").unwrap();
        assert_eq!(s0, 0);
        assert_eq!(s1, 1);
        assert_eq!(p.get(0).unwrap(), Some(&b"hello"[..]));
        assert_eq!(p.get(1).unwrap(), Some(&b"world!"[..]));
        assert_eq!(p.live_count(), 2);
    }

    #[test]
    fn delete_keeps_other_slots_stable() {
        let mut data = fresh();
        let mut p = SlottedPage::init(&mut data);
        p.insert(b"a").unwrap();
        p.insert(b"b").unwrap();
        p.insert(b"c").unwrap();
        p.delete(1).unwrap();
        assert_eq!(p.get(0).unwrap(), Some(&b"a"[..]));
        assert_eq!(p.get(1).unwrap(), None);
        assert_eq!(p.get(2).unwrap(), Some(&b"c"[..]));
        assert_eq!(p.live_count(), 2);
        let collected: Vec<_> = p.records().map(|(s, _)| s).collect();
        assert_eq!(collected, vec![0, 2]);
    }

    #[test]
    fn out_of_range_slot_errors() {
        let mut data = fresh();
        let mut p = SlottedPage::init(&mut data);
        assert!(p.get(0).is_err());
        assert!(p.delete(0).is_err());
    }

    #[test]
    fn page_fills_up_then_rejects() {
        let mut data = fresh();
        let mut p = SlottedPage::init(&mut data);
        let rec = [7u8; 100];
        let mut n = 0;
        while p.fits(rec.len()) {
            p.insert(&rec).unwrap();
            n += 1;
        }
        // 100-byte records + 4-byte slots: ~39 fit in 4076 usable bytes.
        assert!(n >= 35, "expected dozens of records, got {n}");
        assert!(p.insert(&rec).is_err());
        // Everything is still readable after filling.
        for s in 0..p.slot_count() {
            assert_eq!(p.get(s).unwrap(), Some(&rec[..]));
        }
    }

    #[test]
    fn lsn_trailer_roundtrips_and_survives_records() {
        let mut data = fresh();
        assert_eq!(page_lsn(&data), 0);
        set_page_lsn(&mut data, 0xDEAD_BEEF_0042);
        let mut p = SlottedPage::init(&mut data);
        // Fill the page completely; no record may clobber the trailer.
        let rec = [0xFFu8; 64];
        while p.fits(rec.len()) {
            p.insert(&rec).unwrap();
        }
        assert_eq!(page_lsn(&data), 0xDEAD_BEEF_0042);
        set_page_lsn(&mut data, u64::MAX);
        assert_eq!(page_lsn(&data), u64::MAX);
        // And the trailer write did not disturb the last record.
        let p = SlottedPage::new(&mut data);
        assert_eq!(p.get(0).unwrap(), Some(&rec[..]));
    }

    #[test]
    fn next_page_chain_roundtrips() {
        let mut data = fresh();
        let mut p = SlottedPage::init(&mut data);
        assert_eq!(p.next_page(), INVALID_PAGE_ID);
        p.set_next_page(42);
        assert_eq!(p.next_page(), 42);
    }

    #[test]
    fn view_recreated_from_bytes_sees_same_state() {
        let mut data = fresh();
        {
            let mut p = SlottedPage::init(&mut data);
            p.insert(b"persist").unwrap();
        }
        let p = SlottedPage::new(&mut data);
        assert_eq!(p.get(0).unwrap(), Some(&b"persist"[..]));
        assert_eq!(p.slot_count(), 1);
    }

    proptest! {
        /// Insert random records until full; every record must read back
        /// bit-exactly and free_space must never underflow.
        #[test]
        fn prop_insert_readback(records in prop::collection::vec(
            prop::collection::vec(any::<u8>(), 0..512), 1..80)) {
            let mut data = fresh();
            let mut p = SlottedPage::init(&mut data);
            let mut stored = Vec::new();
            for r in &records {
                if p.fits(r.len()) {
                    let s = p.insert(r).unwrap();
                    stored.push((s, r.clone()));
                } else {
                    prop_assert!(p.insert(r).is_err());
                }
            }
            for (s, r) in &stored {
                prop_assert_eq!(p.get(*s).unwrap(), Some(&r[..]));
            }
        }

        /// Random interleaving of inserts and deletes preserves the live set.
        #[test]
        fn prop_insert_delete_model(ops in prop::collection::vec(
            (any::<bool>(), prop::collection::vec(any::<u8>(), 1..64)), 1..120)) {
            let mut data = fresh();
            let mut p = SlottedPage::init(&mut data);
            let mut model: Vec<Option<Vec<u8>>> = Vec::new();
            for (is_delete, bytes) in ops {
                if is_delete && !model.is_empty() {
                    let idx = (bytes[0] as usize) % model.len();
                    p.delete(idx as u16).unwrap();
                    model[idx] = None;
                } else if p.fits(bytes.len()) {
                    let s = p.insert(&bytes).unwrap();
                    prop_assert_eq!(s as usize, model.len());
                    model.push(Some(bytes));
                }
            }
            prop_assert_eq!(p.live_count(), model.iter().flatten().count());
            for (i, m) in model.iter().enumerate() {
                prop_assert_eq!(p.get(i as u16).unwrap(), m.as_deref());
            }
        }
    }
}
