//! # evopt-storage
//!
//! The paged storage engine beneath the `evopt` query engine.
//!
//! The 1977-era optimization problem is fundamentally about **page
//! fetches**: the cost model predicts how many pages a plan touches, and the
//! whole point of this crate is to make those predictions *checkable*. Every
//! component therefore accounts for its I/O:
//!
//! * [`disk::DiskManager`] — a simulated disk (in-memory page array) that
//!   counts physical reads/writes. Substitutes for 1977 spinning rust; the
//!   optimization problem is invariant to the absolute latency constant
//!   (see DESIGN.md §5).
//! * [`page`] — 4 KiB slotted pages storing variable-length records.
//! * [`buffer::BufferPool`] — a pin-counted frame cache over the disk with
//!   pluggable replacement ([`buffer::PolicyKind`]: LRU or Clock).
//!   Cache hits cost no physical I/O, so measured I/O depends on pool size —
//!   exactly the effect experiment F4 studies.
//! * [`heap::HeapFile`] — unordered tuple storage, the base for every table.
//! * [`btree::BTreeIndex`] — a paged B+-tree mapping single-column keys to
//!   [`page::Rid`]s, supporting duplicates, equality and range scans; its
//!   height feeds the optimizer's index-probe cost.

//! * [`fault::FaultInjector`] — a deterministic fault-injecting
//!   [`disk::DiskBackend`] wrapper (I/O errors, torn writes, bit flips)
//!   used by the chaos suite; page CRC-32 checksums ([`checksum`]) stamped
//!   and verified by the buffer pool turn silent corruption into typed
//!   `Corruption` errors.
//! * [`wal::Wal`] — a redo-only write-ahead log (full page images, CRC-32
//!   per record, torn-tail truncation) with fuzzy checkpoints and
//!   idempotent crash recovery; it enforces log-before-data through the
//!   pool's [`buffer::FlushGate`]. [`fault::CrashingBackend`] models
//!   process death for the crash-point torture suite.

// Library code must not panic on fault paths: unwrap/expect are banned
// outside tests (each test module opts back in locally).
#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod btree;
pub mod buffer;
pub mod checksum;
pub mod disk;
pub mod fault;
pub mod heap;
pub mod page;
pub mod wal;

pub use btree::BTreeIndex;
pub use buffer::{BufferPool, FlushGate, PolicyKind, PoolSnapshot};
pub use checksum::crc32;
pub use disk::{DiskBackend, DiskManager, IoSnapshot};
pub use fault::{CrashingBackend, FaultConfig, FaultInjector, FaultReport};
pub use heap::HeapFile;
pub use page::{PageId, Rid, INVALID_PAGE_ID, PAGE_SIZE, USABLE_PAGE_SIZE};
pub use wal::{
    CatalogImage, ColumnImage, IndexImage, Lsn, RecoveryInfo, TableImage, Wal, WalStats,
};
