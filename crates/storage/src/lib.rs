//! # evopt-storage
//!
//! The paged storage engine beneath the `evopt` query engine.
//!
//! The 1977-era optimization problem is fundamentally about **page
//! fetches**: the cost model predicts how many pages a plan touches, and the
//! whole point of this crate is to make those predictions *checkable*. Every
//! component therefore accounts for its I/O:
//!
//! * [`disk::DiskManager`] — a simulated disk (in-memory page array) that
//!   counts physical reads/writes. Substitutes for 1977 spinning rust; the
//!   optimization problem is invariant to the absolute latency constant
//!   (see DESIGN.md §5).
//! * [`page`] — 4 KiB slotted pages storing variable-length records.
//! * [`buffer::BufferPool`] — a pin-counted frame cache over the disk with
//!   pluggable replacement ([`buffer::PolicyKind`]: LRU or Clock).
//!   Cache hits cost no physical I/O, so measured I/O depends on pool size —
//!   exactly the effect experiment F4 studies.
//! * [`heap::HeapFile`] — unordered tuple storage, the base for every table.
//! * [`btree::BTreeIndex`] — a paged B+-tree mapping single-column keys to
//!   [`page::Rid`]s, supporting duplicates, equality and range scans; its
//!   height feeds the optimizer's index-probe cost.

pub mod btree;
pub mod buffer;
pub mod disk;
pub mod heap;
pub mod page;

pub use btree::BTreeIndex;
pub use buffer::{BufferPool, PolicyKind, PoolSnapshot};
pub use disk::{DiskManager, IoSnapshot};
pub use heap::HeapFile;
pub use page::{PageId, Rid, INVALID_PAGE_ID, PAGE_SIZE};
