//! CRC-32 page checksums.
//!
//! The buffer pool stamps a checksum for every page it flushes and verifies
//! it on every physical fetch, so silent disk corruption (torn writes, bit
//! flips) surfaces as a typed [`evopt_common::EvoptError::Corruption`]
//! instead of propagating garbage tuples into query results.
//!
//! This is the standard CRC-32 (IEEE 802.3, reflected, polynomial
//! 0xEDB88320) implemented table-driven — self-contained so the workspace
//! stays free of external dependencies.

/// Lazily built 256-entry lookup table for the reflected polynomial.
const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = build_table();

/// CRC-32 (IEEE) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        let idx = ((crc ^ b as u32) & 0xFF) as usize;
        crc = (crc >> 8) ^ CRC_TABLE[idx];
    }
    !crc
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    #[test]
    fn known_vectors() {
        // The classic check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn sensitive_to_any_single_bit_flip() {
        let base = vec![0x5Au8; 512];
        let clean = crc32(&base);
        for byte in [0usize, 1, 255, 511] {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), clean, "byte {byte} bit {bit}");
            }
        }
    }

    #[test]
    fn sensitive_to_truncation_style_damage() {
        // A torn write persists a prefix and leaves a stale suffix; the
        // checksum of the intended bytes must not match the torn bytes.
        let intended = vec![0xABu8; 4096];
        let mut torn = intended.clone();
        for b in torn.iter_mut().skip(1024) {
            *b = 0;
        }
        assert_ne!(crc32(&intended), crc32(&torn));
    }
}
