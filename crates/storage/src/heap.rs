//! Heap files: unordered tuple storage.
//!
//! A heap file is a chain of slotted pages (linked through each page's
//! `next_page` header field). Inserts append to the tail page, allocating a
//! new page when the tuple doesn't fit — so a freshly-loaded table occupies
//! the minimal number of pages and `page_count` matches the `P(R)` the cost
//! model reasons about. Deletes are in-place tombstones; space from deleted
//! tuples is not reclaimed (the engine's workloads are load-then-query).

use std::sync::Arc;

use evopt_common::{lockorder, EvoptError, Result, Tuple};
use parking_lot::Mutex;

use crate::buffer::{BufferPool, PageGuard};
use crate::page::{PageId, Rid, SlottedPage, SlottedPageView, INVALID_PAGE_ID};

struct HeapMeta {
    last_page: PageId,
    page_count: u64,
    tuple_count: u64,
}

/// An unordered collection of tuples backed by a page chain.
pub struct HeapFile {
    pool: Arc<BufferPool>,
    first_page: PageId,
    /// Rank [`lockorder::HEAP_META`]: held across the tail-page fetch and
    /// fresh-page allocation on the insert path (both rank POOL, above).
    meta: Mutex<HeapMeta>,
}

impl HeapFile {
    /// Create an empty heap file (allocates its first page).
    pub fn create(pool: Arc<BufferPool>) -> Result<HeapFile> {
        let guard = pool.new_page()?;
        SlottedPage::init(&mut guard.write());
        let first = guard.id();
        drop(guard);
        Ok(HeapFile {
            pool,
            first_page: first,
            meta: Mutex::new(HeapMeta {
                last_page: first,
                page_count: 1,
                tuple_count: 0,
            }),
        })
    }

    /// Re-open a heap file from its first page, walking the chain to
    /// recover the tail pointer and counts.
    pub fn open(pool: Arc<BufferPool>, first_page: PageId) -> Result<HeapFile> {
        let mut page_count = 0u64;
        let mut tuple_count = 0u64;
        let mut last = first_page;
        let mut cur = first_page;
        while cur != INVALID_PAGE_ID {
            let guard = pool.fetch(cur)?;
            let bytes = guard.read();
            let p = SlottedPageView::new(&bytes);
            page_count += 1;
            tuple_count += p.live_count() as u64;
            last = cur;
            cur = p.next_page();
        }
        Ok(HeapFile {
            pool,
            first_page,
            meta: Mutex::new(HeapMeta {
                last_page: last,
                page_count,
                tuple_count,
            }),
        })
    }

    /// Page id of the head of the chain (the file's stable identity).
    pub fn first_page(&self) -> PageId {
        self.first_page
    }

    /// Number of pages in the chain — the `P(R)` of the cost model.
    pub fn page_count(&self) -> u64 {
        let _r = lockorder::acquire(lockorder::HEAP_META);
        self.meta.lock().page_count
    }

    /// Number of live tuples — the `|R|` of the cost model.
    pub fn tuple_count(&self) -> u64 {
        let _r = lockorder::acquire(lockorder::HEAP_META);
        self.meta.lock().tuple_count
    }

    /// Append a tuple, returning its record id.
    pub fn insert(&self, tuple: &Tuple) -> Result<Rid> {
        let record = tuple.encode();
        let _r = lockorder::acquire(lockorder::HEAP_META);
        let mut meta = self.meta.lock();
        let tail = self.pool.fetch(meta.last_page)?;
        {
            let mut bytes = tail.write();
            let mut page = SlottedPage::new(&mut bytes);
            if page.fits(record.len()) {
                let slot = page.insert(&record)?;
                meta.tuple_count += 1;
                return Ok(Rid::new(tail.id(), slot));
            }
        }
        // Tail is full: chain a new page.
        let fresh = self.pool.new_page()?;
        let slot = {
            let mut bytes = fresh.write();
            let mut page = SlottedPage::init(&mut bytes);
            page.insert(&record).map_err(|_| {
                EvoptError::Storage(format!(
                    "tuple of {} bytes does not fit in an empty page",
                    record.len()
                ))
            })?
        };
        {
            let mut bytes = tail.write();
            SlottedPage::new(&mut bytes).set_next_page(fresh.id());
        }
        meta.last_page = fresh.id();
        meta.page_count += 1;
        meta.tuple_count += 1;
        Ok(Rid::new(fresh.id(), slot))
    }

    /// Read the tuple at `rid`; `None` if it was deleted.
    pub fn get(&self, rid: Rid) -> Result<Option<Tuple>> {
        let guard = self.pool.fetch(rid.page)?;
        let bytes = guard.read();
        let page = SlottedPageView::new(&bytes);
        match page.get(rid.slot)? {
            Some(record) => Ok(Some(Tuple::decode(record)?)),
            None => Ok(None),
        }
    }

    /// Tombstone the tuple at `rid`. Returns whether it was live.
    pub fn delete(&self, rid: Rid) -> Result<bool> {
        let guard = self.pool.fetch(rid.page)?;
        let was_live = {
            let mut bytes = guard.write();
            let mut page = SlottedPage::new(&mut bytes);
            let was_live = page.get(rid.slot)?.is_some();
            if was_live {
                page.delete(rid.slot)?;
            }
            was_live
        };
        if was_live {
            let _r = lockorder::acquire(lockorder::HEAP_META);
            self.meta.lock().tuple_count -= 1;
        }
        Ok(was_live)
    }

    /// Full scan over live tuples, in chain order.
    pub fn scan(&self) -> HeapScan {
        HeapScan {
            pool: Arc::clone(&self.pool),
            next_page: self.first_page,
            buffer: Vec::new(),
            pos: 0,
            failed: false,
        }
    }
}

/// Iterator over `(Rid, Tuple)` pairs of a heap file.
///
/// Processes one page at a time: the page is decoded in full, the pin is
/// released, then buffered tuples are yielded — so a scan never holds more
/// than one page pinned and the buffer pool sees the classic sequential
/// access pattern.
pub struct HeapScan {
    pool: Arc<BufferPool>,
    next_page: PageId,
    buffer: Vec<(Rid, Tuple)>,
    pos: usize,
    failed: bool,
}

impl HeapScan {
    fn refill(&mut self) -> Result<bool> {
        while self.next_page != INVALID_PAGE_ID {
            let guard: PageGuard = self.pool.fetch(self.next_page)?;
            let page_id = guard.id();
            let bytes = guard.read();
            let page = SlottedPageView::new(&bytes);
            self.buffer.clear();
            for (slot, record) in page.records() {
                self.buffer
                    .push((Rid::new(page_id, slot), Tuple::decode(record)?));
            }
            self.pos = 0;
            self.next_page = page.next_page();
            if !self.buffer.is_empty() {
                return Ok(true);
            }
        }
        Ok(false)
    }
}

impl Iterator for HeapScan {
    type Item = Result<(Rid, Tuple)>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        if self.pos >= self.buffer.len() {
            match self.refill() {
                Ok(true) => {}
                Ok(false) => return None,
                Err(e) => {
                    self.failed = true;
                    return Some(Err(e));
                }
            }
        }
        let item = self.buffer[self.pos].clone();
        self.pos += 1;
        Some(Ok(item))
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use crate::buffer::PolicyKind;
    use crate::disk::{DiskBackend, DiskManager};
    use evopt_common::Value;

    fn mkpool(frames: usize) -> Arc<BufferPool> {
        BufferPool::new(Arc::new(DiskManager::new()), frames, PolicyKind::Lru)
    }

    fn row(i: i64) -> Tuple {
        Tuple::new(vec![Value::Int(i), Value::Str(format!("name-{i}"))])
    }

    #[test]
    fn insert_get_roundtrip() {
        let heap = HeapFile::create(mkpool(8)).unwrap();
        let rid = heap.insert(&row(1)).unwrap();
        assert_eq!(heap.get(rid).unwrap(), Some(row(1)));
        assert_eq!(heap.tuple_count(), 1);
    }

    #[test]
    fn spans_many_pages_and_scans_in_order() {
        let heap = HeapFile::create(mkpool(8)).unwrap();
        let n = 2000;
        let mut rids = Vec::new();
        for i in 0..n {
            rids.push(heap.insert(&row(i)).unwrap());
        }
        assert!(heap.page_count() > 10, "pages: {}", heap.page_count());
        assert_eq!(heap.tuple_count(), n as u64);
        let scanned: Vec<_> = heap.scan().map(|r| r.unwrap()).collect();
        assert_eq!(scanned.len(), n as usize);
        for (i, (rid, t)) in scanned.iter().enumerate() {
            assert_eq!(rid, &rids[i]);
            assert_eq!(t, &row(i as i64));
        }
    }

    #[test]
    fn scan_page_count_matches_file_page_count() {
        // Sequential scan I/O == page_count when the pool is cold.
        let disk = Arc::new(DiskManager::new());
        let pool = BufferPool::new(
            Arc::clone(&disk) as Arc<dyn DiskBackend>,
            4,
            PolicyKind::Lru,
        );
        let heap = HeapFile::create(Arc::clone(&pool)).unwrap();
        for i in 0..1000 {
            heap.insert(&row(i)).unwrap();
        }
        pool.flush_all().unwrap();
        // Evict everything by scanning unrelated pages through the tiny pool.
        let other = HeapFile::create(Arc::clone(&pool)).unwrap();
        for i in 0..300 {
            other.insert(&row(i)).unwrap();
        }
        let before = disk.snapshot();
        let count = heap.scan().count();
        let delta = disk.snapshot().since(&before);
        assert_eq!(count, 1000);
        assert_eq!(delta.reads, heap.page_count());
    }

    #[test]
    fn delete_tombstones_and_scan_skips() {
        let heap = HeapFile::create(mkpool(8)).unwrap();
        let r0 = heap.insert(&row(0)).unwrap();
        let r1 = heap.insert(&row(1)).unwrap();
        assert!(heap.delete(r0).unwrap());
        assert!(!heap.delete(r0).unwrap(), "double delete reports false");
        assert_eq!(heap.get(r0).unwrap(), None);
        assert_eq!(heap.tuple_count(), 1);
        let scanned: Vec<_> = heap.scan().map(|r| r.unwrap()).collect();
        assert_eq!(scanned, vec![(r1, row(1))]);
    }

    #[test]
    fn open_recovers_counts_and_tail() {
        let pool = mkpool(8);
        let heap = HeapFile::create(Arc::clone(&pool)).unwrap();
        for i in 0..500 {
            heap.insert(&row(i)).unwrap();
        }
        let r = heap.insert(&row(999)).unwrap();
        heap.delete(r).unwrap();
        let first = heap.first_page();
        let (pages, tuples) = (heap.page_count(), heap.tuple_count());
        drop(heap);
        let reopened = HeapFile::open(Arc::clone(&pool), first).unwrap();
        assert_eq!(reopened.page_count(), pages);
        assert_eq!(reopened.tuple_count(), tuples);
        // Tail pointer recovered: inserts continue without corruption.
        reopened.insert(&row(1000)).unwrap();
        assert_eq!(reopened.tuple_count(), tuples + 1);
    }

    #[test]
    fn oversized_tuple_is_an_error() {
        let heap = HeapFile::create(mkpool(8)).unwrap();
        let big = Tuple::new(vec![Value::Str("x".repeat(8000))]);
        let err = heap.insert(&big).unwrap_err();
        assert_eq!(err.kind(), "storage");
    }

    #[test]
    fn empty_heap_scans_nothing() {
        let heap = HeapFile::create(mkpool(8)).unwrap();
        assert_eq!(heap.scan().count(), 0);
    }

    #[test]
    fn works_with_tiny_buffer_pool() {
        // 3 frames force constant eviction during build + scan.
        let heap = HeapFile::create(mkpool(3)).unwrap();
        for i in 0..800 {
            heap.insert(&row(i)).unwrap();
        }
        let sum: i64 = heap
            .scan()
            .map(|r| r.unwrap().1.value(0).unwrap().as_i64().unwrap())
            .sum();
        assert_eq!(sum, (0..800).sum::<i64>());
    }
}
