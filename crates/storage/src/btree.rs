//! Paged B+-tree index.
//!
//! Maps single-column keys ([`Value`]) to record ids ([`Rid`]), supporting
//! duplicate keys, point lookups and ordered range scans. Nodes live in
//! buffer-pool pages, so **index probes cost real page fetches** — the
//! `height + leaf pages` term in the optimizer's index-scan cost formula is
//! measurable against this structure (experiment T2).
//!
//! Design choices (documented, deliberately classic):
//!
//! * Entries are ordered by the composite `(key, rid)`, which makes every
//!   entry unique and descent deterministic even with heavy duplication.
//! * Nodes are (de)serialised whole on access. O(page) per touch, but the
//!   *I/O pattern* — what the cost model cares about — is identical to an
//!   in-place layout.
//! * Inserts split on byte overflow (variable-length string keys); deletes
//!   are lazy (no rebalancing), the standard trade-off for load-then-query
//!   workloads.
//! * A meta page stores the root pointer, height, and entry/page counts.

use std::ops::Bound;
use std::sync::Arc;

use evopt_common::{lockorder, EvoptError, Result, Tuple, Value};
use parking_lot::Mutex;

use crate::buffer::BufferPool;
use crate::page::{PageData, PageId, Rid, INVALID_PAGE_ID, USABLE_PAGE_SIZE};

/// Keys larger than this are rejected at insert; guarantees a split always
/// produces two nodes that fit in a page.
pub const MAX_KEY_BYTES: usize = 512;

const META_MAGIC: u64 = 0x6276_7472_6565_3031; // "bvtree01"

/// Composite entry key: column value plus rid tiebreak.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct Key {
    value: Value,
    rid: Rid,
}

impl Key {
    fn min_for(value: &Value) -> Key {
        Key {
            value: value.clone(),
            rid: Rid::new(0, 0),
        }
    }
}

/// Fixed-size view of `bytes` for `from_le_bytes`; a length mismatch is a
/// deserialisation failure (truncated/corrupt node), not a panic.
fn arr<const N: usize>(bytes: &[u8]) -> Result<[u8; N]> {
    bytes.try_into().map_err(|_| {
        EvoptError::Storage(format!(
            "truncated b-tree field: expected {N} bytes, got {}",
            bytes.len()
        ))
    })
}

fn encode_value(v: &Value) -> Vec<u8> {
    Tuple::new(vec![v.clone()]).encode()
}

fn decode_value(bytes: &[u8]) -> Result<Value> {
    let t = Tuple::decode(bytes)?;
    t.into_values()
        .pop()
        .ok_or_else(|| EvoptError::Storage("empty b-tree key".into()))
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        entries: Vec<(Key, ())>,
        next: PageId,
    },
    Internal {
        /// `keys[i]` is the smallest composite key in `children[i+1]`.
        keys: Vec<Key>,
        children: Vec<PageId>,
    },
}

impl Node {
    fn serialized_size(&self) -> usize {
        match self {
            Node::Leaf { entries, .. } => {
                // type(1) + count(2) + next(8) + per entry: klen(2)+key+rid(10)
                11 + entries
                    .iter()
                    .map(|(k, _)| 12 + encode_value(&k.value).len())
                    .sum::<usize>()
            }
            Node::Internal { keys, children } => {
                // type(1) + count(2) + children + per key: klen(2)+key+rid(10)
                3 + children.len() * 8
                    + keys
                        .iter()
                        .map(|k| 12 + encode_value(&k.value).len())
                        .sum::<usize>()
            }
        }
    }

    fn store(&self, page: &mut PageData) -> Result<()> {
        let size = self.serialized_size();
        if size > USABLE_PAGE_SIZE {
            return Err(EvoptError::Internal(format!(
                "b-tree node of {size} bytes stored without split"
            )));
        }
        let mut buf = Vec::with_capacity(size);
        match self {
            Node::Leaf { entries, next } => {
                buf.push(0u8);
                buf.extend_from_slice(&(entries.len() as u16).to_le_bytes());
                buf.extend_from_slice(&next.to_le_bytes());
                for (k, _) in entries {
                    let kb = encode_value(&k.value);
                    buf.extend_from_slice(&(kb.len() as u16).to_le_bytes());
                    buf.extend_from_slice(&kb);
                    buf.extend_from_slice(&k.rid.page.to_le_bytes());
                    buf.extend_from_slice(&k.rid.slot.to_le_bytes());
                }
            }
            Node::Internal { keys, children } => {
                buf.push(1u8);
                buf.extend_from_slice(&(keys.len() as u16).to_le_bytes());
                for c in children {
                    buf.extend_from_slice(&c.to_le_bytes());
                }
                for k in keys {
                    let kb = encode_value(&k.value);
                    buf.extend_from_slice(&(kb.len() as u16).to_le_bytes());
                    buf.extend_from_slice(&kb);
                    buf.extend_from_slice(&k.rid.page.to_le_bytes());
                    buf.extend_from_slice(&k.rid.slot.to_le_bytes());
                }
            }
        }
        page[..buf.len()].copy_from_slice(&buf);
        Ok(())
    }

    fn load(page: &PageData) -> Result<Node> {
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Result<&[u8]> {
            let end = *pos + n;
            if end > USABLE_PAGE_SIZE {
                return Err(EvoptError::Storage("truncated b-tree node".into()));
            }
            let s = &page[*pos..end];
            *pos = end;
            Ok(s)
        };
        let ty = take(&mut pos, 1)?[0];
        let count = u16::from_le_bytes(arr(take(&mut pos, 2)?)?) as usize;
        let read_key = |pos: &mut usize| -> Result<Key> {
            let klen = u16::from_le_bytes(arr(take(pos, 2)?)?) as usize;
            let value = decode_value(take(pos, klen)?)?;
            let page_id = u64::from_le_bytes(arr(take(pos, 8)?)?);
            let slot = u16::from_le_bytes(arr(take(pos, 2)?)?);
            Ok(Key {
                value,
                rid: Rid::new(page_id, slot),
            })
        };
        match ty {
            0 => {
                let next = u64::from_le_bytes(arr(take(&mut pos, 8)?)?);
                let mut entries = Vec::with_capacity(count);
                for _ in 0..count {
                    entries.push((read_key(&mut pos)?, ()));
                }
                Ok(Node::Leaf { entries, next })
            }
            1 => {
                let mut children = Vec::with_capacity(count + 1);
                for _ in 0..=count {
                    children.push(u64::from_le_bytes(arr(take(&mut pos, 8)?)?));
                }
                let mut keys = Vec::with_capacity(count);
                for _ in 0..count {
                    keys.push(read_key(&mut pos)?);
                }
                Ok(Node::Internal { keys, children })
            }
            t => Err(EvoptError::Storage(format!("bad b-tree node type {t}"))),
        }
    }
}

struct Meta {
    root: PageId,
    height: u32,
    entry_count: u64,
    page_count: u64,
}

impl Meta {
    fn store(&self, page: &mut PageData) {
        page[0..8].copy_from_slice(&META_MAGIC.to_le_bytes());
        page[8..16].copy_from_slice(&self.root.to_le_bytes());
        page[16..20].copy_from_slice(&self.height.to_le_bytes());
        page[20..28].copy_from_slice(&self.entry_count.to_le_bytes());
        page[28..36].copy_from_slice(&self.page_count.to_le_bytes());
    }

    fn load(page: &PageData) -> Result<Meta> {
        let magic = u64::from_le_bytes(arr(&page[0..8])?);
        if magic != META_MAGIC {
            return Err(EvoptError::Storage("not a b-tree meta page".into()));
        }
        Ok(Meta {
            root: u64::from_le_bytes(arr(&page[8..16])?),
            height: u32::from_le_bytes(arr(&page[16..20])?),
            entry_count: u64::from_le_bytes(arr(&page[20..28])?),
            page_count: u64::from_le_bytes(arr(&page[28..36])?),
        })
    }
}

/// A B+-tree index over one column.
pub struct BTreeIndex {
    pool: Arc<BufferPool>,
    meta_page: PageId,
    /// Rank [`lockorder::BTREE_WRITE`]: serialises writers (held across
    /// page fetches at rank POOL); readers are safe against the
    /// page-level state.
    write_lock: Mutex<()>,
}

impl BTreeIndex {
    /// Create an empty tree (allocates a meta page and an empty root leaf).
    pub fn create(pool: Arc<BufferPool>) -> Result<BTreeIndex> {
        let root_guard = pool.new_page()?;
        let root_id = root_guard.id();
        Node::Leaf {
            entries: Vec::new(),
            next: INVALID_PAGE_ID,
        }
        .store(&mut root_guard.write())?;
        drop(root_guard);

        let meta_guard = pool.new_page()?;
        let meta_page = meta_guard.id();
        Meta {
            root: root_id,
            height: 1,
            entry_count: 0,
            page_count: 1,
        }
        .store(&mut meta_guard.write());
        drop(meta_guard);

        Ok(BTreeIndex {
            pool,
            meta_page,
            write_lock: Mutex::new(()),
        })
    }

    /// Re-open a tree from its meta page.
    pub fn open(pool: Arc<BufferPool>, meta_page: PageId) -> Result<BTreeIndex> {
        let guard = pool.fetch(meta_page)?;
        Meta::load(&guard.read())?; // validate magic
        drop(guard);
        Ok(BTreeIndex {
            pool,
            meta_page,
            write_lock: Mutex::new(()),
        })
    }

    /// The meta page id — the tree's stable identity for the catalog.
    pub fn meta_page(&self) -> PageId {
        self.meta_page
    }

    fn read_meta(&self) -> Result<Meta> {
        let guard = self.pool.fetch(self.meta_page)?;
        let meta = Meta::load(&guard.read())?;
        Ok(meta)
    }

    fn write_meta(&self, meta: &Meta) -> Result<()> {
        let guard = self.pool.fetch(self.meta_page)?;
        meta.store(&mut guard.write());
        Ok(())
    }

    /// Root-to-leaf path length in pages (≥ 1). The optimizer charges this
    /// many page fetches per index probe.
    pub fn height(&self) -> Result<u32> {
        Ok(self.read_meta()?.height)
    }

    /// Total entries in the tree.
    pub fn entry_count(&self) -> Result<u64> {
        Ok(self.read_meta()?.entry_count)
    }

    /// Node pages in the tree (excludes the meta page).
    pub fn page_count(&self) -> Result<u64> {
        Ok(self.read_meta()?.page_count)
    }

    fn load_node(&self, id: PageId) -> Result<Node> {
        let guard = self.pool.fetch(id)?;
        let node = Node::load(&guard.read())?;
        Ok(node)
    }

    fn store_node(&self, id: PageId, node: &Node) -> Result<()> {
        let guard = self.pool.fetch(id)?;
        let result = node.store(&mut guard.write());
        result
    }

    /// Insert `(key, rid)`. Duplicate keys are allowed; the exact duplicate
    /// `(key, rid)` pair is also allowed (and will be returned twice).
    pub fn insert(&self, key: &Value, rid: Rid) -> Result<()> {
        if encode_value(key).len() > MAX_KEY_BYTES {
            return Err(EvoptError::Storage(format!(
                "b-tree key exceeds {MAX_KEY_BYTES} bytes"
            )));
        }
        let _r = lockorder::acquire(lockorder::BTREE_WRITE);
        let _w = self.write_lock.lock();
        let mut meta = self.read_meta()?;
        let composite = Key {
            value: key.clone(),
            rid,
        };
        if let Some((sep, right)) = self.insert_rec(meta.root, composite, &mut meta)? {
            // Root split: grow the tree by one level.
            let new_root = self.pool.new_page()?;
            let node = Node::Internal {
                keys: vec![sep],
                children: vec![meta.root, right],
            };
            node.store(&mut new_root.write())?;
            meta.root = new_root.id();
            meta.height += 1;
            meta.page_count += 1;
        }
        meta.entry_count += 1;
        self.write_meta(&meta)
    }

    /// Recursive insert; returns `Some((separator, new_right_page))` when
    /// this node split.
    fn insert_rec(&self, page: PageId, key: Key, meta: &mut Meta) -> Result<Option<(Key, PageId)>> {
        let mut node = self.load_node(page)?;
        match &mut node {
            Node::Leaf { entries, next: _ } => {
                let idx = entries.partition_point(|(k, _)| k <= &key);
                entries.insert(idx, (key, ()));
                if node.serialized_size() <= USABLE_PAGE_SIZE {
                    self.store_node(page, &node)?;
                    return Ok(None);
                }
                // Split: move the upper half to a fresh right sibling.
                let (entries, next) = match &mut node {
                    Node::Leaf { entries, next } => (entries, next),
                    _ => {
                        return Err(EvoptError::Internal(
                            "b-tree leaf changed variant mid-split".into(),
                        ))
                    }
                };
                let mid = entries.len() / 2;
                let right_entries = entries.split_off(mid);
                let sep = right_entries[0].0.clone();
                let right_guard = self.pool.new_page()?;
                let right_id = right_guard.id();
                let right_node = Node::Leaf {
                    entries: right_entries,
                    next: *next,
                };
                right_node.store(&mut right_guard.write())?;
                *next = right_id;
                self.store_node(page, &node)?;
                meta.page_count += 1;
                Ok(Some((sep, right_id)))
            }
            Node::Internal { keys, children } => {
                let child_idx = keys.partition_point(|k| k <= &key);
                let child = children[child_idx];
                if let Some((sep, right_id)) = self.insert_rec(child, key, meta)? {
                    keys.insert(child_idx, sep);
                    children.insert(child_idx + 1, right_id);
                    if node.serialized_size() <= USABLE_PAGE_SIZE {
                        self.store_node(page, &node)?;
                        return Ok(None);
                    }
                    let (keys, children) = match &mut node {
                        Node::Internal { keys, children } => (keys, children),
                        _ => {
                            return Err(EvoptError::Internal(
                                "b-tree internal node changed variant mid-split".into(),
                            ))
                        }
                    };
                    let mid = keys.len() / 2;
                    let promoted = keys[mid].clone();
                    let right_keys = keys.split_off(mid + 1);
                    keys.pop(); // remove the promoted key from the left
                    let right_children = children.split_off(mid + 1);
                    let right_guard = self.pool.new_page()?;
                    let right_id = right_guard.id();
                    Node::Internal {
                        keys: right_keys,
                        children: right_children,
                    }
                    .store(&mut right_guard.write())?;
                    self.store_node(page, &node)?;
                    meta.page_count += 1;
                    Ok(Some((promoted, right_id)))
                } else {
                    Ok(None)
                }
            }
        }
    }

    /// Remove the exact `(key, rid)` entry. Returns whether it was present.
    /// Lazy deletion: nodes are never merged or rebalanced.
    pub fn delete(&self, key: &Value, rid: Rid) -> Result<bool> {
        let _r = lockorder::acquire(lockorder::BTREE_WRITE);
        let _w = self.write_lock.lock();
        let mut meta = self.read_meta()?;
        let target = Key {
            value: key.clone(),
            rid,
        };
        // Descend to the candidate leaf.
        let mut page = meta.root;
        loop {
            match self.load_node(page)? {
                Node::Internal { keys, children } => {
                    let idx = keys.partition_point(|k| k <= &target);
                    page = children[idx];
                }
                Node::Leaf { mut entries, next } => {
                    match entries.binary_search_by(|(k, _)| k.cmp(&target)) {
                        Ok(idx) => {
                            entries.remove(idx);
                            self.store_node(page, &Node::Leaf { entries, next })?;
                            meta.entry_count -= 1;
                            self.write_meta(&meta)?;
                            return Ok(true);
                        }
                        Err(_) => return Ok(false),
                    }
                }
            }
        }
    }

    /// Descend to the leaf that may contain the first entry ≥ `target`.
    fn descend(&self, target: &Key) -> Result<PageId> {
        let meta = self.read_meta()?;
        let mut page = meta.root;
        loop {
            match self.load_node(page)? {
                Node::Internal { keys, children } => {
                    let idx = keys.partition_point(|k| k <= target);
                    page = children[idx];
                }
                Node::Leaf { .. } => return Ok(page),
            }
        }
    }

    /// Leftmost leaf (for unbounded scans).
    fn leftmost_leaf(&self) -> Result<PageId> {
        let meta = self.read_meta()?;
        let mut page = meta.root;
        loop {
            match self.load_node(page)? {
                Node::Internal { children, .. } => page = children[0],
                Node::Leaf { .. } => return Ok(page),
            }
        }
    }

    /// All rids whose key equals `key`, in rid order.
    pub fn search_eq(&self, key: &Value) -> Result<Vec<Rid>> {
        let mut out = Vec::new();
        for item in self.range(Bound::Included(key), Bound::Included(key))? {
            let (_, rid) = item?;
            out.push(rid);
        }
        Ok(out)
    }

    /// Ordered scan of entries with keys within `(low, high)`.
    pub fn range(&self, low: Bound<&Value>, high: Bound<&Value>) -> Result<BTreeRangeScan> {
        let start_leaf = match &low {
            Bound::Unbounded => self.leftmost_leaf()?,
            Bound::Included(v) | Bound::Excluded(v) => self.descend(&Key::min_for(v))?,
        };
        Ok(BTreeRangeScan {
            pool: Arc::clone(&self.pool),
            next_leaf: start_leaf,
            buffer: Vec::new(),
            pos: 0,
            low: match low {
                Bound::Unbounded => Bound::Unbounded,
                Bound::Included(v) => Bound::Included(v.clone()),
                Bound::Excluded(v) => Bound::Excluded(v.clone()),
            },
            high: match high {
                Bound::Unbounded => Bound::Unbounded,
                Bound::Included(v) => Bound::Included(v.clone()),
                Bound::Excluded(v) => Bound::Excluded(v.clone()),
            },
            started: false,
            done: false,
        })
    }

    /// Depth-first structural check: key ordering within nodes, separator
    /// invariants, and leaf-chain ordering. Test/debug helper.
    pub fn check_invariants(&self) -> Result<()> {
        let meta = self.read_meta()?;
        let mut leaf_count = 0u64;
        self.check_rec(meta.root, None, None, meta.height, 1, &mut leaf_count)?;
        if leaf_count != meta.entry_count {
            return Err(EvoptError::Internal(format!(
                "meta entry_count {} != leaves {}",
                meta.entry_count, leaf_count
            )));
        }
        Ok(())
    }

    fn check_rec(
        &self,
        page: PageId,
        low: Option<&Key>,
        high: Option<&Key>,
        height: u32,
        depth: u32,
        leaf_count: &mut u64,
    ) -> Result<()> {
        let fail = |msg: String| Err(EvoptError::Internal(msg));
        match self.load_node(page)? {
            Node::Leaf { entries, .. } => {
                if depth != height {
                    return fail(format!("leaf at depth {depth}, height {height}"));
                }
                for w in entries.windows(2) {
                    if w[0].0 > w[1].0 {
                        return fail("unsorted leaf entries".into());
                    }
                }
                for (k, _) in &entries {
                    if let Some(lo) = low {
                        if k < lo {
                            return fail("leaf key below separator".into());
                        }
                    }
                    if let Some(hi) = high {
                        // Non-strict: an exact duplicate (key, rid) pair may
                        // straddle a split, making the separator equal to
                        // the left leaf's last entry.
                        if k > hi {
                            return fail("leaf key above separator".into());
                        }
                    }
                }
                *leaf_count += entries.len() as u64;
                Ok(())
            }
            Node::Internal { keys, children } => {
                if keys.len() + 1 != children.len() {
                    return fail("internal arity mismatch".into());
                }
                for w in keys.windows(2) {
                    if w[0] > w[1] {
                        return fail("unsorted internal keys".into());
                    }
                }
                for (i, &child) in children.iter().enumerate() {
                    let lo = if i == 0 { low } else { Some(&keys[i - 1]) };
                    let hi = if i == keys.len() {
                        high
                    } else {
                        Some(&keys[i])
                    };
                    self.check_rec(child, lo, hi, height, depth + 1, leaf_count)?;
                }
                Ok(())
            }
        }
    }
}

/// Iterator over `(key, rid)` pairs from a [`BTreeIndex::range`] call.
/// Buffers one leaf at a time (same pin discipline as heap scans).
pub struct BTreeRangeScan {
    pool: Arc<BufferPool>,
    next_leaf: PageId,
    buffer: Vec<(Value, Rid)>,
    pos: usize,
    low: Bound<Value>,
    high: Bound<Value>,
    started: bool,
    done: bool,
}

impl BTreeRangeScan {
    fn refill(&mut self) -> Result<bool> {
        while self.next_leaf != INVALID_PAGE_ID {
            let guard = self.pool.fetch(self.next_leaf)?;
            let node = Node::load(&guard.read())?;
            drop(guard);
            let (entries, next) = match node {
                Node::Leaf { entries, next } => (entries, next),
                Node::Internal { .. } => {
                    return Err(EvoptError::Internal(
                        "range scan reached an internal node".into(),
                    ))
                }
            };
            self.buffer.clear();
            for (k, _) in entries {
                self.buffer.push((k.value, k.rid));
            }
            self.pos = 0;
            self.next_leaf = next;
            if !self.started {
                // Skip entries below the low bound in the first leaf.
                self.pos = match &self.low {
                    Bound::Unbounded => 0,
                    Bound::Included(v) => self.buffer.partition_point(|(k, _)| k < v),
                    Bound::Excluded(v) => self.buffer.partition_point(|(k, _)| k <= v),
                };
                // The low bound may fall past this leaf's entries (they were
                // all smaller); continue to the next leaf still "unstarted".
                if self.pos >= self.buffer.len() {
                    continue;
                }
                self.started = true;
            }
            if self.pos < self.buffer.len() {
                return Ok(true);
            }
        }
        Ok(false)
    }

    fn past_high(&self, key: &Value) -> bool {
        match &self.high {
            Bound::Unbounded => false,
            Bound::Included(v) => key > v,
            Bound::Excluded(v) => key >= v,
        }
    }
}

impl Iterator for BTreeRangeScan {
    type Item = Result<(Value, Rid)>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        if self.pos >= self.buffer.len() {
            match self.refill() {
                Ok(true) => {}
                Ok(false) => {
                    self.done = true;
                    return None;
                }
                Err(e) => {
                    self.done = true;
                    return Some(Err(e));
                }
            }
        }
        let (k, rid) = self.buffer[self.pos].clone();
        if self.past_high(&k) {
            self.done = true;
            return None;
        }
        self.pos += 1;
        self.started = true;
        Some(Ok((k, rid)))
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use crate::buffer::PolicyKind;
    use crate::disk::{DiskBackend, DiskManager};
    use proptest::prelude::*;
    use rand::prelude::*;

    fn mktree(frames: usize) -> BTreeIndex {
        let pool = BufferPool::new(Arc::new(DiskManager::new()), frames, PolicyKind::Lru);
        BTreeIndex::create(pool).unwrap()
    }

    fn rid(i: u64) -> Rid {
        Rid::new(i, (i % 7) as u16)
    }

    #[test]
    fn empty_tree() {
        let t = mktree(16);
        assert_eq!(t.height().unwrap(), 1);
        assert_eq!(t.entry_count().unwrap(), 0);
        assert!(t.search_eq(&Value::Int(1)).unwrap().is_empty());
        assert_eq!(
            t.range(Bound::Unbounded, Bound::Unbounded).unwrap().count(),
            0
        );
        t.check_invariants().unwrap();
    }

    #[test]
    fn insert_and_point_lookup() {
        let t = mktree(16);
        for i in 0..100 {
            t.insert(&Value::Int(i), rid(i as u64)).unwrap();
        }
        for i in 0..100 {
            assert_eq!(t.search_eq(&Value::Int(i)).unwrap(), vec![rid(i as u64)]);
        }
        assert!(t.search_eq(&Value::Int(100)).unwrap().is_empty());
        t.check_invariants().unwrap();
    }

    #[test]
    fn grows_multiple_levels_and_stays_sorted() {
        let t = mktree(64);
        let n: i64 = 20_000;
        let mut order: Vec<i64> = (0..n).collect();
        order.shuffle(&mut StdRng::seed_from_u64(42));
        for &i in &order {
            t.insert(&Value::Int(i), rid(i as u64)).unwrap();
        }
        assert!(t.height().unwrap() >= 3, "height {}", t.height().unwrap());
        assert_eq!(t.entry_count().unwrap(), n as u64);
        t.check_invariants().unwrap();
        let scanned: Vec<i64> = t
            .range(Bound::Unbounded, Bound::Unbounded)
            .unwrap()
            .map(|r| r.unwrap().0.as_i64().unwrap())
            .collect();
        assert_eq!(scanned, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn duplicate_keys_all_returned() {
        let t = mktree(32);
        for i in 0..500u64 {
            t.insert(&Value::Int(7), rid(i)).unwrap();
        }
        t.insert(&Value::Int(6), rid(0)).unwrap();
        t.insert(&Value::Int(8), rid(0)).unwrap();
        let hits = t.search_eq(&Value::Int(7)).unwrap();
        assert_eq!(hits.len(), 500);
        // Returned in rid order.
        let mut sorted = hits.clone();
        sorted.sort();
        assert_eq!(hits, sorted);
        t.check_invariants().unwrap();
    }

    #[test]
    fn range_bounds_semantics() {
        let t = mktree(16);
        for i in 0..20 {
            t.insert(&Value::Int(i), rid(i as u64)).unwrap();
        }
        let collect = |lo: Bound<&Value>, hi: Bound<&Value>| -> Vec<i64> {
            t.range(lo, hi)
                .unwrap()
                .map(|r| r.unwrap().0.as_i64().unwrap())
                .collect()
        };
        let v5 = Value::Int(5);
        let v10 = Value::Int(10);
        assert_eq!(
            collect(Bound::Included(&v5), Bound::Included(&v10)),
            (5..=10).collect::<Vec<_>>()
        );
        assert_eq!(
            collect(Bound::Excluded(&v5), Bound::Excluded(&v10)),
            (6..10).collect::<Vec<_>>()
        );
        assert_eq!(
            collect(Bound::Unbounded, Bound::Excluded(&v5)),
            (0..5).collect::<Vec<_>>()
        );
        assert_eq!(
            collect(Bound::Included(&v10), Bound::Unbounded),
            (10..20).collect::<Vec<_>>()
        );
        // Empty range.
        let v100 = Value::Int(100);
        assert!(collect(Bound::Included(&v100), Bound::Unbounded).is_empty());
    }

    #[test]
    fn range_with_low_bound_past_first_leaf() {
        // Force many leaves, then scan from a bound that lands between them.
        let t = mktree(64);
        for i in 0..5000 {
            t.insert(&Value::Int(i * 2), rid(i as u64)).unwrap(); // even keys
        }
        let lo = Value::Int(4001); // odd: between 4000 and 4002
        let got: Vec<i64> = t
            .range(Bound::Included(&lo), Bound::Unbounded)
            .unwrap()
            .map(|r| r.unwrap().0.as_i64().unwrap())
            .collect();
        assert_eq!(got[0], 4002);
        assert_eq!(got.len(), (5000 - 2001));
    }

    #[test]
    fn string_keys() {
        let t = mktree(32);
        let words = ["delta", "alpha", "echo", "bravo", "charlie"];
        for (i, w) in words.iter().enumerate() {
            t.insert(&Value::Str((*w).into()), rid(i as u64)).unwrap();
        }
        let scanned: Vec<String> = t
            .range(Bound::Unbounded, Bound::Unbounded)
            .unwrap()
            .map(|r| r.unwrap().0.as_str().unwrap().to_owned())
            .collect();
        assert_eq!(scanned, vec!["alpha", "bravo", "charlie", "delta", "echo"]);
        let lo = Value::Str("b".into());
        let hi = Value::Str("d".into());
        let mid: Vec<String> = t
            .range(Bound::Included(&lo), Bound::Excluded(&hi))
            .unwrap()
            .map(|r| r.unwrap().0.as_str().unwrap().to_owned())
            .collect();
        assert_eq!(mid, vec!["bravo", "charlie"]);
    }

    #[test]
    fn oversized_key_rejected() {
        let t = mktree(16);
        let big = Value::Str("k".repeat(MAX_KEY_BYTES + 1));
        assert!(t.insert(&big, rid(0)).is_err());
    }

    #[test]
    fn delete_exact_entry() {
        let t = mktree(32);
        for i in 0..1000 {
            t.insert(&Value::Int(i), rid(i as u64)).unwrap();
        }
        assert!(t.delete(&Value::Int(500), rid(500)).unwrap());
        assert!(!t.delete(&Value::Int(500), rid(500)).unwrap());
        assert!(!t.delete(&Value::Int(500), rid(501)).unwrap());
        assert!(t.search_eq(&Value::Int(500)).unwrap().is_empty());
        assert_eq!(t.entry_count().unwrap(), 999);
        t.check_invariants().unwrap();
    }

    #[test]
    fn delete_one_duplicate_keeps_others() {
        let t = mktree(16);
        for i in 0..10u64 {
            t.insert(&Value::Int(3), rid(i)).unwrap();
        }
        assert!(t.delete(&Value::Int(3), rid(4)).unwrap());
        let hits = t.search_eq(&Value::Int(3)).unwrap();
        assert_eq!(hits.len(), 9);
        assert!(!hits.contains(&rid(4)));
    }

    #[test]
    fn reopen_from_meta_page() {
        let pool = BufferPool::new(Arc::new(DiskManager::new()), 32, PolicyKind::Lru);
        let t = BTreeIndex::create(Arc::clone(&pool)).unwrap();
        for i in 0..100 {
            t.insert(&Value::Int(i), rid(i as u64)).unwrap();
        }
        let meta = t.meta_page();
        drop(t);
        let t = BTreeIndex::open(Arc::clone(&pool), meta).unwrap();
        assert_eq!(t.entry_count().unwrap(), 100);
        assert_eq!(t.search_eq(&Value::Int(50)).unwrap(), vec![rid(50)]);
        // Opening a non-meta page fails loudly.
        assert!(BTreeIndex::open(pool, 0).is_err());
    }

    #[test]
    fn probe_io_scales_with_height_not_size() {
        // An index probe should touch ~height pages, far fewer than the
        // tree's total pages — the property the optimizer's cost model uses.
        let disk = Arc::new(DiskManager::new());
        let pool = BufferPool::new(
            Arc::clone(&disk) as Arc<dyn DiskBackend>,
            8,
            PolicyKind::Lru,
        );
        let t = BTreeIndex::create(Arc::clone(&pool)).unwrap();
        for i in 0..20_000 {
            t.insert(&Value::Int(i), rid(i as u64)).unwrap();
        }
        let height = t.height().unwrap() as u64;
        let pages = t.page_count().unwrap();
        assert!(pages > 50);
        // Flush and dirty the pool with a scan of another structure so the
        // probe starts cold-ish; the tiny pool (8 frames) guarantees that.
        let before = disk.snapshot();
        let hits = t.search_eq(&Value::Int(12_345)).unwrap();
        let delta = disk.snapshot().since(&before);
        assert_eq!(hits, vec![rid(12_345)]);
        // meta + root..leaf + possibly one sibling leaf.
        assert!(
            delta.reads <= height + 3,
            "probe read {} pages, height {height}",
            delta.reads
        );
    }

    #[test]
    fn works_with_tiny_pool() {
        let pool = BufferPool::new(Arc::new(DiskManager::new()), 4, PolicyKind::Clock);
        let t = BTreeIndex::create(pool).unwrap();
        for i in (0..3000).rev() {
            t.insert(&Value::Int(i), rid(i as u64)).unwrap();
        }
        t.check_invariants().unwrap();
        let n = t.range(Bound::Unbounded, Bound::Unbounded).unwrap().count();
        assert_eq!(n, 3000);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Model-based test: tree contents always match a sorted reference
        /// vector under random insert/delete interleavings.
        #[test]
        fn prop_matches_model(ops in prop::collection::vec(
            (any::<bool>(), -50i64..50, 0u64..20), 1..400)) {
            let t = mktree(32);
            let mut model: Vec<(i64, u64)> = Vec::new();
            for (is_insert, k, r) in ops {
                if is_insert || model.is_empty() {
                    t.insert(&Value::Int(k), rid(r)).unwrap();
                    model.push((k, r));
                } else {
                    let present = model.iter().position(|&(mk, mr)| mk == k && mr == r);
                    let deleted = t.delete(&Value::Int(k), rid(r)).unwrap();
                    prop_assert_eq!(deleted, present.is_some());
                    if let Some(p) = present {
                        model.remove(p);
                    }
                }
            }
            model.sort_by_key(|a| (a.0, rid(a.1)));
            let got: Vec<(i64, Rid)> = t
                .range(Bound::Unbounded, Bound::Unbounded).unwrap()
                .map(|x| { let (v, r) = x.unwrap(); (v.as_i64().unwrap(), r) })
                .collect();
            let want: Vec<(i64, Rid)> = model.iter().map(|&(k, r)| (k, rid(r))).collect();
            prop_assert_eq!(got, want);
            t.check_invariants().unwrap();
        }

        /// Range scans agree with filtering a full scan.
        #[test]
        fn prop_range_equals_filtered_full_scan(
            keys in prop::collection::vec(-100i64..100, 0..300),
            lo in -120i64..120, hi in -120i64..120) {
            let t = mktree(32);
            for (i, &k) in keys.iter().enumerate() {
                t.insert(&Value::Int(k), rid(i as u64)).unwrap();
            }
            let (vlo, vhi) = (Value::Int(lo), Value::Int(hi));
            let got: Vec<i64> = t
                .range(Bound::Included(&vlo), Bound::Excluded(&vhi)).unwrap()
                .map(|x| x.unwrap().0.as_i64().unwrap())
                .collect();
            let mut want: Vec<i64> = keys.iter().copied()
                .filter(|&k| k >= lo && k < hi).collect();
            want.sort_unstable();
            prop_assert_eq!(got, want);
        }
    }
}
