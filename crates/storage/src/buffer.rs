//! Buffer pool: a pin-counted page cache with pluggable replacement.
//!
//! The pool owns `B` frames. Fetching a cached page is free (a *hit*);
//! fetching an uncached page costs one physical read, and may evict an
//! unpinned frame (plus one physical write if it was dirty). The optimizer's
//! cost model reasons about exactly this: e.g. block-nested-loop join cost
//! depends on how many outer pages fit in the pool at once (experiment F4
//! sweeps the pool size and compares measured vs. predicted I/O).
//!
//! Two replacement policies are provided — [`PolicyKind::Lru`] and
//! [`PolicyKind::Clock`] — behind one trait so benches can compare them.
//!
//! **Integrity.** The pool stamps a CRC-32 checksum for every page it
//! flushes and verifies it on every physical fetch. A mismatch (torn write,
//! bit rot) triggers a bounded re-read — transient faults heal invisibly,
//! counted in [`PoolSnapshot::retries`] — and surfaces as a typed
//! [`EvoptError::Corruption`] once retries exhaust. Transient `Io` errors
//! from the backend get the same bounded-retry treatment.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use evopt_common::{lockorder, EvoptError, Result};
use parking_lot::{Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard};

use crate::checksum::crc32;
use crate::disk::DiskBackend;
use crate::page::{set_page_lsn, PageData, PageId, PAGE_SIZE};

/// Attempts per physical page op before a transient fault is declared
/// permanent: the initial try plus `IO_RETRY_LIMIT` retries.
const IO_RETRY_LIMIT: u32 = 3;

/// Write-ahead gate: the durability layer's veto over dirty-page flushes.
///
/// When installed ([`BufferPool::set_flush_gate`]), the pool reports every
/// page dirtying via `on_dirty` and consults `can_flush` before any dirty
/// page reaches the disk (eviction, `flush_all`, `evict_all`). The WAL
/// implements this with its not-yet-logged set, enforcing log-before-data:
/// a dirty page whose redo record is not on the log may not be flushed, so
/// no uncommitted bytes ever overwrite committed on-disk state (no-steal).
///
/// Implementations must not call back into the pool — `can_flush` runs
/// under the pool lock.
pub trait FlushGate: Send + Sync {
    /// A resident page was dirtied (or created dirty).
    fn on_dirty(&self, id: PageId);
    /// Whether the dirty page may be written to disk right now.
    fn can_flush(&self, id: PageId) -> bool;
}

/// Which replacement policy a pool uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// Evict the least-recently-used unpinned frame.
    Lru,
    /// Second-chance clock sweep.
    Clock,
}

/// Replacement policy over frame indices. Only *evictable* frames (pin count
/// zero) may be returned by [`Policy::evict`].
trait Policy: Send {
    /// The frame was accessed (fetched or created).
    fn on_access(&mut self, frame: usize);
    /// Mark whether the frame may be evicted.
    fn set_evictable(&mut self, frame: usize, evictable: bool);
    /// Choose a victim frame and forget it, or `None` if all are pinned.
    fn evict(&mut self) -> Option<usize>;
}

/// LRU via logical timestamps; eviction scans evictable frames for the
/// oldest. O(frames) per eviction — fine at the pool sizes we simulate.
struct LruPolicy {
    tick: u64,
    last_used: Vec<u64>,
    evictable: Vec<bool>,
}

impl LruPolicy {
    fn new(frames: usize) -> Self {
        LruPolicy {
            tick: 0,
            last_used: vec![0; frames],
            evictable: vec![false; frames],
        }
    }
}

impl Policy for LruPolicy {
    fn on_access(&mut self, frame: usize) {
        self.tick += 1;
        self.last_used[frame] = self.tick;
    }

    fn set_evictable(&mut self, frame: usize, evictable: bool) {
        self.evictable[frame] = evictable;
    }

    fn evict(&mut self) -> Option<usize> {
        let victim = (0..self.last_used.len())
            .filter(|&f| self.evictable[f])
            .min_by_key(|&f| self.last_used[f])?;
        self.evictable[victim] = false;
        Some(victim)
    }
}

/// Second-chance clock: a hand sweeps frames; a set reference bit buys one
/// more revolution.
struct ClockPolicy {
    hand: usize,
    ref_bit: Vec<bool>,
    evictable: Vec<bool>,
}

impl ClockPolicy {
    fn new(frames: usize) -> Self {
        ClockPolicy {
            hand: 0,
            ref_bit: vec![false; frames],
            evictable: vec![false; frames],
        }
    }
}

impl Policy for ClockPolicy {
    fn on_access(&mut self, frame: usize) {
        self.ref_bit[frame] = true;
    }

    fn set_evictable(&mut self, frame: usize, evictable: bool) {
        self.evictable[frame] = evictable;
    }

    fn evict(&mut self) -> Option<usize> {
        let n = self.ref_bit.len();
        if !self.evictable.iter().any(|&e| e) {
            return None;
        }
        // At most two sweeps: first clears ref bits, second must find a victim.
        for _ in 0..2 * n + 1 {
            let f = self.hand;
            self.hand = (self.hand + 1) % n;
            if !self.evictable[f] {
                continue;
            }
            if self.ref_bit[f] {
                self.ref_bit[f] = false;
            } else {
                self.evictable[f] = false;
                return Some(f);
            }
        }
        None
    }
}

struct Frame {
    page_id: Option<PageId>,
    pin_count: u32,
    dirty: Arc<AtomicBool>,
    data: Arc<RwLock<PageData>>, // lockorder: leaf
}

/// A frame reserved for an incoming page (see [`BufferPool::reserve_frame`]).
/// `Flush` carries a dirty victim whose write-back is still owed; the
/// frame is unusable until [`BufferPool::settle_reservation`] performs it
/// off the pool lock.
enum Reserved {
    Clean(usize),
    Flush {
        victim: usize,
        old_id: PageId,
        data: Arc<RwLock<PageData>>,
    },
}

struct Inner {
    frames: Vec<Frame>,
    table: HashMap<PageId, usize>,
    free: Vec<usize>,
    policy: Box<dyn Policy>,
    /// Pages some thread is currently reading off-lock (miss in flight).
    /// Claiming an entry grants the exclusive right to load that page;
    /// other fetchers of the same page wait and re-check. This is what
    /// lets physical reads overlap across sessions: the pool lock is
    /// *not* held across the disk read.
    loading: HashSet<PageId>,
}

/// Point-in-time copy of the pool's hit/miss counters. Subtract two
/// snapshots ([`PoolSnapshot::since`]) to attribute pool traffic to a region
/// of code — per query, per operator, per experiment phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolSnapshot {
    pub hits: u64,
    pub misses: u64,
    /// Frames reclaimed from a resident page to make room for another.
    pub evictions: u64,
    /// Physical page ops re-attempted after a transient fault (I/O error or
    /// checksum mismatch that healed on re-read).
    pub retries: u64,
    /// Checksum failures that survived every retry and surfaced as
    /// [`EvoptError::Corruption`].
    pub corruptions: u64,
}

impl PoolSnapshot {
    /// Pool accesses since `earlier`. Counters are monotonic (only ever
    /// incremented, while the pool lock is held), so `earlier` must be the
    /// older snapshot — debug builds assert that; release builds saturate
    /// rather than underflow.
    pub fn since(&self, earlier: &PoolSnapshot) -> PoolSnapshot {
        debug_assert!(
            self.hits >= earlier.hits
                && self.misses >= earlier.misses
                && self.evictions >= earlier.evictions
                && self.retries >= earlier.retries
                && self.corruptions >= earlier.corruptions,
            "PoolSnapshot::since called with a newer `earlier`: {earlier:?} vs {self:?}"
        );
        PoolSnapshot {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            evictions: self.evictions.saturating_sub(earlier.evictions),
            retries: self.retries.saturating_sub(earlier.retries),
            corruptions: self.corruptions.saturating_sub(earlier.corruptions),
        }
    }

    /// Total page requests (hits + misses).
    pub fn total(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of requests served from memory; 1.0 for an idle pool.
    pub fn hit_rate(&self) -> f64 {
        if self.total() == 0 {
            1.0
        } else {
            self.hits as f64 / self.total() as f64
        }
    }
}

/// The buffer pool. Create with [`BufferPool::new`], share via `Arc`.
pub struct BufferPool {
    inner: Mutex<Inner>,
    disk: Arc<dyn DiskBackend>,
    capacity: usize,
    // Hit/miss counters live outside `inner` so metrics readers never take
    // the pool lock. Increments happen while the lock is held (so they are
    // serialized and strictly monotonic); reads are lock-free.
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    retries: AtomicU64,
    corruptions: AtomicU64,
    /// CRC-32 stamped at every flush, verified at every physical fetch.
    /// Absent entries (pages never flushed through this pool) skip
    /// verification.
    checksums: Mutex<HashMap<PageId, u32>>,
    /// Durability veto over dirty-page flushes (see [`FlushGate`]).
    gate: Mutex<Option<Arc<dyn FlushGate>>>,
    /// Physical read + verify latency on a miss (the off-lock I/O).
    /// Recorded unconditionally, like the hit/miss counters: a miss
    /// already pays a disk read, so two clock reads are noise. The hit
    /// path records nothing.
    miss_io_us: evopt_obs::Histogram,
    /// Wall time a fetcher spent waiting on another thread's in-flight
    /// load of the same page (the single-flight spin/sleep loop).
    load_wait_us: evopt_obs::Histogram,
}

impl BufferPool {
    /// A pool of `capacity` frames over `disk` using `policy`.
    pub fn new(disk: Arc<dyn DiskBackend>, capacity: usize, policy: PolicyKind) -> Arc<Self> {
        assert!(capacity > 0, "buffer pool needs at least one frame");
        let frames = (0..capacity)
            .map(|_| Frame {
                page_id: None,
                pin_count: 0,
                dirty: Arc::new(AtomicBool::new(false)),
                data: Arc::new(RwLock::new([0u8; PAGE_SIZE])),
            })
            .collect();
        let policy: Box<dyn Policy> = match policy {
            PolicyKind::Lru => Box::new(LruPolicy::new(capacity)),
            PolicyKind::Clock => Box::new(ClockPolicy::new(capacity)),
        };
        Arc::new(BufferPool {
            inner: Mutex::new(Inner {
                frames,
                table: HashMap::new(),
                free: (0..capacity).rev().collect(),
                policy,
                loading: HashSet::new(),
            }),
            disk,
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            corruptions: AtomicU64::new(0),
            checksums: Mutex::new(HashMap::new()),
            gate: Mutex::new(None),
            miss_io_us: evopt_obs::Histogram::new(evopt_obs::WAIT_BUCKETS_US),
            load_wait_us: evopt_obs::Histogram::new(evopt_obs::WAIT_BUCKETS_US),
        })
    }

    /// Install a [`FlushGate`]. Done once at database construction, before
    /// any write traffic, when durability is enabled.
    pub fn set_flush_gate(&self, gate: Arc<dyn FlushGate>) {
        let _r = lockorder::acquire(lockorder::POOL_GATE);
        *self.gate.lock() = Some(gate);
    }

    fn flush_gate(&self) -> Option<Arc<dyn FlushGate>> {
        let _r = lockorder::acquire(lockorder::POOL_GATE);
        self.gate.lock().clone()
    }

    fn notify_dirty(&self, id: PageId) {
        if let Some(g) = self.flush_gate() {
            g.on_dirty(id);
        }
    }

    /// Number of frames.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The underlying disk (for I/O snapshots).
    pub fn disk(&self) -> &Arc<dyn DiskBackend> {
        &self.disk
    }

    /// (hits, misses) so far.
    pub fn hit_stats(&self) -> (u64, u64) {
        let s = self.stats();
        (s.hits, s.misses)
    }

    /// Latency of the off-lock physical read on a miss (µs).
    pub fn miss_io_histogram(&self) -> evopt_obs::HistogramSnapshot {
        self.miss_io_us.snapshot()
    }

    /// Single-flight wait latency: time fetchers spent parked behind
    /// another thread's in-flight load of the same page (µs).
    pub fn load_wait_histogram(&self) -> evopt_obs::HistogramSnapshot {
        self.load_wait_us.snapshot()
    }

    /// Lock-free snapshot of the hit/miss/retry counters.
    pub fn stats(&self) -> PoolSnapshot {
        PoolSnapshot {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            corruptions: self.corruptions.load(Ordering::Relaxed),
        }
    }

    /// Read a page with bounded retry and checksum verification. Transient
    /// `Io` errors and checksum mismatches trigger a re-read (counted in
    /// `retries`); a mismatch that survives every retry surfaces as
    /// [`EvoptError::Corruption`].
    fn read_page_verified(&self, id: PageId, buf: &mut PageData) -> Result<()> {
        let expected = {
            let _r = lockorder::acquire(lockorder::POOL_CHECKSUM);
            self.checksums.lock().get(&id).copied()
        };
        let mut last_err = EvoptError::Io(format!("read of page {id} never attempted"));
        for attempt in 0..=IO_RETRY_LIMIT {
            if attempt > 0 {
                self.retries.fetch_add(1, Ordering::Relaxed);
            }
            match self.disk.read_page(id, buf) {
                Ok(()) => match expected {
                    Some(crc) if crc32(buf) != crc => {
                        last_err = EvoptError::Corruption(format!(
                            "page {id} failed checksum verification \
                             (expected {crc:#010x}, got {:#010x})",
                            crc32(buf)
                        ));
                    }
                    _ => return Ok(()),
                },
                // Io failures may be transient: retry. Anything else
                // (invalid page id, ...) is a logic error: surface it.
                Err(e @ EvoptError::Io(_)) => last_err = e,
                Err(e) => return Err(e),
            }
        }
        if matches!(last_err, EvoptError::Corruption(_)) {
            self.corruptions.fetch_add(1, Ordering::Relaxed);
        }
        Err(last_err)
    }

    /// Write a page with bounded retry, stamping its checksum on success.
    fn write_page_checksummed(&self, id: PageId, buf: &PageData) -> Result<()> {
        let crc = crc32(buf);
        let mut last_err = EvoptError::Io(format!("write of page {id} never attempted"));
        for attempt in 0..=IO_RETRY_LIMIT {
            if attempt > 0 {
                self.retries.fetch_add(1, Ordering::Relaxed);
            }
            match self.disk.write_page(id, buf) {
                Ok(()) => {
                    let _r = lockorder::acquire(lockorder::POOL_CHECKSUM);
                    self.checksums.lock().insert(id, crc);
                    return Ok(());
                }
                Err(e @ EvoptError::Io(_)) => last_err = e,
                Err(e) => return Err(e),
            }
        }
        Err(last_err)
    }

    /// Fetch a page, pinning it for the guard's lifetime.
    ///
    /// Misses read the disk **without** holding the pool lock: the fetcher
    /// claims the page in the `loading` set, releases the lock for the
    /// physical read, then re-locks to install the bytes into a frame.
    /// Concurrent fetchers of *other* pages proceed — miss I/O overlaps
    /// across sessions. Concurrent fetchers of the *same* page wait for
    /// the loader and then take the hit path (one physical read total).
    pub fn fetch(self: &Arc<Self>, page_id: PageId) -> Result<PageGuard> {
        let mut spins = 0u32;
        // Lazily stamped on the first wait iteration, so the common case
        // (hit, or uncontended miss) never reads the clock here.
        let mut wait_start: Option<std::time::Instant> = None;
        let reserved = loop {
            {
                let _r = lockorder::acquire(lockorder::POOL);
                let mut inner = self.inner.lock();
                if let Some(&frame) = inner.table.get(&page_id) {
                    if let Some(t0) = wait_start {
                        self.load_wait_us.observe(t0.elapsed().as_micros() as u64);
                    }
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    inner.frames[frame].pin_count += 1;
                    inner.policy.set_evictable(frame, false);
                    inner.policy.on_access(frame);
                    let f = &inner.frames[frame];
                    return Ok(PageGuard {
                        pool: Arc::clone(self),
                        frame,
                        page_id,
                        dirty: Arc::clone(&f.dirty),
                        data: Arc::clone(&f.data),
                    });
                }
                if inner.loading.insert(page_id) {
                    // Claimed: we are this page's loader. Reserve a frame
                    // under the same lock, so an exhausted pool fails
                    // here — before any disk traffic.
                    if let Some(t0) = wait_start {
                        self.load_wait_us.observe(t0.elapsed().as_micros() as u64);
                    }
                    match self.reserve_frame(&mut inner) {
                        Ok(r) => break r,
                        Err(e) => {
                            inner.loading.remove(&page_id);
                            return Err(e);
                        }
                    }
                }
                // Another thread is reading this page; wait off-lock and
                // re-check (it will appear in the table, or its loader
                // failed and we claim the load ourselves).
            }
            if wait_start.is_none() {
                wait_start = Some(std::time::Instant::now());
            }
            spins += 1;
            if spins < 16 {
                std::thread::yield_now();
            } else {
                std::thread::sleep(std::time::Duration::from_micros(50));
            }
        };
        // If the victim was dirty, its write-back happens here — after the
        // pool lock is released.
        let frame = match self.settle_reservation(reserved) {
            Ok(f) => f,
            Err(e) => {
                let _r = lockorder::acquire(lockorder::POOL);
                self.inner.lock().loading.remove(&page_id);
                return Err(e);
            }
        };
        // The physical read, off-lock: concurrent misses on other pages
        // proceed. Nobody touches the reserved frame (not free, not in the
        // table) or loads this page (claimed in `loading`) meanwhile.
        let mut buf = Box::new([0u8; PAGE_SIZE]);
        let read = self
            .miss_io_us
            .time(|| self.read_page_verified(page_id, &mut buf));

        let _r = lockorder::acquire(lockorder::POOL);
        let mut inner = self.inner.lock();
        inner.loading.remove(&page_id);
        if let Err(e) = read {
            // Return the frame to the free list so a failed fetch
            // (I/O fault, corruption) leaves the pool fully usable.
            inner.free.push(frame);
            return Err(e);
        }
        {
            let f = &mut inner.frames[frame];
            *f.data.write() = *buf;
            f.page_id = Some(page_id);
            f.pin_count = 1;
            f.dirty.store(false, Ordering::Relaxed);
        }
        // Count the miss only once the physical read succeeded, so failed
        // fetches leave the hit/miss counters untouched.
        self.misses.fetch_add(1, Ordering::Relaxed);
        inner.table.insert(page_id, frame);
        inner.policy.set_evictable(frame, false);
        inner.policy.on_access(frame);
        let f = &inner.frames[frame];
        Ok(PageGuard {
            pool: Arc::clone(self),
            frame,
            page_id,
            dirty: Arc::clone(&f.dirty),
            data: Arc::clone(&f.data),
        })
    }

    /// Allocate a fresh disk page, pin it, and return a guard over the
    /// zeroed frame. The page is marked dirty so it reaches disk on eviction
    /// or flush.
    pub fn new_page(self: &Arc<Self>) -> Result<PageGuard> {
        let page_id = self.disk.allocate_page();
        let reserved = {
            let _r = lockorder::acquire(lockorder::POOL);
            let mut inner = self.inner.lock();
            self.reserve_frame(&mut inner)?
        };
        // Dirty-victim write-back runs off-lock; nobody else can reach the
        // fresh `page_id` yet (the id was just allocated), so no
        // single-flight claim is needed for it.
        let frame = self.settle_reservation(reserved)?;
        let _r = lockorder::acquire(lockorder::POOL);
        let mut inner = self.inner.lock();
        {
            let f = &mut inner.frames[frame];
            f.data.write().fill(0);
            f.page_id = Some(page_id);
            f.pin_count = 1;
            f.dirty.store(true, Ordering::Relaxed);
        }
        // Created dirty: the durability layer must know before any flush.
        self.notify_dirty(page_id);
        inner.table.insert(page_id, frame);
        inner.policy.set_evictable(frame, false);
        inner.policy.on_access(frame);
        let f = &inner.frames[frame];
        Ok(PageGuard {
            pool: Arc::clone(self),
            frame,
            page_id,
            dirty: Arc::clone(&f.dirty),
            data: Arc::clone(&f.data),
        })
    }

    /// Find a frame for a new resident page: a free frame, else evict.
    /// Dirty frames the [`FlushGate`] vetoes are passed over — they must
    /// stay resident until the WAL logs them at commit.
    ///
    /// A dirty victim is **not** written back here (the pool lock is
    /// held): it is detached from the table, its id claimed in `loading`
    /// so concurrent fetchers of the evicted page park instead of reading
    /// stale bytes, and the write-back deferred to
    /// [`BufferPool::settle_reservation`], which runs off-lock.
    fn reserve_frame(&self, inner: &mut Inner) -> Result<Reserved> {
        if let Some(f) = inner.free.pop() {
            return Ok(Reserved::Clean(f));
        }
        let gate = self.flush_gate();
        let mut gated = Vec::new();
        let victim = loop {
            let Some(v) = inner.policy.evict() else {
                break None;
            };
            let unflushable = match (&gate, inner.frames[v].page_id) {
                (Some(g), Some(id)) => {
                    inner.frames[v].dirty.load(Ordering::Relaxed) && !g.can_flush(id)
                }
                _ => false,
            };
            if unflushable {
                gated.push(v);
            } else {
                break Some(v);
            }
        };
        // Passed-over frames stay evictable for after the next commit.
        for v in gated {
            inner.policy.set_evictable(v, true);
        }
        let victim = victim.ok_or_else(|| {
            EvoptError::Storage(format!(
                "buffer pool exhausted: all {} frames pinned or write-gated",
                self.capacity
            ))
        })?;
        let old_id = inner.frames[victim]
            .page_id
            .ok_or_else(|| EvoptError::Internal("evicted frame has no page id".into()))?;
        inner.table.remove(&old_id);
        inner.frames[victim].page_id = None;
        if inner.frames[victim].dirty.swap(false, Ordering::Relaxed) {
            inner.loading.insert(old_id);
            Ok(Reserved::Flush {
                victim,
                old_id,
                data: Arc::clone(&inner.frames[victim].data),
            })
        } else {
            self.evictions.fetch_add(1, Ordering::Relaxed);
            Ok(Reserved::Clean(victim))
        }
    }

    /// Complete a frame reservation. A dirty victim's bytes reach disk
    /// here, **without** the pool lock held — the frame is unreachable
    /// meanwhile (out of the table, out of the policy, not on the free
    /// list, pin count zero) and fetchers of the evicted page wait on its
    /// `loading` claim. On write failure the victim is restored intact
    /// (resident, dirty, evictable) so no data is silently dropped.
    fn settle_reservation(&self, reserved: Reserved) -> Result<usize> {
        match reserved {
            Reserved::Clean(frame) => Ok(frame),
            Reserved::Flush {
                victim,
                old_id,
                data,
            } => {
                let flushed = {
                    let d = data.read();
                    self.write_page_checksummed(old_id, &d)
                };
                let _r = lockorder::acquire(lockorder::POOL);
                let mut inner = self.inner.lock();
                inner.loading.remove(&old_id);
                match flushed {
                    Ok(()) => {
                        self.evictions.fetch_add(1, Ordering::Relaxed);
                        Ok(victim)
                    }
                    Err(e) => {
                        let f = &mut inner.frames[victim];
                        f.page_id = Some(old_id);
                        f.dirty.store(true, Ordering::Relaxed);
                        inner.table.insert(old_id, victim);
                        inner.policy.set_evictable(victim, true);
                        Err(e)
                    }
                }
            }
        }
    }

    fn unpin(&self, frame: usize) {
        let _r = lockorder::acquire(lockorder::POOL);
        let mut inner = self.inner.lock();
        let f = &mut inner.frames[frame];
        debug_assert!(f.pin_count > 0, "unpin of unpinned frame");
        f.pin_count -= 1;
        if f.pin_count == 0 {
            inner.policy.set_evictable(frame, true);
        }
    }

    /// Evict every unpinned resident page (flushing dirty ones), leaving
    /// the cache cold. Experiment harness hook: guarantees the next query's
    /// reads are physical. Pinned frames — and dirty frames the
    /// [`FlushGate`] vetoes — are left in place.
    ///
    /// Two passes: [`BufferPool::flush_all`] writes every dirty flushable
    /// page back (off-lock), then one pool-lock pass drops the now-clean
    /// unpinned frames. A frame re-dirtied between the passes is left
    /// resident rather than evicted unflushed.
    pub fn evict_all(&self) -> Result<()> {
        self.flush_all()?;
        let _r = lockorder::acquire(lockorder::POOL);
        let mut inner = self.inner.lock();
        for frame in 0..inner.frames.len() {
            let page_id = {
                let f = &inner.frames[frame];
                match f.page_id {
                    Some(id) if f.pin_count == 0 && !f.dirty.load(Ordering::Relaxed) => id,
                    _ => continue,
                }
            };
            inner.table.remove(&page_id);
            inner.frames[frame].page_id = None;
            inner.policy.set_evictable(frame, false);
            inner.free.push(frame);
        }
        Ok(())
    }

    /// Write every dirty resident page back to disk. Pages the
    /// [`FlushGate`] vetoes (dirty but not yet logged) stay dirty in the
    /// pool; they reach disk after the next commit logs them.
    ///
    /// The physical writes run **off** the pool lock: one locked pass
    /// selects the dirty flushable pages and pins them (so they stay
    /// resident), the writes happen lock-free against the per-frame page
    /// latches, and a final locked pass unpins. Fetches of unrelated pages
    /// proceed during the I/O.
    pub fn flush_all(&self) -> Result<()> {
        // Frame index, page, its latch, and its dirty flag — everything the
        // off-lock write pass needs from the locked selection pass.
        type FlushWork = Vec<(usize, PageId, Arc<RwLock<PageData>>, Arc<AtomicBool>)>;
        let gate = self.flush_gate();
        let mut work: FlushWork = Vec::new();
        {
            let _r = lockorder::acquire(lockorder::POOL);
            let mut inner = self.inner.lock();
            for frame in 0..inner.frames.len() {
                let Some(id) = inner.frames[frame].page_id else {
                    continue;
                };
                if gate.as_ref().is_some_and(|g| !g.can_flush(id)) {
                    continue;
                }
                if inner.frames[frame].dirty.swap(false, Ordering::Relaxed) {
                    inner.frames[frame].pin_count += 1;
                    inner.policy.set_evictable(frame, false);
                    let f = &inner.frames[frame];
                    work.push((frame, id, Arc::clone(&f.data), Arc::clone(&f.dirty)));
                }
            }
        }
        let mut result = Ok(());
        for (i, (_, id, data, _)) in work.iter().enumerate() {
            let flushed = {
                let d = data.read();
                self.write_page_checksummed(*id, &d)
            };
            if let Err(e) = flushed {
                // Nothing from here on reached disk: restore the dirty
                // flags (including the failed page's) so no data is
                // silently dropped.
                for (_, _, _, d) in &work[i..] {
                    d.store(true, Ordering::Relaxed);
                }
                result = Err(e);
                break;
            }
        }
        let _r = lockorder::acquire(lockorder::POOL);
        let mut inner = self.inner.lock();
        for &(frame, ..) in &work {
            let f = &mut inner.frames[frame];
            f.pin_count -= 1;
            if f.pin_count == 0 {
                inner.policy.set_evictable(frame, true);
            }
        }
        result
    }

    /// Stamp `lsn` into a resident page's LSN trailer and return a copy of
    /// its bytes — the WAL's redo image. The frame is marked dirty
    /// *without* notifying the [`FlushGate`]: this is the gate's own commit
    /// path, called after it has taken the page out of its unlogged set.
    ///
    /// Errors if the page is not resident. It always is on the commit
    /// path — gated pages cannot be evicted.
    pub fn stamp_lsn(&self, id: PageId, lsn: u64) -> Result<Box<PageData>> {
        let _r = lockorder::acquire(lockorder::POOL);
        let inner = self.inner.lock();
        let &frame = inner
            .table
            .get(&id)
            .ok_or_else(|| EvoptError::Internal(format!("commit of non-resident page {id}")))?;
        let f = &inner.frames[frame];
        let mut data = f.data.write();
        set_page_lsn(&mut data, lsn);
        f.dirty.store(true, Ordering::Relaxed);
        Ok(Box::new(*data))
    }
}

/// Pinned handle to a resident page. Access the bytes with [`PageGuard::read`]
/// / [`PageGuard::write`] (writing marks the page dirty). Dropping unpins.
pub struct PageGuard {
    pool: Arc<BufferPool>,
    frame: usize,
    page_id: PageId,
    dirty: Arc<AtomicBool>,
    data: Arc<RwLock<PageData>>, // lockorder: leaf
}

impl std::fmt::Debug for PageGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PageGuard")
            .field("page_id", &self.page_id)
            .field("frame", &self.frame)
            .finish()
    }
}

impl PageGuard {
    pub fn id(&self) -> PageId {
        self.page_id
    }

    /// Shared access to the page bytes.
    pub fn read(&self) -> RwLockReadGuard<'_, PageData> {
        self.data.read()
    }

    /// Exclusive access; marks the page dirty (and reports it to the
    /// pool's [`FlushGate`], when one is installed).
    pub fn write(&self) -> RwLockWriteGuard<'_, PageData> {
        self.dirty.store(true, Ordering::Relaxed);
        self.pool.notify_dirty(self.page_id);
        self.data.write()
    }
}

impl Drop for PageGuard {
    fn drop(&mut self) {
        self.pool.unpin(self.frame);
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use crate::disk::{DiskBackend, DiskManager};
    use crate::fault::{FaultConfig, FaultInjector};

    fn pool(frames: usize, policy: PolicyKind) -> Arc<BufferPool> {
        BufferPool::new(Arc::new(DiskManager::new()), frames, policy)
    }

    #[test]
    fn new_page_write_read_roundtrip() {
        let p = pool(4, PolicyKind::Lru);
        let g = p.new_page().unwrap();
        g.write()[0] = 0x5A;
        let id = g.id();
        drop(g);
        let g = p.fetch(id).unwrap();
        assert_eq!(g.read()[0], 0x5A);
    }

    #[test]
    fn eviction_persists_dirty_pages() {
        let p = pool(2, PolicyKind::Lru);
        let mut ids = Vec::new();
        for i in 0..10u8 {
            let g = p.new_page().unwrap();
            g.write()[0] = i;
            ids.push(g.id());
        }
        // All ten pages round-trip even though only two frames exist.
        for (i, id) in ids.iter().enumerate() {
            let g = p.fetch(*id).unwrap();
            assert_eq!(g.read()[0], i as u8, "page {id}");
        }
    }

    #[test]
    fn pool_exhaustion_is_error_not_deadlock() {
        let p = pool(2, PolicyKind::Lru);
        let _a = p.new_page().unwrap();
        let _b = p.new_page().unwrap();
        let err = p.new_page().unwrap_err();
        assert_eq!(err.kind(), "storage");
        assert!(err.message().contains("pinned"));
    }

    #[test]
    fn unpinned_frames_become_reusable() {
        let p = pool(1, PolicyKind::Clock);
        let a = p.new_page().unwrap();
        let a_id = a.id();
        drop(a);
        let b = p.new_page().unwrap(); // evicts a
        drop(b);
        let a = p.fetch(a_id).unwrap(); // reload from disk
        assert_eq!(a.id(), a_id);
    }

    #[test]
    fn hit_miss_accounting() {
        let p = pool(4, PolicyKind::Lru);
        let g = p.new_page().unwrap();
        let id = g.id();
        drop(g);
        let _g1 = p.fetch(id).unwrap();
        let _g2 = p.fetch(id).unwrap();
        let (hits, misses) = p.hit_stats();
        assert_eq!(hits, 2);
        assert_eq!(misses, 0);
    }

    #[test]
    fn snapshots_are_monotonic_under_concurrent_traffic() {
        // Readers racing with fetches must never observe the counters go
        // backwards, and deltas between successive snapshots must be
        // non-negative (PoolSnapshot::since saturates by construction, so
        // check monotonicity on the raw fields).
        let p = pool(4, PolicyKind::Lru);
        let id = p.new_page().unwrap().id();
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let reader = {
            let p = Arc::clone(&p);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut prev = p.stats();
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let cur = p.stats();
                    assert!(cur.hits >= prev.hits, "hits went backwards");
                    assert!(cur.misses >= prev.misses, "misses went backwards");
                    prev = cur;
                }
                prev
            })
        };
        let before = p.stats();
        for _ in 0..5_000 {
            drop(p.fetch(id).unwrap());
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        reader.join().unwrap();
        let delta = p.stats().since(&before);
        assert_eq!(delta.hits, 5_000);
        assert_eq!(delta.misses, 0);
        assert!((delta.hit_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let disk = Arc::new(DiskManager::new());
        let p = BufferPool::new(
            Arc::clone(&disk) as Arc<dyn DiskBackend>,
            2,
            PolicyKind::Lru,
        );
        let a = p.new_page().unwrap();
        let a_id = a.id();
        drop(a);
        let b = p.new_page().unwrap();
        let b_id = b.id();
        drop(b);
        // Touch a so b is the LRU victim.
        drop(p.fetch(a_id).unwrap());
        let before = disk.snapshot();
        let c = p.new_page().unwrap(); // should evict b
        drop(c);
        drop(p.fetch(a_id).unwrap()); // a still resident: no read
        let delta = disk.snapshot().since(&before);
        assert_eq!(delta.reads, 0, "a was evicted but should not have been");
        drop(p.fetch(b_id).unwrap()); // b was evicted: one read
        let delta = disk.snapshot().since(&before);
        assert_eq!(delta.reads, 1);
    }

    #[test]
    fn smaller_pool_does_more_io_on_cyclic_scan() {
        // The F4 effect in miniature: scanning N pages cyclically with a
        // pool smaller than N misses every time; a big pool misses once.
        let run = |frames: usize| -> u64 {
            let disk = Arc::new(DiskManager::new());
            let p = BufferPool::new(
                Arc::clone(&disk) as Arc<dyn DiskBackend>,
                frames,
                PolicyKind::Lru,
            );
            let ids: Vec<_> = (0..8)
                .map(|_| {
                    let g = p.new_page().unwrap();
                    g.id()
                })
                .collect();
            let before = disk.snapshot();
            for _ in 0..3 {
                for &id in &ids {
                    drop(p.fetch(id).unwrap());
                }
            }
            disk.snapshot().since(&before).reads
        };
        let small = run(4);
        let large = run(16);
        assert!(small > large, "small pool {small} <= large pool {large}");
        assert_eq!(large, 0, "everything stays resident in the large pool");
    }

    #[test]
    fn clock_policy_also_caches() {
        let disk = Arc::new(DiskManager::new());
        let p = BufferPool::new(
            Arc::clone(&disk) as Arc<dyn DiskBackend>,
            8,
            PolicyKind::Clock,
        );
        let g = p.new_page().unwrap();
        let id = g.id();
        drop(g);
        let before = disk.snapshot();
        for _ in 0..5 {
            drop(p.fetch(id).unwrap());
        }
        assert_eq!(disk.snapshot().since(&before).reads, 0);
    }

    #[test]
    fn evict_all_leaves_cache_cold_but_data_intact() {
        let disk = Arc::new(DiskManager::new());
        let p = BufferPool::new(
            Arc::clone(&disk) as Arc<dyn DiskBackend>,
            8,
            PolicyKind::Lru,
        );
        let g = p.new_page().unwrap();
        g.write()[3] = 0x77;
        let id = g.id();
        let pinned = p.new_page().unwrap(); // stays pinned through evict_all
        drop(g);
        p.evict_all().unwrap();
        let before = disk.snapshot();
        let g = p.fetch(id).unwrap();
        assert_eq!(g.read()[3], 0x77, "dirty page was flushed before eviction");
        assert_eq!(
            disk.snapshot().since(&before).reads,
            1,
            "fetch was physical"
        );
        // The pinned page survived and is still usable.
        pinned.write()[0] = 1;
        drop(pinned);
    }

    #[test]
    fn flush_all_writes_dirty_pages() {
        let disk = Arc::new(DiskManager::new());
        let p = BufferPool::new(
            Arc::clone(&disk) as Arc<dyn DiskBackend>,
            4,
            PolicyKind::Lru,
        );
        let g = p.new_page().unwrap();
        g.write()[7] = 9;
        let id = g.id();
        drop(g);
        p.flush_all().unwrap();
        // Read directly from disk, bypassing the pool.
        let mut buf = [0u8; PAGE_SIZE];
        disk.read_page(id, &mut buf).unwrap();
        assert_eq!(buf[7], 9);
    }

    #[test]
    fn exhausted_pool_fetch_fails_clean_and_pool_stays_usable() {
        // Satellite: all frames pinned → fetch of a non-resident page must
        // return a clean Storage error, leave hit/miss counters untouched,
        // and leave the pool fully usable once a pin is released.
        let disk = Arc::new(DiskManager::new());
        let p = BufferPool::new(
            Arc::clone(&disk) as Arc<dyn DiskBackend>,
            2,
            PolicyKind::Lru,
        );
        // A third page living only on disk.
        let evicted_id = {
            let g = p.new_page().unwrap();
            g.write()[0] = 0x42;
            g.id()
        };
        p.flush_all().unwrap();
        p.evict_all().unwrap();
        let g1 = p.new_page().unwrap();
        let g2 = p.new_page().unwrap();
        let before = p.stats();
        let io_before = disk.snapshot();
        let err = p.fetch(evicted_id).unwrap_err();
        assert_eq!(err.kind(), "storage");
        assert!(err.message().contains("pinned"), "{err}");
        assert_eq!(
            p.stats().since(&before),
            PoolSnapshot::default(),
            "failed fetch must not move the pool counters"
        );
        assert_eq!(
            disk.snapshot().since(&io_before).total(),
            0,
            "failed fetch must not touch the disk"
        );
        // Releasing one pin makes the same fetch succeed.
        drop(g1);
        let g = p.fetch(evicted_id).unwrap();
        assert_eq!(g.read()[0], 0x42);
        let delta = p.stats().since(&before);
        assert_eq!((delta.hits, delta.misses), (0, 1));
        drop(g);
        drop(g2);
    }

    #[test]
    fn failed_read_returns_frame_to_free_list() {
        // A fetch that dies on a permanent I/O fault must not leak its
        // frame: the pool retains full capacity afterwards.
        let disk = Arc::new(DiskManager::new());
        let inj = Arc::new(FaultInjector::new(
            Arc::clone(&disk) as Arc<dyn DiskBackend>,
            FaultConfig {
                seed: 1,
                permanent_read_error: 1.0,
                ..Default::default()
            },
        ));
        inj.set_enabled(false);
        let p = BufferPool::new(Arc::clone(&inj) as Arc<dyn DiskBackend>, 2, PolicyKind::Lru);
        let id = {
            let g = p.new_page().unwrap();
            g.id()
        };
        p.evict_all().unwrap();
        inj.set_enabled(true);
        assert_eq!(p.fetch(id).unwrap_err().kind(), "io");
        inj.set_enabled(false);
        // Both frames still available: two concurrent pins succeed.
        let _a = p.new_page().unwrap();
        let _b = p.new_page().unwrap();
    }

    #[test]
    fn checksum_detects_torn_write_and_bit_flip() {
        let disk = Arc::new(DiskManager::new());
        let inj = Arc::new(FaultInjector::new(
            Arc::clone(&disk) as Arc<dyn DiskBackend>,
            FaultConfig::default(),
        ));
        let p = BufferPool::new(Arc::clone(&inj) as Arc<dyn DiskBackend>, 4, PolicyKind::Lru);
        let make_page = |fill: u8| {
            let g = p.new_page().unwrap();
            for b in g.write().iter_mut() {
                *b = fill;
            }
            g.id()
        };
        let torn_id = make_page(0x11);
        let flip_id = make_page(0x22);
        p.flush_all().unwrap();
        p.evict_all().unwrap();
        inj.force_torn_write(torn_id).unwrap();
        inj.force_bit_flip(flip_id).unwrap();
        for id in [torn_id, flip_id] {
            let err = p.fetch(id).unwrap_err();
            assert_eq!(err.kind(), "corruption", "{err}");
            assert!(err.message().contains("checksum"), "{err}");
        }
        assert_eq!(p.stats().corruptions, 2);
        // Persistent corruption burned the full retry budget each time.
        assert_eq!(p.stats().retries, 2 * IO_RETRY_LIMIT as u64);
    }

    #[test]
    fn transient_faults_heal_via_bounded_retry() {
        let disk = Arc::new(DiskManager::new());
        let inj = Arc::new(FaultInjector::new(
            Arc::clone(&disk) as Arc<dyn DiskBackend>,
            FaultConfig {
                seed: 3,
                read_error: 1.0,
                bit_flip_read: 1.0,
                ..Default::default()
            },
        ));
        inj.set_enabled(false);
        let p = BufferPool::new(Arc::clone(&inj) as Arc<dyn DiskBackend>, 2, PolicyKind::Lru);
        let id = {
            let g = p.new_page().unwrap();
            g.write()[7] = 0x77;
            g.id()
        };
        p.flush_all().unwrap();
        p.evict_all().unwrap();
        inj.set_enabled(true);
        // First attempt: injected transient error. Second: bit flip in the
        // returned buffer → checksum mismatch. Third: clean. The caller
        // sees none of it.
        let g = p.fetch(id).unwrap();
        assert_eq!(g.read()[7], 0x77);
        assert!(p.stats().retries >= 1, "retries: {}", p.stats().retries);
        assert_eq!(p.stats().corruptions, 0);
    }

    #[test]
    fn reflush_restamps_checksum_after_corruption() {
        // A corrupted page that the engine rewrites (dirty in the pool,
        // flushed again) verifies against the *new* checksum afterwards.
        let disk = Arc::new(DiskManager::new());
        let inj = Arc::new(FaultInjector::new(
            Arc::clone(&disk) as Arc<dyn DiskBackend>,
            FaultConfig::default(),
        ));
        let p = BufferPool::new(Arc::clone(&inj) as Arc<dyn DiskBackend>, 2, PolicyKind::Lru);
        let g = p.new_page().unwrap();
        let id = g.id();
        g.write()[0] = 1;
        p.flush_all().unwrap();
        inj.force_bit_flip(id).unwrap();
        // The page is still resident and pinned: rewrite and reflush it.
        g.write()[0] = 2;
        p.flush_all().unwrap();
        drop(g);
        p.evict_all().unwrap();
        let g = p.fetch(id).unwrap();
        assert_eq!(g.read()[0], 2, "fresh flush restamped the checksum");
    }

    #[test]
    fn flush_gate_blocks_unlogged_pages_until_released() {
        use std::collections::HashSet;
        use std::sync::Mutex as StdMutex;

        /// Toy gate: tracks dirtied pages; vetoes flushes while `strict`.
        struct TestGate {
            strict: AtomicBool,
            dirtied: StdMutex<HashSet<PageId>>,
        }
        impl FlushGate for TestGate {
            fn on_dirty(&self, id: PageId) {
                self.dirtied.lock().unwrap().insert(id);
            }
            fn can_flush(&self, id: PageId) -> bool {
                !self.strict.load(Ordering::Relaxed) || !self.dirtied.lock().unwrap().contains(&id)
            }
        }

        let disk = Arc::new(DiskManager::new());
        let p = BufferPool::new(
            Arc::clone(&disk) as Arc<dyn DiskBackend>,
            2,
            PolicyKind::Lru,
        );
        let gate = Arc::new(TestGate {
            strict: AtomicBool::new(true),
            dirtied: StdMutex::new(HashSet::new()),
        });
        p.set_flush_gate(Arc::clone(&gate) as Arc<dyn FlushGate>);

        // Two dirty, unlogged, unpinned pages fill the pool.
        let a = p.new_page().unwrap();
        a.write()[0] = 1;
        let a_id = a.id();
        drop(a);
        let b = p.new_page().unwrap();
        b.write()[0] = 2;
        drop(b);
        assert!(gate.dirtied.lock().unwrap().contains(&a_id));

        // No victim is flushable: allocation fails clean, data stays put.
        let err = p.new_page().unwrap_err();
        assert_eq!(err.kind(), "storage");
        assert!(err.message().contains("write-gated"), "{err}");
        // flush_all is a gated no-op: nothing reaches disk.
        let io_before = disk.snapshot();
        p.flush_all().unwrap();
        assert_eq!(disk.snapshot().since(&io_before).writes, 0);
        // evict_all leaves both resident.
        p.evict_all().unwrap();
        let g = p.fetch(a_id).unwrap();
        assert_eq!(g.read()[0], 1, "gated page stayed resident");
        drop(g);

        // stamp_lsn marks dirty without re-entering the gate, and the
        // returned image carries the trailer.
        let img = p.stamp_lsn(a_id, 77).unwrap();
        assert_eq!(crate::page::page_lsn(&img), 77);

        // "Commit": release the gate; eviction and flushes work again.
        gate.strict.store(false, Ordering::Relaxed);
        p.flush_all().unwrap();
        let c = p.new_page().unwrap();
        drop(c);
        let mut buf = [0u8; PAGE_SIZE];
        disk.read_page(a_id, &mut buf).unwrap();
        assert_eq!(buf[0], 1, "released page flushed with its data");
        assert_eq!(crate::page::page_lsn(&buf), 77);
    }

    #[test]
    fn concurrent_same_page_misses_read_disk_once() {
        // The loading set makes a miss single-flight: many threads racing
        // to fetch the same cold page cause exactly one physical read.
        let disk = Arc::new(DiskManager::new());
        let p = BufferPool::new(
            Arc::clone(&disk) as Arc<dyn DiskBackend>,
            8,
            PolicyKind::Lru,
        );
        let id = {
            let g = p.new_page().unwrap();
            g.write()[0] = 0x5C;
            g.id()
        };
        p.flush_all().unwrap();
        p.evict_all().unwrap();
        let before = disk.snapshot();
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let p = Arc::clone(&p);
                std::thread::spawn(move || {
                    let g = p.fetch(id).unwrap();
                    assert_eq!(g.read()[0], 0x5C);
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(disk.snapshot().since(&before).reads, 1);
        let s = p.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 7);
    }

    #[test]
    fn miss_io_overlaps_across_threads() {
        // With simulated disk latency, four threads fetching four distinct
        // cold pages must finish in much less than 4× the latency — the
        // pool lock is not held across the physical read. The sleep-based
        // latency overlaps even on one CPU, so the bound is robust.
        let disk = Arc::new(DiskManager::new());
        let p = BufferPool::new(
            Arc::clone(&disk) as Arc<dyn DiskBackend>,
            8,
            PolicyKind::Lru,
        );
        let ids: Vec<PageId> = (0..4)
            .map(|i| {
                let g = p.new_page().unwrap();
                g.write()[0] = i as u8;
                g.id()
            })
            .collect();
        p.flush_all().unwrap();
        p.evict_all().unwrap();
        disk.set_io_latency_micros(20_000); // 20ms per physical I/O
        let start = std::time::Instant::now();
        let threads: Vec<_> = ids
            .iter()
            .enumerate()
            .map(|(i, &id)| {
                let p = Arc::clone(&p);
                std::thread::spawn(move || {
                    let g = p.fetch(id).unwrap();
                    assert_eq!(g.read()[0], i as u8);
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let elapsed = start.elapsed();
        disk.set_io_latency_micros(0);
        assert!(
            elapsed < std::time::Duration::from_millis(60),
            "4 × 20ms misses took {elapsed:?}: miss I/O did not overlap"
        );
    }

    #[test]
    fn concurrent_fetches_pin_same_page() {
        let p = pool(2, PolicyKind::Lru);
        let g1 = p.new_page().unwrap();
        let id = g1.id();
        let g2 = p.fetch(id).unwrap();
        // Two pins on one frame; second frame still free for another page.
        let _other = p.new_page().unwrap();
        drop(g1);
        // Still pinned by g2: allocating two more pages must fail on the
        // second (only one evictable frame).
        drop(g2);
    }
}
