//! Redo-only write-ahead log and crash recovery.
//!
//! The WAL makes statement-granularity commits crash-durable on top of the
//! simulated disk. It is written through [`DiskBackend`] like every other
//! page, so the [`crate::fault::FaultInjector`] perturbs it for free and
//! [`crate::fault::CrashingBackend`] can kill it mid-write.
//!
//! # On-disk layout
//!
//! Page 0 is the **master page**:
//!
//! ```text
//! 0   u64 magic            "evoptwal"
//! 8   u32 format version   (1)
//! 12  u32 reserved         (0)
//! 16  u64 scan_start       first log page of the current chain
//! 24  u64 checkpoint_lsn   LSN of the last completed checkpoint
//! 32  u64 next_lsn hint    (advisory; recovery recomputes from the scan)
//! 40  u32 crc32            over bytes [0, 40)
//! ```
//!
//! Log pages form a singly-linked chain: bytes `[0, 8)` hold the next page
//! id (`0` = none — page 0 is the master, never a log page, so fresh zeroed
//! pages read as end-of-chain), bytes `[8, PAGE_SIZE)` are a raw byte
//! stream. Records are framed in that stream, freely straddling pages:
//!
//! ```text
//! u32 payload_len | u32 crc32(payload) | payload
//! payload = u8 kind | u64 lsn | body
//! ```
//!
//! `payload_len == 0` marks the clean end of the log (fresh pages are
//! zeroed). A record whose CRC mismatches, whose LSN does not increase, or
//! that runs past the end of the chain is a **torn tail**: the scan stops
//! and everything from the last commit/checkpoint record onward is
//! truncated — torn records are never replayed.
//!
//! # Redo-only, no-steal
//!
//! Commit captures a full image of every page the statement dirtied
//! (stamping the page LSN trailer), appends the images plus a commit
//! record, flushes the log tail and syncs. There are no undo records
//! because uncommitted dirty pages never reach disk: the WAL registers
//! itself as the pool's [`FlushGate`] and vetoes flushing any page whose
//! image is not yet on the log (the *unlogged set*). Recovery therefore
//! only ever redoes committed work, idempotently — a redo record is
//! skipped when the on-disk page's LSN trailer is already ≥ the record's.
//!
//! # Group commit
//!
//! Under the multi-session engine, commits split in two:
//! [`Wal::commit_grouped`] appends the statement's page images plus a
//! commit record to the in-memory log tail (moving the pages from the
//! *unlogged* gate to a second *unsynced* gate — no-steal holds throughout)
//! and returns the commit LSN; [`Wal::sync_through`] makes the log durable
//! through that LSN. The sync early-returns when a sibling session's sync
//! already covered the LSN — adjacent commits share one physical sync,
//! which is the group-commit win. [`Wal::commit`] composes the two for the
//! single-caller case.
//!
//! # Checkpoints
//!
//! [`Wal::checkpoint`] bounds recovery work: flush all committed dirty
//! pages, seal the current chain, write a checkpoint record (carrying a
//! full catalog image) at the head of a fresh chain, atomically switch the
//! master page to it, then release the old chain. A crash at any point
//! leaves the master naming either the old or the new chain — both scans
//! converge, because replay is idempotent.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use evopt_common::{lockorder, DataType, EvoptError, Result};
use parking_lot::Mutex;

use crate::buffer::{BufferPool, FlushGate};
use crate::checksum::crc32;
use crate::disk::DiskBackend;
use crate::page::{page_lsn, PageData, PageId, PAGE_SIZE};

/// WAL sequence number. Strictly increasing across records; 0 = "never
/// logged" in page trailers.
pub type Lsn = u64;

/// The master page's fixed location.
pub const WAL_MASTER_PAGE: PageId = 0;

const MASTER_MAGIC: u64 = 0x6576_6f70_7477_616c; // "evoptwal"
const MASTER_VERSION: u32 = 1;
const MASTER_LEN: usize = 44;

/// "No next log page" sentinel in the chain header (page 0 is the master,
/// so a zeroed fresh page unambiguously ends the chain).
const NO_NEXT: PageId = 0;
const LOG_PAGE_HDR: usize = 8;
const LOG_PAGE_PAYLOAD: usize = PAGE_SIZE - LOG_PAGE_HDR;

/// Upper bound on a record payload; a scanned length beyond this is
/// garbage (torn tail), not a record.
const MAX_RECORD_BYTES: usize = 16 << 20;

/// Attempts per physical WAL page op before a fault is declared permanent
/// (mirrors the buffer pool's bounded retry).
const WAL_RETRY_LIMIT: u32 = 3;

const KIND_PAGE_IMAGE: u8 = 1;
const KIND_COMMIT: u8 = 2;
const KIND_CREATE_TABLE: u8 = 3;
const KIND_CREATE_INDEX: u8 = 4;
const KIND_DROP_TABLE: u8 = 5;
const KIND_CHECKPOINT: u8 = 6;

/// One column of a logged table schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnImage {
    pub name: String,
    pub dtype: DataType,
    pub nullable: bool,
}

/// One secondary index of a logged table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexImage {
    pub name: String,
    /// Column ordinal in the owning table's schema.
    pub column: u32,
    pub unique: bool,
    pub clustered: bool,
    /// The B+-tree's meta page — its stable identity on disk.
    pub meta_page: PageId,
}

/// One logged table: schema plus the storage roots recovery reopens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableImage {
    pub name: String,
    pub columns: Vec<ColumnImage>,
    /// First page of the heap-file chain.
    pub first_page: PageId,
    pub indexes: Vec<IndexImage>,
}

/// Everything recovery needs to rebuild the in-memory catalog: the logical
/// schema plus storage roots. Statistics are *not* carried — they are
/// advisory, and a recovered database re-ANALYZEs.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CatalogImage {
    pub tables: Vec<TableImage>,
}

impl CatalogImage {
    fn table_mut(&mut self, name: &str) -> Option<&mut TableImage> {
        self.tables.iter_mut().find(|t| t.name == name)
    }
}

/// A parsed log record.
#[derive(Debug, Clone)]
enum WalRecord {
    /// Full after-image of a data page, applied during redo.
    PageImage {
        lsn: Lsn,
        page: PageId,
        image: Box<PageData>,
    },
    /// Everything logged since the previous commit record is durable.
    Commit { lsn: Lsn },
    /// DDL: a table was created (indexes always empty at creation).
    CreateTable { lsn: Lsn, table: TableImage },
    /// DDL: an index was created on `table`.
    CreateIndex {
        lsn: Lsn,
        table: String,
        index: IndexImage,
    },
    /// DDL: a table (and its indexes) was dropped.
    DropTable { lsn: Lsn, name: String },
    /// Full catalog image; also acts as a commit point.
    Checkpoint { lsn: Lsn, catalog: CatalogImage },
}

impl WalRecord {
    fn lsn(&self) -> Lsn {
        match self {
            WalRecord::PageImage { lsn, .. }
            | WalRecord::Commit { lsn }
            | WalRecord::CreateTable { lsn, .. }
            | WalRecord::CreateIndex { lsn, .. }
            | WalRecord::DropTable { lsn, .. }
            | WalRecord::Checkpoint { lsn, .. } => *lsn,
        }
    }

    /// Whether this record makes the log prefix before it durable.
    fn is_commit_point(&self) -> bool {
        matches!(
            self,
            WalRecord::Commit { .. } | WalRecord::Checkpoint { .. }
        )
    }
}

/// What [`Wal::open`] found and did.
#[derive(Debug, Clone, Default)]
pub struct RecoveryInfo {
    /// The catalog as of the last committed record.
    pub catalog: CatalogImage,
    /// Records scanned with a valid CRC (committed or not).
    pub scanned_records: u64,
    /// Page images actually written back (LSN test passed).
    pub replayed_records: u64,
    /// CRC-valid records discarded because no commit record followed.
    pub discarded_records: u64,
    /// Whether the scan ended on damage (CRC mismatch, truncated frame,
    /// non-increasing LSN) rather than a clean end-of-log marker.
    pub torn_tail: bool,
}

/// Monotonic WAL counters (see also `IoSnapshot::syncs` on the disk).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WalStats {
    pub records_written: u64,
    pub bytes_written: u64,
    pub commits: u64,
    pub checkpoints: u64,
    pub recoveries: u64,
    pub replayed_records: u64,
    /// Syncs that early-returned because a sibling session's physical sync
    /// already covered their LSN (the group-commit win).
    pub coalesced_syncs: u64,
}

struct WalState {
    scan_start: PageId,
    checkpoint_lsn: Lsn,
    next_lsn: Lsn,
    /// The chain's last page; appends accumulate here in memory and reach
    /// disk on commit (or when the page fills and the chain grows).
    tail_page: PageId,
    tail_buf: Box<PageData>,
    /// Payload bytes used in `tail_buf`.
    tail_used: usize,
    /// Records appended since the last commit record (forces the next
    /// commit to write even if no pages are dirty — DDL).
    pending: u64,
    /// LSN of the last commit point appended (not necessarily synced).
    last_commit_lsn: Lsn,
    /// Set when an append died partway and the in-memory stream no longer
    /// matches the disk: all further writes fail typed. Recovery (reopen)
    /// is the way back.
    poisoned: Option<String>,
}

/// The write-ahead log. One per database; shared via `Arc` so it can also
/// serve as the pool's [`FlushGate`].
pub struct Wal {
    disk: Arc<dyn DiskBackend>,
    state: Mutex<WalState>,
    /// Dirty pages whose redo image is not yet on the log. The flush gate:
    /// these may not reach disk (no-steal).
    unlogged: Mutex<HashSet<PageId>>,
    /// Dirty pages whose redo image is appended but not yet durably synced
    /// (keyed by image LSN). The second half of the gate: grouped commits
    /// park pages here until some session's sync covers them.
    unsynced: Mutex<HashMap<PageId, Lsn>>,
    /// Highest LSN known durable on disk.
    synced_lsn: AtomicU64,
    coalesced_syncs: AtomicU64,
    /// Wall time per [`Wal::sync_through`] call. Bimodal by design: the
    /// coalesced fast path (a sibling's fsync already covered our LSN)
    /// lands in the 1µs bucket, a physical flush+sync in the tail — the
    /// split *is* the group-commit win, made visible.
    sync_wait_us: evopt_obs::Histogram,
    records_written: AtomicU64,
    bytes_written: AtomicU64,
    commits: AtomicU64,
    checkpoints: AtomicU64,
    recoveries: AtomicU64,
    replayed_records: AtomicU64,
}

impl FlushGate for Wal {
    fn on_dirty(&self, id: PageId) {
        let _r = lockorder::acquire(lockorder::WAL_GATE);
        self.unlogged.lock().insert(id);
    }

    fn can_flush(&self, id: PageId) -> bool {
        {
            let _r = lockorder::acquire(lockorder::WAL_GATE);
            if self.unlogged.lock().contains(&id) {
                return false;
            }
        }
        let _r = lockorder::acquire(lockorder::WAL_UNSYNCED);
        !self.unsynced.lock().contains_key(&id)
    }
}

impl Wal {
    /// Initialise a WAL on a **fresh** disk (page 0 must be free — the
    /// master page's location is fixed).
    pub fn create(disk: Arc<dyn DiskBackend>) -> Result<Arc<Wal>> {
        let master = disk.allocate_page();
        if master != WAL_MASTER_PAGE {
            return Err(EvoptError::Storage(format!(
                "WAL requires a fresh disk: master page allocated at {master}, want {WAL_MASTER_PAGE}"
            )));
        }
        let first = disk.allocate_page();
        let wal = Wal {
            disk,
            state: Mutex::new(WalState {
                scan_start: first,
                checkpoint_lsn: 0,
                next_lsn: 1,
                tail_page: first,
                tail_buf: Box::new([0u8; PAGE_SIZE]),
                tail_used: 0,
                pending: 0,
                last_commit_lsn: 0,
                poisoned: None,
            }),
            unlogged: Mutex::new(HashSet::new()),
            unsynced: Mutex::new(HashMap::new()),
            synced_lsn: AtomicU64::new(0),
            coalesced_syncs: AtomicU64::new(0),
            sync_wait_us: evopt_obs::Histogram::new(evopt_obs::WAIT_BUCKETS_US),
            records_written: AtomicU64::new(0),
            bytes_written: AtomicU64::new(0),
            commits: AtomicU64::new(0),
            checkpoints: AtomicU64::new(0),
            recoveries: AtomicU64::new(0),
            replayed_records: AtomicU64::new(0),
        };
        // `wal` is exclusively owned here — no lock needed; the initial
        // master mirrors the state constructed above.
        wal.write_page_verified(first, &[0u8; PAGE_SIZE])?;
        wal.write_master(first, 0, 1)?;
        wal.sync_retry()?;
        Ok(Arc::new(wal))
    }

    /// Open an existing WAL and run crash recovery: scan the log from the
    /// master's chain, truncate the torn/uncommitted tail, and replay the
    /// committed page images idempotently. Returns the WAL positioned for
    /// new appends plus what recovery found.
    pub fn open(disk: Arc<dyn DiskBackend>) -> Result<(Arc<Wal>, RecoveryInfo)> {
        let (scan_start, master_checkpoint_lsn) = Self::read_master(&disk)?;

        // Scan: collect CRC-valid, LSN-increasing records and the stream
        // position after each one.
        let mut records: Vec<(WalRecord, (PageId, usize))> = Vec::new();
        let mut torn_tail = false;
        let mut cursor = LogCursor::load(&disk, scan_start)?;
        let mut last_lsn: Lsn = 0;
        loop {
            let mut len_bytes = [0u8; 4];
            match cursor.read_exact(&mut len_bytes)? {
                Some(()) => {}
                None => break, // chain ended mid-frame: torn
            }
            let len = u32::from_le_bytes(len_bytes) as usize;
            if len == 0 {
                // Clean end-of-log marker.
                return Self::finish_open(
                    disk,
                    records,
                    last_lsn,
                    RecoveryMeta {
                        scan_start,
                        master_checkpoint_lsn,
                        torn_tail: false,
                    },
                );
            }
            if len > MAX_RECORD_BYTES {
                torn_tail = true;
                break;
            }
            let mut crc_bytes = [0u8; 4];
            if cursor.read_exact(&mut crc_bytes)?.is_none() {
                torn_tail = true;
                break;
            }
            let mut payload = vec![0u8; len];
            if cursor.read_exact(&mut payload)?.is_none() {
                torn_tail = true;
                break;
            }
            if crc32(&payload) != u32::from_le_bytes(crc_bytes) {
                torn_tail = true;
                break;
            }
            let Some(record) = parse_record(&payload) else {
                torn_tail = true;
                break;
            };
            if record.lsn() <= last_lsn {
                // Stale bytes from an earlier chain incarnation.
                torn_tail = true;
                break;
            }
            last_lsn = record.lsn();
            records.push((record, cursor.pos()));
        }
        // Reached on break: either damage (torn_tail) or the chain ended
        // exactly on a frame boundary with no room for an end marker —
        // which is a clean end too.
        Self::finish_open(
            disk,
            records,
            last_lsn,
            RecoveryMeta {
                scan_start,
                master_checkpoint_lsn,
                torn_tail,
            },
        )
    }

    fn finish_open(
        disk: Arc<dyn DiskBackend>,
        records: Vec<(WalRecord, (PageId, usize))>,
        max_lsn: Lsn,
        meta: RecoveryMeta,
    ) -> Result<(Arc<Wal>, RecoveryInfo)> {
        // The durable prefix ends at the last commit point; everything
        // after it was never acknowledged and is truncated.
        let committed_len = records
            .iter()
            .rposition(|(r, _)| r.is_commit_point())
            .map(|i| i + 1)
            .unwrap_or(0);
        let scanned_records = records.len() as u64;
        let discarded_records = (records.len() - committed_len) as u64;
        let (tail_page, tail_used) = records
            .get(committed_len.checked_sub(1).unwrap_or(usize::MAX))
            .map(|(_, pos)| *pos)
            .unwrap_or((meta.scan_start, 0));

        // Rebuild the catalog image and replay committed page images.
        let wal = Wal {
            disk,
            state: Mutex::new(WalState {
                scan_start: meta.scan_start,
                checkpoint_lsn: meta.master_checkpoint_lsn,
                next_lsn: max_lsn + 1,
                tail_page,
                tail_buf: Box::new([0u8; PAGE_SIZE]),
                tail_used,
                pending: 0,
                // Everything recovery kept is durable on disk already.
                last_commit_lsn: max_lsn,
                poisoned: None,
            }),
            unlogged: Mutex::new(HashSet::new()),
            unsynced: Mutex::new(HashMap::new()),
            synced_lsn: AtomicU64::new(max_lsn),
            coalesced_syncs: AtomicU64::new(0),
            sync_wait_us: evopt_obs::Histogram::new(evopt_obs::WAIT_BUCKETS_US),
            records_written: AtomicU64::new(0),
            bytes_written: AtomicU64::new(0),
            commits: AtomicU64::new(0),
            checkpoints: AtomicU64::new(0),
            recoveries: AtomicU64::new(1),
            replayed_records: AtomicU64::new(0),
        };

        let mut catalog = CatalogImage::default();
        let mut replayed = 0u64;
        for (record, _) in records.iter().take(committed_len) {
            match record {
                WalRecord::PageImage { lsn, page, image } => {
                    if wal.replay_page(*page, *lsn, image)? {
                        replayed += 1;
                    }
                }
                WalRecord::Commit { .. } => {}
                WalRecord::CreateTable { table, .. } => {
                    catalog.tables.retain(|t| t.name != table.name);
                    catalog.tables.push(table.clone());
                }
                WalRecord::CreateIndex { table, index, .. } => {
                    if let Some(t) = catalog.table_mut(table) {
                        t.indexes.retain(|i| i.name != index.name);
                        t.indexes.push(index.clone());
                    }
                }
                WalRecord::DropTable { name, .. } => {
                    catalog.tables.retain(|t| t.name != *name);
                }
                WalRecord::Checkpoint { lsn, catalog: c } => {
                    catalog = c.clone();
                    let _rs = lockorder::acquire(lockorder::WAL_STATE);
                    let mut state = wal.state.lock();
                    state.checkpoint_lsn = (*lsn).max(state.checkpoint_lsn);
                }
            }
        }
        wal.replayed_records.store(replayed, Ordering::Relaxed);

        // Truncate the tail in place: reload the page holding the end of
        // the committed prefix, zero the stream after it, and cut the
        // chain so stale continuation pages are orphaned rather than
        // rescanned. Idempotent — a crash here just repeats the work.
        let (tail, used) = {
            let _rs = lockorder::acquire(lockorder::WAL_STATE);
            let state = wal.state.lock();
            (state.tail_page, state.tail_used)
        };
        // Recovery is single-threaded: the truncation I/O runs off the
        // state lock, which is retaken only to install the rebuilt tail.
        let mut buf = Box::new([0u8; PAGE_SIZE]);
        read_page_retry(&wal.disk, tail, &mut buf)?;
        buf[..LOG_PAGE_HDR].copy_from_slice(&NO_NEXT.to_le_bytes());
        buf[LOG_PAGE_HDR + used..].fill(0);
        wal.write_page_verified(tail, &buf)?;
        {
            let _rs = lockorder::acquire(lockorder::WAL_STATE);
            wal.state.lock().tail_buf = buf;
        }
        wal.sync_retry()?;

        let info = RecoveryInfo {
            catalog,
            scanned_records,
            replayed_records: replayed,
            discarded_records,
            torn_tail: meta.torn_tail,
        };
        Ok((Arc::new(wal), info))
    }

    /// Apply one redo record if the on-disk page is older. Returns whether
    /// the image was written.
    fn replay_page(&self, page: PageId, lsn: Lsn, image: &PageData) -> Result<bool> {
        let mut current = Box::new([0u8; PAGE_SIZE]);
        match read_page_retry(&self.disk, page, &mut current) {
            Ok(()) => {
                if page_lsn(&current) >= lsn {
                    return Ok(false); // already there: idempotent skip
                }
            }
            // The page was deallocated after this record was logged (a
            // later committed DROP TABLE): nothing to redo.
            Err(EvoptError::Storage(_)) => return Ok(false),
            Err(e) => return Err(e),
        }
        self.write_page_verified(page, image)?;
        Ok(true)
    }

    /// Capture every page the last statement dirtied, append redo records
    /// plus a commit record, and make the log durable. No-op when nothing
    /// was dirtied or logged since the previous commit.
    pub fn commit(&self, pool: &BufferPool) -> Result<()> {
        match self.commit_grouped(pool)? {
            Some(lsn) => self.sync_through(lsn),
            None => Ok(()),
        }
    }

    /// First half of group commit: append the statement's page images plus
    /// a commit record to the in-memory log tail and return the commit
    /// record's LSN — **without** making it durable. The pages move from
    /// the unlogged gate to the unsynced gate, so no-steal holds until a
    /// [`Wal::sync_through`] covering the returned LSN lands.
    ///
    /// Returns `Ok(None)` only when there is nothing to commit *and* no
    /// earlier grouped commit is still awaiting durability; otherwise a
    /// pending LSN is always handed back for the caller to sync.
    pub fn commit_grouped(&self, pool: &BufferPool) -> Result<Option<Lsn>> {
        let dirty: Vec<PageId> = {
            let _r = lockorder::acquire(lockorder::WAL_GATE);
            let mut unlogged = self.unlogged.lock();
            let mut v: Vec<PageId> = unlogged.iter().copied().collect();
            unlogged.clear();
            v.sort_unstable();
            v
        };
        let _rs = lockorder::acquire(lockorder::WAL_STATE);
        let mut state = self.state.lock();
        if let Some(msg) = &state.poisoned {
            let msg = msg.clone();
            let _r = lockorder::acquire(lockorder::WAL_GATE);
            self.unlogged.lock().extend(dirty.iter().copied());
            return Err(EvoptError::Io(format!("wal unusable after failure: {msg}")));
        }
        if dirty.is_empty() && state.pending == 0 {
            // Nothing new — but a sibling's grouped commit may still await
            // its sync; report its LSN so `commit` callers stay durable.
            let last = state.last_commit_lsn;
            if last > self.synced_lsn.load(Ordering::SeqCst) {
                return Ok(Some(last));
            }
            return Ok(None);
        }
        match self.commit_locked(&mut state, pool, &dirty) {
            Ok(lsn) => {
                {
                    let _r = lockorder::acquire(lockorder::WAL_UNSYNCED);
                    let mut unsynced = self.unsynced.lock();
                    for &p in &dirty {
                        unsynced.insert(p, lsn);
                    }
                }
                self.commits.fetch_add(1, Ordering::Relaxed);
                Ok(Some(lsn))
            }
            Err(e) => {
                // The statement's pages are not durably logged: re-gate
                // them so the no-steal invariant holds for a retry/crash.
                let _r = lockorder::acquire(lockorder::WAL_GATE);
                self.unlogged.lock().extend(dirty.iter().copied());
                Err(e)
            }
        }
    }

    /// Second half of group commit: make the log durable through `lsn`.
    /// Early-returns when a sibling session's physical sync already covered
    /// `lsn` — that coalescing is the group-commit win. On success every
    /// page parked behind a covered commit leaves the unsynced gate.
    ///
    /// On failure the affected pages stay gated (no-steal holds) and the
    /// commit is *uncertain*: not acknowledged, but recovery may still
    /// replay it if the sync partially landed.
    pub fn sync_through(&self, lsn: Lsn) -> Result<()> {
        // The timed wrapper covers the whole call — coalesced fast path
        // and physical sync alike — so the histogram's bimodal shape
        // shows how often group commit spares a session the fsync.
        self.sync_wait_us.time(|| self.sync_through_inner(lsn))
    }

    fn sync_through_inner(&self, lsn: Lsn) -> Result<()> {
        if self.synced_lsn.load(Ordering::SeqCst) >= lsn {
            self.coalesced_syncs.fetch_add(1, Ordering::Relaxed);
            return Ok(());
        }
        let _rs = lockorder::acquire(lockorder::WAL_STATE);
        let mut state = self.state.lock();
        if self.synced_lsn.load(Ordering::SeqCst) >= lsn {
            // A sibling synced while we waited for the state lock.
            self.coalesced_syncs.fetch_add(1, Ordering::Relaxed);
            return Ok(());
        }
        if let Some(msg) = &state.poisoned {
            return Err(EvoptError::Io(format!("wal unusable after failure: {msg}")));
        }
        self.flush_tail_and_sync(&mut state)?;
        self.mark_synced(&state);
        Ok(())
    }

    /// Everything appended so far just became durable: advance the synced
    /// horizon and release covered pages from the unsynced gate. Call with
    /// the state lock held, after a successful tail flush + sync.
    fn mark_synced(&self, state: &WalState) {
        let durable = state.next_lsn.saturating_sub(1);
        self.synced_lsn.store(durable, Ordering::SeqCst);
        let _r = lockorder::acquire(lockorder::WAL_UNSYNCED);
        self.unsynced.lock().retain(|_, l| *l > durable);
    }

    /// Append `dirty`'s images plus a commit record; returns the commit
    /// record's LSN. Does not sync.
    fn commit_locked(
        &self,
        state: &mut WalState,
        pool: &BufferPool,
        dirty: &[PageId],
    ) -> Result<Lsn> {
        for &page in dirty {
            let lsn = state.next_lsn;
            state.next_lsn += 1;
            let image = pool.stamp_lsn(page, lsn)?;
            let mut payload = Vec::with_capacity(1 + 8 + 8 + PAGE_SIZE);
            payload.push(KIND_PAGE_IMAGE);
            payload.extend_from_slice(&lsn.to_le_bytes());
            payload.extend_from_slice(&page.to_le_bytes());
            payload.extend_from_slice(&image[..]);
            self.append_record(state, &payload)?;
        }
        let lsn = state.next_lsn;
        state.next_lsn += 1;
        let mut payload = Vec::with_capacity(9);
        payload.push(KIND_COMMIT);
        payload.extend_from_slice(&lsn.to_le_bytes());
        self.append_record(state, &payload)?;
        state.pending = 0;
        state.last_commit_lsn = lsn;
        Ok(lsn)
    }

    /// Log a CREATE TABLE (call before [`Wal::commit`] for the statement).
    pub fn log_create_table(&self, table: &TableImage) -> Result<()> {
        let mut body = Vec::new();
        put_table_image(&mut body, table);
        self.log_ddl(KIND_CREATE_TABLE, body)
    }

    /// Log a CREATE INDEX on `table`.
    pub fn log_create_index(&self, table: &str, index: &IndexImage) -> Result<()> {
        let mut body = Vec::new();
        put_str(&mut body, table);
        put_index_image(&mut body, index);
        self.log_ddl(KIND_CREATE_INDEX, body)
    }

    /// Log a DROP TABLE.
    pub fn log_drop_table(&self, name: &str) -> Result<()> {
        let mut body = Vec::new();
        put_str(&mut body, name);
        self.log_ddl(KIND_DROP_TABLE, body)
    }

    fn log_ddl(&self, kind: u8, body: Vec<u8>) -> Result<()> {
        let _rs = lockorder::acquire(lockorder::WAL_STATE);
        let mut state = self.state.lock();
        if let Some(msg) = &state.poisoned {
            return Err(EvoptError::Io(format!("wal unusable after failure: {msg}")));
        }
        let lsn = state.next_lsn;
        state.next_lsn += 1;
        let mut payload = Vec::with_capacity(9 + body.len());
        payload.push(kind);
        payload.extend_from_slice(&lsn.to_le_bytes());
        payload.extend_from_slice(&body);
        self.append_record(&mut state, &payload)?;
        state.pending += 1;
        Ok(())
    }

    /// Fuzzy checkpoint: make all committed state durable as data pages,
    /// then start a fresh chain headed by a checkpoint record carrying
    /// `catalog`, switch the master to it, and release the old chain.
    ///
    /// Must run between statements (no uncommitted changes pending).
    pub fn checkpoint(&self, pool: &BufferPool, catalog: &CatalogImage) -> Result<()> {
        let _rs = lockorder::acquire(lockorder::WAL_STATE);
        let mut state = self.state.lock();
        if let Some(msg) = &state.poisoned {
            return Err(EvoptError::Io(format!("wal unusable after failure: {msg}")));
        }
        {
            let _r = lockorder::acquire(lockorder::WAL_GATE);
            if state.pending > 0 || !self.unlogged.lock().is_empty() {
                return Err(EvoptError::Internal(
                    "checkpoint with uncommitted changes pending".into(),
                ));
            }
        }

        // 0. Drain any grouped commits still awaiting durability, emptying
        //    the unsynced gate so flush_all below can pass every page.
        if state.last_commit_lsn > self.synced_lsn.load(Ordering::SeqCst) {
            self.flush_tail_and_sync(&mut state)?;
            self.mark_synced(&state);
        }

        // 1. All committed dirty pages reach disk (the gates pass them —
        //    both gate sets are empty) and become durable.
        pool.flush_all()?;
        self.sync_retry()?;

        // 2. Seal the current chain: link it to a fresh page and persist
        //    the old tail, then move appends to the fresh page.
        let cp_page = self.disk.allocate_page();
        state.tail_buf[..LOG_PAGE_HDR].copy_from_slice(&cp_page.to_le_bytes());
        self.write_page_verified(state.tail_page, &state.tail_buf)?;
        let old_start = state.scan_start;
        state.tail_page = cp_page;
        state.tail_buf.fill(0);
        state.tail_used = 0;

        // 3. The checkpoint record itself, durably.
        let lsn = state.next_lsn;
        state.next_lsn += 1;
        let mut payload = Vec::new();
        payload.push(KIND_CHECKPOINT);
        payload.extend_from_slice(&lsn.to_le_bytes());
        put_catalog_image(&mut payload, catalog);
        self.append_record(&mut state, &payload)?;
        state.last_commit_lsn = lsn;
        self.flush_tail_and_sync(&mut state)?;
        self.mark_synced(&state);

        // 4. Atomic master switch: after this, recovery scans from the
        //    checkpoint record. Before it, recovery scans the old chain —
        //    which now *ends* at this same checkpoint record, so both
        //    sides of the switch converge.
        state.scan_start = cp_page;
        state.checkpoint_lsn = lsn;
        self.write_master(state.scan_start, state.checkpoint_lsn, state.next_lsn)?;
        self.sync_retry()?;

        // 5. Release the old chain (everything strictly before cp_page).
        let mut id = old_start;
        let bound = self.disk.page_count();
        let mut hops = 0u64;
        while id != cp_page && id != NO_NEXT && hops <= bound {
            hops += 1;
            let mut buf = Box::new([0u8; PAGE_SIZE]);
            if read_page_retry(&self.disk, id, &mut buf).is_err() {
                break; // unreadable old chain: leak it, stay correct
            }
            let next = PageId::from_le_bytes([
                buf[0], buf[1], buf[2], buf[3], buf[4], buf[5], buf[6], buf[7],
            ]);
            self.disk.deallocate_page(id)?;
            id = next;
        }

        self.checkpoints.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Monotonic WAL counters.
    pub fn stats(&self) -> WalStats {
        WalStats {
            records_written: self.records_written.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            commits: self.commits.load(Ordering::Relaxed),
            checkpoints: self.checkpoints.load(Ordering::Relaxed),
            recoveries: self.recoveries.load(Ordering::Relaxed),
            replayed_records: self.replayed_records.load(Ordering::Relaxed),
            coalesced_syncs: self.coalesced_syncs.load(Ordering::Relaxed),
        }
    }

    /// Per-call [`Wal::sync_through`] latency (µs), coalesced fast path
    /// included.
    pub fn sync_wait_histogram(&self) -> evopt_obs::HistogramSnapshot {
        self.sync_wait_us.snapshot()
    }

    /// Number of dirty pages currently gated (not yet logged). Zero
    /// between statements.
    pub fn unlogged_pages(&self) -> usize {
        let _r = lockorder::acquire(lockorder::WAL_GATE);
        self.unlogged.lock().len()
    }

    /// Number of pages appended to the log but still awaiting a sync.
    pub fn unsynced_pages(&self) -> usize {
        let _r = lockorder::acquire(lockorder::WAL_UNSYNCED);
        self.unsynced.lock().len()
    }

    /// Highest LSN known durable on disk.
    pub fn synced_lsn(&self) -> Lsn {
        self.synced_lsn.load(Ordering::SeqCst)
    }

    // ---- append machinery ----------------------------------------------

    /// Frame `payload` (length + CRC) and append it to the stream. On a
    /// hard failure mid-append the in-memory stream no longer matches the
    /// disk, so the WAL poisons itself: every later write fails typed and
    /// only a reopen (recovery) resumes service.
    fn append_record(&self, state: &mut WalState, payload: &[u8]) -> Result<()> {
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        if let Err(e) = self.write_stream(state, &frame) {
            state.poisoned = Some(e.to_string());
            return Err(e);
        }
        self.records_written.fetch_add(1, Ordering::Relaxed);
        self.bytes_written
            .fetch_add(frame.len() as u64, Ordering::Relaxed);
        Ok(())
    }

    /// Copy `bytes` into the tail, growing the chain as pages fill. Full
    /// pages are written (and read-back verified) immediately; the tail
    /// page itself only reaches disk on [`Self::flush_tail_and_sync`].
    fn write_stream(&self, state: &mut WalState, bytes: &[u8]) -> Result<()> {
        let mut off = 0;
        while off < bytes.len() {
            let room = LOG_PAGE_PAYLOAD - state.tail_used;
            if room == 0 {
                let next = self.disk.allocate_page();
                state.tail_buf[..LOG_PAGE_HDR].copy_from_slice(&next.to_le_bytes());
                self.write_page_verified(state.tail_page, &state.tail_buf)?;
                state.tail_page = next;
                state.tail_buf.fill(0);
                state.tail_used = 0;
                continue;
            }
            let n = room.min(bytes.len() - off);
            let start = LOG_PAGE_HDR + state.tail_used;
            state.tail_buf[start..start + n].copy_from_slice(&bytes[off..off + n]);
            state.tail_used += n;
            off += n;
        }
        Ok(())
    }

    fn flush_tail_and_sync(&self, state: &mut WalState) -> Result<()> {
        self.write_page_verified(state.tail_page, &state.tail_buf)?;
        self.sync_retry()
    }

    /// Write a page directly (bypassing the pool) and read it back to
    /// verify — bounded retry heals the injector's transient errors, torn
    /// writes and bit flips on the log path, which carries no page
    /// checksums of its own.
    fn write_page_verified(&self, id: PageId, buf: &PageData) -> Result<()> {
        let mut last_err = EvoptError::Io(format!("write of wal page {id} never attempted"));
        for _ in 0..=WAL_RETRY_LIMIT {
            match self.disk.write_page(id, buf) {
                Ok(()) => {
                    let mut back = Box::new([0u8; PAGE_SIZE]);
                    match self.disk.read_page(id, &mut back) {
                        Ok(()) if *back == *buf => return Ok(()),
                        Ok(()) => {
                            last_err = EvoptError::Io(format!(
                                "wal page {id} read back different bytes (torn write)"
                            ));
                        }
                        Err(e) => last_err = e,
                    }
                }
                Err(e @ EvoptError::Io(_)) => last_err = e,
                Err(e) => return Err(e),
            }
        }
        Err(last_err)
    }

    /// `sync` with bounded retry (the injector's sync faults are
    /// transient and heal on the next attempt).
    fn sync_retry(&self) -> Result<()> {
        let mut last_err = EvoptError::Io("sync never attempted".into());
        for _ in 0..=WAL_RETRY_LIMIT {
            match self.disk.sync() {
                Ok(()) => return Ok(()),
                Err(e @ EvoptError::Io(_)) => last_err = e,
                Err(e) => return Err(e),
            }
        }
        Err(last_err)
    }

    // ---- master page ----------------------------------------------------

    fn write_master(&self, scan_start: PageId, checkpoint_lsn: Lsn, next_lsn: Lsn) -> Result<()> {
        let mut buf = Box::new([0u8; PAGE_SIZE]);
        buf[0..8].copy_from_slice(&MASTER_MAGIC.to_le_bytes());
        buf[8..12].copy_from_slice(&MASTER_VERSION.to_le_bytes());
        buf[12..16].copy_from_slice(&0u32.to_le_bytes());
        buf[16..24].copy_from_slice(&scan_start.to_le_bytes());
        buf[24..32].copy_from_slice(&checkpoint_lsn.to_le_bytes());
        buf[32..40].copy_from_slice(&next_lsn.to_le_bytes());
        let crc = crc32(&buf[..MASTER_LEN - 4]);
        buf[MASTER_LEN - 4..MASTER_LEN].copy_from_slice(&crc.to_le_bytes());
        self.write_page_verified(WAL_MASTER_PAGE, &buf)
    }

    /// Read and validate the master page: `(scan_start, checkpoint_lsn)`.
    fn read_master(disk: &Arc<dyn DiskBackend>) -> Result<(PageId, Lsn)> {
        let mut buf = Box::new([0u8; PAGE_SIZE]);
        read_page_retry(disk, WAL_MASTER_PAGE, &mut buf)?;
        let magic = u64::from_le_bytes([
            buf[0], buf[1], buf[2], buf[3], buf[4], buf[5], buf[6], buf[7],
        ]);
        if magic != MASTER_MAGIC {
            return Err(EvoptError::Corruption(format!(
                "wal master page has bad magic {magic:#018x}"
            )));
        }
        let version = u32::from_le_bytes([buf[8], buf[9], buf[10], buf[11]]);
        if version != MASTER_VERSION {
            return Err(EvoptError::Corruption(format!(
                "wal master page has unsupported version {version}"
            )));
        }
        let stored_crc = u32::from_le_bytes([
            buf[MASTER_LEN - 4],
            buf[MASTER_LEN - 3],
            buf[MASTER_LEN - 2],
            buf[MASTER_LEN - 1],
        ]);
        if crc32(&buf[..MASTER_LEN - 4]) != stored_crc {
            return Err(EvoptError::Corruption(
                "wal master page failed checksum verification".into(),
            ));
        }
        let scan_start = u64::from_le_bytes([
            buf[16], buf[17], buf[18], buf[19], buf[20], buf[21], buf[22], buf[23],
        ]);
        let checkpoint_lsn = u64::from_le_bytes([
            buf[24], buf[25], buf[26], buf[27], buf[28], buf[29], buf[30], buf[31],
        ]);
        Ok((scan_start, checkpoint_lsn))
    }
}

struct RecoveryMeta {
    scan_start: PageId,
    master_checkpoint_lsn: Lsn,
    torn_tail: bool,
}

/// Forward reader over the log-page chain's payload stream.
struct LogCursor<'a> {
    disk: &'a Arc<dyn DiskBackend>,
    page: PageId,
    buf: Box<PageData>,
    /// Offset into the payload area `[0, LOG_PAGE_PAYLOAD]`.
    off: usize,
}

impl<'a> LogCursor<'a> {
    fn load(disk: &'a Arc<dyn DiskBackend>, page: PageId) -> Result<Self> {
        let mut buf = Box::new([0u8; PAGE_SIZE]);
        read_page_retry(disk, page, &mut buf)?;
        Ok(LogCursor {
            disk,
            page,
            buf,
            off: 0,
        })
    }

    /// `(page, payload_offset)` of the next unread byte.
    fn pos(&self) -> (PageId, usize) {
        (self.page, self.off)
    }

    /// Fill `out`, following the chain. `Ok(None)` when the chain ends
    /// first (a torn frame); hard read errors propagate.
    fn read_exact(&mut self, out: &mut [u8]) -> Result<Option<()>> {
        let mut done = 0;
        while done < out.len() {
            if self.off == LOG_PAGE_PAYLOAD {
                let next = PageId::from_le_bytes([
                    self.buf[0],
                    self.buf[1],
                    self.buf[2],
                    self.buf[3],
                    self.buf[4],
                    self.buf[5],
                    self.buf[6],
                    self.buf[7],
                ]);
                if next == NO_NEXT {
                    return Ok(None);
                }
                read_page_retry(self.disk, next, &mut self.buf)?;
                self.page = next;
                self.off = 0;
            }
            let avail = LOG_PAGE_PAYLOAD - self.off;
            let n = avail.min(out.len() - done);
            let start = LOG_PAGE_HDR + self.off;
            out[done..done + n].copy_from_slice(&self.buf[start..start + n]);
            self.off += n;
            done += n;
        }
        Ok(Some(()))
    }
}

fn read_page_retry(disk: &Arc<dyn DiskBackend>, id: PageId, buf: &mut PageData) -> Result<()> {
    let mut last_err = EvoptError::Io(format!("read of wal page {id} never attempted"));
    for _ in 0..=WAL_RETRY_LIMIT {
        match disk.read_page(id, buf) {
            Ok(()) => return Ok(()),
            Err(e @ EvoptError::Io(_)) => last_err = e,
            Err(e) => return Err(e),
        }
    }
    Err(last_err)
}

// ---- record body (de)serialisation --------------------------------------

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn put_index_image(out: &mut Vec<u8>, idx: &IndexImage) {
    put_str(out, &idx.name);
    out.extend_from_slice(&idx.column.to_le_bytes());
    out.push(idx.unique as u8);
    out.push(idx.clustered as u8);
    out.extend_from_slice(&idx.meta_page.to_le_bytes());
}

fn put_table_image(out: &mut Vec<u8>, t: &TableImage) {
    put_str(out, &t.name);
    out.extend_from_slice(&(t.columns.len() as u32).to_le_bytes());
    for c in &t.columns {
        put_str(out, &c.name);
        out.push(match c.dtype {
            DataType::Bool => 0,
            DataType::Int => 1,
            DataType::Float => 2,
            DataType::Str => 3,
        });
        out.push(c.nullable as u8);
    }
    out.extend_from_slice(&t.first_page.to_le_bytes());
    out.extend_from_slice(&(t.indexes.len() as u32).to_le_bytes());
    for idx in &t.indexes {
        put_index_image(out, idx);
    }
}

fn put_catalog_image(out: &mut Vec<u8>, c: &CatalogImage) {
    out.extend_from_slice(&(c.tables.len() as u32).to_le_bytes());
    for t in &c.tables {
        put_table_image(out, t);
    }
}

/// Bounds-checked little-endian reader over a record body.
struct BodyReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> BodyReader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        BodyReader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.buf.len() {
            return None;
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|s| u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|s| u64::from_le_bytes([s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7]]))
    }

    fn string(&mut self) -> Option<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).ok()
    }

    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

fn get_index_image(r: &mut BodyReader<'_>) -> Option<IndexImage> {
    Some(IndexImage {
        name: r.string()?,
        column: r.u32()?,
        unique: r.u8()? != 0,
        clustered: r.u8()? != 0,
        meta_page: r.u64()?,
    })
}

fn get_table_image(r: &mut BodyReader<'_>) -> Option<TableImage> {
    let name = r.string()?;
    let ncols = r.u32()? as usize;
    let mut columns = Vec::with_capacity(ncols.min(1024));
    for _ in 0..ncols {
        let cname = r.string()?;
        let dtype = match r.u8()? {
            0 => DataType::Bool,
            1 => DataType::Int,
            2 => DataType::Float,
            3 => DataType::Str,
            _ => return None,
        };
        let nullable = r.u8()? != 0;
        columns.push(ColumnImage {
            name: cname,
            dtype,
            nullable,
        });
    }
    let first_page = r.u64()?;
    let nidx = r.u32()? as usize;
    let mut indexes = Vec::with_capacity(nidx.min(1024));
    for _ in 0..nidx {
        indexes.push(get_index_image(r)?);
    }
    Some(TableImage {
        name,
        columns,
        first_page,
        indexes,
    })
}

fn get_catalog_image(r: &mut BodyReader<'_>) -> Option<CatalogImage> {
    let n = r.u32()? as usize;
    let mut tables = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        tables.push(get_table_image(r)?);
    }
    Some(CatalogImage { tables })
}

/// Parse a CRC-validated payload. `None` means the bytes are not a record
/// (treated as a torn tail by the scan).
fn parse_record(payload: &[u8]) -> Option<WalRecord> {
    let mut r = BodyReader::new(payload);
    let kind = r.u8()?;
    let lsn = r.u64()?;
    let rec = match kind {
        KIND_PAGE_IMAGE => {
            let page = r.u64()?;
            let bytes = r.take(PAGE_SIZE)?;
            let mut image = Box::new([0u8; PAGE_SIZE]);
            image.copy_from_slice(bytes);
            WalRecord::PageImage { lsn, page, image }
        }
        KIND_COMMIT => WalRecord::Commit { lsn },
        KIND_CREATE_TABLE => WalRecord::CreateTable {
            lsn,
            table: get_table_image(&mut r)?,
        },
        KIND_CREATE_INDEX => WalRecord::CreateIndex {
            lsn,
            table: r.string()?,
            index: get_index_image(&mut r)?,
        },
        KIND_DROP_TABLE => WalRecord::DropTable {
            lsn,
            name: r.string()?,
        },
        KIND_CHECKPOINT => WalRecord::Checkpoint {
            lsn,
            catalog: get_catalog_image(&mut r)?,
        },
        _ => return None,
    };
    if !r.done() {
        return None;
    }
    Some(rec)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use crate::buffer::PolicyKind;
    use crate::disk::DiskManager;
    use crate::page::set_page_lsn;

    /// Fresh disk + pool + WAL wired together like the engine does it.
    fn setup(frames: usize) -> (Arc<DiskManager>, Arc<BufferPool>, Arc<Wal>) {
        let disk = Arc::new(DiskManager::new());
        let wal = Wal::create(Arc::clone(&disk) as Arc<dyn DiskBackend>).unwrap();
        let pool = BufferPool::new(
            Arc::clone(&disk) as Arc<dyn DiskBackend>,
            frames,
            PolicyKind::Lru,
        );
        pool.set_flush_gate(Arc::clone(&wal) as Arc<dyn FlushGate>);
        (disk, pool, wal)
    }

    fn fill_page(pool: &Arc<BufferPool>, fill: u8) -> PageId {
        let g = pool.new_page().unwrap();
        for b in g.write().iter_mut() {
            *b = fill;
        }
        g.id()
    }

    #[test]
    fn create_then_open_empty_log() {
        let (disk, _pool, wal) = setup(4);
        drop(wal);
        let (wal2, info) = Wal::open(Arc::clone(&disk) as Arc<dyn DiskBackend>).unwrap();
        assert_eq!(info.scanned_records, 0);
        assert_eq!(info.replayed_records, 0);
        assert!(!info.torn_tail);
        assert!(info.catalog.tables.is_empty());
        assert_eq!(wal2.stats().recoveries, 1);
    }

    #[test]
    fn committed_pages_replay_after_losing_the_pool() {
        let (disk, pool, wal) = setup(8);
        let a = fill_page(&pool, 0x11);
        let b = fill_page(&pool, 0x22);
        wal.commit(&pool).unwrap();
        // Simulate the crash: the pool's dirty frames are simply lost (we
        // never flushed). The disk holds only the log.
        drop(pool);
        let (_wal2, info) = Wal::open(Arc::clone(&disk) as Arc<dyn DiskBackend>).unwrap();
        assert_eq!(info.replayed_records, 2);
        assert!(!info.torn_tail);
        let mut buf = [0u8; PAGE_SIZE];
        disk.read_page(a, &mut buf).unwrap();
        assert!(buf[..LOG_PAGE_HDR].iter().all(|&x| x == 0x11));
        disk.read_page(b, &mut buf).unwrap();
        assert_eq!(buf[100], 0x22);
    }

    #[test]
    fn replay_is_idempotent_across_reopens() {
        let (disk, pool, wal) = setup(8);
        fill_page(&pool, 0x33);
        wal.commit(&pool).unwrap();
        drop(pool);
        let (_w, info1) = Wal::open(Arc::clone(&disk) as Arc<dyn DiskBackend>).unwrap();
        assert_eq!(info1.replayed_records, 1);
        // Second recovery: the page LSN trailer is already current.
        let (_w, info2) = Wal::open(Arc::clone(&disk) as Arc<dyn DiskBackend>).unwrap();
        assert_eq!(info2.replayed_records, 0, "second replay must skip");
        assert_eq!(info2.scanned_records, info1.scanned_records);
    }

    #[test]
    fn uncommitted_tail_is_discarded_not_replayed() {
        let (disk, pool, wal) = setup(8);
        let a = fill_page(&pool, 0x44);
        wal.commit(&pool).unwrap();
        // A logged-but-uncommitted statement: DDL record with no commit.
        wal.log_drop_table("ghost").unwrap();
        // Flush the tail so the aborted record is actually on disk.
        {
            let mut state = wal.state.lock();
            wal.flush_tail_and_sync(&mut state).unwrap();
        }
        drop(pool);
        let (_w, info) = Wal::open(Arc::clone(&disk) as Arc<dyn DiskBackend>).unwrap();
        assert_eq!(info.discarded_records, 1, "aborted DDL must be discarded");
        assert_eq!(info.replayed_records, 1);
        let mut buf = [0u8; PAGE_SIZE];
        disk.read_page(a, &mut buf).unwrap();
        assert_eq!(buf[200], 0x44, "committed page still replayed");
        // And the discarded record does not resurface on the next commit
        // cycle: reopen again, still no ghost.
        let (_w, info2) = Wal::open(Arc::clone(&disk) as Arc<dyn DiskBackend>).unwrap();
        assert_eq!(info2.discarded_records, 0, "tail was truncated in place");
    }

    #[test]
    fn torn_tail_is_detected_and_truncated() {
        let (disk, pool, wal) = setup(8);
        fill_page(&pool, 0x55);
        wal.commit(&pool).unwrap();
        let committed_scan = {
            let (_w, info) = Wal::open(Arc::clone(&disk) as Arc<dyn DiskBackend>).unwrap();
            info.scanned_records
        };
        // Re-setup on the same disk is not possible (page 0 taken), so tear
        // bytes directly: find the current tail and scribble a garbage
        // frame (nonzero length, bogus CRC) right after the stream end.
        let (wal2, _info) = Wal::open(Arc::clone(&disk) as Arc<dyn DiskBackend>).unwrap();
        {
            let state = wal2.state.lock();
            let mut buf = [0u8; PAGE_SIZE];
            disk.read_page(state.tail_page, &mut buf).unwrap();
            let at = LOG_PAGE_HDR + state.tail_used;
            if at + 12 <= PAGE_SIZE {
                buf[at..at + 4].copy_from_slice(&64u32.to_le_bytes());
                buf[at + 4..at + 12].fill(0xAB); // wrong CRC + garbage
            }
            disk.write_page(state.tail_page, &buf).unwrap();
        }
        drop(wal2);
        let (_w, info) = Wal::open(Arc::clone(&disk) as Arc<dyn DiskBackend>).unwrap();
        assert!(info.torn_tail, "scribbled frame must read as torn");
        assert_eq!(
            info.scanned_records, committed_scan,
            "torn frame contributes no records"
        );
        // Truncation repaired the tail: next open is clean.
        let (_w, info2) = Wal::open(Arc::clone(&disk) as Arc<dyn DiskBackend>).unwrap();
        assert!(!info2.torn_tail);
    }

    #[test]
    fn ddl_records_rebuild_catalog_image() {
        let (disk, pool, wal) = setup(8);
        let t = TableImage {
            name: "users".into(),
            columns: vec![
                ColumnImage {
                    name: "id".into(),
                    dtype: DataType::Int,
                    nullable: false,
                },
                ColumnImage {
                    name: "email".into(),
                    dtype: DataType::Str,
                    nullable: true,
                },
            ],
            first_page: 7,
            indexes: vec![],
        };
        wal.log_create_table(&t).unwrap();
        wal.commit(&pool).unwrap();
        let idx = IndexImage {
            name: "users_id".into(),
            column: 0,
            unique: true,
            clustered: false,
            meta_page: 9,
        };
        wal.log_create_index("users", &idx).unwrap();
        wal.commit(&pool).unwrap();
        let t2 = TableImage {
            name: "tmp".into(),
            columns: vec![ColumnImage {
                name: "x".into(),
                dtype: DataType::Float,
                nullable: true,
            }],
            first_page: 11,
            indexes: vec![],
        };
        wal.log_create_table(&t2).unwrap();
        wal.commit(&pool).unwrap();
        wal.log_drop_table("tmp").unwrap();
        wal.commit(&pool).unwrap();

        let (_w, info) = Wal::open(Arc::clone(&disk) as Arc<dyn DiskBackend>).unwrap();
        assert_eq!(info.catalog.tables.len(), 1);
        let rt = &info.catalog.tables[0];
        assert_eq!(rt.name, "users");
        assert_eq!(rt.columns, t.columns);
        assert_eq!(rt.first_page, 7);
        assert_eq!(rt.indexes, vec![idx]);
    }

    #[test]
    fn checkpoint_bounds_recovery_and_survives_reopen() {
        let (disk, pool, wal) = setup(8);
        let catalog = CatalogImage {
            tables: vec![TableImage {
                name: "t".into(),
                columns: vec![ColumnImage {
                    name: "c".into(),
                    dtype: DataType::Int,
                    nullable: true,
                }],
                first_page: 5,
                indexes: vec![],
            }],
        };
        // A few committed pages, then a checkpoint.
        for fill in 1..=4u8 {
            fill_page(&pool, fill);
            wal.commit(&pool).unwrap();
        }
        let pages_before = disk.page_count();
        wal.checkpoint(&pool, &catalog).unwrap();
        assert!(
            disk.page_count() >= pages_before,
            "ids are never reused, count only grows"
        );
        // More work after the checkpoint.
        let e = fill_page(&pool, 0xEE);
        wal.commit(&pool).unwrap();
        drop(pool);

        let (_w, info) = Wal::open(Arc::clone(&disk) as Arc<dyn DiskBackend>).unwrap();
        // Scan starts at the checkpoint: it sees the checkpoint record and
        // the one commit after it, not the four earlier commits.
        assert!(
            info.scanned_records <= 3,
            "checkpoint must bound the scan, saw {}",
            info.scanned_records
        );
        assert_eq!(info.catalog.tables[0].name, "t");
        let mut buf = [0u8; PAGE_SIZE];
        disk.read_page(e, &mut buf).unwrap();
        assert_eq!(buf[50], 0xEE, "post-checkpoint commit replayed");
    }

    #[test]
    fn commit_is_a_noop_without_changes() {
        let (_disk, pool, wal) = setup(4);
        let before = wal.stats();
        wal.commit(&pool).unwrap();
        wal.commit(&pool).unwrap();
        let after = wal.stats();
        assert_eq!(before.records_written, after.records_written);
        assert_eq!(after.commits, 0);
    }

    #[test]
    fn gate_blocks_uncommitted_flush_then_releases() {
        let (disk, pool, wal) = setup(4);
        let a = fill_page(&pool, 0x77);
        // Before commit: flush_all must not leak the page to disk.
        pool.flush_all().unwrap();
        let mut buf = [0u8; PAGE_SIZE];
        disk.read_page(a, &mut buf).unwrap();
        assert!(buf.iter().all(|&x| x == 0), "uncommitted page leaked");
        assert_eq!(wal.unlogged_pages(), 1);
        wal.commit(&pool).unwrap();
        assert_eq!(wal.unlogged_pages(), 0);
        pool.flush_all().unwrap();
        disk.read_page(a, &mut buf).unwrap();
        assert_eq!(buf[9], 0x77, "committed page flushes fine");
    }

    #[test]
    fn grouped_commit_defers_sync_and_coalesces() {
        let (disk, pool, wal) = setup(8);
        let a = fill_page(&pool, 0x61);
        let l1 = wal.commit_grouped(&pool).unwrap().unwrap();
        let b = fill_page(&pool, 0x62);
        let l2 = wal.commit_grouped(&pool).unwrap().unwrap();
        assert!(l2 > l1);
        assert_eq!(wal.unsynced_pages(), 2);

        // Unsynced pages are gated: flush_all must not leak them to disk.
        pool.flush_all().unwrap();
        let mut buf = [0u8; PAGE_SIZE];
        disk.read_page(a, &mut buf).unwrap();
        assert!(buf.iter().all(|&x| x == 0), "unsynced page leaked");

        // One physical sync covers both commits; the second request
        // coalesces onto it.
        wal.sync_through(l2).unwrap();
        assert_eq!(wal.unsynced_pages(), 0);
        assert!(wal.synced_lsn() >= l2);
        wal.sync_through(l1).unwrap();
        assert_eq!(wal.stats().coalesced_syncs, 1);

        // Gate released: the pages flush now.
        pool.flush_all().unwrap();
        disk.read_page(b, &mut buf).unwrap();
        assert_eq!(buf[77], 0x62);
    }

    #[test]
    fn grouped_then_synced_commits_replay_after_crash() {
        let (disk, pool, wal) = setup(8);
        let a = fill_page(&pool, 0x71);
        let l1 = wal.commit_grouped(&pool).unwrap().unwrap();
        let b = fill_page(&pool, 0x72);
        let l2 = wal.commit_grouped(&pool).unwrap().unwrap();
        wal.sync_through(l1.max(l2)).unwrap();
        // Crash: dirty frames lost, only the log survives.
        drop(pool);
        let (_w, info) = Wal::open(Arc::clone(&disk) as Arc<dyn DiskBackend>).unwrap();
        assert_eq!(info.replayed_records, 2);
        let mut buf = [0u8; PAGE_SIZE];
        disk.read_page(a, &mut buf).unwrap();
        assert_eq!(buf[10], 0x71);
        disk.read_page(b, &mut buf).unwrap();
        assert_eq!(buf[10], 0x72);
    }

    #[test]
    fn plain_commit_drains_leftover_grouped_commit() {
        let (_disk, pool, wal) = setup(8);
        fill_page(&pool, 0x81);
        let l1 = wal.commit_grouped(&pool).unwrap().unwrap();
        assert!(wal.synced_lsn() < l1);
        // A no-new-work commit must still sync the outstanding tail.
        wal.commit(&pool).unwrap();
        assert_eq!(wal.unsynced_pages(), 0);
        assert!(wal.synced_lsn() >= l1);
    }

    #[test]
    fn checkpoint_drains_unsynced_gate_first() {
        let (_disk, pool, wal) = setup(8);
        fill_page(&pool, 0x91);
        wal.commit_grouped(&pool).unwrap().unwrap();
        assert_eq!(wal.unsynced_pages(), 1);
        wal.checkpoint(&pool, &CatalogImage::default()).unwrap();
        assert_eq!(wal.unsynced_pages(), 0);
    }

    #[test]
    fn master_page_corruption_is_typed() {
        let (disk, _pool, wal) = setup(4);
        drop(wal);
        let mut buf = [0u8; PAGE_SIZE];
        disk.read_page(WAL_MASTER_PAGE, &mut buf).unwrap();
        buf[20] ^= 0xFF;
        disk.write_page(WAL_MASTER_PAGE, &buf).unwrap();
        let err = match Wal::open(Arc::clone(&disk) as Arc<dyn DiskBackend>) {
            Ok(_) => panic!("open over a corrupt master must fail"),
            Err(e) => e,
        };
        assert_eq!(err.kind(), "corruption");
    }

    #[test]
    fn records_straddle_log_pages() {
        // Each page image record is > one log page of payload, so every
        // commit exercises the chain-growing path.
        let (disk, pool, wal) = setup(16);
        let ids: Vec<PageId> = (0..10u8).map(|i| fill_page(&pool, i + 1)).collect();
        wal.commit(&pool).unwrap();
        drop(pool);
        let (_w, info) = Wal::open(Arc::clone(&disk) as Arc<dyn DiskBackend>).unwrap();
        assert_eq!(info.replayed_records, 10);
        for (i, id) in ids.iter().enumerate() {
            let mut buf = [0u8; PAGE_SIZE];
            disk.read_page(*id, &mut buf).unwrap();
            assert_eq!(buf[500], i as u8 + 1, "page {id}");
        }
    }

    #[test]
    fn replay_skips_pages_with_newer_lsn() {
        let (disk, pool, wal) = setup(8);
        let a = fill_page(&pool, 0x10);
        wal.commit(&pool).unwrap();
        // Hand-advance the on-disk page to a far-future LSN with different
        // bytes: replay must leave it alone.
        let mut buf = [0u8; PAGE_SIZE];
        disk.read_page(a, &mut buf).unwrap();
        buf[0] = 0x99;
        set_page_lsn(&mut buf, u64::MAX / 2);
        disk.write_page(a, &buf).unwrap();
        drop(pool);
        let (_w, info) = Wal::open(Arc::clone(&disk) as Arc<dyn DiskBackend>).unwrap();
        assert_eq!(info.replayed_records, 0);
        disk.read_page(a, &mut buf).unwrap();
        assert_eq!(buf[0], 0x99, "newer page must not be overwritten");
    }

    #[test]
    fn catalog_image_roundtrips_through_bytes() {
        let img = CatalogImage {
            tables: vec![
                TableImage {
                    name: "α-table".into(),
                    columns: vec![ColumnImage {
                        name: "k".into(),
                        dtype: DataType::Bool,
                        nullable: false,
                    }],
                    first_page: 3,
                    indexes: vec![IndexImage {
                        name: "i1".into(),
                        column: 0,
                        unique: false,
                        clustered: true,
                        meta_page: 12,
                    }],
                },
                TableImage {
                    name: "empty".into(),
                    columns: vec![],
                    first_page: 99,
                    indexes: vec![],
                },
            ],
        };
        let mut bytes = Vec::new();
        put_catalog_image(&mut bytes, &img);
        let mut r = BodyReader::new(&bytes);
        let back = get_catalog_image(&mut r).unwrap();
        assert!(r.done());
        assert_eq!(back, img);
    }
}
