//! Simulated disk with physical-I/O accounting.
//!
//! [`DiskBackend`] is the storage engine's view of a disk: page-granular
//! allocate/read/write with I/O counters. [`DiskManager`] is the in-memory
//! reference implementation; [`crate::fault::FaultInjector`] wraps any
//! backend and injects deterministic faults for robustness testing.
//!
//! Every `read_page`/`write_page` is a "physical" I/O and is counted. The
//! counters are the measured side of the cost-model validation experiments
//! (T5, F4): the optimizer *predicts* page fetches, the disk *counts* them.

use std::sync::atomic::{AtomicU64, Ordering};

use evopt_common::{EvoptError, Result};
use parking_lot::Mutex;

use crate::page::{PageData, PageId, PAGE_SIZE};

/// Point-in-time copy of the I/O counters; subtract two to get the I/O a
/// region of code performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IoSnapshot {
    pub reads: u64,
    pub writes: u64,
    pub allocations: u64,
    /// Durability barriers issued (`sync` calls). No-ops on the in-memory
    /// disk, but counted so WAL overhead experiments can report them.
    pub syncs: u64,
    /// Read faults injected/observed beneath this backend (0 on a healthy
    /// disk; counted by [`crate::fault::FaultInjector`]).
    pub read_faults: u64,
    /// Write faults injected/observed beneath this backend.
    pub write_faults: u64,
}

impl IoSnapshot {
    /// Physical I/Os since `earlier`. Counters are monotonic, so `earlier`
    /// must be the older snapshot — debug builds assert that; release
    /// builds saturate rather than underflow, matching
    /// `PoolSnapshot::since`.
    pub fn since(&self, earlier: &IoSnapshot) -> IoSnapshot {
        debug_assert!(
            self.reads >= earlier.reads
                && self.writes >= earlier.writes
                && self.allocations >= earlier.allocations
                && self.syncs >= earlier.syncs
                && self.read_faults >= earlier.read_faults
                && self.write_faults >= earlier.write_faults,
            "IoSnapshot::since called with a newer `earlier`: {earlier:?} vs {self:?}"
        );
        IoSnapshot {
            reads: self.reads.saturating_sub(earlier.reads),
            writes: self.writes.saturating_sub(earlier.writes),
            allocations: self.allocations.saturating_sub(earlier.allocations),
            syncs: self.syncs.saturating_sub(earlier.syncs),
            read_faults: self.read_faults.saturating_sub(earlier.read_faults),
            write_faults: self.write_faults.saturating_sub(earlier.write_faults),
        }
    }

    /// Total page transfers (reads + writes).
    pub fn total(&self) -> u64 {
        self.reads + self.writes
    }

    /// Total injected/observed I/O faults (reads + writes).
    pub fn total_faults(&self) -> u64 {
        self.read_faults + self.write_faults
    }
}

/// Page-granular disk abstraction beneath the buffer pool.
///
/// Implementations must be thread-safe; the pool issues single page ops and
/// never holds its own lock across a backend call's result processing.
pub trait DiskBackend: Send + Sync {
    /// Allocate a fresh zeroed page and return its id.
    fn allocate_page(&self) -> PageId;

    /// Release a page. Ids are never reused.
    fn deallocate_page(&self, id: PageId) -> Result<()>;

    /// Physically read a page into `buf`.
    fn read_page(&self, id: PageId, buf: &mut PageData) -> Result<()>;

    /// Physically write a page from `buf`.
    fn write_page(&self, id: PageId, buf: &PageData) -> Result<()>;

    /// Durability barrier: all writes issued before `sync` returns are
    /// crash-durable. A no-op for the in-memory [`DiskManager`] (every
    /// write is already "durable" in the simulation), but counted, and the
    /// [`crate::fault::FaultInjector`] can make it fail.
    fn sync(&self) -> Result<()>;

    /// Number of pages ever allocated (live + dead).
    fn page_count(&self) -> u64;

    /// Current I/O counters.
    fn snapshot(&self) -> IoSnapshot;

    /// Reset the I/O counters to zero (experiment harness convenience).
    fn reset_stats(&self);
}

/// In-memory simulated disk.
///
/// Thread-safe; the page store sits behind a mutex (coarse, but the engine
/// issues single page ops, never holds the lock across work).
pub struct DiskManager {
    pages: Mutex<Vec<Option<Box<PageData>>>>, // lockorder: leaf
    reads: AtomicU64,
    writes: AtomicU64,
    allocations: AtomicU64,
    syncs: AtomicU64,
    /// Simulated per-op latency in microseconds (0 = instant). The sleep
    /// happens *outside* the page-store lock, so concurrent I/Os overlap —
    /// which is what the multi-session scaling bench (C1) measures.
    latency_micros: AtomicU64,
}

impl DiskManager {
    pub fn new() -> Self {
        DiskManager {
            pages: Mutex::new(Vec::new()),
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            allocations: AtomicU64::new(0),
            syncs: AtomicU64::new(0),
            latency_micros: AtomicU64::new(0),
        }
    }

    /// Simulate spinning rust: every subsequent `read_page`/`write_page`
    /// takes at least `micros` microseconds of wall clock, spent with no
    /// lock held (so overlapped requests pay it concurrently).
    pub fn set_io_latency_micros(&self, micros: u64) {
        self.latency_micros.store(micros, Ordering::Relaxed);
    }

    fn simulate_latency(&self) {
        let us = self.latency_micros.load(Ordering::Relaxed);
        if us > 0 {
            std::thread::sleep(std::time::Duration::from_micros(us));
        }
    }
}

impl DiskBackend for DiskManager {
    fn allocate_page(&self) -> PageId {
        let mut pages = self.pages.lock();
        let id = pages.len() as PageId;
        pages.push(Some(Box::new([0u8; PAGE_SIZE])));
        self.allocations.fetch_add(1, Ordering::Relaxed);
        id
    }

    /// Release a page. Its id is never reused (monotonic allocation keeps
    /// dangling-rid bugs loud instead of silently aliasing).
    fn deallocate_page(&self, id: PageId) -> Result<()> {
        let mut pages = self.pages.lock();
        match pages.get_mut(id as usize) {
            Some(slot @ Some(_)) => {
                *slot = None;
                Ok(())
            }
            _ => Err(EvoptError::Storage(format!(
                "deallocate of invalid page {id}"
            ))),
        }
    }

    fn read_page(&self, id: PageId, buf: &mut PageData) -> Result<()> {
        self.simulate_latency();
        let pages = self.pages.lock();
        match pages.get(id as usize) {
            Some(Some(data)) => {
                buf.copy_from_slice(&data[..]);
                self.reads.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            _ => Err(EvoptError::Storage(format!("read of invalid page {id}"))),
        }
    }

    fn write_page(&self, id: PageId, buf: &PageData) -> Result<()> {
        self.simulate_latency();
        let mut pages = self.pages.lock();
        match pages.get_mut(id as usize) {
            Some(Some(data)) => {
                data.copy_from_slice(buf);
                self.writes.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            _ => Err(EvoptError::Storage(format!("write of invalid page {id}"))),
        }
    }

    fn sync(&self) -> Result<()> {
        self.syncs.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn page_count(&self) -> u64 {
        self.pages.lock().len() as u64
    }

    fn snapshot(&self) -> IoSnapshot {
        IoSnapshot {
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            allocations: self.allocations.load(Ordering::Relaxed),
            syncs: self.syncs.load(Ordering::Relaxed),
            read_faults: 0,
            write_faults: 0,
        }
    }

    fn reset_stats(&self) {
        self.reads.store(0, Ordering::Relaxed);
        self.writes.store(0, Ordering::Relaxed);
        self.allocations.store(0, Ordering::Relaxed);
        self.syncs.store(0, Ordering::Relaxed);
    }
}

impl Default for DiskManager {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    #[test]
    fn allocate_read_write_roundtrip() {
        let disk = DiskManager::new();
        let id = disk.allocate_page();
        let mut buf = [0u8; PAGE_SIZE];
        buf[0] = 0xAB;
        buf[PAGE_SIZE - 1] = 0xCD;
        disk.write_page(id, &buf).unwrap();
        let mut out = [0u8; PAGE_SIZE];
        disk.read_page(id, &mut out).unwrap();
        assert_eq!(out[0], 0xAB);
        assert_eq!(out[PAGE_SIZE - 1], 0xCD);
    }

    #[test]
    fn counters_track_physical_io() {
        let disk = DiskManager::new();
        let id = disk.allocate_page();
        let buf = [0u8; PAGE_SIZE];
        let mut out = [0u8; PAGE_SIZE];
        let before = disk.snapshot();
        disk.write_page(id, &buf).unwrap();
        disk.read_page(id, &mut out).unwrap();
        disk.read_page(id, &mut out).unwrap();
        let delta = disk.snapshot().since(&before);
        assert_eq!(delta.reads, 2);
        assert_eq!(delta.writes, 1);
        assert_eq!(delta.total(), 3);
    }

    #[test]
    fn sync_is_a_counted_no_op() {
        let disk = DiskManager::new();
        let before = disk.snapshot();
        disk.sync().unwrap();
        disk.sync().unwrap();
        assert_eq!(disk.snapshot().since(&before).syncs, 2);
        disk.reset_stats();
        assert_eq!(disk.snapshot().syncs, 0);
    }

    #[test]
    fn invalid_page_access_errors() {
        let disk = DiskManager::new();
        let mut buf = [0u8; PAGE_SIZE];
        assert!(disk.read_page(0, &mut buf).is_err());
        assert!(disk.write_page(99, &buf).is_err());
        assert!(disk.deallocate_page(0).is_err());
    }

    #[test]
    fn deallocated_page_stays_dead() {
        let disk = DiskManager::new();
        let a = disk.allocate_page();
        disk.deallocate_page(a).unwrap();
        let mut buf = [0u8; PAGE_SIZE];
        assert!(disk.read_page(a, &mut buf).is_err());
        assert!(disk.deallocate_page(a).is_err());
        // Ids are not reused.
        let b = disk.allocate_page();
        assert_ne!(a, b);
    }

    #[test]
    fn reset_stats_zeroes() {
        let disk = DiskManager::new();
        let id = disk.allocate_page();
        let buf = [0u8; PAGE_SIZE];
        disk.write_page(id, &buf).unwrap();
        disk.reset_stats();
        assert_eq!(disk.snapshot(), IoSnapshot::default());
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "newer `earlier`")]
    fn since_with_newer_earlier_panics_in_debug() {
        // Misordered arguments (e.g. an "earlier" snapshot taken after a
        // reset) are a caller bug: debug builds assert; release builds
        // saturate to zero instead of underflowing.
        let disk = DiskManager::new();
        let id = disk.allocate_page();
        let buf = [0u8; PAGE_SIZE];
        disk.write_page(id, &buf).unwrap();
        let busy = disk.snapshot();
        disk.reset_stats();
        let idle = disk.snapshot();
        let _ = idle.since(&busy);
    }

    #[test]
    fn snapshots_are_monotonic_under_concurrent_traffic() {
        // Readers racing with writers must never observe counters going
        // backwards, and well-ordered deltas must add up.
        let disk = std::sync::Arc::new(DiskManager::new());
        let id = disk.allocate_page();
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let reader = {
            let disk = std::sync::Arc::clone(&disk);
            let stop = std::sync::Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut prev = disk.snapshot();
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let cur = disk.snapshot();
                    assert!(cur.reads >= prev.reads, "reads went backwards");
                    assert!(cur.writes >= prev.writes, "writes went backwards");
                    let _ = cur.since(&prev);
                    prev = cur;
                }
            })
        };
        let before = disk.snapshot();
        let buf = [0u8; PAGE_SIZE];
        let mut out = [0u8; PAGE_SIZE];
        for _ in 0..2_000 {
            disk.write_page(id, &buf).unwrap();
            disk.read_page(id, &mut out).unwrap();
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        reader.join().unwrap();
        let delta = disk.snapshot().since(&before);
        assert_eq!(delta.reads, 2_000);
        assert_eq!(delta.writes, 2_000);
    }
}
