//! Hierarchical statement spans: where did this statement's time go?
//!
//! A [`StatementSpan`] is the per-statement trace the engine assembles as
//! a statement moves through its lifecycle — parse → bind → optimize →
//! verify → execute → commit. Each [`PhaseSpan`] carries the phase's wall
//! time plus a small bag of attached counters (rows, batches, pool
//! hits/misses, WAL bytes…) captured as deltas over that phase.
//!
//! Phases are disjoint, sequential intervals measured against one
//! monotonic clock, so the sum of phase wall times is ≤ the statement's
//! total wall time by construction — the acceptance check `EXPLAIN
//! ANALYZE` renders relies on exactly that invariant.
//!
//! Like the search trace, spans are purely observational: the engine
//! builds them off the hot path (one `Vec` push per phase), and the span
//! differential suite proves recording them changes no plan digest and
//! no result row.

use std::fmt::Write as _;

/// One lifecycle phase of a statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// SQL text → AST.
    Parse,
    /// AST → checked logical plan (name resolution + type checking).
    Bind,
    /// Logical plan → chosen physical plan (join enumeration, costing).
    Optimize,
    /// Static plan verification (rule sweep over the chosen plan).
    Verify,
    /// Operator-tree drain: batches pulled, rows returned.
    Execute,
    /// Write path: commit-lock critical section + WAL append + sync.
    Commit,
}

impl Phase {
    /// Lowercase label used in tables and the query log.
    pub fn label(self) -> &'static str {
        match self {
            Phase::Parse => "parse",
            Phase::Bind => "bind",
            Phase::Optimize => "optimize",
            Phase::Verify => "verify",
            Phase::Execute => "execute",
            Phase::Commit => "commit",
        }
    }

    /// All phases in lifecycle order.
    pub const ALL: [Phase; 6] = [
        Phase::Parse,
        Phase::Bind,
        Phase::Optimize,
        Phase::Verify,
        Phase::Execute,
        Phase::Commit,
    ];
}

/// One timed phase with its attached counters.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseSpan {
    pub phase: Phase,
    pub wall_us: u64,
    /// Counters captured as deltas over this phase, e.g. `("rows", 40)`.
    pub counters: Vec<(&'static str, u64)>,
}

impl PhaseSpan {
    pub fn new(phase: Phase, wall_us: u64) -> Self {
        PhaseSpan {
            phase,
            wall_us,
            counters: Vec::new(),
        }
    }

    /// Attach a counter; zero values are kept (an explicit zero is
    /// information: "execute touched no pages").
    pub fn counter(mut self, name: &'static str, value: u64) -> Self {
        self.counters.push((name, value));
        self
    }
}

/// The per-statement trace: session attribution plus the phase sequence.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StatementSpan {
    /// Session that ran the statement (0 = the database's implicit
    /// default session).
    pub session_id: u64,
    /// Phases in the order they ran. A phase that did not apply to this
    /// statement (e.g. `commit` for a SELECT) is simply absent.
    pub phases: Vec<PhaseSpan>,
    /// Total statement wall time, measured over one enclosing interval.
    pub total_us: u64,
}

impl StatementSpan {
    pub fn new(session_id: u64) -> Self {
        StatementSpan {
            session_id,
            phases: Vec::new(),
            total_us: 0,
        }
    }

    /// Append a finished phase.
    pub fn push(&mut self, phase: PhaseSpan) {
        self.phases.push(phase);
    }

    /// Sum of phase wall times. Phases are disjoint sequential intervals,
    /// so this is ≤ [`StatementSpan::total_us`] up to clock granularity.
    pub fn phase_sum_us(&self) -> u64 {
        self.phases.iter().map(|p| p.wall_us).sum()
    }

    /// Wall time of one phase, if it ran.
    pub fn phase_us(&self, phase: Phase) -> Option<u64> {
        self.phases
            .iter()
            .find(|p| p.phase == phase)
            .map(|p| p.wall_us)
    }

    /// Compact single-line rendering for the query log:
    /// `parse=12µs bind=40µs optimize=310µs execute=1204µs`.
    pub fn compact(&self) -> String {
        let mut out = String::new();
        for (i, p) in self.phases.iter().enumerate() {
            if i > 0 {
                out.push(' ');
            }
            let _ = write!(out, "{}={}µs", p.phase.label(), p.wall_us);
        }
        out
    }

    /// Render the phase-breakdown table `EXPLAIN ANALYZE` prints:
    ///
    /// ```text
    /// phase     wall_us    %  counters
    /// parse          12  0.3
    /// optimize      310  7.4  considered=42 pruned=17
    /// execute     1_204 92.0  rows=40 batches=3 pool_hits=12
    /// total       1_526       (phases 1_526µs)
    /// ```
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str("phase      wall_us      %  counters\n");
        let total = self.total_us.max(1);
        for p in &self.phases {
            let pct = p.wall_us as f64 * 100.0 / total as f64;
            let counters = p
                .counters
                .iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect::<Vec<_>>()
                .join(" ");
            let _ = writeln!(
                out,
                "{:<9} {:>8} {:>5.1}  {}",
                p.phase.label(),
                p.wall_us,
                pct,
                counters
            );
        }
        let _ = writeln!(
            out,
            "{:<9} {:>8}        (phases {}µs)",
            "total",
            self.total_us,
            self.phase_sum_us()
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_labels_cover_lifecycle_order() {
        let labels: Vec<&str> = Phase::ALL.iter().map(|p| p.label()).collect();
        assert_eq!(
            labels,
            ["parse", "bind", "optimize", "verify", "execute", "commit"]
        );
    }

    #[test]
    fn phase_sum_and_lookup() {
        let mut span = StatementSpan::new(3);
        span.push(PhaseSpan::new(Phase::Parse, 10));
        span.push(PhaseSpan::new(Phase::Optimize, 300).counter("considered", 42));
        span.push(
            PhaseSpan::new(Phase::Execute, 1_000)
                .counter("rows", 40)
                .counter("batches", 3),
        );
        span.total_us = 1_320;
        assert_eq!(span.phase_sum_us(), 1_310);
        assert!(span.phase_sum_us() <= span.total_us);
        assert_eq!(span.phase_us(Phase::Optimize), Some(300));
        assert_eq!(span.phase_us(Phase::Commit), None);
        assert_eq!(span.session_id, 3);
    }

    #[test]
    fn compact_renders_in_order() {
        let mut span = StatementSpan::new(0);
        span.push(PhaseSpan::new(Phase::Parse, 12));
        span.push(PhaseSpan::new(Phase::Execute, 1_204));
        assert_eq!(span.compact(), "parse=12µs execute=1204µs");
    }

    #[test]
    fn table_contains_every_phase_and_total() {
        let mut span = StatementSpan::new(0);
        span.push(PhaseSpan::new(Phase::Parse, 5));
        span.push(PhaseSpan::new(Phase::Commit, 95).counter("wal_bytes", 512));
        span.total_us = 100;
        let table = span.render_table();
        assert!(table.contains("parse"));
        assert!(table.contains("commit"));
        assert!(table.contains("wal_bytes=512"));
        assert!(table.contains("total"));
        assert!(table.contains("(phases 100µs)"));
    }

    #[test]
    fn empty_span_renders_total_only() {
        let span = StatementSpan::new(0);
        let table = span.render_table();
        assert!(table.contains("total"));
        assert_eq!(span.phase_sum_us(), 0);
    }
}
