//! Ring-buffer query log with a slow-query threshold.
//!
//! The engine records one [`QueryLogEntry`] per executed SELECT; the ring
//! keeps the most recent `cap` entries. A query whose combined optimize +
//! execute wall time crosses the threshold is flagged `slow`. Surfaced by
//! the virtual statement `SHOW QUERY LOG` (newest first).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

use parking_lot::Mutex;

use crate::span::StatementSpan;

/// Default ring capacity.
pub const DEFAULT_QUERY_LOG_CAP: usize = 128;
/// Default slow-query threshold: 250ms.
pub const DEFAULT_SLOW_QUERY_US: u64 = 250_000;

/// Everything the log remembers about one query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryLogEntry {
    pub sql: String,
    /// Session that ran the query (0 = the implicit default session), so
    /// a multi-session server's slow-query log attributes each entry to
    /// one client.
    pub session_id: u64,
    /// Hex digest of the chosen physical plan's shape.
    pub plan_digest: String,
    /// Optimizer's root cardinality estimate.
    pub est_rows: f64,
    /// Rows the query actually returned.
    pub actual_rows: u64,
    pub optimize_us: u64,
    pub execute_us: u64,
    pub pages_read: u64,
    pub pages_written: u64,
    /// Set by [`QueryLog::record`] against the configured threshold.
    pub slow: bool,
    /// Phase breakdown, when span recording was on for the statement.
    pub span: Option<StatementSpan>,
}

impl QueryLogEntry {
    /// q-error of the root estimate: `max(est/actual, actual/est)`, both
    /// clamped to ≥1 so the result is always ≥1 and finite.
    pub fn q_error(&self) -> f64 {
        let est = self.est_rows.max(1.0);
        let actual = (self.actual_rows as f64).max(1.0);
        (est / actual).max(actual / est)
    }

    pub fn total_us(&self) -> u64 {
        self.optimize_us.saturating_add(self.execute_us)
    }
}

/// The bounded, thread-safe log.
#[derive(Debug)]
pub struct QueryLog {
    entries: Mutex<VecDeque<QueryLogEntry>>,
    cap: usize,
    slow_us: AtomicU64,
}

impl QueryLog {
    pub fn new(cap: usize, slow_us: u64) -> Self {
        QueryLog {
            entries: Mutex::new(VecDeque::with_capacity(cap.min(1024))),
            cap: cap.max(1),
            slow_us: AtomicU64::new(slow_us),
        }
    }

    /// Stamp `slow` and append, evicting the oldest entry at capacity.
    pub fn record(&self, mut entry: QueryLogEntry) {
        entry.slow = entry.total_us() >= self.slow_us.load(Relaxed);
        let mut entries = self.entries.lock();
        if entries.len() == self.cap {
            entries.pop_front();
        }
        entries.push_back(entry);
    }

    /// All retained entries, newest first.
    pub fn entries(&self) -> Vec<QueryLogEntry> {
        self.entries.lock().iter().rev().cloned().collect()
    }

    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.lock().is_empty()
    }

    pub fn clear(&self) {
        self.entries.lock().clear();
    }

    pub fn slow_threshold_us(&self) -> u64 {
        self.slow_us.load(Relaxed)
    }

    /// Adjust the slow threshold; applies to subsequent records only.
    pub fn set_slow_threshold_us(&self, us: u64) {
        self.slow_us.store(us, Relaxed);
    }
}

impl Default for QueryLog {
    fn default() -> Self {
        QueryLog::new(DEFAULT_QUERY_LOG_CAP, DEFAULT_SLOW_QUERY_US)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(sql: &str, exec_us: u64) -> QueryLogEntry {
        QueryLogEntry {
            sql: sql.into(),
            session_id: 0,
            plan_digest: "deadbeef".into(),
            est_rows: 10.0,
            actual_rows: 40,
            optimize_us: 5,
            execute_us: exec_us,
            pages_read: 2,
            pages_written: 0,
            slow: false,
            span: None,
        }
    }

    #[test]
    fn ring_evicts_oldest_and_orders_newest_first() {
        let log = QueryLog::new(2, 1_000_000);
        log.record(entry("q1", 1));
        log.record(entry("q2", 1));
        log.record(entry("q3", 1));
        let got = log.entries();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].sql, "q3");
        assert_eq!(got[1].sql, "q2");
    }

    #[test]
    fn slow_flag_follows_threshold() {
        let log = QueryLog::new(8, 100);
        log.record(entry("fast", 10));
        log.record(entry("slow", 200));
        let got = log.entries();
        assert!(got[0].slow, "200µs over a 100µs threshold");
        assert!(!got[1].slow);
        log.set_slow_threshold_us(5);
        log.record(entry("now-slow", 10));
        assert!(log.entries()[0].slow);
    }

    #[test]
    fn q_error_is_symmetric_and_clamped() {
        let mut e = entry("q", 1);
        e.est_rows = 10.0;
        e.actual_rows = 40;
        assert_eq!(e.q_error(), 4.0);
        e.est_rows = 160.0;
        assert_eq!(e.q_error(), 4.0);
        e.est_rows = 0.0;
        e.actual_rows = 0;
        assert_eq!(e.q_error(), 1.0);
    }
}
