//! The optimizer search trace.
//!
//! A [`TraceSink`] is handed (by reference) to one enumeration run. The
//! enumerator calls `&self` methods — the sink is interior-mutable via
//! `Cell`/`RefCell`, because the enumeration API threads a shared context —
//! to record every candidate it considers, every plan dominance kills, and
//! the growth of the memo table per enumeration level. Counters always
//! accumulate; the event journal is bounded by `cap` (a sink built with
//! [`TraceSink::counts_only`] keeps no events at all, which is what the
//! always-on metrics path uses).
//!
//! The invariant the DP enumerators maintain — and `EXPLAIN TRACE` tests
//! assert — is `considered == pruned + retained`, with `retained` equal to
//! the final dominance-table size: every candidate either enters the memo,
//! is rejected by an incumbent (pruned, dominated), or evicts an incumbent
//! (which is then pruned, superseded).

use std::cell::{Cell, RefCell};

/// Default cap on journal events kept by `EXPLAIN TRACE`.
pub const DEFAULT_TRACE_EVENTS: usize = 512;

/// Why a subplan left the search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PruneReason {
    /// Rejected on arrival: an incumbent with the same (mask, order) was
    /// already at least as cheap.
    Dominated,
    /// Was the incumbent; a cheaper plan for the same (mask, order) arrived.
    Superseded,
    /// A greedy-family strategy evaluated it but chose a sibling.
    NotChosen,
}

impl PruneReason {
    pub fn label(&self) -> &'static str {
        match self {
            PruneReason::Dominated => "dominated",
            PruneReason::Superseded => "superseded",
            PruneReason::NotChosen => "not-chosen",
        }
    }
}

/// One structured search event.
#[derive(Debug, Clone)]
pub enum TraceEvent {
    /// A join/access candidate was generated and costed.
    Considered {
        mask: u64,
        method: &'static str,
        io: f64,
        cpu: f64,
        rows: f64,
        order: Option<usize>,
    },
    /// A candidate (or incumbent) left the search.
    Pruned {
        mask: u64,
        method: &'static str,
        reason: PruneReason,
    },
    /// An admitted plan carries an interesting order worth keeping.
    OrderKept {
        mask: u64,
        method: &'static str,
        order: usize,
    },
}

/// Per-enumeration-level statistics (DP `size` loop, or one entry for the
/// whole run in single-pass strategies).
#[derive(Debug, Clone)]
pub struct LevelStat {
    pub level: u32,
    /// Dominance-table entries alive after the level completed.
    pub table_entries: usize,
    pub micros: u128,
}

/// The recording half: interior-mutable so `&self` callers can record.
#[derive(Debug, Default)]
pub struct TraceSink {
    cap: usize,
    considered: Cell<u64>,
    pruned: Cell<u64>,
    dropped: Cell<u64>,
    memo_entries: Cell<usize>,
    strategy: Cell<&'static str>,
    total_micros: Cell<u128>,
    events: RefCell<Vec<TraceEvent>>,
    levels: RefCell<Vec<LevelStat>>,
}

impl TraceSink {
    /// A sink keeping at most `cap` journal events (counters are exact
    /// regardless).
    pub fn bounded(cap: usize) -> Self {
        TraceSink {
            cap,
            strategy: Cell::new(""),
            ..TraceSink::default()
        }
    }

    /// A sink keeping counters only — the always-on metrics configuration,
    /// cheap enough to leave enabled for every `optimize()` call.
    pub fn counts_only() -> Self {
        Self::bounded(0)
    }

    fn push(&self, ev: TraceEvent) {
        let mut events = self.events.borrow_mut();
        if events.len() < self.cap {
            events.push(ev);
        } else {
            self.dropped.set(self.dropped.get() + 1);
        }
    }

    /// Record a candidate being generated and costed.
    pub fn consider(
        &self,
        mask: u64,
        method: &'static str,
        io: f64,
        cpu: f64,
        rows: f64,
        order: Option<usize>,
    ) {
        self.considered.set(self.considered.get() + 1);
        self.push(TraceEvent::Considered {
            mask,
            method,
            io,
            cpu,
            rows,
            order,
        });
    }

    /// Record a plan leaving the search.
    pub fn prune(&self, mask: u64, method: &'static str, reason: PruneReason) {
        self.pruned.set(self.pruned.get() + 1);
        self.push(TraceEvent::Pruned {
            mask,
            method,
            reason,
        });
    }

    /// Record an admitted plan keeping an interesting order.
    pub fn order_kept(&self, mask: u64, method: &'static str, order: usize) {
        self.push(TraceEvent::OrderKept {
            mask,
            method,
            order,
        });
    }

    /// Record one completed enumeration level.
    pub fn level(&self, level: u32, table_entries: usize, micros: u128) {
        self.levels.borrow_mut().push(LevelStat {
            level,
            table_entries,
            micros,
        });
    }

    /// Final dominance-table size (DP strategies only).
    pub fn set_memo_entries(&self, n: usize) {
        self.memo_entries.set(n);
    }

    pub fn set_strategy(&self, name: &'static str) {
        self.strategy.set(name);
    }

    pub fn set_total_micros(&self, micros: u128) {
        self.total_micros.set(micros);
    }

    pub fn considered_count(&self) -> u64 {
        self.considered.get()
    }

    pub fn pruned_count(&self) -> u64 {
        self.pruned.get()
    }

    /// Freeze into the immutable result.
    pub fn into_trace(self) -> SearchTrace {
        SearchTrace {
            strategy: self.strategy.get(),
            considered: self.considered.get(),
            pruned: self.pruned.get(),
            memo_entries: self.memo_entries.get(),
            dropped: self.dropped.get(),
            total_micros: self.total_micros.get(),
            levels: self.levels.into_inner(),
            events: self.events.into_inner(),
        }
    }
}

/// An immutable, renderable record of one enumeration run.
#[derive(Debug, Clone)]
pub struct SearchTrace {
    pub strategy: &'static str,
    pub considered: u64,
    pub pruned: u64,
    /// Final dominance-table size; 0 for non-memoizing strategies.
    pub memo_entries: usize,
    /// Journal events discarded once the cap was hit.
    pub dropped: u64,
    pub total_micros: u128,
    pub levels: Vec<LevelStat>,
    pub events: Vec<TraceEvent>,
}

fn mask_str(mask: u64) -> String {
    let rels: Vec<String> = (0..64)
        .filter(|r| mask & (1u64 << r) != 0)
        .map(|r| r.to_string())
        .collect();
    format!("{{{}}}", rels.join(","))
}

impl SearchTrace {
    /// Plans still alive when enumeration finished.
    pub fn retained(&self) -> u64 {
        self.considered.saturating_sub(self.pruned)
    }

    /// The human-readable search journal appended by `EXPLAIN TRACE`.
    pub fn render(&self) -> String {
        let mut out = format!(
            "plans considered: {}, pruned: {}, retained: {}\n",
            self.considered,
            self.pruned,
            self.retained()
        );
        out.push_str(&format!(
            "memo entries: {}, enumeration time: {}µs\n",
            self.memo_entries, self.total_micros
        ));
        for l in &self.levels {
            out.push_str(&format!(
                "level {}: table={} entries, {}µs\n",
                l.level, l.table_entries, l.micros
            ));
        }
        if self.events.is_empty() {
            out.push_str("journal: (no events recorded)\n");
            return out;
        }
        out.push_str(&format!(
            "journal ({} events{}):\n",
            self.events.len(),
            if self.dropped > 0 {
                format!(", {} dropped at cap", self.dropped)
            } else {
                String::new()
            }
        ));
        for ev in &self.events {
            match ev {
                TraceEvent::Considered {
                    mask,
                    method,
                    io,
                    cpu,
                    rows,
                    order,
                } => {
                    out.push_str(&format!(
                        "  + consider {} {}  rows={rows:.0} io={io:.1} cpu={cpu:.1}{}\n",
                        mask_str(*mask),
                        method,
                        order.map(|o| format!(" order=c{o}")).unwrap_or_default()
                    ));
                }
                TraceEvent::Pruned {
                    mask,
                    method,
                    reason,
                } => {
                    out.push_str(&format!(
                        "  - prune    {} {}  {}\n",
                        mask_str(*mask),
                        method,
                        reason.label()
                    ));
                }
                TraceEvent::OrderKept {
                    mask,
                    method,
                    order,
                } => {
                    out.push_str(&format!(
                        "  ~ order    {} {}  keeps interesting order c{order}\n",
                        mask_str(*mask),
                        method,
                    ));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_survive_event_cap() {
        let sink = TraceSink::bounded(2);
        for i in 0..5 {
            sink.consider(1 << i, "HashJoin", 1.0, 2.0, 10.0, None);
        }
        sink.prune(1, "HashJoin", PruneReason::Dominated);
        let trace = sink.into_trace();
        assert_eq!(trace.considered, 5);
        assert_eq!(trace.pruned, 1);
        assert_eq!(trace.retained(), 4);
        assert_eq!(trace.events.len(), 2);
        assert_eq!(trace.dropped, 4);
    }

    #[test]
    fn counts_only_keeps_no_events() {
        let sink = TraceSink::counts_only();
        sink.consider(3, "SortMergeJoin", 1.0, 1.0, 1.0, Some(0));
        let trace = sink.into_trace();
        assert_eq!(trace.considered, 1);
        assert!(trace.events.is_empty());
    }

    #[test]
    fn render_mentions_counts_levels_and_events() {
        let sink = TraceSink::bounded(16);
        sink.set_strategy("system-r");
        sink.consider(0b11, "HashJoin", 4.0, 2.0, 100.0, None);
        sink.order_kept(0b11, "SortMergeJoin", 2);
        sink.prune(0b11, "BlockNestedLoopJoin", PruneReason::Dominated);
        sink.level(2, 7, 42);
        sink.set_memo_entries(7);
        let text = sink.into_trace().render();
        assert!(text.contains("plans considered: 1"));
        assert!(text.contains("pruned: 1"));
        assert!(text.contains("memo entries: 7"));
        assert!(text.contains("level 2: table=7"));
        assert!(text.contains("+ consider {0,1} HashJoin"));
        assert!(text.contains("keeps interesting order c2"));
        assert!(text.contains("dominated"));
    }
}
